"""Smoke-execute every example script.

The ``examples/`` directory is API surface: it is the code users copy
first, and interface refactors (like the ConsensusEngine boundary) can
silently break it because nothing else imports it.  Each script is
executed in a subprocess exactly as its docstring instructs
(``python examples/<name>.py``); every one is built on small fast
configurations (n ≤ 5, short horizons), so the whole sweep stays
tier-1 sized.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent
_EXAMPLES = sorted((_REPO_ROOT / "examples").glob("*.py"))


def test_examples_discovered():
    assert len(_EXAMPLES) >= 5, "examples/ went missing?"


@pytest.mark.parametrize("script", _EXAMPLES, ids=lambda path: path.name)
def test_example_runs_clean(script):
    env = dict(os.environ)
    src = str(_REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        cwd=_REPO_ROOT,
        timeout=120,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}:\n{result.stderr[-2000:]}"
    )
    # Every example narrates what it demonstrates.
    assert result.stdout.strip(), f"{script.name} printed nothing"
