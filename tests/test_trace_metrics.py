"""Unit tests for tracing and metric collectors."""

from __future__ import annotations

import pytest

from repro.metrics import (
    LatencyMetrics,
    MessageMetrics,
    StorageMetrics,
    estimate_wire_size,
)
from repro.sim import Trace, TraceKind


class TestTrace:
    def test_record_and_filter_by_kind(self):
        trace = Trace()
        trace.record(1.0, 0, TraceKind.VOTE, phase=1)
        trace.record(2.0, 1, TraceKind.DECIDE, value="v")
        assert len(trace) == 2
        votes = trace.events(TraceKind.VOTE)
        assert len(votes) == 1
        assert votes[0].get("phase") == 1

    def test_filter_by_node_and_predicate(self):
        trace = Trace()
        for node in range(3):
            trace.record(float(node), node, TraceKind.VOTE, phase=node)
        assert len(trace.events(node=1)) == 1
        late = trace.events(where=lambda e: e.time >= 1.0)
        assert len(late) == 2

    def test_first_returns_earliest_match(self):
        trace = Trace()
        trace.record(1.0, 0, TraceKind.DECIDE, value="a")
        trace.record(2.0, 1, TraceKind.DECIDE, value="b")
        first = trace.first(TraceKind.DECIDE)
        assert first is not None and first.get("value") == "a"

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(1.0, 0, TraceKind.VOTE)
        assert len(trace) == 0

    def test_event_get_default(self):
        trace = Trace()
        trace.record(0.0, 0, TraceKind.CUSTOM, a=1)
        event = trace.events()[0]
        assert event.get("missing", "dflt") == "dflt"


class TestMessageMetrics:
    def test_send_accounting(self):
        metrics = MessageMetrics()
        metrics.record_send(0, "hello")
        metrics.record_send(0, "bye")
        metrics.record_send(1, "x")
        assert metrics.sent_count[0] == 2
        assert metrics.total_messages_sent == 3
        assert metrics.bytes_sent_by_node[0] == 8
        assert metrics.max_bytes_per_node() == 8
        assert metrics.count_by_type["str"] == 3

    def test_wire_size_protocol_hook(self):
        class Sized:
            def wire_size(self):
                return 123

        assert estimate_wire_size(Sized()) == 123

    def test_wire_size_dataclass_recursion(self):
        from dataclasses import dataclass

        @dataclass
        class Inner:
            a: int
            b: str

        assert estimate_wire_size(Inner(1, "xyz")) == 8 + 3

    def test_wire_size_collections(self):
        assert estimate_wire_size((1, 2, 3)) == 24
        assert estimate_wire_size(None) == 1

    def test_wire_size_dict_recurses(self):
        """Regression: dicts used to be flat-charged 8 bytes, badly
        undercounting dict-carrying messages."""
        assert estimate_wire_size({"ab": 1}) == 2 + 8
        assert estimate_wire_size({"k": (1, 2), "xyz": "ab"}) == (1 + 16) + (3 + 2)
        assert estimate_wire_size({}) == 0
        # Nested containers keep recursing through the dict.
        assert estimate_wire_size(({"a": 1}, 2)) == (1 + 8) + 8


class TestLatencyMetrics:
    def test_first_decision_wins(self):
        metrics = LatencyMetrics()
        metrics.record_decision(0, "a", 5.0)
        metrics.record_decision(0, "a", 9.0)
        assert metrics.decision_times[0] == 5.0

    def test_all_decided_and_max(self):
        metrics = LatencyMetrics()
        metrics.record_decision(0, "a", 5.0)
        assert not metrics.all_decided([0, 1])
        metrics.record_decision(1, "a", 7.0)
        assert metrics.all_decided([0, 1])
        assert metrics.max_decision_time() == 7.0

    def test_max_decision_time_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyMetrics().max_decision_time()

    def test_view_entries_accumulate(self):
        metrics = LatencyMetrics()
        metrics.record_view_entry(0, 1, 10.0)
        metrics.record_view_entry(0, 2, 20.0)
        assert metrics.view_entry_times[0] == [(1, 10.0), (2, 20.0)]


class TestStorageMetrics:
    def test_max_per_node_and_global(self):
        metrics = StorageMetrics()
        metrics.record(0, 10)
        metrics.record(0, 30)
        metrics.record(1, 20)
        assert metrics.max_storage(0) == 30
        assert metrics.max_storage() == 30
        assert metrics.max_storage(2) == 0


class TestSMRTrackers:
    def test_latency_percentiles_in_message_delays(self):
        from repro.metrics import LatencyTracker

        tracker = LatencyTracker()
        for k in range(100):
            tracker.record_submit(f"t{k}", 0.0)
            tracker.record_commit(0, f"t{k}", float(k + 1))
        percentiles = tracker.percentiles(delta=2.0)
        assert percentiles[50] == 25.0  # 50th of 1..100, in units of Δ=2
        assert percentiles[95] == 47.5
        assert percentiles[99] == 49.5

    def test_latency_first_submit_wins_and_untracked_commit_ignored(self):
        from repro.metrics import LatencyTracker
        import math

        tracker = LatencyTracker()
        tracker.record_submit("t", 1.0)
        tracker.record_submit("t", 5.0)  # same txn at another replica
        tracker.record_commit(0, "t", 4.0)
        tracker.record_commit(1, "ghost", 4.0)  # never submitted
        assert tracker.sample_count == 1
        assert tracker.percentiles()[50] == 3.0
        assert all(math.isnan(v) for v in LatencyTracker().percentiles().values())

    def test_throughput_cluster_minimums_and_peak(self):
        from repro.metrics import ThroughputTracker

        tracker = ThroughputTracker()
        tracker.record_block(0, 1, 10, 40, 5.0)
        tracker.record_block(0, 2, 10, 25, 6.0)
        tracker.record_block(1, 1, 10, 55, 5.0)
        assert tracker.txns_applied(0) == 20
        assert tracker.min_txns_applied([0, 1]) == 10
        assert tracker.min_blocks_applied([0, 1]) == 1
        assert tracker.peak_mempool([0, 1]) == 55
        assert tracker.peak_mempool([0]) == 40
        assert tracker.last_commit_time == 6.0
        # Empty blocks count toward blocks but never move the commit
        # clock — trailing no-op slots must not stretch the duration.
        tracker.record_block(1, 2, 0, 0, 9.0)
        assert tracker.last_commit_time == 6.0
        assert tracker.min_blocks_applied([0, 1]) == 2
        assert tracker.min_txns_applied([]) == 0

    def test_submit_side_mempool_samples_raise_the_peak(self):
        """Regression: the peak must be visible from submit-time
        samples — sampling only after a block's drain undercounts the
        backlog a burst creates."""
        from repro.metrics import ThroughputTracker

        tracker = ThroughputTracker()
        tracker.record_mempool(0, 50)  # burst lands
        tracker.record_block(0, 1, 10, 40, 5.0)  # sampled after drain
        assert tracker.peak_mempool([0]) == 50
