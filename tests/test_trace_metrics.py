"""Unit tests for tracing and metric collectors."""

from __future__ import annotations

import pytest

from repro.metrics import (
    LatencyMetrics,
    MessageMetrics,
    StorageMetrics,
    estimate_wire_size,
)
from repro.sim import Trace, TraceKind


class TestTrace:
    def test_record_and_filter_by_kind(self):
        trace = Trace()
        trace.record(1.0, 0, TraceKind.VOTE, phase=1)
        trace.record(2.0, 1, TraceKind.DECIDE, value="v")
        assert len(trace) == 2
        votes = trace.events(TraceKind.VOTE)
        assert len(votes) == 1
        assert votes[0].get("phase") == 1

    def test_filter_by_node_and_predicate(self):
        trace = Trace()
        for node in range(3):
            trace.record(float(node), node, TraceKind.VOTE, phase=node)
        assert len(trace.events(node=1)) == 1
        late = trace.events(where=lambda e: e.time >= 1.0)
        assert len(late) == 2

    def test_first_returns_earliest_match(self):
        trace = Trace()
        trace.record(1.0, 0, TraceKind.DECIDE, value="a")
        trace.record(2.0, 1, TraceKind.DECIDE, value="b")
        first = trace.first(TraceKind.DECIDE)
        assert first is not None and first.get("value") == "a"

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(1.0, 0, TraceKind.VOTE)
        assert len(trace) == 0

    def test_event_get_default(self):
        trace = Trace()
        trace.record(0.0, 0, TraceKind.CUSTOM, a=1)
        event = trace.events()[0]
        assert event.get("missing", "dflt") == "dflt"


class TestMessageMetrics:
    def test_send_accounting(self):
        metrics = MessageMetrics()
        metrics.record_send(0, "hello")
        metrics.record_send(0, "bye")
        metrics.record_send(1, "x")
        assert metrics.sent_count[0] == 2
        assert metrics.total_messages_sent == 3
        assert metrics.bytes_sent_by_node[0] == 8
        assert metrics.max_bytes_per_node() == 8
        assert metrics.count_by_type["str"] == 3

    def test_wire_size_protocol_hook(self):
        class Sized:
            def wire_size(self):
                return 123

        assert estimate_wire_size(Sized()) == 123

    def test_wire_size_dataclass_recursion(self):
        from dataclasses import dataclass

        @dataclass
        class Inner:
            a: int
            b: str

        assert estimate_wire_size(Inner(1, "xyz")) == 8 + 3

    def test_wire_size_collections(self):
        assert estimate_wire_size((1, 2, 3)) == 24
        assert estimate_wire_size(None) == 1


class TestLatencyMetrics:
    def test_first_decision_wins(self):
        metrics = LatencyMetrics()
        metrics.record_decision(0, "a", 5.0)
        metrics.record_decision(0, "a", 9.0)
        assert metrics.decision_times[0] == 5.0

    def test_all_decided_and_max(self):
        metrics = LatencyMetrics()
        metrics.record_decision(0, "a", 5.0)
        assert not metrics.all_decided([0, 1])
        metrics.record_decision(1, "a", 7.0)
        assert metrics.all_decided([0, 1])
        assert metrics.max_decision_time() == 7.0

    def test_max_decision_time_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyMetrics().max_decision_time()

    def test_view_entries_accumulate(self):
        metrics = LatencyMetrics()
        metrics.record_view_entry(0, 1, 10.0)
        metrics.record_view_entry(0, 2, 20.0)
        assert metrics.view_entry_times[0] == [(1, 10.0), (2, 20.0)]


class TestStorageMetrics:
    def test_max_per_node_and_global(self):
        metrics = StorageMetrics()
        metrics.record(0, 10)
        metrics.record(0, 30)
        metrics.record(1, 20)
        assert metrics.max_storage(0) == 30
        assert metrics.max_storage() == 30
        assert metrics.max_storage(2) == 0
