"""Event-log contract: the NDJSON schema is pinned, the ring is bounded.

Forensics tooling greps these lines out of CI artifacts, so the exact
byte shape of a record — envelope key order, sorted payload keys,
compact separators — is a golden contract, like the wire codec's
frames.
"""

from __future__ import annotations

import json

from repro.obs import EVENT_FIELDS, EventLog, encode_event


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# -- golden schema pin --------------------------------------------------------


def test_event_fields_are_pinned():
    assert EVENT_FIELDS == ("ts", "replica", "view", "slot", "kind", "payload")


def test_encode_event_golden_line():
    """The exact bytes of one record: envelope order fixed, payload
    keys sorted, compact separators.  Changing this breaks every
    downstream grep — treat like a wire-format bump."""
    event = {
        "ts": 100.5,
        "replica": 2,
        "view": 1,
        "slot": 7,
        "kind": "finalize",
        "payload": {"txns": 3, "mempool": 0},
    }
    assert encode_event(event) == (
        '{"ts":100.5,"replica":2,"view":1,"slot":7,'
        '"kind":"finalize","payload":{"mempool":0,"txns":3}}'
    )


def test_emitted_records_follow_the_schema():
    log = EventLog(replica=1, clock=FakeClock(42.0))
    log.emit("view_enter", view=3, slot=0, leader=2)
    (event,) = log.tail()
    line = encode_event(event)
    decoded = json.loads(line)
    assert list(decoded) == list(EVENT_FIELDS)
    assert decoded["ts"] == 42.0
    assert decoded["replica"] == 1 and decoded["view"] == 3
    assert decoded["kind"] == "view_enter" and decoded["payload"] == {"leader": 2}


# -- ring buffer --------------------------------------------------------------


def test_ring_keeps_only_the_last_capacity_events():
    log = EventLog(replica=0, capacity=4, clock=FakeClock())
    for slot in range(10):
        log.emit("finalize", slot=slot)
    assert len(log) == 4
    assert [e["slot"] for e in log.tail()] == [6, 7, 8, 9]
    assert [e["slot"] for e in log.tail(2)] == [8, 9]


def test_disabled_log_is_a_no_op(tmp_path):
    log = EventLog(replica=0, enabled=False, stream_path=tmp_path / "ev.ndjson")
    log.emit("finalize", slot=1)
    assert len(log) == 0
    assert not log.streaming
    assert not (tmp_path / "ev.ndjson").exists()


# -- dump and stream ----------------------------------------------------------


def test_dump_writes_the_ring_tail_as_ndjson(tmp_path):
    log = EventLog(replica=3, capacity=4, clock=FakeClock())
    for slot in range(6):
        log.emit("finalize", slot=slot, txns=slot)
    path = tmp_path / "sub" / "events.ndjson"
    assert log.dump(path) == 4
    lines = path.read_text().splitlines()
    assert len(lines) == 4
    assert [json.loads(line)["slot"] for line in lines] == [2, 3, 4, 5]


def test_streaming_appends_every_event_live(tmp_path):
    path = tmp_path / "events.ndjson"
    log = EventLog(replica=0, clock=FakeClock(), stream_path=path)
    assert log.streaming
    log.emit("recover", slot=4, blocks=4)
    log.emit("anomaly", frame="Rogue")
    # Flushed as they happen — a SIGKILLed process still left both.
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["kind"] == "recover"
    assert json.loads(lines[1])["payload"] == {"frame": "Rogue"}
    log.close()
    assert not log.streaming
