"""Tests for ProtocolConfig, messages, and the CLI dispatcher."""

from __future__ import annotations

import pytest

from repro.__main__ import EXPERIMENTS, main, usage
from repro.core import (
    EMPTY_VOTE,
    Phase,
    Proposal,
    ProtocolConfig,
    Suggest,
    Vote,
    VoteRecord,
)
from repro.errors import ConfigurationError


class TestProtocolConfig:
    def test_round_robin_default(self):
        config = ProtocolConfig.create(4)
        assert [config.leader_of(v) for v in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_custom_leader_fn(self):
        config = ProtocolConfig.create(4, leader_fn=lambda v: 2)
        assert config.leader_of(17) == 2

    def test_leader_fn_returning_unknown_node_rejected(self):
        config = ProtocolConfig.create(4, leader_fn=lambda v: 99)
        with pytest.raises(ConfigurationError):
            config.leader_of(0)

    def test_view_timeout_is_nine_delta(self):
        config = ProtocolConfig.create(4, delta=2.0)
        assert config.view_timeout == 18.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig.create(4, delta=0.0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig.create(4, timeout_delays=0.0)

    def test_node_ids_sorted(self):
        assert ProtocolConfig.create(5, f=1).node_ids == [0, 1, 2, 3, 4]


class TestMessages:
    def test_vote_records_hashable_and_comparable(self):
        a = VoteRecord(1, "x")
        b = VoteRecord(1, "x")
        assert a == b and hash(a) == hash(b)
        assert EMPTY_VOTE.is_empty and not a.is_empty

    def test_messages_are_immutable(self):
        vote = Vote(Phase.VOTE1, 0, "v")
        with pytest.raises(AttributeError):
            vote.view = 3  # type: ignore[misc]

    def test_suggest_defaults_to_empty_history(self):
        suggest = Suggest(view=2)
        assert suggest.vote2.is_empty
        assert suggest.prev_vote2.is_empty
        assert suggest.vote3.is_empty

    def test_proposal_equality_for_dedup(self):
        assert Proposal(1, "v") == Proposal(1, "v")
        assert Proposal(1, "v") != Proposal(2, "v")


class TestCLI:
    def test_usage_lists_every_experiment(self):
        text = usage()
        for name in EXPERIMENTS:
            assert name in text

    def test_engines_experiment_registered(self):
        assert "engines" in EXPERIMENTS
        assert "engines" in usage()

    def test_attacks_experiment_registered(self):
        assert "attacks" in EXPERIMENTS
        assert "attacks" in usage()

    def test_net_experiment_registered(self):
        assert "net" in EXPERIMENTS
        assert "net" in usage()

    def test_no_args_is_bad_usage(self, capsys):
        assert main([]) == 1
        captured = capsys.readouterr()
        assert "usage" in captured.err
        assert captured.out == ""

    @pytest.mark.parametrize("flag", ["-h", "--help"])
    def test_help_exits_zero_on_stdout(self, capsys, flag):
        assert main([flag]) == 0
        captured = capsys.readouterr()
        assert "usage" in captured.out
        assert captured.err == ""

    def test_help_wins_even_with_extra_args(self, capsys):
        """`repro smr --help` asks for help, not for the experiment."""
        assert main(["smr", "--help"]) == 0
        assert "usage" in capsys.readouterr().out

    def test_too_many_args_is_bad_usage(self, capsys):
        assert main(["smr", "table1"]) == 1
        assert "usage" in capsys.readouterr().err

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_fig1_runs_end_to_end(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Lemma 2" in out and "True" in out
