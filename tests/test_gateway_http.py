"""Gateway handler layer: routes, structured errors, the WS stream.

In-process tests over real localhost sockets: a :class:`GatewayServer`
bound to an ephemeral port with the session service running over a
stub pool (no replica processes), exercised through the same
``HTTPClient``/``WSClient`` helpers the load generator uses — both
ends of the hand-rolled wire get covered at once.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.app import GatewayServer, alias_to_v1, parse_transaction
from repro.gateway.http import (
    HTTPClient,
    ProtocolError,
    WSClient,
    websocket_accept_value,
)
from repro.gateway.service import GatewayConfig, GatewayService
from repro.net.codec import CommitAck, MetricsReply

from tests.test_gateway_service import FakeClock, StubPool, _chain, _reply


def _commit(service: GatewayService, txid: str, *, slot: int = 1) -> None:
    for node_id in range(service.config.ack_quorum):
        service._on_ack(node_id, CommitAck(node_id=node_id, txid=txid, slot=slot))


async def _started_server(**overrides) -> tuple[GatewayServer, GatewayService, StubPool]:
    pool = StubPool(4)
    defaults = dict(
        n=4, rate=10.0, burst=2.0, max_batch=1000, snapshot_interval=0.0
    )
    defaults.update(overrides)
    service = GatewayService(pool, GatewayConfig(**defaults), clock=FakeClock())
    await service.start(start_consensus=False)
    server = GatewayServer(service)
    await server.start()
    return server, service, pool


def _submission(i: int) -> dict:
    return {"txid": f"t{i}", "op": ["set", "k", i]}


def run(scenario) -> None:
    asyncio.run(scenario())


# -- request validation -------------------------------------------------------


def test_parse_transaction_validates_shape():
    txn = parse_transaction({"txid": "a", "op": ["set", "k", 1]})
    assert txn.txid == "a" and txn.op == ("set", "k", 1)
    for bad in (
        "not a dict",
        {"op": ["set", "k", 1]},  # no txid
        {"txid": "", "op": ["set", "k", 1]},  # empty txid
        {"txid": "x" * 200, "op": ["noop"]},  # oversized txid
        {"txid": "a"},  # no op
        {"txid": "a", "op": []},  # empty op
        {"txid": "a", "op": "set"},  # not an array
        {"txid": "a", "op": ["shutdown"]},  # unknown kind
    ):
        with pytest.raises(ProtocolError):
            parse_transaction(bad)


def test_websocket_accept_value_matches_rfc6455_example():
    # The worked example from RFC 6455 §1.3.
    assert (
        websocket_accept_value("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


# -- HTTP routes --------------------------------------------------------------


def test_submit_accepts_and_tracks_until_quorum_commit():
    async def scenario():
        server, service, pool = await _started_server(rate=1000.0, burst=1000.0)
        client = HTTPClient(server.host, server.port)
        accepted = await client.request(
            "POST", "/v1/transactions", payload=_submission(0), headers={"x-client-id": "a"}
        )
        assert accepted.status == 202
        assert accepted.json()["status"] == "pending"
        pending = await client.request("GET", "/v1/transactions/t0")
        assert pending.status == 200 and pending.json()["status"] == "pending"
        _commit(service, "t0", slot=4)
        committed = await client.request("GET", "/v1/transactions/t0")
        body = committed.json()
        assert body["status"] == "committed" and body["slot"] == 4
        unknown = await client.request("GET", "/v1/transactions/nope")
        assert unknown.status == 404
        assert unknown.json()["error"]["code"] == "unknown_txid"
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)


def test_rate_limited_submission_gets_429_with_retry_after_header():
    async def scenario():
        server, service, _pool = await _started_server(rate=10.0, burst=2.0)
        client = HTTPClient(server.host, server.port)
        headers = {"x-client-id": "burster"}
        for i in range(2):
            response = await client.request(
                "POST", "/v1/transactions", payload=_submission(i), headers=headers
            )
            assert response.status == 202
        rejected = await client.request(
            "POST", "/v1/transactions", payload=_submission(2), headers=headers
        )
        assert rejected.status == 429
        assert rejected.json()["error"]["code"] == "rate_limited"
        # Burst 2 spent instantly at rate 10/s: one token is 0.1 s out.
        assert float(rejected.headers["retry-after"]) == pytest.approx(0.1)
        # Another client is not collateral damage.
        other = await client.request(
            "POST", "/v1/transactions", payload=_submission(3), headers={"x-client-id": "b"}
        )
        assert other.status == 202
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)


def test_structured_errors_for_duplicate_capacity_and_bad_json():
    async def scenario():
        server, service, _pool = await _started_server(
            rate=1000.0, burst=1000.0, max_clients=1
        )
        client = HTTPClient(server.host, server.port)
        headers = {"x-client-id": "only"}
        first = await client.request(
            "POST", "/v1/transactions", payload=_submission(0), headers=headers
        )
        assert first.status == 202
        duplicate = await client.request(
            "POST", "/v1/transactions", payload=_submission(0), headers=headers
        )
        assert duplicate.status == 409
        assert duplicate.json()["error"]["code"] == "duplicate_txid"
        # The gateway is at its 1-client capacity: a new identity is refused.
        denied = await client.request(
            "POST", "/v1/transactions", payload=_submission(1), headers={"x-client-id": "new"}
        )
        assert denied.status == 503
        assert denied.json()["error"]["code"] == "client_capacity"
        bad = await client.request(
            "POST", "/v1/transactions", payload=["not", "an", "object"], headers=headers
        )
        assert bad.status == 400
        assert bad.json()["error"]["code"] == "bad_request"
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)


def test_state_chain_health_and_metrics_routes():
    async def scenario():
        server, service, _pool = await _started_server()
        client = HTTPClient(server.host, server.port)
        # Before any snapshot the read path reports 503, not a crash.
        unavailable = await client.request("GET", "/v1/state/x")
        assert unavailable.status == 503
        assert unavailable.json()["error"]["code"] == "snapshot_unavailable"
        chain = _chain(("set", "x", 41), ("incr", "x", 1))
        service.ingest_snapshots({i: _reply(i, chain) for i in range(3)})
        found = await client.request("GET", "/v1/state/x")
        body = found.json()
        assert found.status == 200
        assert body["value"] == 42 and body["supported_by"] == 3
        missing = await client.request("GET", "/v1/state/ghost")
        assert missing.status == 404
        assert missing.json()["error"]["code"] == "unknown_key"
        history = await client.request("GET", "/v1/chain")
        assert history.status == 200 and history.json()["height"] == 2
        health = await client.request("GET", "/v1/health")
        assert health.status == 200 and health.json()["status"] == "ok"
        metrics = await client.request("GET", "/v1/metrics")
        assert metrics.status == 200 and "submitted" in metrics.json()
        nothing = await client.request("GET", "/v1/nowhere")
        assert nothing.status == 404
        wrong_verb = await client.request("GET", "/v1/transactions")
        assert wrong_verb.status == 405
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)


def test_cluster_metrics_route_serves_the_scrape():
    async def scenario():
        server, service, pool = await _started_server()
        pool.canned_scrapes = {
            node_id: MetricsReply(
                node_id=node_id,
                items=(("consensus.commits", 5.0), ("storage.fsyncs", 2.0)),
                events=1,
            )
            for node_id in range(4)
        }
        client = HTTPClient(server.host, server.port)
        view = await client.request("GET", "/v1/cluster/metrics")
        assert view.status == 200
        body = view.json()
        assert sorted(body["replicas"]) == ["0", "1", "2", "3"]
        assert body["replicas"]["0"]["metrics"]["consensus.commits"] == 5.0
        assert "gateway.submitted" in body["gateway"]
        wrong_verb = await client.request("POST", "/v1/cluster/metrics", payload={})
        assert wrong_verb.status == 405
        # A dead cluster is a 503 with a structured error, not a crash.
        pool.scrape_error = OSError("no replicas")
        down = await client.request("GET", "/v1/cluster/metrics")
        assert down.status == 503
        assert down.json()["error"]["code"] == "scrape_failed"
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)


# -- WebSocket subscription ---------------------------------------------------


def test_ws_subscriber_streams_commit_events():
    async def scenario():
        server, service, _pool = await _started_server(rate=1000.0, burst=1000.0)
        http = HTTPClient(server.host, server.port)
        ws = WSClient(server.host, server.port)
        await ws.connect()
        await http.request(
            "POST", "/v1/transactions", payload=_submission(0), headers={"x-client-id": "a"}
        )
        _commit(service, "t0", slot=6)
        event = await asyncio.wait_for(ws.next_json(), timeout=5.0)
        assert event["type"] == "commit"
        assert event["txid"] == "t0" and event["slot"] == 6
        ws.close()
        http.close()
        await asyncio.sleep(0.05)  # let the handler observe the close
        await service.stop()
        await server.stop()

    run(scenario)


def test_ws_slow_consumer_is_closed_with_1013():
    async def scenario():
        server, service, _pool = await _started_server(
            rate=1000.0, burst=1000.0, subscriber_queue=2
        )
        http = HTTPClient(server.host, server.port)
        ws = WSClient(server.host, server.port)
        await ws.connect()
        await asyncio.sleep(0.05)  # subscription registered
        for i in range(8):
            await http.request(
                "POST",
                "/v1/transactions",
                payload=_submission(i),
                headers={"x-client-id": "a"},
            )
        # Commit all 8 without yielding: the server's event-writer task
        # never gets a turn, so the burst floods the subscription queue
        # (depth 2) in one scheduling slice — deterministic overflow.
        for i in range(8):
            _commit(service, f"t{i}")
        assert service.counters["subscribers_evicted"] == 1
        # Drain what was delivered; the stream must end in a 1013 close.
        while await asyncio.wait_for(ws.next_json(), timeout=5.0) is not None:
            pass
        assert ws.close_code == 1013
        assert ws.close_reason == "slow consumer"
        assert service.subscriptions == []
        ws.close()
        http.close()
        await service.stop()
        await server.stop()

    run(scenario)


# -- deprecated bare-path aliases ---------------------------------------------


def test_alias_to_v1_mapping():
    assert alias_to_v1("/transactions") == "/v1/transactions"
    assert alias_to_v1("/transactions/t1") == "/v1/transactions/t1"
    assert alias_to_v1("/state/k") == "/v1/state/k"
    assert alias_to_v1("/health") == "/v1/health"
    assert alias_to_v1("/v1/health") is None  # already versioned
    assert alias_to_v1("/nope") is None
    assert alias_to_v1("/statements") is None  # prefix, not a path segment


def test_bare_paths_alias_to_v1_with_deprecation_header():
    async def scenario():
        server, service, pool = await _started_server(rate=1000.0, burst=1000.0)
        client = HTTPClient(server.host, server.port)
        accepted = await client.request(
            "POST", "/transactions", payload=_submission(0), headers={"x-client-id": "a"}
        )
        assert accepted.status == 202
        assert accepted.headers.get("deprecation") == "true"
        # Byte-equal payload to the versioned route, header aside.
        versioned = await client.request("GET", "/v1/transactions/t0")
        bare = await client.request("GET", "/transactions/t0")
        assert bare.status == versioned.status == 200
        assert bare.json() == versioned.json()
        assert bare.headers.get("deprecation") == "true"
        assert "deprecation" not in versioned.headers
        for path in ("/chain", "/health", "/metrics"):
            versioned_twin = await client.request("GET", "/v1" + path)
            response = await client.request("GET", path)
            assert response.status == versioned_twin.status, path
            assert response.json() == versioned_twin.json(), path
            assert response.headers.get("deprecation") == "true", path
            assert "deprecation" not in versioned_twin.headers, path
        # Errors on an aliased path carry the header too (no snapshot
        # ingested in this stub setup, so the read is a 503).
        missing = await client.request("GET", "/state/absent")
        assert missing.status == 503
        assert missing.json()["error"]["code"] == "snapshot_unavailable"
        assert missing.headers.get("deprecation") == "true"
        # Unknown bare paths stay plain 404s, no alias involved.
        unknown = await client.request("GET", "/nope")
        assert unknown.status == 404
        assert "deprecation" not in unknown.headers
        client.close()
        await service.stop()
        await server.stop()

    run(scenario)
