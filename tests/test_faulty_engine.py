"""Unit tests for the engine-layer Byzantine wrapper.

Covers the contract the campaign subsystem rests on: the
:class:`FaultyEngine` filters exactly the traffic its deviation says
(silence drops everything, withholding drops only votes, a scheduled
crash is dark exactly inside its window), equivocation mints consistent
conflicting twins, the factory combinator wraps only the f-bounded
faulty set, and — the property CI pins — a fixed (attack, seed) pair
reproduces byte-identical traces and state digests run over run.
"""

from __future__ import annotations

import pytest

from repro.adversary.faulty_engine import (
    ATTACK_NAMES,
    ATTACKS,
    Equivocate,
    FaultyEngine,
    ScheduledCrash,
    Silence,
    faulty_factory,
)
from repro.core import ProtocolConfig
from repro.multishot.block import Block, BlockStore
from repro.multishot.messages import MSProposal, MSViewChange, MSVote
from repro.multishot.node import MultiShotConfig
from repro.sim import Simulation, SynchronousDelays
from repro.sim.trace import TraceKind
from repro.smr import Replica, Transaction, engine_factory
from repro.smr.engine import multishot_engine
from repro.verification import SafetyAuditor


def run_attacked_cluster(
    attack: str,
    engine: str = "tetrabft",
    n: int = 4,
    faulty_id: int = 1,
    txns: int = 20,
    batch: int = 10,
    seed: int = 0,
    trace: bool = False,
):
    """One attacked SMR run; returns (replicas, sim, honest ids)."""
    base = ProtocolConfig.create(n)
    max_slots = txns // batch + 40 if engine == "tetrabft" else None
    deviation = ATTACKS[attack]
    factory = faulty_factory(
        engine_factory(engine, base, max_slots=max_slots),
        lambda node_id: deviation(node_id, base, seed),
        [faulty_id],
    )
    sim = Simulation(SynchronousDelays(1.0), trace_enabled=trace)
    replicas = [Replica(i, max_batch=batch, engine_factory=factory) for i in range(n)]
    sim.add_nodes(list(replicas))
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("set", f"key-{k % 5}", k)))
    honest = [i for i in range(n) if i != faulty_id]

    def all_done() -> bool:
        return all(replicas[i].store.applied_count >= txns for i in honest)

    sim.run(until=150.0, stop_when=all_done, stop_check_interval=16)
    return replicas, sim, honest


def sends_from(sim: Simulation, node: int) -> list:
    return sim.trace.events(kind=TraceKind.SEND, node=node)


def message_names(events) -> set[str]:
    return {dict(event.detail)["msg"] for event in events}


# -- message filtering ---------------------------------------------------------


def test_silence_sends_nothing_and_cluster_stays_live():
    replicas, sim, honest = run_attacked_cluster("silence", trace=True)
    assert sends_from(sim, 1) == []
    for i in honest:
        assert replicas[i].store.applied_count == 20


def test_withhold_drops_votes_but_nothing_else():
    replicas, sim, honest = run_attacked_cluster("withhold", trace=True)
    names = message_names(sends_from(sim, 1))
    assert "MSVote" not in names
    assert names  # proposals / view changes still flow: not a crash
    for i in honest:
        assert replicas[i].store.applied_count == 20


def test_scheduled_crash_is_dark_exactly_inside_its_window():
    base = ProtocolConfig.create(4)
    config = MultiShotConfig(base=base, max_slots=30)
    inner = multishot_engine(config)
    factory = faulty_factory(
        inner, lambda node_id: ScheduledCrash(crash_at=5.0, recover_at=40.0), [2]
    )
    sim = Simulation(SynchronousDelays(1.0), trace_enabled=True)
    replicas = [Replica(i, max_batch=5, engine_factory=factory) for i in range(4)]
    sim.add_nodes(list(replicas))
    for k in range(20):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("incr", "k", 1)))
    sim.run(until=60.0)
    times = [event.time for event in sends_from(sim, 2)]
    assert times, "node 2 must participate before the crash"
    assert all(t < 5.0 or t >= 40.0 for t in times)
    assert any(t < 5.0 for t in times)


def test_faulty_factory_wraps_only_the_faulty_set():
    base = ProtocolConfig.create(4)
    factory = faulty_factory(engine_factory("tetrabft", base), lambda node_id: Silence(), [0, 3])
    engines = [factory(i, lambda s, p: None, lambda b: None) for i in range(4)]
    assert isinstance(engines[0], FaultyEngine)
    assert isinstance(engines[3], FaultyEngine)
    assert not isinstance(engines[1], FaultyEngine)
    assert not isinstance(engines[2], FaultyEngine)


def test_attack_registry_covers_every_family():
    assert set(ATTACK_NAMES) == {
        "silence", "crash", "equivocate", "withhold", "fabricate", "chaos",
    }
    base = ProtocolConfig.create(4)
    for name, build in ATTACKS.items():
        deviation = build(1, base, 7)
        assert hasattr(deviation, "outbound"), name


# -- equivocation --------------------------------------------------------------


class _StubEngine:
    """Just enough FaultyEngine surface for outbound-hook unit tests."""

    def __init__(self) -> None:
        self.store = BlockStore()


def test_equivocate_splits_proposals_into_consistent_halves():
    config = ProtocolConfig.create(4)
    deviation = Equivocate(1, config)
    deviation.engine = _StubEngine()
    block = Block.create(1, "genesis", ("payload",))
    deliveries = deviation.outbound(None, MSProposal(1, 0, block))
    assert len(deliveries) == 4
    by_node = {dst: msg for dst, msg in deliveries}
    assert set(by_node) == {0, 1, 2, 3}
    low = {by_node[0].block.digest, by_node[1].block.digest}
    high = {by_node[2].block.digest, by_node[3].block.digest}
    assert low == {block.digest}
    assert len(high) == 1 and high != low
    twin = by_node[2].block
    assert twin.slot == block.slot and twin.parent == block.parent

    # Votes for either lineage translate through the twin cache, so
    # each half keeps seeing a consistent world.
    vote_deliveries = deviation.outbound(None, MSVote(1, 0, block.digest))
    votes = {dst: msg.digest for dst, msg in vote_deliveries}
    assert votes[0] == block.digest and votes[3] == twin.digest


def test_equivocate_passes_through_unrelated_traffic():
    config = ProtocolConfig.create(4)
    deviation = Equivocate(1, config)
    deviation.engine = _StubEngine()
    assert deviation.outbound(None, MSViewChange(2, 1)) == [(None, MSViewChange(2, 1))]
    # Directed sends are never split (halving targets a broadcast).
    block = Block.create(1, "genesis", ())
    assert deviation.outbound(2, MSProposal(1, 0, block)) == [(2, MSProposal(1, 0, block))]


def test_equivocating_leader_cannot_fork_the_cluster():
    replicas, sim, honest = run_attacked_cluster("equivocate")
    report = SafetyAuditor(expected_txns=20).audit([replicas[i] for i in honest])
    assert report.safe, report.violations
    assert report.live, report.violations
    digests = {replicas[i].state_digest() for i in honest}
    assert len(digests) == 1


# -- determinism ---------------------------------------------------------------


@pytest.mark.parametrize("attack", ATTACK_NAMES)
def test_same_seed_gives_byte_identical_traces(attack):
    """The property the campaign's reproducibility rests on: a fixed
    (attack, seed) pair replays the exact same run — every send, drop,
    timer and finalization — and lands in the same state."""
    first_replicas, first_sim, honest = run_attacked_cluster(attack, seed=3, trace=True)
    second_replicas, second_sim, _ = run_attacked_cluster(attack, seed=3, trace=True)
    assert list(first_sim.trace) == list(second_sim.trace)
    assert [r.state_digest() for r in first_replicas] == [r.state_digest() for r in second_replicas]


def test_different_chaos_seeds_diverge():
    """The seed actually feeds the randomness (no vacuous determinism)."""
    _, first_sim, _ = run_attacked_cluster("chaos", seed=1, trace=True)
    _, second_sim, _ = run_attacked_cluster("chaos", seed=2, trace=True)
    assert list(first_sim.trace) != list(second_sim.trace)


def test_chained_engine_under_equivocation_stays_safe():
    """The wrapper is engine-generic: a chained baseline under the same
    equivocation keeps agreement (catch-up included)."""
    replicas, sim, honest = run_attacked_cluster("equivocate", engine="pbft")
    report = SafetyAuditor(expected_txns=20).audit([replicas[i] for i in honest])
    assert report.safe, report.violations
    assert report.live, report.violations
