"""Typed-config contract: the old ``REPRO_*`` env vars, byte for byte.

:mod:`repro.config` replaced the scattered ``os.environ`` lookups; the
contract it must honor is that every historical spelling of every knob
parses to exactly the behavior the inline lookups produced — including
the inconsistencies (flags accept ``1``/``true``/``yes`` any-case;
``REPRO_HEAVY`` is plain truthiness of a non-empty string).  The cache
must also track in-process env mutation, because the ablation harness
and these very tests monkeypatch variables mid-run.
"""

from __future__ import annotations

import pytest

from repro.config import (
    DEFAULT_SNAPSHOT_INTERVAL,
    DEFAULT_WAL_FSYNC_WINDOW,
    ReproConfig,
    repro_config,
)
from repro.errors import ConfigurationError
from repro.multishot.batching import (
    MAX_BATCH,
    AdaptiveBatchPolicy,
    FixedBatchPolicy,
    batch_policy_from_env,
    batching_enabled,
)
from repro.net.transport import delay_enabled

_ALL_KEYS = (
    "REPRO_NO_BATCH",
    "REPRO_NO_DELAY",
    "REPRO_NO_UVLOOP",
    "REPRO_BATCH_POLICY",
    "REPRO_HEAVY",
    "REPRO_DATA_DIR",
    "REPRO_WAL_FSYNC_WINDOW",
    "REPRO_SNAPSHOT_INTERVAL",
    "REPRO_NO_OBS",
    "REPRO_EVENT_LOG",
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    """Every test starts from a fully unset REPRO_* environment."""
    for key in _ALL_KEYS:
        monkeypatch.delenv(key, raising=False)


def test_defaults_with_nothing_set():
    config = repro_config()
    assert config == ReproConfig()
    assert not config.no_batch and not config.no_delay and not config.no_uvloop
    assert config.batch_policy == "" and not config.heavy
    assert config.data_dir is None
    assert config.wal_fsync_window == DEFAULT_WAL_FSYNC_WINDOW
    assert config.snapshot_interval == DEFAULT_SNAPSHOT_INTERVAL


@pytest.mark.parametrize("raw", ["1", "true", "TRUE", "yes", "Yes"])
def test_flag_spellings_that_enable(monkeypatch, raw):
    """The historical tri-spelling parse, any case."""
    for key, attr in (
        ("REPRO_NO_BATCH", "no_batch"),
        ("REPRO_NO_DELAY", "no_delay"),
        ("REPRO_NO_UVLOOP", "no_uvloop"),
    ):
        monkeypatch.setenv(key, raw)
        assert getattr(repro_config(), attr) is True
        monkeypatch.delenv(key)


@pytest.mark.parametrize("raw", ["", "0", "false", "no", "on", "2", "enabled"])
def test_flag_spellings_that_do_not_enable(monkeypatch, raw):
    """Anything outside the three spellings is off — exactly as the
    inline ``in ("1", "true", "yes")`` checks behaved."""
    monkeypatch.setenv("REPRO_NO_BATCH", raw)
    assert repro_config().no_batch is False


def test_heavy_is_plain_truthiness(monkeypatch):
    """``REPRO_HEAVY`` historically used ``os.environ.get(...)`` as a
    bare truth test: any non-empty string counts, even ``0``."""
    assert repro_config().heavy is False
    monkeypatch.setenv("REPRO_HEAVY", "0")
    assert repro_config().heavy is True
    monkeypatch.setenv("REPRO_HEAVY", "")
    assert repro_config().heavy is False


def test_cache_tracks_env_mutation(monkeypatch):
    assert repro_config().no_delay is False
    first = repro_config()
    assert repro_config() is first  # unchanged env: cached object
    monkeypatch.setenv("REPRO_NO_DELAY", "1")
    assert repro_config().no_delay is True
    monkeypatch.delenv("REPRO_NO_DELAY")
    assert repro_config().no_delay is False


# -- consumer equivalence -----------------------------------------------------


def test_batching_enabled_consumes_the_config(monkeypatch):
    assert batching_enabled() is True
    monkeypatch.setenv("REPRO_NO_BATCH", "yes")
    assert batching_enabled() is False


def test_delay_enabled_consumes_the_config(monkeypatch):
    assert delay_enabled() is True
    monkeypatch.setenv("REPRO_NO_DELAY", "true")
    assert delay_enabled() is False


def test_batch_policy_selection(monkeypatch):
    assert isinstance(batch_policy_from_env(), AdaptiveBatchPolicy)
    monkeypatch.setenv("REPRO_BATCH_POLICY", "adaptive")
    assert isinstance(batch_policy_from_env(), AdaptiveBatchPolicy)
    monkeypatch.setenv("REPRO_BATCH_POLICY", "  Fixed  ")  # historical strip+lower
    policy = batch_policy_from_env()
    assert isinstance(policy, FixedBatchPolicy) and policy.limit == MAX_BATCH
    monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed:5")
    assert batch_policy_from_env().limit == 5
    monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed:x")
    with pytest.raises(ConfigurationError, match="needs an integer"):
        batch_policy_from_env()
    monkeypatch.setenv("REPRO_BATCH_POLICY", "turbo")
    with pytest.raises(ConfigurationError, match="unknown REPRO_BATCH_POLICY"):
        batch_policy_from_env()


# -- durability knobs ---------------------------------------------------------


def test_durability_knobs(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_DIR", "/tmp/somewhere")
    monkeypatch.setenv("REPRO_WAL_FSYNC_WINDOW", "0.25")
    monkeypatch.setenv("REPRO_SNAPSHOT_INTERVAL", "7")
    config = repro_config()
    assert config.data_dir == "/tmp/somewhere"
    assert config.wal_fsync_window == 0.25
    assert config.snapshot_interval == 7


def test_empty_data_dir_means_unset(monkeypatch):
    monkeypatch.setenv("REPRO_DATA_DIR", "")
    assert repro_config().data_dir is None


@pytest.mark.parametrize(
    ("key", "raw", "match"),
    [
        ("REPRO_WAL_FSYNC_WINDOW", "soon", "needs a float"),
        ("REPRO_WAL_FSYNC_WINDOW", "-0.1", "must be >= 0"),
        ("REPRO_SNAPSHOT_INTERVAL", "many", "needs an integer"),
        ("REPRO_SNAPSHOT_INTERVAL", "0", "must be >= 1"),
    ],
)
def test_bad_durability_values_are_configuration_errors(monkeypatch, key, raw, match):
    monkeypatch.setenv(key, raw)
    with pytest.raises(ConfigurationError, match=match):
        repro_config()


def test_from_env_accepts_explicit_mapping():
    config = ReproConfig.from_env({"REPRO_NO_BATCH": "1", "REPRO_SNAPSHOT_INTERVAL": "3"})
    assert config.no_batch is True and config.snapshot_interval == 3


# -- observability knobs ------------------------------------------------------


@pytest.mark.parametrize("raw", ["1", "true", "yes", "TRUE"])
def test_obs_flags_enable_with_the_tri_spelling(monkeypatch, raw):
    """``REPRO_NO_OBS`` / ``REPRO_EVENT_LOG`` parse like every other
    flag — and both participate in the cache fingerprint, so replica
    subprocesses that mutate env re-parse them."""
    monkeypatch.setenv("REPRO_NO_OBS", raw)
    monkeypatch.setenv("REPRO_EVENT_LOG", raw)
    config = repro_config()
    assert config.no_obs is True and config.event_log is True


def test_obs_flags_default_off(monkeypatch):
    config = repro_config()
    assert config.no_obs is False and config.event_log is False
    monkeypatch.setenv("REPRO_NO_OBS", "0")
    assert repro_config().no_obs is False


def test_obs_flags_track_env_mutation(monkeypatch):
    assert repro_config().event_log is False
    monkeypatch.setenv("REPRO_EVENT_LOG", "1")
    assert repro_config().event_log is True
    monkeypatch.delenv("REPRO_EVENT_LOG")
    assert repro_config().event_log is False
