"""Property-based end-to-end tests on the real protocol stack.

Hypothesis drives the *environment* — delay distributions, GST, loss
rates, which node is Byzantine and how — while the assertions are the
paper's Definition 1 / Definition 2 properties.  Any failure shrinks to
a seed tuple that replays deterministically.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary import ChaosMonkey, EquivocatingLeader, SilentNode
from repro.core import ProtocolConfig, TetraBFTNode
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.sim import PartialSynchronyPolicy, Simulation, UniformRandomDelays


@given(
    seed=st.integers(0, 10_000),
    gst=st.floats(0.0, 60.0),
    loss=st.floats(0.0, 0.95),
)
@settings(max_examples=25, deadline=None)
def test_singleshot_agreement_and_termination_under_partial_synchrony(seed, gst, loss):
    policy = PartialSynchronyPolicy(gst=gst, delta=1.0, loss_before_gst=loss, seed=seed)
    config = ProtocolConfig.create(4)
    sim = Simulation(policy)
    for i in range(4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    sim.run_until_all_decided(until=gst + 400)
    latency = sim.metrics.latency
    assert latency.all_decided([0, 1, 2, 3]), "termination violated after GST"
    assert len(latency.decided_values()) == 1, "agreement violated"


@given(
    seed=st.integers(0, 10_000),
    byz_kind=st.sampled_from(["silent", "equivocator", "chaos"]),
    byz_id=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_singleshot_agreement_with_byzantine_node(seed, byz_kind, byz_id):
    config = ProtocolConfig.create(4)
    policy = UniformRandomDelays(0.2, 1.0, seed=seed)
    sim = Simulation(policy)
    for i in range(4):
        if i != byz_id:
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        elif byz_kind == "silent":
            sim.add_node(SilentNode(i))
        elif byz_kind == "equivocator":
            sim.add_node(EquivocatingLeader(i, config, "eA", "eB"))
        else:
            sim.add_node(ChaosMonkey(i, config, values=["eA", "val-1", "junk"], seed=seed))
    honest = [i for i in range(4) if i != byz_id]
    sim.run_until_all_decided(node_ids=honest, until=1200)
    latency = sim.metrics.latency
    assert latency.all_decided(honest), "honest node failed to terminate"
    assert len({latency.decision_values[i] for i in honest}) == 1


@given(seed=st.integers(0, 10_000), gst=st.floats(0.0, 30.0))
@settings(max_examples=15, deadline=None)
def test_multishot_consistency_under_partial_synchrony(seed, gst):
    policy = PartialSynchronyPolicy(gst=gst, delta=1.0, loss_before_gst=0.6, seed=seed)
    config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=8)
    sim = Simulation(policy)
    for i in range(4):
        sim.add_node(MultiShotNode(i, config))
    sim.run(until=gst + 400)
    chains = [[b.digest for b in sim.nodes[i].finalized_chain] for i in range(4)]
    reference = max(chains, key=len)
    for chain in chains:
        assert reference[: len(chain)] == chain, "multishot consistency violated"
    assert len(reference) >= 4, "no multishot progress after GST"


@given(seed=st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_storage_constant_regardless_of_schedule(seed):
    """The Table 1 storage claim as a property: the persistent state of
    every honest node is the same fixed size under any schedule."""
    policy = UniformRandomDelays(0.1, 1.0, seed=seed)
    config = ProtocolConfig.create(4)
    sim = Simulation(policy)
    for i in range(4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    sim.run_until_all_decided(until=500)
    sizes = {size for samples in sim.metrics.storage.samples.values() for size in samples}
    assert len(sizes) <= 1


@given(n=st.sampled_from([4, 7, 10]), seed=st.integers(0, 1000))
@settings(max_examples=12, deadline=None)
def test_good_case_latency_is_always_five_delays(n, seed):
    """Determinism + the headline claim, across system sizes (the seed
    feeds an irrelevant RNG consumer to vary hypothesis's search)."""
    del seed
    config = ProtocolConfig.create(n)
    sim = Simulation()
    for i in range(n):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    sim.run_until_all_decided(until=100)
    assert sim.metrics.latency.max_decision_time() == 5.0
