"""Unit tests for the TetraBFTNode state machine, driven by a FakeContext.

These verify the §3.2 view-evolution mechanics message by message: what
the node sends at view entry, when it casts each vote phase, how it
handles equivocation and misrouted messages, and the view-change rules.
"""

from __future__ import annotations

import pytest

from repro.core import (
    Phase,
    Proof,
    Proposal,
    ProtocolConfig,
    Suggest,
    TetraBFTNode,
    ViewChange,
    Vote,
)
from tests.conftest import FakeContext


def make_node(node_id: int = 1, n: int = 4) -> tuple[TetraBFTNode, FakeContext]:
    config = ProtocolConfig.create(n)
    node = TetraBFTNode(node_id, config, initial_value=f"init-{node_id}")
    ctx = FakeContext(node_id)
    node.start(ctx)
    return node, ctx


def feed_votes(node: TetraBFTNode, phase: Phase, view: int, value, senders):
    for sender in senders:
        node.receive(sender, Vote(phase, view, value))


class TestViewZero:
    def test_leader_of_view_zero_proposes_initial_value_immediately(self):
        node, ctx = make_node(node_id=0)  # round-robin: node 0 leads view 0
        proposals = ctx.messages_of(Proposal)
        assert proposals == [Proposal(0, "init-0")]

    def test_follower_sends_nothing_at_view_zero_entry(self):
        node, ctx = make_node(node_id=1)
        assert ctx.broadcasts == []
        assert ctx.sent == []

    def test_follower_votes1_on_proposal_without_proofs(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "v"))
        assert ctx.messages_of(Vote) == [Vote(Phase.VOTE1, 0, "v")]

    def test_proposal_from_non_leader_ignored(self):
        node, ctx = make_node(node_id=1)
        node.receive(2, Proposal(0, "evil"))
        assert ctx.messages_of(Vote) == []

    def test_vote_pipeline_advances_on_quorums(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "v"))
        feed_votes(node, Phase.VOTE1, 0, "v", [0, 2, 3])
        assert Vote(Phase.VOTE2, 0, "v") in ctx.messages_of(Vote)
        feed_votes(node, Phase.VOTE2, 0, "v", [0, 2, 3])
        assert Vote(Phase.VOTE3, 0, "v") in ctx.messages_of(Vote)
        feed_votes(node, Phase.VOTE3, 0, "v", [0, 2, 3])
        assert Vote(Phase.VOTE4, 0, "v") in ctx.messages_of(Vote)

    def test_subquorum_does_not_advance(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "v"))
        feed_votes(node, Phase.VOTE1, 0, "v", [0, 2])  # only 2 < 3
        assert Vote(Phase.VOTE2, 0, "v") not in ctx.messages_of(Vote)

    def test_vote2_does_not_require_own_vote1(self):
        """Per the TLA+ spec, a quorum of vote-1 suffices for vote-2
        even if this node never cast vote-1 (e.g. it missed the
        proposal)."""
        node, ctx = make_node(node_id=1)
        feed_votes(node, Phase.VOTE1, 0, "v", [0, 2, 3])
        assert Vote(Phase.VOTE2, 0, "v") in ctx.messages_of(Vote)
        assert Vote(Phase.VOTE1, 0, "v") not in ctx.messages_of(Vote)

    def test_decision_on_vote4_quorum(self):
        node, ctx = make_node(node_id=1)
        feed_votes(node, Phase.VOTE4, 0, "v", [0, 2, 3])
        assert node.decided and node.decided_value == "v"
        assert ctx.decisions == ["v"]

    def test_votes_split_across_values_never_reach_quorum(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "v"))
        feed_votes(node, Phase.VOTE1, 0, "a", [0, 2])
        feed_votes(node, Phase.VOTE1, 0, "b", [3])
        assert Vote(Phase.VOTE2, 0, "a") not in ctx.messages_of(Vote)
        assert Vote(Phase.VOTE2, 0, "b") not in ctx.messages_of(Vote)

    def test_duplicate_votes_from_one_sender_count_once(self):
        node, ctx = make_node(node_id=1)
        for _ in range(5):
            node.receive(0, Vote(Phase.VOTE1, 0, "v"))
            node.receive(2, Vote(Phase.VOTE1, 0, "v"))
        assert Vote(Phase.VOTE2, 0, "v") not in ctx.messages_of(Vote)

    def test_equivocating_leader_first_proposal_wins(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "first"))
        node.receive(0, Proposal(0, "second"))
        votes = ctx.messages_of(Vote)
        assert votes == [Vote(Phase.VOTE1, 0, "first")]


class TestViewChange:
    def test_timeout_broadcasts_view_change(self):
        node, ctx = make_node(node_id=1)
        ctx.advance(node.config.view_timeout)
        ctx.fire_timers()
        assert ViewChange(1) in ctx.broadcasts

    def test_blocking_set_echo(self):
        """f+1 view-change messages for a view are amplified."""
        node, ctx = make_node(node_id=1)
        node.receive(2, ViewChange(3))
        assert ViewChange(3) not in ctx.broadcasts
        node.receive(3, ViewChange(3))
        assert ViewChange(3) in ctx.broadcasts

    def test_no_echo_after_higher_vc_sent(self):
        node, ctx = make_node(node_id=1)
        node.receive(2, ViewChange(5))
        node.receive(3, ViewChange(5))
        assert ViewChange(5) in ctx.broadcasts
        node.receive(2, ViewChange(3))
        node.receive(3, ViewChange(3))
        assert ViewChange(3) not in ctx.broadcasts

    def test_quorum_enters_view_and_sends_history(self):
        node, ctx = make_node(node_id=1)
        for sender in (0, 2, 3):
            node.receive(sender, ViewChange(1))
        assert node.view == 1
        assert ctx.view_entries[-1] == 1
        proofs = ctx.messages_of(Proof)
        assert len(proofs) == 1 and proofs[0].view == 1
        # Suggest goes to the leader of view 1 (node 1 itself here —
        # round-robin — so it appears in sent addressed to self).
        suggests = [m for _, m in ctx.sent if isinstance(m, Suggest)]
        assert len(suggests) == 1 and suggests[0].view == 1

    def test_vc_for_current_or_lower_view_ignored(self):
        node, ctx = make_node(node_id=1)
        for sender in (0, 2, 3):
            node.receive(sender, ViewChange(0))
        assert node.view == 0

    def test_new_leader_proposes_after_suggest_quorum(self):
        node, ctx = make_node(node_id=1)  # leader of view 1
        for sender in (0, 2, 3):
            node.receive(sender, ViewChange(1))
        assert node.view == 1
        # Fresh suggests report empty histories: Rule 1 item 2a.
        for sender in (0, 2, 3):
            node.receive(sender, Suggest(view=1))
        proposals = ctx.messages_of(Proposal)
        assert Proposal(1, "init-1") in proposals

    def test_follower_requires_rule3_in_later_views(self):
        node, ctx = make_node(node_id=2)
        for sender in (0, 1, 3):
            node.receive(sender, ViewChange(1))
        node.receive(1, Proposal(1, "v"))  # leader of view 1 is node 1
        assert ctx.messages_of(Vote) == []  # no proofs yet
        for sender in (0, 1, 3):
            node.receive(sender, Proof(view=1))
        assert Vote(Phase.VOTE1, 1, "v") in ctx.messages_of(Vote)

    def test_messages_for_future_views_are_buffered(self):
        node, ctx = make_node(node_id=2)
        node.receive(1, Proposal(1, "future"))  # view 1 > current 0
        assert ctx.messages_of(Vote) == []
        for sender in (0, 1, 3):
            node.receive(sender, ViewChange(1))
        for sender in (0, 1, 3):
            node.receive(sender, Proof(view=1))
        # The buffered proposal is replayed on entry and voted.
        assert Vote(Phase.VOTE1, 1, "future") in ctx.messages_of(Vote)

    def test_stale_votes_for_older_views_dropped(self):
        node, ctx = make_node(node_id=1)
        for sender in (0, 2, 3):
            node.receive(sender, ViewChange(2))
        assert node.view == 2
        feed_votes(node, Phase.VOTE1, 0, "v", [0, 2, 3])
        assert Vote(Phase.VOTE2, 0, "v") not in ctx.messages_of(Vote)


class TestDecisionDissemination:
    def test_cross_view_vote4_ledger_decides_laggard(self):
        """A node far behind still decides from a quorum of vote-4 for
        an old view (decision dissemination, see node.py docstring)."""
        node, ctx = make_node(node_id=1)
        for sender in (0, 2, 3):
            node.receive(sender, ViewChange(4))
        assert node.view == 4
        feed_votes(node, Phase.VOTE4, 2, "old", [0, 2, 3])
        assert node.decided and node.decided_value == "old"

    def test_decided_node_keeps_participating_in_view_changes(self):
        node, ctx = make_node(node_id=1)
        feed_votes(node, Phase.VOTE4, 0, "v", [0, 2, 3])
        assert node.decided
        ctx.advance(node.config.view_timeout)
        ctx.fire_timers()
        assert ViewChange(1) in ctx.broadcasts
        # And it also rebroadcasts its vote-4 if it cast one — here it
        # decided from others' votes without voting, so none required.

    def test_conflicting_decision_would_raise(self):
        from repro.errors import ProtocolViolation

        node, ctx = make_node(node_id=1)
        feed_votes(node, Phase.VOTE4, 0, "v", [0, 2, 3])
        with pytest.raises(ProtocolViolation):
            node._decide("different")


class TestHygiene:
    def test_unknown_message_types_ignored(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, "garbage")
        node.receive(0, 12345)
        node.receive(0, None)
        assert ctx.broadcasts == []

    def test_suggest_to_non_leader_ignored(self):
        node, ctx = make_node(node_id=1)  # not leader of view 0
        node.receive(0, Suggest(view=0))
        assert ctx.messages_of(Proposal) == []

    def test_storage_reported_on_votes(self):
        node, ctx = make_node(node_id=1)
        node.receive(0, Proposal(0, "v"))
        assert ctx.storage_reports, "voting must report storage size"
        assert all(size == ctx.storage_reports[0] for size in ctx.storage_reports)
