"""Byzantine behaviour in the multi-shot (pipelined) protocol.

Single-shot Byzantine coverage lives in test_byzantine.py; these
scenarios attack the chain layer specifically: equivocating *block*
proposals (two blocks for one slot), vote equivocation across forks,
and forged per-slot suggest/proof histories during slot view changes.
The asserted property is Definition 2 consistency: correct nodes'
finalized chains never fork, whatever the adversary does.
"""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.multishot import (
    Block,
    GENESIS_DIGEST,
    MSProposal,
    MSViewChange,
    MSVote,
    MultiShotConfig,
    MultiShotNode,
    iter_logical,
)
from repro.quorums.system import NodeId
from repro.sim import (
    NodeContext,
    SimNode,
    Simulation,
    SynchronousDelays,
    UniformRandomDelays,
)


def assert_consistent(sim: Simulation, node_ids: list[int]) -> list[str]:
    chains = [[b.digest for b in sim.nodes[i].finalized_chain] for i in node_ids]
    reference = max(chains, key=len)
    for chain in chains:
        assert reference[: len(chain)] == chain, "finalized chains forked"
    return reference


class EquivocatingBlockProposer(SimNode):
    """When it would lead a slot, sends *different blocks* to each half
    of the network, and echoes every vote it sees for both forks."""

    def __init__(self, node_id: NodeId, config: MultiShotConfig) -> None:
        self.node_id = node_id
        self.config = config
        self._ctx: NodeContext | None = None
        self._proposed: set[tuple[int, int]] = set()
        self._parents: dict[int, str] = {0: GENESIS_DIGEST}

    def _halves(self) -> tuple[list[NodeId], list[NodeId]]:
        ids = self.config.base.node_ids
        return ids[: len(ids) // 2], ids[len(ids) // 2:]

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._maybe_equivocate(1, 0, GENESIS_DIGEST)

    def _maybe_equivocate(self, slot: int, view: int, parent: str) -> None:
        if self._ctx is None or (slot, view) in self._proposed:
            return
        if self.config.leader_of(slot, view) != self.node_id:
            return
        self._proposed.add((slot, view))
        fork_a = Block.create(slot, parent, f"fork-A-{slot}-{view}")
        fork_b = Block.create(slot, parent, f"fork-B-{slot}-{view}")
        half_a, half_b = self._halves()
        for dst in half_a:
            self._ctx.send(dst, MSProposal(slot, view, fork_a))
        for dst in half_b:
            self._ctx.send(dst, MSProposal(slot, view, fork_b))

    def receive(self, sender: NodeId, frame: object) -> None:
        if self._ctx is None:
            return
        # Honest peers batch broadcasts into VoteBatch frames; a real
        # adversary unwraps envelopes like any other receiver.
        for message in iter_logical(frame):
            if isinstance(message, MSProposal):
                # Track lineage so later equivocations extend something real.
                self._parents[message.slot] = message.block.digest
                self._maybe_equivocate(message.slot + 1, message.view, message.block.digest)
            elif isinstance(message, MSVote):
                # Double-vote: echo the vote back to everyone (it is for
                # whichever fork the sender saw; we endorse both).
                self._ctx.broadcast(MSVote(message.slot, message.view, message.digest))
            elif isinstance(message, MSViewChange):
                self._ctx.broadcast(message)
                parent = self._parents.get(message.slot - 1, GENESIS_DIGEST)
                self._maybe_equivocate(message.slot, message.view, parent)


class TestBlockEquivocation:
    @pytest.mark.parametrize("seed", range(6))
    def test_forked_proposals_never_fork_finalized_chains(self, seed):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
        sim = Simulation(UniformRandomDelays(0.3, 1.0, seed=seed))
        # The equivocator leads slots where (slot + view) % 4 == 3.
        sim.add_node(EquivocatingBlockProposer(3, config))
        for i in range(3):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=400)
        reference = assert_consistent(sim, [0, 1, 2])
        # Progress despite the equivocator: the honest slots still chain.
        assert len(reference) >= 4

    def test_synchronous_split_cannot_notarize_both_forks(self):
        """With a clean 2/2 split of a 4-node system, neither fork can
        gather the 3-vote quorum from honest nodes alone, so slot 3
        (the equivocator's) only notarizes via a view-changed retry."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=8)
        sim = Simulation(SynchronousDelays(1.0), trace_enabled=True)
        sim.add_node(EquivocatingBlockProposer(3, config))
        for i in range(3):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=300)
        reference = assert_consistent(sim, [0, 1, 2])
        assert len(reference) >= 4
        # No two different digests finalized for any slot (stronger
        # restatement of consistency, per-slot).
        for i in (0, 1, 2):
            by_slot: dict[int, str] = {}
            for block in sim.nodes[i].finalized_chain:
                assert by_slot.setdefault(block.slot, block.digest) == block.digest


class ChainChaosMonkey(SimNode):
    """Random multi-shot havoc: bogus votes for random digests/views,
    spurious view-change messages, and malformed proposals."""

    def __init__(self, node_id: NodeId, config: MultiShotConfig, seed: int) -> None:
        import random

        self.node_id = node_id
        self.config = config
        self._rng = random.Random(seed)
        self._ctx: NodeContext | None = None
        self._digests: list[str] = [GENESIS_DIGEST]

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        ctx.set_timer(1.0, self._tick)

    def receive(self, sender: NodeId, frame: object) -> None:
        for message in iter_logical(frame):
            if isinstance(message, MSProposal):
                self._digests.append(message.block.digest)

    def _tick(self) -> None:
        if self._ctx is None or self._ctx.now > 120:
            return
        rng = self._rng
        for _ in range(4):
            kind = rng.randrange(3)
            slot = rng.randint(1, 10)
            view = rng.randint(0, 2)
            if kind == 0:
                self._ctx.send(
                    rng.choice(self.config.base.node_ids),
                    MSVote(slot, view, rng.choice(self._digests)),
                )
            elif kind == 1:
                self._ctx.broadcast(MSViewChange(slot, max(view, 1)))
            else:
                bogus = Block.create(slot, rng.choice(self._digests), ("junk", slot))
                self._ctx.send(
                    rng.choice(self.config.base.node_ids),
                    MSProposal(slot, view, bogus),
                )
        self._ctx.set_timer(1.0, self._tick)


class TestChainChaos:
    @pytest.mark.parametrize("seed", range(6))
    def test_chain_consistency_under_havoc(self, seed):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
        sim = Simulation(UniformRandomDelays(0.3, 1.0, seed=seed))
        sim.add_node(ChainChaosMonkey(3, config, seed=seed))
        for i in range(3):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=400)
        reference = assert_consistent(sim, [0, 1, 2])
        assert len(reference) >= 3, "honest chain made no progress under havoc"
