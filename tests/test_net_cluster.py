"""Deployed-cluster integration: real processes, audited end to end.

These tests spawn actual OS processes wired over localhost TCP — the
acceptance surface of the deployment subsystem:

* an n=4 TetraBFT cluster executes a client workload, every replica's
  collected chain and state digest passes the full
  :class:`~repro.verification.audit.SafetyAuditor`, and all four state
  digests are byte-identical;
* SIGTERMing one replica mid-run (n=4 tolerates f=1) still finalizes
  the whole workload on the survivors, audited the same way;
* the engine registry carries over: a chained baseline engine runs the
  identical client path over sockets.

Each run takes on the order of a second; the module stays tier-1 so
the deployment path cannot rot silently between PRs.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.cluster import (
    ClusterConfig,
    allocate_ports,
    build_specs,
    run_cluster_workload,
    sized_max_slots,
)
from repro.smr.mempool import Transaction
from repro.verification.audit import SafetyAuditor


def _schedule(count: int, rate: float = 10.0):
    """A deterministic uniform-ish workload: counters + key writes."""
    out = []
    for k in range(count):
        if k % 3 == 0:
            txn = Transaction(f"net-{k}", ("incr", f"counter-{k % 4}", 1))
        else:
            txn = Transaction(f"net-{k}", ("set", f"key-{k % 7}", k))
        out.append((k / rate, txn))
    return out


def test_cluster_run_finalizes_and_passes_audit():
    schedule = _schedule(30)
    result = run_cluster_workload(ClusterConfig(n=4, engine="tetrabft", deadline=25.0), schedule)
    assert result.completed, "live replicas did not ack the whole workload"
    assert result.injected == 30
    assert result.committed == 30
    assert not result.killed and not result.unexpected_deaths
    assert result.txns_per_sec > 0
    # One latency sample per (replica, transaction) observation.
    assert len(result.latency_samples) == 4 * 30
    assert all(sample > 0 for sample in result.latency_samples)
    # Evidence from all four replicas, all passing the full audit.
    assert [ev.node_id for ev in result.evidence] == [0, 1, 2, 3]
    report = SafetyAuditor(expected_txns=result.injected).audit_evidence(result.evidence)
    assert report.safe and report.live, report.violations
    digests = {ev.state_digest for ev in result.evidence}
    assert len(digests) == 1, "replicas diverged over real sockets"


def test_killing_one_replica_still_finalizes():
    """n=4 tolerates f=1: SIGTERM mid-workload, survivors finish."""
    schedule = _schedule(40)
    result = run_cluster_workload(
        ClusterConfig(n=4, engine="tetrabft", deadline=25.0),
        schedule,
        kill_after=(2, 0.5),
    )
    assert result.killed == (2,)
    assert not result.unexpected_deaths
    assert result.completed, "survivors did not finalize the workload"
    assert result.committed == 40
    # Evidence comes from the three survivors only.
    assert [ev.node_id for ev in result.evidence] == [0, 1, 3]
    report = SafetyAuditor(expected_txns=result.injected).audit_evidence(result.evidence)
    assert report.safe and report.live, report.violations


def test_chained_engine_runs_over_sockets():
    """The engine registry carries over the wire: PBFT end to end."""
    schedule = _schedule(20)
    result = run_cluster_workload(ClusterConfig(n=4, engine="pbft", deadline=25.0), schedule)
    assert result.completed and result.committed == 20
    report = SafetyAuditor(expected_txns=result.injected).audit_evidence(result.evidence)
    assert report.safe and report.live, report.violations


def test_cluster_config_validation():
    with pytest.raises(ConfigurationError, match="unknown engine"):
        ClusterConfig(n=4, engine="raft")
    with pytest.raises(ConfigurationError, match="n >= 1"):
        ClusterConfig(n=0)
    with pytest.raises(ConfigurationError, match="time_scale"):
        ClusterConfig(n=4, time_scale=0.0)
    with pytest.raises(ConfigurationError, match="outside"):
        run_cluster_workload(ClusterConfig(n=4, max_slots=None), [], kill_after=(9, 0.5))


def test_build_specs_lays_out_distinct_ports_and_full_meshes():
    config = ClusterConfig(n=4)
    specs = build_specs(config)
    assert [spec.node_id for spec in specs] == [0, 1, 2, 3]
    all_ports = [spec.peer_port for spec in specs] + [spec.client_port for spec in specs]
    assert len(set(all_ports)) == 8, "port collision in the layout"
    for spec in specs:
        peers = {pid for pid, _host, _port in spec.peer_addrs}
        assert peers == {0, 1, 2, 3} - {spec.node_id}
        # Every peer entry points at that peer's listening port.
        for pid, _host, port in spec.peer_addrs:
            assert port == specs[pid].peer_port


def test_allocate_ports_returns_distinct_free_ports():
    ports = allocate_ports(10)
    assert len(set(ports)) == 10
    assert all(port > 0 for port in ports)


def test_sized_max_slots_covers_the_whole_run():
    config = ClusterConfig(n=4, engine="tetrabft", deadline=30.0, link_latency=0.002)
    budget = sized_max_slots(config, injected=40)
    # The budget must exceed the worst-case empty-slot burn: one slot
    # per link delay for the entire deadline.
    assert budget is not None and budget > 30.0 / 0.002
    assert sized_max_slots(ClusterConfig(n=4, engine="pbft"), 40) is None
