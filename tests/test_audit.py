"""Tests for the run-level safety auditor.

The crucial half of these are *negative controls*: hand-built evidence
with a deliberately forked chain, a broken hash link, a double-applied
transaction, a replay divergence — each must be flagged.  An auditor
only proves anything if it can fail; without these the campaign's
"zero violations" verdicts could be vacuous.
"""

from __future__ import annotations

from repro.core import ProtocolConfig
from repro.multishot.block import GENESIS_DIGEST, Block
from repro.multishot.node import MultiShotConfig
from repro.sim import Simulation, SynchronousDelays
from repro.smr import Replica, Transaction
from repro.verification import (
    CHAIN_INVARIANTS,
    AuditReport,
    ReplicaEvidence,
    SafetyAuditor,
    chain_links,
    chains_agree,
    chains_no_fork,
    executed_once,
    replay_chain,
)
from repro.verification.audit import SAFETY_CHECKS


def _chain(*payloads: object) -> tuple[Block, ...]:
    """A well-formed chain, one block per payload, from genesis."""
    blocks: list[Block] = []
    parent = GENESIS_DIGEST
    for slot, payload in enumerate(payloads, start=1):
        block = Block.create(slot, parent, payload)
        blocks.append(block)
        parent = block.digest
    return tuple(blocks)


def _evidence(node_id: int, chain: tuple[Block, ...]) -> ReplicaEvidence:
    """Evidence exactly as an honest replica would have produced it."""
    store = replay_chain(chain)
    return ReplicaEvidence(
        node_id=node_id,
        chain=chain,
        state_digest=store.state_digest(),
        applied_txids=tuple(store.applied_txids),
    )


def _txn_payload(*ids: str) -> tuple[Transaction, ...]:
    return tuple(Transaction(txid, ("incr", "k", 1)) for txid in ids)


# -- positive path -------------------------------------------------------------


def test_honest_cluster_audit_passes_end_to_end():
    config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=20)
    sim = Simulation(SynchronousDelays(1.0))
    replicas = [Replica(i, config=config, max_batch=10) for i in range(4)]
    sim.add_nodes(list(replicas))
    for k in range(30):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("set", f"key-{k % 3}", k)))
    sim.run(until=40.0)
    report = SafetyAuditor(expected_txns=30).audit(replicas)
    assert report.safe and report.live and report.ok
    assert report.violations == []
    assert set(report.checks) == set(SAFETY_CHECKS)


def test_consistent_evidence_passes():
    chain = _chain(_txn_payload("a", "b"), _txn_payload("c"))
    report = SafetyAuditor().audit_evidence(
        [_evidence(0, chain), _evidence(1, chain), _evidence(2, chain[:1])]
    )
    assert report.safe
    assert report.live is None  # liveness not assessed without a target
    assert report.ok


# -- negative controls ---------------------------------------------------------


def test_auditor_detects_forked_chain():
    """The negative control: two honest replicas on conflicting slot-2
    blocks must trip agreement AND no-fork — the auditor cannot be
    passing everything vacuously."""
    shared = _chain(_txn_payload("a"))
    left = shared + (Block.create(2, shared[-1].digest, _txn_payload("b")),)
    right = shared + (Block.create(2, shared[-1].digest, _txn_payload("c")),)
    report = SafetyAuditor().audit_evidence([_evidence(0, left), _evidence(1, right)])
    assert not report.checks["chains_agree"]
    assert not report.checks["chains_no_fork"]
    assert not report.safe and not report.ok
    assert any("conflicting" in v for v in report.violations)


def test_auditor_detects_broken_hash_link():
    good = _chain(_txn_payload("a"), _txn_payload("b"))
    # Splice a block whose parent pointer skips its predecessor.
    broken = (good[0], Block.create(2, "not-the-parent", _txn_payload("b")))
    evidence = ReplicaEvidence(
        node_id=0,
        chain=broken,
        state_digest=replay_chain(broken).state_digest(),
        applied_txids=("a", "b"),
    )
    report = SafetyAuditor().audit_evidence([evidence])
    assert not report.checks["chain_links"]
    assert not report.safe


def test_auditor_detects_double_execution():
    chain = _chain(_txn_payload("a"))
    evidence = ReplicaEvidence(
        node_id=0,
        chain=chain,
        state_digest=replay_chain(chain).state_digest(),
        applied_txids=("a", "a"),
    )
    report = SafetyAuditor().audit_evidence([evidence])
    assert not report.checks["executed_once"]
    assert not report.safe


def test_auditor_detects_replay_divergence():
    """A replica whose live state does not match its own ledger."""
    chain = _chain(_txn_payload("a"))
    evidence = ReplicaEvidence(
        node_id=0,
        chain=chain,
        state_digest="deadbeefdeadbeef",
        applied_txids=("a",),
    )
    report = SafetyAuditor().audit_evidence([evidence])
    assert not report.checks["replay_matches"]
    assert not report.safe


def test_auditor_detects_state_split_at_same_tip():
    chain = _chain(_txn_payload("a"))
    honest = _evidence(0, chain)
    liar = ReplicaEvidence(
        node_id=1,
        chain=chain,
        state_digest="0123456789abcdef",
        applied_txids=("a",),
    )
    report = SafetyAuditor().audit_evidence([honest, liar])
    assert not report.checks["state_agreement"]


def test_auditor_judges_liveness_against_expected_count():
    chain = _chain(_txn_payload("a", "b"))
    evidence = _evidence(0, chain)
    lagging = SafetyAuditor(expected_txns=5).audit_evidence([evidence])
    assert lagging.safe and lagging.live is False and not lagging.ok
    done = SafetyAuditor(expected_txns=2).audit_evidence([evidence])
    assert done.ok and done.live is True


# -- the invariant registry ----------------------------------------------------


def test_chain_invariant_predicates_directly():
    assert chain_links([(1, GENESIS_DIGEST, "d1"), (2, "d1", "d2")])
    assert not chain_links([(1, GENESIS_DIGEST, "d1"), (2, "dX", "d2")])
    assert not chain_links([(2, GENESIS_DIGEST, "d1"), (1, "d1", "d2")])
    assert chains_agree([["a", "b"], ["a", "b", "c"], ["a"]])
    assert not chains_agree([["a", "b"], ["a", "x"]])
    assert chains_no_fork({1: {"a"}, 2: {"b"}})
    assert not chains_no_fork({1: {"a"}, 2: {"b", "c"}})
    assert executed_once(["a", "b", "c"]) and not executed_once(["a", "a"])
    assert set(CHAIN_INVARIANTS) == {
        "chain_links", "chains_agree", "chains_no_fork", "executed_once",
    }


def test_report_shape_is_machine_readable():
    report = AuditReport(checks={name: True for name in SAFETY_CHECKS})
    assert report.safe and report.ok and report.live is None
