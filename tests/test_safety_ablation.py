"""Safety ablation: the protocol *without* its rules really does fork.

The positive tests elsewhere show agreement always holds; these show
the converse — remove Rule 3 (a node votes for any proposal without
checking proofs) and a concrete Byzantine schedule produces conflicting
decisions.  This validates both the rules (they are load-bearing, not
redundant belt-and-braces) and the test harness (it can actually
observe a safety violation when one exists).

The same idea at the model level: mutate the spec's ``ShowsSafeAt`` to
accept everything and the explicit-state checker must find an agreement
counterexample — the mutation test that proves the checker's teeth.
"""

from __future__ import annotations

import pytest

from repro.core import Phase, Proposal, ProtocolConfig, TetraBFTNode, ViewChange
from repro.core.node import TetraBFTNode as _Node
from repro.errors import ProtocolViolation, VerificationError
from repro.quorums.system import NodeId
from repro.sim import NodeContext, SimNode, Simulation, SynchronousDelays


class UnsafeNode(TetraBFTNode):
    """A TetraBFT node with Rule 3 ripped out: it votes for whatever the
    view's leader proposes, proofs be damned."""

    def _maybe_vote1(self) -> None:
        state = self._state
        if state.sent_phase[Phase.VOTE1] or state.proposal is None:
            return
        self._cast_vote(Phase.VOTE1, state.proposal.value)


class ConflictingProposer(SimNode):
    """Byzantine leader of view 1: proposes a fresh value with no safety
    justification whatsoever (a correct leader could never propose it,
    and Rule 3 would make followers reject it)."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, value: object) -> None:
        self.node_id = node_id
        self.config = config
        self.value = value
        self._ctx: NodeContext | None = None
        self._proposed = False

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx

    def receive(self, sender: NodeId, message: object) -> None:
        if self._ctx is None or self._proposed:
            return
        if isinstance(message, ViewChange) and message.view >= 1:
            if self.config.leader_of(1) == self.node_id:
                self._proposed = True
                self._ctx.broadcast(Proposal(1, self.value))


def _run(node_cls) -> Exception | None:
    """View 0 decides value A; the Byzantine view-1 leader proposes B.

    Returns the ProtocolViolation raised by a node observing its own
    conflicting decision, or None if the run stayed safe.
    """
    config = ProtocolConfig.create(4)
    sim = Simulation(SynchronousDelays(1.0))
    sim.add_node(node_cls(0, config, initial_value="value-A"))
    sim.add_node(ConflictingProposer(1, config, value="value-B"))
    for i in (2, 3):
        sim.add_node(node_cls(i, config, initial_value=f"val-{i}"))
    try:
        sim.run(until=60)
    except ProtocolViolation as violation:
        return violation
    return None


class TestProtocolLevel:
    def test_without_rule3_agreement_breaks(self):
        violation = _run(UnsafeNode)
        assert violation is not None, (
            "removing Rule 3 should let the Byzantine proposer overturn "
            "the view-0 decision"
        )
        assert "conflicting decisions" in str(violation)

    def test_with_rule3_the_same_schedule_is_safe(self):
        assert _run(TetraBFTNode) is None


class TestModelLevel:
    def test_checker_catches_shows_safe_at_mutation(self, monkeypatch):
        """Mutate the spec's safety predicate to 'everything is safe':
        the explicit-state checker must now find an agreement violation
        (with a counterexample trace)."""
        import repro.verification.model as model
        from repro.verification import ModelConfig, check_agreement

        monkeypatch.setattr(model, "shows_safe_at", lambda *args, **kwargs: True)
        with pytest.raises(VerificationError) as excinfo:
            check_agreement(ModelConfig(n=4, f=1, num_values=2, max_round=1))
        assert excinfo.value.trace, "violation must come with a trace"

    def test_checker_catches_phase_gate_mutation(self, monkeypatch):
        """Drop the quorum precondition on later vote phases: phase-4
        votes become free and disagreement is immediate."""
        import repro.verification.model as model
        from repro.verification import ModelConfig, check_agreement

        monkeypatch.setattr(model, "accepted", lambda state, config, value, rnd, phase: True)
        with pytest.raises(VerificationError):
            check_agreement(
                ModelConfig(n=4, f=1, num_values=2, max_round=0),
                max_states=200_000,
            )
