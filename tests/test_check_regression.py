"""The CI regression gate's comparison policy, pinned.

``benchmarks/check_regression.py`` is what makes the committed
BENCH_*.json trajectory binding, so its policy decisions get tests:
slow gated cells fail, fast cells are reported but not gated, new
cells are welcomed — and a cell present in the committed baseline but
**missing from the fresh run** is a hard failure (a renamed or dropped
cell must refresh the baseline in the same PR, otherwise any
regression could evade the gate by disappearing).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_regression",
    Path(__file__).resolve().parents[1] / "benchmarks" / "check_regression.py",
)
check_regression = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_regression)


def _net_row(rate: float, scenario: str = "lan") -> dict:
    row = {
        "engine": "tetrabft",
        "workload": "uniform",
        "scenario": scenario,
        "n": 4,
        "txns_per_sec": rate,
        "wall_seconds": 1.0,  # comfortably above --min-wall: gated
    }
    # Fresh rows must carry the scraped obs columns (presence-gated).
    row.update(dict.fromkeys(check_regression.REQUIRED_NET_OBS_COLUMNS, 0.0))
    return row


def _write(directory: Path, stem: str, records: dict) -> None:
    (directory / f"BENCH_{stem}.json").write_text(json.dumps(records))


@pytest.fixture
def dirs(tmp_path):
    baseline = tmp_path / "baseline"
    fresh = tmp_path / "fresh"
    baseline.mkdir()
    fresh.mkdir()
    return baseline, fresh


def compare(baseline: Path, fresh: Path, threshold: float = 0.30):
    return check_regression.compare(baseline, fresh, threshold, min_wall=0.05)


def test_identical_records_pass(dirs):
    baseline, fresh = dirs
    records = {"net_smoke": [_net_row(100.0)]}
    _write(baseline, "net", records)
    _write(fresh, "net", records)
    regressions, _ = compare(baseline, fresh)
    assert regressions == []


def test_slow_gated_cell_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "net", {"net_smoke": [_net_row(100.0)]})
    _write(fresh, "net", {"net_smoke": [_net_row(50.0)]})
    regressions, _ = compare(baseline, fresh)
    assert len(regressions) == 1 and "-50.0%" in regressions[0]


def test_new_fresh_cell_is_a_note_not_a_failure(dirs):
    baseline, fresh = dirs
    _write(baseline, "net", {"net_smoke": [_net_row(100.0)]})
    _write(fresh, "net", {"net_smoke": [_net_row(100.0), _net_row(90.0, "capacity")]})
    regressions, notes = compare(baseline, fresh)
    assert regressions == []
    assert any("new cell" in note for note in notes)


def test_grid_cell_missing_from_fresh_run_hard_fails(dirs):
    """The satellite contract: baseline cells cannot silently vanish."""
    baseline, fresh = dirs
    _write(baseline, "net", {"net_smoke": [_net_row(100.0), _net_row(90.0, "capacity")]})
    _write(fresh, "net", {"net_smoke": [_net_row(100.0)]})
    regressions, _ = compare(baseline, fresh)
    assert len(regressions) == 1
    assert "missing from fresh run" in regressions[0]
    assert "capacity" in regressions[0]
    assert "refresh the baseline" in regressions[0]


def test_aggregate_missing_from_fresh_run_hard_fails(dirs):
    baseline, fresh = dirs
    _write(baseline, "smr", {"smr_hot_path_2x": {"txns_per_sec": 1000.0}})
    _write(fresh, "smr", {})
    regressions, _ = compare(baseline, fresh)
    assert len(regressions) == 1
    assert "smr_hot_path_2x" in regressions[0]
    assert "missing from fresh run" in regressions[0]


def test_ceiling_metric_missing_from_fresh_run_hard_fails(dirs):
    baseline, fresh = dirs
    row = {
        "engine": "tetrabft",
        "workload": "uniform",
        "scenario": "sync",
        "n": 4,
        "messages_per_delay": 10.0,
        "frames_per_delay": 5.0,
    }
    _write(baseline, "smr", {"smr_smoke": [row]})
    _write(fresh, "smr", {"smr_smoke": []})
    regressions, _ = compare(baseline, fresh)
    # Both ceiling metrics of the vanished cell report the failure.
    assert len(regressions) == 2
    assert all("missing from fresh run" in line for line in regressions)


def test_grown_ceiling_fails_and_shrunk_ceiling_passes(dirs):
    baseline, fresh = dirs

    def row(messages: float) -> dict:
        return {
            "engine": "tetrabft",
            "workload": "uniform",
            "scenario": "sync",
            "n": 4,
            "messages_per_delay": messages,
        }

    _write(baseline, "smr", {"smr_smoke": [row(10.0)]})
    _write(fresh, "smr", {"smr_smoke": [row(20.0)]})
    regressions, _ = compare(baseline, fresh)
    assert len(regressions) == 1 and "[ceiling]" in regressions[0]
    _write(fresh, "smr", {"smr_smoke": [row(5.0)]})
    regressions, _ = compare(baseline, fresh)
    assert regressions == []


def test_fresh_smoke_row_missing_obs_columns_hard_fails(dirs):
    """The obs satellite contract: a fresh net_smoke row without the
    scraped metric columns means the scrape plumbing silently broke.
    Presence-gated only — values are free to vary."""
    baseline, fresh = dirs
    good = _net_row(100.0)
    bad = _net_row(100.0, "capacity")
    del bad["queue_lag"]
    del bad["fsyncs"]
    _write(baseline, "net", {"net_smoke": [good]})
    _write(fresh, "net", {"net_smoke": [good, bad]})
    regressions, _ = compare(baseline, fresh)
    assert len(regressions) == 1
    assert "missing scraped metric column" in regressions[0]
    assert "queue_lag" in regressions[0] and "fsyncs" in regressions[0]


def test_obs_columns_are_not_value_gated(dirs):
    """A zero or wildly different scraped value never fails the gate."""
    baseline, fresh = dirs
    base = _net_row(100.0)
    base["commit_rate"] = 500.0
    new = _net_row(100.0)
    new["commit_rate"] = 0.0
    _write(baseline, "net", {"net_smoke": [base]})
    _write(fresh, "net", {"net_smoke": [new]})
    regressions, _ = compare(baseline, fresh)
    assert regressions == []


def test_obs_columns_not_required_on_stale_grid_keys(dirs):
    """Only net_smoke — the key every CI run rewrites — is checked, so
    an old committed heavy-grid record cannot false-fail the gate."""
    baseline, fresh = dirs
    old_grid_row = {
        "engine": "tetrabft",
        "workload": "uniform",
        "scenario": "lan",
        "n": 7,
        "txns_per_sec": 50.0,
    }
    _write(baseline, "net", {"net_smoke": [_net_row(100.0)]})
    _write(fresh, "net", {"net_smoke": [_net_row(100.0)], "net_grid": [old_grid_row]})
    regressions, _ = compare(baseline, fresh)
    assert regressions == []


def test_no_baseline_at_all_skips(dirs):
    baseline, fresh = dirs
    _write(fresh, "net", {"net_smoke": [_net_row(100.0)]})
    regressions, notes = compare(baseline, fresh)
    assert regressions == []
    assert any("no baseline" in note for note in notes)


def test_main_exit_codes(dirs, monkeypatch, capsys):
    baseline, fresh = dirs
    _write(baseline, "net", {"net_smoke": [_net_row(100.0), _net_row(90.0, "geo")]})
    _write(fresh, "net", {"net_smoke": [_net_row(100.0)]})
    argv = ["--baseline-dir", str(baseline), "--fresh-dir", str(fresh)]
    monkeypatch.delenv("REPRO_ACCEPT_REGRESSION", raising=False)
    assert check_regression.main(argv) == 1
    monkeypatch.setenv("REPRO_ACCEPT_REGRESSION", "1")
    assert check_regression.main(argv) == 0
    capsys.readouterr()
