"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventScheduler


def test_events_fire_in_time_order():
    sched = EventScheduler()
    order = []
    sched.schedule(3.0, lambda: order.append("c"))
    sched.schedule(1.0, lambda: order.append("a"))
    sched.schedule(2.0, lambda: order.append("b"))
    sched.run()
    assert order == ["a", "b", "c"]


def test_equal_timestamps_fire_in_insertion_order():
    sched = EventScheduler()
    order = []
    for tag in ("first", "second", "third"):
        sched.schedule(1.0, lambda t=tag: order.append(t))
    sched.run()
    assert order == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_run_until_leaves_later_events_queued():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(5.0, lambda: fired.append(5))
    stop = sched.run(until=3.0)
    assert fired == [1]
    assert stop == 3.0
    assert sched.pending() == 1
    sched.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_without_events():
    sched = EventScheduler()
    sched.run(until=10.0)
    assert sched.now == 10.0


def test_cancellation_prevents_firing():
    sched = EventScheduler()
    fired = []
    handle = sched.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sched.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_harmless():
    sched = EventScheduler()
    handle = sched.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_scheduled_during_run_fire():
    sched = EventScheduler()
    order = []

    def outer():
        order.append("outer")
        sched.schedule(1.0, lambda: order.append("inner"))

    sched.schedule(1.0, outer)
    sched.run()
    assert order == ["outer", "inner"]
    assert sched.now == 2.0


def test_zero_delay_event_fires_at_current_time():
    sched = EventScheduler()
    times = []
    sched.schedule(1.0, lambda: sched.schedule(0.0, lambda: times.append(sched.now)))
    sched.run()
    assert times == [1.0]


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_stop_when_predicate_halts_run():
    sched = EventScheduler()
    fired = []
    for k in range(10):
        sched.schedule(float(k + 1), lambda k=k: fired.append(k))
    sched.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_events_budget_raises_on_livelock():
    sched = EventScheduler()

    def rearm():
        sched.schedule(1.0, rearm)

    sched.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="budget"):
        sched.run(max_events=50)


def test_schedule_at_absolute_time():
    sched = EventScheduler()
    times = []
    sched.schedule_at(4.0, lambda: times.append(sched.now))
    sched.run()
    assert times == [4.0]


def test_events_fired_counter():
    sched = EventScheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_fired == 5
