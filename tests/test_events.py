"""Unit tests for the discrete-event scheduler."""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventScheduler


def test_events_fire_in_time_order():
    sched = EventScheduler()
    order = []
    sched.schedule(3.0, lambda: order.append("c"))
    sched.schedule(1.0, lambda: order.append("a"))
    sched.schedule(2.0, lambda: order.append("b"))
    sched.run()
    assert order == ["a", "b", "c"]


def test_equal_timestamps_fire_in_insertion_order():
    sched = EventScheduler()
    order = []
    for tag in ("first", "second", "third"):
        sched.schedule(1.0, lambda t=tag: order.append(t))
    sched.run()
    assert order == ["first", "second", "third"]


def test_now_advances_to_event_time():
    sched = EventScheduler()
    seen = []
    sched.schedule(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]
    assert sched.now == 2.5


def test_run_until_leaves_later_events_queued():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, lambda: fired.append(1))
    sched.schedule(5.0, lambda: fired.append(5))
    stop = sched.run(until=3.0)
    assert fired == [1]
    assert stop == 3.0
    assert sched.pending() == 1
    sched.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_without_events():
    sched = EventScheduler()
    sched.run(until=10.0)
    assert sched.now == 10.0


def test_cancellation_prevents_firing():
    sched = EventScheduler()
    fired = []
    handle = sched.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    sched.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_is_harmless():
    sched = EventScheduler()
    handle = sched.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_scheduled_during_run_fire():
    sched = EventScheduler()
    order = []

    def outer():
        order.append("outer")
        sched.schedule(1.0, lambda: order.append("inner"))

    sched.schedule(1.0, outer)
    sched.run()
    assert order == ["outer", "inner"]
    assert sched.now == 2.0


def test_zero_delay_event_fires_at_current_time():
    sched = EventScheduler()
    times = []
    sched.schedule(1.0, lambda: sched.schedule(0.0, lambda: times.append(sched.now)))
    sched.run()
    assert times == [1.0]


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(SimulationError):
        sched.schedule(-0.1, lambda: None)


def test_stop_when_predicate_halts_run():
    sched = EventScheduler()
    fired = []
    for k in range(10):
        sched.schedule(float(k + 1), lambda k=k: fired.append(k))
    sched.run(stop_when=lambda: len(fired) >= 3)
    assert fired == [0, 1, 2]


def test_max_events_budget_raises_on_livelock():
    sched = EventScheduler()

    def rearm():
        sched.schedule(1.0, rearm)

    sched.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="budget"):
        sched.run(max_events=50)


def test_schedule_at_absolute_time():
    sched = EventScheduler()
    times = []
    sched.schedule_at(4.0, lambda: times.append(sched.now))
    sched.run()
    assert times == [4.0]


def test_events_fired_counter():
    sched = EventScheduler()
    for _ in range(5):
        sched.schedule(1.0, lambda: None)
    sched.run()
    assert sched.events_fired == 5


def test_pending_tracks_schedule_cancel_and_fire():
    sched = EventScheduler()
    handles = [sched.schedule(float(k + 1), lambda: None) for k in range(5)]
    assert sched.pending() == 5
    handles[0].cancel()
    handles[3].cancel()
    assert sched.pending() == 3
    sched.run()
    assert sched.pending() == 0
    assert sched.events_fired == 3


def test_cancel_twice_does_not_double_decrement_pending():
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    handle = sched.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sched.pending() == 1


def test_cancel_after_fire_does_not_corrupt_pending():
    sched = EventScheduler()
    handle = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.run(until=1.5)
    assert sched.pending() == 1
    handle.cancel()  # already fired: harmless
    assert sched.pending() == 1
    sched.run()
    assert sched.pending() == 0


def test_schedule_args_are_passed_to_callback():
    sched = EventScheduler()
    seen = []
    sched.schedule(1.0, lambda a, b: seen.append((a, b)), args=(7, "x"))
    sched.run()
    assert seen == [(7, "x")]


def test_stop_check_interval_polls_every_k_events():
    sched = EventScheduler()
    fired = []
    checks = []
    for k in range(10):
        sched.schedule(float(k + 1), lambda k=k: fired.append(k))

    def predicate():
        checks.append(len(fired))
        return len(fired) >= 3

    sched.run(stop_when=predicate, stop_check_interval=4)
    # The predicate is only consulted after every 4th event, so the run
    # overshoots the stop condition by one event (4 fired, not 3) and
    # paid a single predicate call instead of four.
    assert fired == [0, 1, 2, 3]
    assert checks == [4]


def test_stop_check_interval_of_one_matches_per_event_polling():
    sched = EventScheduler()
    fired = []
    for k in range(10):
        sched.schedule(float(k + 1), lambda k=k: fired.append(k))
    sched.run(stop_when=lambda: len(fired) >= 3, stop_check_interval=1)
    assert fired == [0, 1, 2]


def test_stop_check_interval_must_be_positive():
    sched = EventScheduler()
    with pytest.raises(SimulationError, match="stop_check_interval"):
        sched.run(stop_check_interval=0)


def test_stop_condition_met_inside_unpolled_window_beats_budget_error():
    # The predicate becomes true before the budget is exhausted but is
    # not polled again until after it; the run must stop cleanly, not
    # report a livelock.
    sched = EventScheduler()
    fired = []
    for k in range(10):
        sched.schedule(float(k + 1), lambda k=k: fired.append(k))
    end = sched.run(max_events=5, stop_when=lambda: len(fired) >= 3, stop_check_interval=64)
    assert len(fired) == 5
    assert end == 5.0


# --- determinism against the seed scheduler ---------------------------------
#
# A faithful replica of the pre-refactor scheduler (order=True dataclass
# heap entries).  The tuple-heap rewrite must fire the exact same
# callbacks at the exact same times in the exact same order for any
# seeded workload — the byte-identical-trace guarantee every replayable
# test in this suite leans on.


@dataclass(order=True)
class _SeedEvent:
    time: float
    seq: int
    callback: object = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class _SeedScheduler:
    def __init__(self) -> None:
        self._heap: list[_SeedEvent] = []
        self._counter = itertools.count()
        self.now = 0.0

    def schedule(self, delay, callback):
        event = _SeedEvent(self.now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def run(self) -> None:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()


def _drive_random_workload(schedule, cancel, now, seed: int) -> list[tuple[float, int]]:
    """Seeded storm of schedules / nested schedules / cancellations.

    ``schedule``/``cancel``/``now`` abstract over the two scheduler
    APIs so the identical operation sequence hits both.
    """
    rng = random.Random(seed)
    log: list[tuple[float, int]] = []
    live = []

    def fire(tag: int) -> None:
        log.append((now(), tag))
        roll = rng.random()
        if roll < 0.4:
            live.append(schedule(rng.choice([0.0, 0.5, 1.0, 1.0, 2.5]), fire, len(log)))
        elif roll < 0.5 and live:
            cancel(live.pop(rng.randrange(len(live))))

    for tag in range(40):
        live.append(schedule(rng.choice([0.0, 1.0, 1.0, 3.0]), fire, tag))
    return log


def test_tuple_heap_matches_seed_scheduler_trace():
    def run_new(seed: int):
        sched = EventScheduler()
        return _drive_random_workload(
            lambda d, fn, tag: sched.schedule(d, fn, args=(tag,)),
            lambda handle: handle.cancel(),
            lambda: sched.now,
            seed,
        ), sched

    def run_seed(seed: int):
        sched = _SeedScheduler()
        return _drive_random_workload(
            lambda d, fn, tag: sched.schedule(d, lambda: fn(tag)),
            lambda event: setattr(event, "cancelled", True),
            lambda: sched.now,
            seed,
        ), sched

    for seed in (0, 1, 7, 1234):
        new_log, new_sched = run_new(seed)
        seed_log, seed_sched = run_seed(seed)
        new_sched.run()
        seed_sched.run()
        assert new_log == seed_log, f"divergence for seed {seed}"
        assert new_sched.now == seed_sched.now


# --- full-simulation determinism and harness semantics ----------------------


def _traced_protocol_run(seed: int):
    from repro.core import ProtocolConfig, TetraBFTNode
    from repro.sim import Simulation, UniformRandomDelays

    config = ProtocolConfig.create(5)
    sim = Simulation(UniformRandomDelays(0.3, 1.0, seed=seed), trace_enabled=True)
    for i in range(5):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"v{i}"))
    sim.run_until_all_decided()
    return sim


def test_same_seed_produces_byte_identical_trace():
    a = _traced_protocol_run(seed=42)
    b = _traced_protocol_run(seed=42)
    assert [(e.time, e.node, e.kind, e.detail) for e in a.trace] == [
        (e.time, e.node, e.kind, e.detail) for e in b.trace
    ]
    assert a.metrics.latency.decision_times == b.metrics.latency.decision_times
    assert a.metrics.latency.decision_values == b.metrics.latency.decision_values
    assert a.scheduler.events_fired == b.scheduler.events_fired


class _DecideOnPing:
    """Minimal node: decides when it hears a ping (node 0 pings at start)."""

    def __init__(self, node_id: int, mute: bool = False) -> None:
        self.node_id = node_id
        self.mute = mute

    def start(self, ctx) -> None:
        self.ctx = ctx
        if self.node_id == 0:
            ctx.broadcast("ping")

    def receive(self, sender: int, message: object) -> None:
        if not self.mute:
            self.ctx.report_decision("pong")


def test_run_until_all_decided_exclude_skips_adversarial_nodes():
    from repro.sim import Simulation

    sim = Simulation()
    for i in range(4):
        # Node 3 models an adversarial node that never decides.
        sim.add_node(_DecideOnPing(i, mute=(i == 3)))
    end = sim.run_until_all_decided(exclude=[3])
    assert sim.metrics.latency.all_decided([0, 1, 2])
    assert 3 not in sim.metrics.latency.decision_times
    assert end == 1.0  # stopped at the first delivery wave, not the budget


def test_run_until_all_decided_without_exclude_waits_for_everyone():
    from repro.sim import Simulation

    sim = Simulation()
    for i in range(4):
        sim.add_node(_DecideOnPing(i, mute=(i == 3)))
    # Node 3 never decides, so the run only ends when the heap drains.
    sim.run_until_all_decided(until=50)
    assert not sim.metrics.latency.all_decided([0, 1, 2, 3])


def test_run_until_all_decided_rejects_node_ids_combined_with_exclude():
    from repro.errors import ConfigurationError
    from repro.sim import Simulation

    sim = Simulation()
    for i in range(4):
        sim.add_node(_DecideOnPing(i))
    with pytest.raises(ConfigurationError, match="node_ids or exclude"):
        sim.run_until_all_decided(node_ids=[0, 1, 2, 3], exclude=[3])
