"""Tests for Multi-shot (pipelined) TetraBFT: blocks, chain, node."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.errors import ProtocolViolation
from repro.multishot import (
    Block,
    BlockStore,
    ChainState,
    GENESIS_DIGEST,
    MultiShotConfig,
    MultiShotNode,
)
from repro.sim import (
    PartialSynchronyPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    TraceKind,
    silence_nodes,
)


def chain_digests(node: MultiShotNode) -> list[str]:
    return [b.digest for b in node.finalized_chain]


def assert_chains_consistent(sim: Simulation, node_ids: list[int]) -> None:
    chains = [chain_digests(sim.nodes[i]) for i in node_ids]
    reference = max(chains, key=len)
    for chain in chains:
        assert reference[: len(chain)] == chain, "finalized chains forked"


class TestBlock:
    def test_digest_depends_on_content(self):
        a = Block.create(1, GENESIS_DIGEST, "p1")
        b = Block.create(1, GENESIS_DIGEST, "p2")
        c = Block.create(2, GENESIS_DIGEST, "p1")
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_digest_deterministic(self):
        assert (
            Block.create(1, GENESIS_DIGEST, "p").digest
            == Block.create(1, GENESIS_DIGEST, "p").digest
        )


class TestBlockStore:
    def test_ancestor_walk(self):
        store = BlockStore()
        b1 = Block.create(1, GENESIS_DIGEST, "a")
        b2 = Block.create(2, b1.digest, "b")
        b3 = Block.create(3, b2.digest, "c")
        for block in (b1, b2, b3):
            store.add(block)
        assert store.ancestor_digest(b3.digest, 1) == b2.digest
        assert store.ancestor_digest(b3.digest, 3) == GENESIS_DIGEST
        assert store.ancestor_digest(b3.digest, 5) == GENESIS_DIGEST

    def test_missing_body_returns_none(self):
        store = BlockStore()
        b2 = Block.create(2, "unknown-parent", "b")
        store.add(b2)
        assert store.ancestor_digest(b2.digest, 2) is None
        assert store.chain_to_genesis(b2.digest) is None

    def test_chain_to_genesis_order(self):
        store = BlockStore()
        b1 = Block.create(1, GENESIS_DIGEST, "a")
        b2 = Block.create(2, b1.digest, "b")
        store.add(b1)
        store.add(b2)
        chain = store.chain_to_genesis(b2.digest)
        assert chain is not None
        assert [b.slot for b in chain] == [1, 2]

    def test_prune_keeps_exceptions(self):
        store = BlockStore()
        b1 = Block.create(1, GENESIS_DIGEST, "a")
        b2 = Block.create(2, b1.digest, "b")
        store.add(b1)
        store.add(b2)
        store.prune_below(3, keep={b2.digest})
        assert b2.digest in store
        assert b1.digest not in store


class TestChainState:
    def _linked_blocks(self, count: int) -> list[Block]:
        blocks, parent = [], GENESIS_DIGEST
        for slot in range(1, count + 1):
            block = Block.create(slot, parent, f"p{slot}")
            blocks.append(block)
            parent = block.digest
        return blocks

    def test_four_consecutive_notarizations_finalize_first(self):
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(4)
        for block in blocks:
            store.add(block)
        for block in blocks[:3]:
            assert chain.notarize(block.slot, block.digest) == []
        newly = chain.notarize(4, blocks[3].digest)
        assert [b.slot for b in newly] == [1]
        assert chain.finalized_height == 1

    def test_prefix_finalizes_with_window(self):
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(6)
        for block in blocks:
            store.add(block)
        for block in blocks:
            chain.notarize(block.slot, block.digest)
        assert chain.finalized_height == 3  # slots 1..3 (6 - window + 1)

    def test_unlinked_notarizations_do_not_finalize(self):
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(3)
        stray = Block.create(4, "somewhere-else", "stray")
        for block in blocks + [stray]:
            store.add(block)
        for block in blocks:
            chain.notarize(block.slot, block.digest)
        assert chain.notarize(4, stray.digest) == []
        assert chain.finalized_height == 0

    def test_late_body_completes_finalization(self):
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(4)
        for block in blocks:
            if block.slot != 2:
                store.add(block)
        for block in blocks:
            chain.notarize(block.slot, block.digest)
        assert chain.finalized_height == 0  # body for slot 2 missing
        store.add(blocks[1])
        newly = chain.check_finalization()
        assert [b.slot for b in newly] == [1]

    def test_fork_in_finalized_chain_raises(self):
        store = BlockStore()
        chain = ChainState(store)
        honest = self._linked_blocks(4)
        for block in honest:
            store.add(block)
            chain.notarize(block.slot, block.digest)
        assert chain.finalized_height == 1
        # A conflicting fully-notarized run at the same slots.
        evil = []
        parent = GENESIS_DIGEST
        for slot in range(1, 5):
            block = Block.create(slot, parent, f"evil{slot}")
            evil.append(block)
            store.add(block)
            parent = block.digest
        with pytest.raises(ProtocolViolation, match="fork"):
            for block in evil:
                chain.notarize(block.slot, block.digest)

    def test_genesis_is_notarized_at_slot_zero(self):
        chain = ChainState(BlockStore())
        assert chain.is_notarized(0, GENESIS_DIGEST)
        assert not chain.is_notarized(0, "other")

    def test_finalized_slot_index_answers_notarization_queries(self):
        """Finalized blocks stay notarized via the slot index — even
        after the raw notarization sets for their slots are pruned."""
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(8)
        for block in blocks:
            store.add(block)
            chain.notarize(block.slot, block.digest)
        assert chain.finalized_height == 5
        for block in blocks[:5]:
            assert chain.is_notarized(block.slot, block.digest)
        chain.prune_below(5)
        for block in blocks[:5]:
            assert chain.is_notarized(block.slot, block.digest)
            assert not chain.is_notarized(block.slot, "someone-else")
        assert chain.notarized_digests(2) == set()  # raw set pruned

    def test_finalization_appends_suffix_not_rebuild(self):
        """Finalizing more blocks extends the same list object (the
        incremental path) instead of replacing it wholesale."""
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(7)
        for block in blocks:
            store.add(block)
        for block in blocks[:4]:
            chain.notarize(block.slot, block.digest)
        finalized_list = chain.finalized
        assert [b.slot for b in finalized_list] == [1]
        for block in blocks[4:]:
            chain.notarize(block.slot, block.digest)
        assert chain.finalized is finalized_list
        assert [b.slot for b in finalized_list] == [1, 2, 3, 4]

    def test_notarization_gap_above_frontier_is_harmless(self):
        """A notarization far above the frontier (its ancestors'
        notarizations missing) finalizes nothing and later catches up."""
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(9)
        for block in blocks:
            store.add(block)
        assert chain.notarize(9, blocks[8].digest) == []
        for block in blocks[:8]:
            chain.notarize(block.slot, block.digest)
        # With the gap filled, the full prefix finalizes: 9 - 3 = 6.
        assert chain.finalized_height == 6

    def test_stale_low_notarization_after_finalization_is_ignored(self):
        store = BlockStore()
        chain = ChainState(store)
        blocks = self._linked_blocks(6)
        for block in blocks:
            store.add(block)
            chain.notarize(block.slot, block.digest)
        assert chain.finalized_height == 3
        # Re-notarizing an already-final slot's digest adds nothing.
        assert chain.notarize(1, blocks[0].digest) == []
        assert chain.finalized_height == 3


class TestMultiShotGoodCase:
    def test_one_block_per_delay(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=18)
        sim = Simulation(SynchronousDelays(1.0), trace_enabled=True)
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=40)
        events = sim.trace.events(TraceKind.FINALIZE, node=0)
        times = [e.time for e in events]
        assert times[0] == 5.0
        assert all(b - a == 1.0 for a, b in zip(times, times[1:]))

    def test_all_nodes_finalize_everything_finalizable(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=15)
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=50)
        for i in range(4):
            assert len(sim.nodes[i].finalized_chain) == 12  # 15 - 3 tail
        assert_chains_consistent(sim, [0, 1, 2, 3])

    def test_chain_links_are_intact(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=40)
        chain = sim.nodes[0].finalized_chain
        parent = GENESIS_DIGEST
        for slot, block in enumerate(chain, start=1):
            assert block.slot == slot
            assert block.parent == parent
            parent = block.digest

    def test_seven_node_pipeline(self):
        config = MultiShotConfig(base=ProtocolConfig.create(7), max_slots=12)
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(7):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=40)
        assert len(sim.nodes[0].finalized_chain) == 9
        assert_chains_consistent(sim, list(range(7)))

    def test_state_pruning_bounds_memory(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=40)
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=80)
        node = sim.nodes[0]
        assert len(node.finalized_chain) == 37
        # Per-slot working state far behind the tip was pruned.
        assert len(node.slots) <= 40 - 37 + 8 + 4


class TestMultiShotViewChange:
    def test_crashed_slot_leader_recovery(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=12)
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]), end=25.0)
        sim = Simulation(policy)
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=200)
        for i in range(4):
            assert len(sim.nodes[i].finalized_chain) == 9
        assert_chains_consistent(sim, [0, 1, 2, 3])

    def test_permanently_crashed_node_still_progresses(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=12)
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]))
        sim = Simulation(policy)
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=300)
        for i in range(3):
            assert len(sim.nodes[i].finalized_chain) == 9
        assert_chains_consistent(sim, [0, 1, 2])

    def test_asynchrony_then_multishot_consistency(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
        for seed in range(6):
            policy = PartialSynchronyPolicy(gst=20.0, delta=1.0, loss_before_gst=0.6, seed=seed)
            sim = Simulation(policy)
            for i in range(4):
                sim.add_node(MultiShotNode(i, config))
            sim.run(until=600)
            assert_chains_consistent(sim, [0, 1, 2, 3])
            heights = [len(sim.nodes[i].finalized_chain) for i in range(4)]
            assert max(heights) >= 5, f"seed {seed}: no progress after GST {heights}"

    def test_unstarted_slots_default_to_view_zero(self):
        """Figure 3's slot-4 behaviour: slots first started after a view
        change still begin at view 0."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=12)
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]), end=25.0)
        sim = Simulation(policy, trace_enabled=True)
        for i in range(4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=200)
        view0_notarizations = {
            int(e.get("slot"))
            for e in sim.trace.events(TraceKind.NOTARIZE, node=0)
            if e.get("view") == 0
        }
        # Slots beyond the aborted window were notarized at view 0.
        assert any(slot > 5 for slot in view0_notarizations)

    def test_finalize_callback_invoked_in_order(self):
        received: list[int] = []
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=8)
        sim = Simulation(SynchronousDelays(1.0))
        sim.add_node(MultiShotNode(0, config, on_finalize=lambda b: received.append(b.slot)))
        for i in range(1, 4):
            sim.add_node(MultiShotNode(i, config))
        sim.run(until=30)
        assert received == sorted(received)
        assert received[0] == 1
