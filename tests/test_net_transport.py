"""TCP transport behaviour: delivery, loopback, reconnect, latency.

In-process tests (real sockets on localhost, no subprocesses): each
test builds a couple of :class:`~repro.net.transport.NetTransport`
instances inside one event loop and checks the properties the
deployed cluster leans on — ordered peer delivery, loopback broadcast
semantics, queue-and-reconnect when a peer is late or restarts, and
FIFO-pipe latency injection.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.messages import Proposal, ViewChange
from repro.errors import ConfigurationError
from repro.multishot.messages import MSVote, VoteBatch
from repro.net.cluster import allocate_ports
from repro.net.transport import LinkLatency, NetContext, NetTransport, install_uvloop

HOST = "127.0.0.1"


async def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


def _pair(ports, inboxes, latency=None):
    """Two wired transports whose messages land in per-node inboxes."""
    transports = []
    for node_id in (0, 1):
        peer = 1 - node_id
        transports.append(
            NetTransport(
                node_id,
                HOST,
                ports[node_id],
                {peer: (HOST, ports[peer])},
                lambda sender, msg, nid=node_id: inboxes[nid].append((sender, msg)),
                latency=latency,
            )
        )
    return transports


def test_send_and_broadcast_deliver_in_order():
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)

    async def scenario():
        a, b = _pair(ports, inboxes)
        await a.start()
        await b.start()
        try:
            for view in range(20):
                a.send(1, ViewChange(view))
            b.broadcast(Proposal(1, "x"))
            # Node 1 expects the 20 sends plus its own loopback copy.
            await _wait_for(lambda: len(inboxes[1]) == 21 and len(inboxes[0]) >= 1)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())
    # Peer delivery preserves per-link FIFO order.
    from_a = [entry for entry in inboxes[1] if entry[0] == 0]
    assert from_a == [(0, ViewChange(view)) for view in range(20)]
    # Broadcast includes the sender (loopback) and reaches the peer.
    assert (1, Proposal(1, "x")) in inboxes[0]
    assert (1, Proposal(1, "x")) in inboxes[1]


def test_messages_queue_until_a_late_peer_arrives():
    """Reconnect-with-backoff: sends before the peer listens still land."""
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)

    async def scenario():
        a, b = _pair(ports, inboxes)
        await a.start()
        try:
            for view in range(5):
                a.send(1, ViewChange(view))
            await asyncio.sleep(0.2)  # several failed dials happen here
            await b.start()
            await _wait_for(lambda: len(inboxes[1]) == 5)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())
    assert inboxes[1] == [(0, ViewChange(view)) for view in range(5)]


def test_injected_latency_delays_delivery():
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)
    latency = LinkLatency(0.15)

    async def scenario():
        a, b = _pair(ports, inboxes, latency=latency)
        await a.start()
        await b.start()
        try:
            await asyncio.sleep(0.1)  # let the lanes connect first
            t0 = time.monotonic()
            a.send(1, ViewChange(1))
            await _wait_for(lambda: inboxes[1])
            return time.monotonic() - t0
        finally:
            await a.stop()
            await b.stop()

    elapsed = asyncio.run(scenario())
    assert elapsed >= 0.14, elapsed


def test_loopback_send_to_self():
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)

    async def scenario():
        a, _b = _pair(ports, inboxes)
        # No start() needed: loopback never touches a socket.
        a.send(0, ViewChange(3))
        await _wait_for(lambda: inboxes[0])

    asyncio.run(scenario())
    assert inboxes[0] == [(0, ViewChange(3))]


def test_vote_batch_frames_cross_the_socket_as_one_unit():
    """An aggregated frame arrives as a single envelope, not unpacked
    by the transport: unbatching is the receiving engine's job."""
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)
    batch = VoteBatch((MSVote(1, 0, "aa"), MSVote(2, 0, "bb"), MSVote(3, 0, "cc")))

    async def scenario():
        a, b = _pair(ports, inboxes)
        await a.start()
        await b.start()
        try:
            # A burst queued before/while the lane connects exercises
            # the coalesced (writev-style) drain path on the writer.
            for _ in range(4):
                a.send(1, batch)
            await _wait_for(lambda: len(inboxes[1]) == 4)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(scenario())
    assert inboxes[1] == [(0, batch)] * 4


def test_install_uvloop_falls_back_without_the_module(monkeypatch):
    """uvloop is an optional extra: absence means stock asyncio, not
    an error — and the loop still runs."""
    import sys

    monkeypatch.setitem(sys.modules, "uvloop", None)  # import raises ImportError
    monkeypatch.delenv("REPRO_NO_UVLOOP", raising=False)
    assert install_uvloop() is False
    assert asyncio.run(_async_identity(42)) == 42


def test_install_uvloop_activates_when_available(monkeypatch):
    import sys
    import types

    calls: list[str] = []
    fake = types.ModuleType("uvloop")
    fake.install = lambda: calls.append("install")
    monkeypatch.setitem(sys.modules, "uvloop", fake)
    monkeypatch.delenv("REPRO_NO_UVLOOP", raising=False)
    assert install_uvloop() is True
    assert calls == ["install"]


def test_install_uvloop_escape_hatch_forces_stock_asyncio(monkeypatch):
    import sys
    import types

    fake = types.ModuleType("uvloop")
    fake.install = lambda: pytest.fail("REPRO_NO_UVLOOP must skip uvloop.install()")
    monkeypatch.setitem(sys.modules, "uvloop", fake)
    monkeypatch.setenv("REPRO_NO_UVLOOP", "1")
    assert install_uvloop() is False


async def _async_identity(value):
    return value


def test_link_latency_validation_and_pairs():
    with pytest.raises(ConfigurationError):
        LinkLatency(-0.1)
    with pytest.raises(ConfigurationError):
        LinkLatency(0.0, {(0, 1): -1.0})
    latency = LinkLatency(0.01, {(0, 1): 0.5, (1, 0): 0.25})
    assert latency.of(0, 1) == 0.5
    assert latency.of(1, 0) == 0.25
    assert latency.of(0, 2) == 0.01
    rebuilt = LinkLatency.from_pairs(latency.default, latency.as_pairs())
    assert rebuilt.of(0, 1) == 0.5 and rebuilt.of(0, 2) == 0.01


def test_net_context_clock_and_timers():
    async def scenario():
        transport = NetTransport(0, HOST, allocate_ports(1)[0], {}, lambda s, m: None)
        ctx = NetContext(0, transport, time_scale=0.05)
        assert ctx.now == 0.0  # clock not started yet
        ctx.start_clock()
        fired: list[float] = []
        handle = ctx.set_timer(1.0, lambda: fired.append(ctx.now))  # 1Δ = 50ms
        cancelled = ctx.set_timer(10.0, lambda: fired.append(-1.0))
        cancelled.cancel()
        await _wait_for(lambda: fired)
        assert not handle.cancelled
        # The timer fired around 1Δ of wall time, and `now` runs in Δ.
        assert 0.8 <= fired[0] <= 5.0
        await asyncio.sleep(0.02)
        assert -1.0 not in fired

    asyncio.run(scenario())


def test_net_context_rejects_bad_time_scale():
    transport = NetTransport(0, HOST, allocate_ports(1)[0], {}, lambda s, m: None)
    with pytest.raises(ConfigurationError):
        NetContext(0, transport, time_scale=0.0)


# -- delayed flush -------------------------------------------------------------


def test_flush_critical_classification():
    """Good-case traffic is delayable; timer-driven and recovery
    traffic (and anything unknown) must bypass the hold."""
    from repro.baselines.base import BPhaseVote, BProposal
    from repro.baselines.chained import SlotMessage
    from repro.multishot.block import Block
    from repro.multishot.messages import MSProposal, MSViewChange
    from repro.net.transport import flush_critical

    block = Block.create(0, "parent", ("noop",))
    assert not flush_critical(MSVote(1, 0, "aa"))
    assert not flush_critical(MSProposal(1, 0, block))
    assert not flush_critical(BProposal("pbft", 0, "v"))
    assert not flush_critical(BPhaseVote("pbft", 0, 1, "v"))
    # View changes are timer-driven: a peer may be blocked on them.
    assert flush_critical(ViewChange(1))
    assert flush_critical(MSViewChange(1, 0))
    # Envelopes take the worst classification of their contents.
    assert not flush_critical(VoteBatch((MSVote(1, 0, "aa"), MSVote(2, 0, "bb"))))
    assert flush_critical(VoteBatch((MSVote(1, 0, "aa"), MSViewChange(2, 0))))
    # Chained-baseline slot wrappers classify by their inner message.
    assert not flush_critical(SlotMessage(3, BPhaseVote("pbft", 0, 1, "v")))
    assert flush_critical(SlotMessage(3, ViewChange(1)))


def test_repro_no_delay_escape_hatch(monkeypatch):
    from repro.net.transport import delay_enabled

    monkeypatch.delenv("REPRO_NO_DELAY", raising=False)
    assert delay_enabled() is True
    transport = NetTransport(0, HOST, allocate_ports(1)[0], {}, lambda s, m: None)
    assert transport._delay is True
    monkeypatch.setenv("REPRO_NO_DELAY", "1")
    assert delay_enabled() is False
    transport = NetTransport(0, HOST, allocate_ports(1)[0], {}, lambda s, m: None)
    assert transport._delay is False


def test_flush_window_zero_disables_the_hold():
    transport = NetTransport(
        0, HOST, allocate_ports(1)[0], {}, lambda s, m: None, flush_window=0.0
    )
    assert transport._delay is False


def test_delayable_traffic_is_never_held_a_full_window():
    """Liveness bound: even with an absurd 0.5 s flush window, a lone
    delayable frame arrives promptly.  Two mechanisms guarantee it —
    lanes idle at a frames-per-flush target of 1 (no hold at all until
    holds demonstrably merge), and any hold that does run is
    gap-bounded (FLUSH_GAP per wait), not window-bounded."""
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)

    async def scenario():
        transports = []
        for node_id in (0, 1):
            peer = 1 - node_id
            transports.append(
                NetTransport(
                    node_id,
                    HOST,
                    ports[node_id],
                    {peer: (HOST, ports[peer])},
                    lambda sender, msg, nid=node_id: inboxes[nid].append((sender, msg)),
                    flush_window=0.5,
                )
            )
        a, b = transports
        await a.start()
        await b.start()
        try:
            await asyncio.sleep(0.1)  # lanes connected, queues idle
            elapsed = []
            for k in range(40):
                t0 = time.monotonic()
                a.send(1, MSVote(k, 0, "aa"))
                await _wait_for(lambda want=k + 1: len(inboxes[1]) >= want)
                elapsed.append(time.monotonic() - t0)
            return elapsed
        finally:
            await a.stop()
            await b.stop()

    elapsed = asyncio.run(scenario())
    # 40 sends cross a probe interval (32), so at least one of these
    # flushes ran a real probe hold — and still came nowhere near the
    # 0.5 s window.
    assert max(elapsed) < 0.25, max(elapsed)


def test_flush_stats_report_per_peer_counters():
    inboxes = {0: [], 1: []}
    ports = allocate_ports(2)

    async def scenario():
        a, b = _pair(ports, inboxes)
        await a.start()
        await b.start()
        try:
            for k in range(10):
                a.send(1, MSVote(k, 0, "aa"))
            await _wait_for(lambda: len(inboxes[1]) == 10)
            return a.flush_stats()
        finally:
            await a.stop()
            await b.stop()

    stats = asyncio.run(scenario())
    assert len(stats) == 1
    peer_id, flushes, frames, nbytes, held_us = stats[0]
    assert peer_id == 1
    assert 0 < flushes <= 10
    assert frames == 10
    assert nbytes > 0
    assert held_us >= 0
