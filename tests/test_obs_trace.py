"""Commit-path tracer contract: deterministic sampling, breakdown math.

The load-bearing property is that sampling is a pure function of the
txid: every process (gateway, driver, each replica) keeps or drops the
same transactions with zero coordination, so per-stage timestamps from
different processes describe one txn population.
"""

from __future__ import annotations

from repro.obs import TRACE_STAGES, CommitPathTracer, MetricsRegistry


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def test_stage_vocabulary_is_pinned():
    assert TRACE_STAGES == ("admit", "submit", "propose", "finalize", "ack")


def test_sampling_is_deterministic_in_the_txid():
    a = CommitPathTracer(sample_every=4)
    b = CommitPathTracer(sample_every=4)
    txids = [f"tx-{i}" for i in range(200)]
    assert [a.sampled(t) for t in txids] == [b.sampled(t) for t in txids]
    kept = sum(a.sampled(t) for t in txids)
    assert 0 < kept < len(txids)  # roughly 1/4, never all or none


def test_sample_every_zero_disables_tracing():
    tracer = CommitPathTracer(sample_every=0)
    assert not tracer.sampled("tx-1")
    assert not tracer.record("tx-1", "submit")
    assert tracer.spans() == []


def test_span_completes_at_the_terminal_stage():
    clock = FakeClock()
    tracer = CommitPathTracer(sample_every=1, clock=clock, terminal="ack")
    clock.now = 1.0
    assert tracer.record("tx-9", "admit")
    clock.now = 1.5
    tracer.record("tx-9", "submit")
    clock.now = 2.0
    tracer.record("tx-9", "finalize")
    assert tracer.spans() == []  # still open
    clock.now = 2.25
    tracer.record("tx-9", "ack")
    (span,) = tracer.spans()
    assert span["txid"] == "tx-9"
    assert span["stages"] == {"admit": 1.0, "submit": 1.5, "finalize": 2.0, "ack": 2.25}


def test_first_timestamp_per_stage_wins():
    clock = FakeClock()
    tracer = CommitPathTracer(sample_every=1, clock=clock, terminal="finalize")
    tracer.record("tx-1", "submit", at=1.0)
    tracer.record("tx-1", "submit", at=9.0)  # duplicate delivery
    tracer.record("tx-1", "finalize", at=2.0)
    (span,) = tracer.spans()
    assert span["stages"]["submit"] == 1.0


def test_breakdown_reduces_consecutive_stage_pairs():
    tracer = CommitPathTracer(sample_every=1, terminal="ack")
    for i, (submit, fin, ack) in enumerate([(0.0, 1.0, 1.5), (0.0, 3.0, 3.5)]):
        txid = f"tx-{i}"
        tracer.record(txid, "submit", at=submit)
        tracer.record(txid, "finalize", at=fin)
        tracer.record(txid, "ack", at=ack)
    breakdown = tracer.breakdown()
    # "propose" was never seen: the pairs skip over missing stages.
    assert set(breakdown) == {"submit_to_finalize", "finalize_to_ack"}
    sf = breakdown["submit_to_finalize"]
    assert sf["count"] == 2.0 and sf["mean"] == 2.0 and sf["max"] == 3.0
    assert breakdown["finalize_to_ack"]["p50"] == 0.5


def test_publish_exports_gauges_into_a_registry():
    tracer = CommitPathTracer(sample_every=1, terminal="ack")
    tracer.record("tx-1", "submit", at=0.0)
    tracer.record("tx-1", "ack", at=2.0)
    registry = MetricsRegistry(clock=FakeClock())
    tracer.publish(registry)
    snap = registry.snapshot()
    assert snap["trace.submit_to_ack.count"] == 1.0
    assert snap["trace.submit_to_ack.mean"] == 2.0
    assert snap["trace.submit_to_ack.p95"] == 2.0


def test_open_spans_are_capacity_bounded():
    tracer = CommitPathTracer(sample_every=1, capacity=2, terminal="ack")
    assert tracer.record("tx-1", "submit")
    assert tracer.record("tx-2", "submit")
    assert not tracer.record("tx-3", "submit")  # dropped, never tracked
    tracer.record("tx-1", "ack")
    assert tracer.record("tx-3", "submit")  # slot freed by completion
