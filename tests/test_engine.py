"""Tests for the pluggable ConsensusEngine boundary of the SMR layer.

Three concerns:

* **Interface conformance** — both shipped engines (the Multi-shot
  TetraBFT reference and the chained Table 1 baselines) structurally
  satisfy :class:`repro.smr.ConsensusEngine`.
* **Engine-swap determinism** — TetraBFT driven *through* the engine
  boundary is byte-identical to the pre-refactor direct wiring: same
  state digests, same finalized chains, same traces.  The oracle below
  is a faithful copy of the pre-refactor ``Replica`` (constructing
  ``MultiShotNode`` inline), kept so the identity claim stays
  measurable against the exact code shape it replaced.
* **Baseline engines run the full client path** — mempool, in-flight
  dedup, execution and state digests behave identically across
  replicas for every chained engine, including execute-once semantics
  for duplicate transactions and liveness through view changes and
  crash/recovery (the catch-up channel).
"""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.multishot.block import GENESIS_DIGEST, Block
from repro.sim import (
    CrashRecoveryPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)
from repro.sim.runner import NodeContext, SimNode
from repro.smr import (
    ConsensusEngine,
    ENGINE_NAMES,
    InFlightIndex,
    KVStore,
    Mempool,
    Replica,
    Transaction,
    engine_factory,
    multishot_engine,
)

BASELINE_ENGINES = tuple(name for name in ENGINE_NAMES if name != "tetrabft")


# --- pre-refactor oracle -------------------------------------------------------
#
# A faithful copy of the Replica as it stood before the ConsensusEngine
# boundary existed: MultiShotNode constructed directly in __init__,
# everything else identical.  The determinism tests below assert the
# refactored path cannot be told apart from it.


class _DirectWiredReplica(SimNode):
    """The pre-refactor replica: consensus hard-wired to MultiShotNode.

    A sibling copy lives in benchmarks/test_engine_matrix.py;
    benchmarks and tests are separate pytest roots, so each keeps its
    own.  Edit both together or the identity baseline drifts.
    """

    def __init__(self, node_id: int, config: MultiShotConfig, max_batch: int) -> None:
        self.node_id = node_id
        self.mempool = Mempool(max_batch=max_batch)
        self.store = KVStore()
        self.executed_blocks: list[Block] = []
        self._ctx: NodeContext | None = None
        self.consensus = MultiShotNode(
            node_id,
            config,
            payload_fn=self._make_payload,
            on_finalize=self._execute_block,
        )
        self.in_flight = InFlightIndex(self.consensus.store)

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self.consensus.start(ctx)

    def receive(self, sender: int, message: object) -> None:
        self.consensus.receive(sender, message)

    def submit(self, txn: Transaction) -> bool:
        return self.mempool.add(txn)

    @property
    def finalized_chain(self) -> list[Block]:
        return self.consensus.finalized_chain

    def state_digest(self) -> str:
        return self.store.state_digest()

    def _make_payload(self, slot: int, parent: str) -> object:
        del slot
        return self.mempool.next_batch(exclude=self.in_flight.txids_on(parent))

    def _execute_block(self, block: Block) -> None:
        self.executed_blocks.append(block)
        self.in_flight.mark_finalized(block)
        payload = block.payload
        if not isinstance(payload, tuple):
            return
        applied_ids = []
        for txn in payload:
            if not isinstance(txn, Transaction):
                continue
            if self.mempool.is_finalized(txn.txid):
                continue
            self.store.apply(txn.txid, txn.op)
            applied_ids.append(txn.txid)
        self.mempool.mark_finalized(applied_ids)


def _drive(make_replica, policy_fn, n=4, txns=24, batch=4, horizon=120.0):
    """One deterministic SMR run; returns (replicas, trace events)."""
    config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=txns // batch + 10)
    sim = Simulation(policy_fn(), trace_enabled=True)
    replicas = [make_replica(i, config, batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx{k}", ("incr", f"key{k % 3}", 1)))
    sim.run(until=horizon)
    return replicas, list(sim.trace)


_SCENARIOS = {
    "sync": lambda: SynchronousDelays(1.0),
    "crashed-leader": lambda: TargetedDropPolicy(
        SynchronousDelays(1.0), silence_nodes([3]), end=25.0
    ),
}


class TestEngineInterface:
    def test_multishot_node_satisfies_protocol(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4))
        node = MultiShotNode(0, config)
        assert isinstance(node, ConsensusEngine)

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_chained_engines_satisfy_protocol(self, name):
        factory = engine_factory(name, ProtocolConfig.create(4))
        engine = factory(0, lambda slot, parent: (), lambda block: None)
        assert isinstance(engine, ConsensusEngine)

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            engine_factory("raft", ProtocolConfig.create(4))

    def test_replica_requires_config_or_factory(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            Replica(0)

    def test_default_replica_engine_is_multishot(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4))
        replica = Replica(0, config)
        assert isinstance(replica.consensus, MultiShotNode)


class TestEngineSwapDeterminism:
    """TetraBFT over the boundary ≡ the pre-refactor direct wiring."""

    @pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
    def test_byte_identical_to_direct_wiring(self, scenario):
        policy_fn = _SCENARIOS[scenario]
        oracle, oracle_trace = _drive(
            lambda i, config, batch: _DirectWiredReplica(i, config, batch),
            policy_fn,
        )
        engines, engine_trace = _drive(
            lambda i, config, batch: Replica(
                i, max_batch=batch, engine_factory=multishot_engine(config)
            ),
            policy_fn,
        )
        # Same committed bytes on every replica...
        assert [r.state_digest() for r in engines] == [
            r.state_digest() for r in oracle
        ]
        # ...the same finalized chains, digest for digest...
        assert [
            [b.digest for b in r.finalized_chain] for r in engines
        ] == [[b.digest for b in r.finalized_chain] for r in oracle]
        # ...and the very same trace, event for event.
        assert engine_trace == oracle_trace
        # The runs actually did something.
        assert all(r.store.applied_count == 24 for r in engines)

    def test_default_constructor_matches_explicit_factory(self):
        """Replica(i, config) and the factory spelling are one path."""
        direct, _ = _drive(
            lambda i, config, batch: Replica(i, config, max_batch=batch),
            _SCENARIOS["sync"],
        )
        explicit, _ = _drive(
            lambda i, config, batch: Replica(
                i, max_batch=batch, engine_factory=multishot_engine(config)
            ),
            _SCENARIOS["sync"],
        )
        assert [r.state_digest() for r in direct] == [r.state_digest() for r in explicit]


def _run_engine_cluster(name, policy, txns=24, batch=4, horizon=300.0, n=4):
    factory = engine_factory(name, ProtocolConfig.create(n))
    sim = Simulation(policy)
    replicas = [Replica(i, max_batch=batch, engine_factory=factory) for i in range(n)]
    sim.add_nodes(list(replicas))
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx{k}", ("incr", f"key{k % 3}", 1)))
    sim.run(
        until=horizon,
        stop_when=lambda: all(r.store.applied_count >= txns for r in replicas),
        stop_check_interval=16,
    )
    return replicas


class TestChainedEngineClientPath:
    """Every baseline engine runs the full SMR client path."""

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_liveness_and_agreement(self, name):
        replicas = _run_engine_cluster(name, SynchronousDelays(1.0))
        assert all(r.store.applied_count == 24 for r in replicas), name
        assert len({r.state_digest() for r in replicas}) == 1, name
        # Chained engines have no finality lag: every decided block is
        # final, and chains are identical across replicas.
        chains = {
            tuple(b.digest for b in r.finalized_chain) for r in replicas
        }
        assert len(chains) == 1, name

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_execute_once_for_duplicate_blocks(self, name):
        """First execution wins when two finalized blocks share a txn —
        the dedup ledger is engine-independent."""
        factory = engine_factory(name, ProtocolConfig.create(4))
        replica = Replica(0, max_batch=5, engine_factory=factory)
        shared = Transaction("dup", ("incr", "x", 1))
        b1 = Block.create(1, GENESIS_DIGEST, (shared,))
        b2 = Block.create(2, b1.digest, (shared, Transaction("t2", ("incr", "x", 1))))
        replica._execute_block(b1)
        replica._execute_block(b2)
        assert replica.store.get("x") == 2
        assert replica.store.applied_txids == ["dup", "t2"]

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_no_transaction_executes_twice(self, name):
        replicas = _run_engine_cluster(name, SynchronousDelays(1.0))
        for replica in replicas:
            applied = replica.store.applied_txids
            assert len(applied) == len(set(applied)), name

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_liveness_through_silenced_node(self, name):
        """A silenced node forces per-slot view changes; the batch is
        re-proposed by the rotated leader and still commits."""
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]), end=25.0)
        replicas = _run_engine_cluster(name, policy, horizon=400.0)
        assert all(r.store.applied_count == 24 for r in replicas), name
        assert len({r.state_digest() for r in replicas}) == 1, name

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_crashed_node_catches_up(self, name):
        """After an outage the laggard's view-change probes are answered
        with batches of decided blocks (the catch-up channel): it
        converges to the identical state without anyone re-running old
        slots."""
        policy = CrashRecoveryPolicy.periodic(
            SynchronousDelays(1.0),
            node_ids=[3],
            period=100.0,
            outage=10.0,
            horizon=100.0,
        )
        replicas = _run_engine_cluster(name, policy, horizon=400.0)
        assert all(r.store.applied_count == 24 for r in replicas), name
        assert len({r.state_digest() for r in replicas}) == 1, name

    @pytest.mark.parametrize("name", BASELINE_ENGINES)
    def test_catchup_outpaces_rolling_outages(self, name):
        """The bench scenario's schedule — a 10Δ outage every 30Δ, for
        the whole run: each catch-up batch recovers far more chain than
        an outage costs, so the rebooted replica reconverges between
        outages instead of falling ever further behind while its peers
        keep committing."""
        policy = CrashRecoveryPolicy.periodic(
            SynchronousDelays(1.0),
            node_ids=[3],
            period=30.0,
            outage=10.0,
            horizon=400.0,
        )
        replicas = _run_engine_cluster(name, policy, txns=60, batch=5, horizon=400.0)
        assert all(r.store.applied_count == 60 for r in replicas), name
        assert len({r.state_digest() for r in replicas}) == 1, name
