"""Integration tests: full single-shot TetraBFT runs over the simulator."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import (
    PartialSynchronyPolicy,
    PartitionPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    UniformRandomDelays,
    silence_nodes,
)
from tests.conftest import assert_agreement, build_simulation


class TestGoodCase:
    def test_four_nodes_decide_in_five_delays(self):
        sim = build_simulation(4)
        sim.run_until_all_decided(until=100)
        assert_agreement(sim, [0, 1, 2, 3])
        assert sim.metrics.latency.max_decision_time() == 5.0

    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    def test_good_case_latency_independent_of_n(self, n):
        sim = build_simulation(n)
        sim.run_until_all_decided(until=100)
        assert_agreement(sim, list(range(n)))
        assert sim.metrics.latency.max_decision_time() == 5.0

    def test_decided_value_is_first_leaders_input(self):
        sim = build_simulation(4)
        sim.run_until_all_decided(until=100)
        value = assert_agreement(sim, [0, 1, 2, 3])
        assert value == "val-0"

    def test_validity_all_same_input(self):
        """Definition 1 Validity: unanimous inputs decide that input."""
        sim = build_simulation(4, values=lambda i: "same")
        sim.run_until_all_decided(until=100)
        assert assert_agreement(sim, [0, 1, 2, 3]) == "same"

    def test_random_delays_still_agree(self):
        for seed in range(10):
            sim = build_simulation(5, policy=UniformRandomDelays(0.1, 1.0, seed=seed))
            sim.run_until_all_decided(until=300)
            assert_agreement(sim, list(range(5)))

    def test_message_complexity_quadratic_count(self):
        """Each node sends O(n) messages in the good case (n broadcasts
        of constant count), so the total is O(n²) messages."""
        counts = {}
        for n in (4, 8, 16):
            sim = build_simulation(n)
            sim.run_until_all_decided(until=100)
            counts[n] = sim.metrics.messages.total_messages_sent
        assert counts[8] / counts[4] == pytest.approx(4.0, rel=0.3)
        assert counts[16] / counts[8] == pytest.approx(4.0, rel=0.3)


class TestCrashFaults:
    def test_crashed_leader_view_change(self):
        sim = build_simulation(
            4, policy=TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
        )
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=200)
        value = assert_agreement(sim, [1, 2, 3])
        assert value == "val-1"  # view 1's leader proposes its input
        # timeout (9) + view-change latency (7), Table 1.
        assert max(sim.metrics.latency.decision_times.values()) == 16.0

    def test_two_crashed_leaders_in_a_row(self):
        config = ProtocolConfig.create(7)  # f = 2
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0, 1]))
        sim = Simulation(policy)
        for i in range(7):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        correct = list(range(2, 7))
        sim.run_until_all_decided(node_ids=correct, until=400)
        assert_agreement(sim, correct)

    def test_crash_of_f_non_leaders_harmless(self):
        sim = build_simulation(
            4, policy=TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]))
        )
        sim.run_until_all_decided(node_ids=[0, 1, 2], until=100)
        assert_agreement(sim, [0, 1, 2])
        assert sim.metrics.latency.max_decision_time() == 5.0


class TestPartialSynchrony:
    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_and_termination_after_gst(self, seed):
        policy = PartialSynchronyPolicy(gst=30.0, delta=1.0, loss_before_gst=0.8, seed=seed)
        sim = build_simulation(4, policy=policy)
        sim.run_until_all_decided(until=2000)
        assert_agreement(sim, [0, 1, 2, 3])

    def test_total_message_loss_before_gst(self):
        policy = PartialSynchronyPolicy(gst=25.0, delta=1.0, loss_before_gst=1.0, seed=0)
        sim = build_simulation(4, policy=policy)
        sim.run_until_all_decided(until=2000)
        assert_agreement(sim, [0, 1, 2, 3])

    def test_partition_heals_and_decides(self):
        base = SynchronousDelays(1.0)
        policy = PartitionPolicy(base, groups=[frozenset({0, 1})], heal_time=40.0)
        sim = build_simulation(4, policy=policy)
        sim.run_until_all_decided(until=2000)
        assert_agreement(sim, [0, 1, 2, 3])
        # Nothing can decide while partitioned (no quorum on either side).
        assert min(sim.metrics.latency.decision_times.values()) >= 40.0

    def test_storage_stays_constant_through_asynchrony(self):
        policy = PartialSynchronyPolicy(gst=50.0, delta=1.0, loss_before_gst=0.7, seed=3)
        sim = build_simulation(4, policy=policy)
        sim.run_until_all_decided(until=2000)
        sizes = {size for samples in sim.metrics.storage.samples.values() for size in samples}
        assert len(sizes) == 1, f"persistent storage varied: {sizes}"


class TestLargerSystems:
    @pytest.mark.parametrize("n", [10, 19])
    def test_asynchrony_then_agreement(self, n):
        policy = PartialSynchronyPolicy(gst=20.0, delta=1.0, loss_before_gst=0.5, seed=n)
        sim = build_simulation(n, policy=policy)
        sim.run_until_all_decided(until=3000)
        assert_agreement(sim, list(range(n)))
