"""Tests for the SMR layer: mempool, KV store, and full replicas."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.multishot import MultiShotConfig
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore
from repro.sim import (
    PartialSynchronyPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)
from repro.smr import (
    InFlightIndex,
    KVCommandError,
    KVStore,
    Mempool,
    Replica,
    Transaction,
)


class TestMempool:
    def test_fifo_order(self):
        pool = Mempool(max_batch=2)
        for k in range(4):
            pool.add(Transaction(f"t{k}", ("noop",)))
        batch = pool.next_batch()
        assert [t.txid for t in batch] == ["t0", "t1"]

    def test_duplicates_rejected(self):
        pool = Mempool()
        assert pool.add(Transaction("t", ("noop",)))
        assert not pool.add(Transaction("t", ("noop",)))
        assert pool.pending_count == 1

    def test_batch_does_not_remove(self):
        pool = Mempool(max_batch=10)
        pool.add(Transaction("t", ("noop",)))
        pool.next_batch()
        assert pool.pending_count == 1

    def test_finalization_removes_and_blocks_resubmission(self):
        pool = Mempool()
        pool.add(Transaction("t", ("noop",)))
        pool.mark_finalized(["t"])
        assert pool.pending_count == 0
        assert pool.is_finalized("t")
        assert not pool.add(Transaction("t", ("noop",)))

    def test_exclude_skips_in_flight(self):
        pool = Mempool(max_batch=2)
        for k in range(4):
            pool.add(Transaction(f"t{k}", ("noop",)))
        batch = pool.next_batch(exclude=frozenset({"t0", "t1"}))
        assert [t.txid for t in batch] == ["t2", "t3"]

    def test_excluded_txns_parked_in_in_flight_index(self):
        """Excluded txns move to the in-flight index: later proposals
        do not re-walk them at the head of the queue."""
        pool = Mempool(max_batch=2)
        for k in range(4):
            pool.add(Transaction(f"t{k}", ("noop",)))
        pool.next_batch(exclude=frozenset({"t0", "t1"}))
        assert pool.in_flight_count == 2
        assert pool.pending_count == 4  # in flight still counts as queued
        # Same exclusions again: already parked, nothing to rescan.
        batch = pool.next_batch(exclude=frozenset({"t0", "t1"}))
        assert [t.txid for t in batch] == ["t2", "t3"]
        assert pool.in_flight_count == 2

    def test_aborted_in_flight_released_in_fifo_position(self):
        """When an exclusion disappears (block aborted by a view
        change), the txn re-enters the proposable queue in its original
        FIFO position, ahead of later submissions."""
        pool = Mempool(max_batch=4)
        for k in range(3):
            pool.add(Transaction(f"t{k}", ("noop",)))
        pool.next_batch(exclude=frozenset({"t0"}))
        pool.add(Transaction("t3", ("noop",)))
        batch = pool.next_batch()  # t0's block aborted: no exclusions
        assert [t.txid for t in batch] == ["t0", "t1", "t2", "t3"]
        assert pool.in_flight_count == 0

    def test_finalization_clears_in_flight(self):
        pool = Mempool(max_batch=2)
        for k in range(3):
            pool.add(Transaction(f"t{k}", ("noop",)))
        pool.next_batch(exclude=frozenset({"t0"}))
        pool.mark_finalized(["t0"])
        assert pool.in_flight_count == 0
        assert pool.pending_count == 2
        assert pool.is_finalized("t0")
        assert not pool.add(Transaction("t0", ("noop",)))

    def test_duplicate_rejected_while_in_flight(self):
        pool = Mempool(max_batch=2)
        pool.add(Transaction("t0", ("noop",)))
        pool.next_batch(exclude=frozenset({"t0"}))
        assert pool.in_flight_count == 1
        assert not pool.add(Transaction("t0", ("noop",)))


def _payload_block(slot: int, parent: str, txids: list[str]) -> Block:
    payload = tuple(Transaction(txid, ("noop",)) for txid in txids)
    return Block.create(slot, parent, payload)


class TestInFlightIndex:
    def test_collects_unfinalized_lineage(self):
        store = BlockStore()
        index = InFlightIndex(store)
        b1 = _payload_block(1, GENESIS_DIGEST, ["a", "b"])
        b2 = _payload_block(2, b1.digest, ["c"])
        store.add(b1)
        store.add(b2)
        assert index.txids_on(b2.digest) == {"a", "b", "c"}
        assert index.txids_on(b1.digest) == {"a", "b"}
        assert index.txids_on(GENESIS_DIGEST) == set()

    def test_walk_stops_at_finalized_frontier(self):
        store = BlockStore()
        index = InFlightIndex(store)
        b1 = _payload_block(1, GENESIS_DIGEST, ["a"])
        b2 = _payload_block(2, b1.digest, ["b"])
        b3 = _payload_block(3, b2.digest, ["c"])
        for block in (b1, b2, b3):
            store.add(block)
        index.mark_finalized(b1)
        # a left the pool at finalization; only the unfinalized suffix counts.
        assert index.txids_on(b3.digest) == {"b", "c"}
        index.mark_finalized(b2)
        assert index.txids_on(b3.digest) == {"c"}

    def test_missing_body_truncates_walk(self):
        store = BlockStore()
        index = InFlightIndex(store)
        b1 = _payload_block(1, GENESIS_DIGEST, ["a"])
        b2 = _payload_block(2, b1.digest, ["b"])
        store.add(b2)  # b1's body never arrived
        assert index.txids_on(b2.digest) == {"b"}

    def test_non_smr_payloads_contribute_nothing(self):
        store = BlockStore()
        index = InFlightIndex(store)
        block = Block.create(1, GENESIS_DIGEST, "opaque-payload")
        store.add(block)
        assert index.txids_on(block.digest) == set()

    def test_frontier_and_cache_stay_bounded(self):
        """Finalization prunes frontier/cache entries behind the
        retention horizon: memory does not grow with chain length."""
        store = BlockStore()
        index = InFlightIndex(store)
        parent = GENESIS_DIGEST
        chain_len = 3 * InFlightIndex.RETENTION_SLOTS
        for slot in range(1, chain_len + 1):
            block = _payload_block(slot, parent, [f"t{slot}"])
            store.add(block)
            index.txids_on(block.digest)  # populate the cache
            index.mark_finalized(block)
            parent = block.digest
        assert len(index._finalized) <= InFlightIndex.RETENTION_SLOTS + 1
        assert len(index._by_digest) <= InFlightIndex.RETENTION_SLOTS + 1
        # The frontier tip still terminates walks from fresh children.
        child = _payload_block(chain_len + 1, parent, ["fresh"])
        store.add(child)
        assert index.txids_on(child.digest) == {"fresh"}


class TestKVStore:
    def test_set_get_del(self):
        store = KVStore()
        store.apply("1", ("set", "k", "v"))
        assert store.get("k") == "v"
        store.apply("2", ("del", "k"))
        assert store.get("k") is None

    def test_incr_arithmetic(self):
        store = KVStore()
        store.apply("1", ("incr", "c", 5))
        store.apply("2", ("incr", "c", -2))
        assert store.get("c") == 3

    def test_incr_on_non_integer_rejected(self):
        store = KVStore()
        store.apply("1", ("set", "k", "text"))
        with pytest.raises(KVCommandError):
            store.apply("2", ("incr", "k", 1))

    @pytest.mark.parametrize(
        "bad_op",
        [("set", "k"), ("del",), ("incr", "k", "NaN"), ("unknown",), "not-a-tuple", ()],
    )
    def test_malformed_commands_rejected(self, bad_op):
        store = KVStore()
        with pytest.raises(KVCommandError):
            store.apply("1", bad_op)

    def test_digest_covers_order(self):
        a, b = KVStore(), KVStore()
        a.apply("1", ("set", "k", 1))
        a.apply("2", ("set", "k", 2))
        b.apply("2", ("set", "k", 2))
        b.apply("1", ("set", "k", 1))
        assert a.state_digest() != b.state_digest()

    def test_digest_equal_for_equal_histories(self):
        a, b = KVStore(), KVStore()
        for store in (a, b):
            store.apply("1", ("set", "x", 1))
            store.apply("2", ("incr", "x", 1))
        assert a.state_digest() == b.state_digest()


def run_replicas(
    n: int = 4,
    txns: int = 40,
    batch: int = 5,
    policy=None,
    horizon: float = 80.0,
    max_slots: int | None = None,
) -> list[Replica]:
    config = MultiShotConfig(
        base=ProtocolConfig.create(n),
        max_slots=max_slots if max_slots is not None else txns // batch + 10,
    )
    sim = Simulation(policy or SynchronousDelays(1.0))
    replicas = [Replica(i, config, max_batch=batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx{k}", ("incr", f"key{k % 3}", 1)))
    sim.run(until=horizon)
    return replicas


class TestReplicaIntegration:
    def test_replicas_converge_to_identical_state(self):
        replicas = run_replicas()
        digests = {r.state_digest() for r in replicas}
        assert len(digests) == 1

    def test_all_transactions_eventually_execute(self):
        replicas = run_replicas(txns=40, batch=5, horizon=100.0)
        for replica in replicas:
            assert replica.store.applied_count == 40

    def test_no_transaction_executes_twice(self):
        replicas = run_replicas()
        for replica in replicas:
            applied = replica.store.applied_txids
            assert len(applied) == len(set(applied))

    def test_execution_follows_chain_order(self):
        replicas = run_replicas()
        reference = replicas[0].store.applied_txids
        for replica in replicas[1:]:
            assert replica.store.applied_txids == reference

    def test_liveness_through_leader_crash(self):
        """Definition 2 liveness: transactions survive aborted blocks
        (their batches are re-proposed after the view change)."""
        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([3]), end=25.0)
        replicas = run_replicas(policy=policy, horizon=200.0, txns=30, batch=5)
        live = [r for r in replicas]
        digests = {r.state_digest() for r in live}
        assert len(digests) == 1
        assert all(r.store.applied_count == 30 for r in live)

    def test_submission_to_single_replica_insufficient_alone(self):
        """A txn submitted only to a non-leader replica executes only
        once that replica gets to lead a slot — eventually it does."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=16)
        sim = Simulation(SynchronousDelays(1.0))
        replicas = [Replica(i, config, max_batch=5) for i in range(4)]
        for replica in replicas:
            sim.add_node(replica)
        replicas[2].submit(Transaction("solo", ("set", "who", 2)))
        sim.run(until=60)
        for replica in replicas:
            assert replica.store.get("who") == 2

    def test_consistency_under_asynchrony(self):
        for seed in range(4):
            policy = PartialSynchronyPolicy(gst=15.0, delta=1.0, loss_before_gst=0.5, seed=seed)
            replicas = run_replicas(policy=policy, horizon=400.0, txns=20, batch=5)
            digests = {r.state_digest() for r in replicas}
            assert len(digests) == 1, f"seed {seed}: divergent state"


class TestPreStartSubmit:
    """Submissions landing before start() must not be stamped t=0."""

    def _replica_with_trackers(self):
        from repro.metrics.smr_trackers import SMRTrackers

        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=4)
        return Replica(1, config, max_batch=5, trackers=SMRTrackers())

    def test_pre_start_submit_recorded_at_first_tick(self, fake_ctx):
        replica = self._replica_with_trackers()
        assert replica.submit(Transaction("early", ("noop",)))
        # Not yet stamped: the replica has no clock before start().
        assert "early" not in replica.trackers.latency._submitted
        fake_ctx.advance(5.0)
        replica.start(fake_ctx)
        # Stamped at the first tick, not at a fictitious t=0 that
        # would inflate the measured submit→commit latency.
        assert replica.trackers.latency._submitted["early"] == 5.0

    def test_post_start_submit_uses_current_clock(self, fake_ctx):
        replica = self._replica_with_trackers()
        replica.start(fake_ctx)
        fake_ctx.advance(3.0)
        replica.submit(Transaction("late", ("noop",)))
        assert replica.trackers.latency._submitted["late"] == 3.0

    def test_mempool_occupancy_still_sampled_pre_start(self):
        replica = self._replica_with_trackers()
        replica.submit(Transaction("early", ("noop",)))
        assert replica.trackers.throughput.peak_mempool([1]) == 1

    def test_pre_start_submits_still_execute(self):
        """The buffered-stamp path changes accounting only, not liveness."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
        sim = Simulation(SynchronousDelays(1.0))
        from repro.metrics.smr_trackers import SMRTrackers

        trackers = SMRTrackers()
        replicas = [Replica(i, config, max_batch=5, trackers=trackers) for i in range(4)]
        for replica in replicas:
            sim.add_node(replica)
        for k in range(10):
            for replica in replicas:
                replica.submit(Transaction(f"tx{k}", ("incr", "x", 1)))
        sim.run(until=60)
        assert all(r.store.applied_count == 10 for r in replicas)
        assert trackers.latency.sample_count > 0


class _DuplicatingReplica(Replica):
    """A replica that never excludes in-flight transactions.

    Protocol-legal but wasteful: every proposal re-includes whatever is
    pending, so a transaction re-proposed after (or even without) a
    view change lands in several finalized blocks — exactly the
    situation the execute-once dedup ledger exists for.
    """

    def _make_payload(self, slot: int, parent: str) -> object:
        del slot, parent
        return self.mempool.next_batch()


class TestExecuteOnce:
    def test_duplicate_across_finalized_blocks_unit(self):
        """First execution wins when two finalized blocks share a txn."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=8)
        replica = Replica(0, config, max_batch=5)
        shared = Transaction("dup", ("incr", "x", 1))
        b1 = Block.create(1, GENESIS_DIGEST, (shared,))
        b2 = Block.create(2, b1.digest, (shared, Transaction("t2", ("incr", "x", 1))))
        replica._execute_block(b1)
        replica._execute_block(b2)
        assert replica.store.get("x") == 2  # dup applied once, t2 once
        assert replica.store.applied_txids == ["dup", "t2"]

    def test_reproposed_txn_applies_exactly_once_cluster_wide(self):
        """A transaction appearing in two finalized blocks (re-proposed
        around a view change by proposers that skip in-flight exclusion)
        executes exactly once on every replica."""
        n, txns = 4, 12
        config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=20)
        # Silencing node 3 (leader of slot 3) early forces a view change
        # mid-chain, so pending txns are re-proposed across it.
        policy = TargetedDropPolicy(
            SynchronousDelays(1.0), silence_nodes([3]), end=25.0
        )
        sim = Simulation(policy)
        replicas = [_DuplicatingReplica(i, config, max_batch=6) for i in range(n)]
        for replica in replicas:
            sim.add_node(replica)
        for k in range(txns):
            for replica in replicas:
                replica.submit(Transaction(f"tx{k}", ("incr", f"key{k % 3}", 1)))
        sim.run(until=200.0)
        # The duplication premise actually holds: some transaction sits
        # in more than one finalized block.
        reference = replicas[0]
        seen: dict[str, int] = {}
        for block in reference.finalized_chain:
            if isinstance(block.payload, tuple):
                for txn in block.payload:
                    if isinstance(txn, Transaction):
                        seen[txn.txid] = seen.get(txn.txid, 0) + 1
        assert any(count >= 2 for count in seen.values()), (
            "expected at least one txn re-proposed into two finalized blocks"
        )
        # Execute-once: applied exactly once, identically, everywhere.
        for replica in replicas:
            assert replica.store.applied_count == txns
            applied = replica.store.applied_txids
            assert len(applied) == len(set(applied))
        assert len({r.state_digest() for r in replicas}) == 1
        assert len({r.store.applied_count for r in replicas}) == 1
