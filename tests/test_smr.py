"""Tests for the SMR layer: mempool, KV store, and full replicas."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.multishot import MultiShotConfig
from repro.sim import (
    PartialSynchronyPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)
from repro.smr import KVCommandError, KVStore, Mempool, Replica, Transaction


class TestMempool:
    def test_fifo_order(self):
        pool = Mempool(max_batch=2)
        for k in range(4):
            pool.add(Transaction(f"t{k}", ("noop",)))
        batch = pool.next_batch()
        assert [t.txid for t in batch] == ["t0", "t1"]

    def test_duplicates_rejected(self):
        pool = Mempool()
        assert pool.add(Transaction("t", ("noop",)))
        assert not pool.add(Transaction("t", ("noop",)))
        assert pool.pending_count == 1

    def test_batch_does_not_remove(self):
        pool = Mempool(max_batch=10)
        pool.add(Transaction("t", ("noop",)))
        pool.next_batch()
        assert pool.pending_count == 1

    def test_finalization_removes_and_blocks_resubmission(self):
        pool = Mempool()
        pool.add(Transaction("t", ("noop",)))
        pool.mark_finalized(["t"])
        assert pool.pending_count == 0
        assert pool.is_finalized("t")
        assert not pool.add(Transaction("t", ("noop",)))

    def test_exclude_skips_in_flight(self):
        pool = Mempool(max_batch=2)
        for k in range(4):
            pool.add(Transaction(f"t{k}", ("noop",)))
        batch = pool.next_batch(exclude=frozenset({"t0", "t1"}))
        assert [t.txid for t in batch] == ["t2", "t3"]


class TestKVStore:
    def test_set_get_del(self):
        store = KVStore()
        store.apply("1", ("set", "k", "v"))
        assert store.get("k") == "v"
        store.apply("2", ("del", "k"))
        assert store.get("k") is None

    def test_incr_arithmetic(self):
        store = KVStore()
        store.apply("1", ("incr", "c", 5))
        store.apply("2", ("incr", "c", -2))
        assert store.get("c") == 3

    def test_incr_on_non_integer_rejected(self):
        store = KVStore()
        store.apply("1", ("set", "k", "text"))
        with pytest.raises(KVCommandError):
            store.apply("2", ("incr", "k", 1))

    @pytest.mark.parametrize(
        "bad_op",
        [("set", "k"), ("del",), ("incr", "k", "NaN"), ("unknown",), "not-a-tuple", ()],
    )
    def test_malformed_commands_rejected(self, bad_op):
        store = KVStore()
        with pytest.raises(KVCommandError):
            store.apply("1", bad_op)

    def test_digest_covers_order(self):
        a, b = KVStore(), KVStore()
        a.apply("1", ("set", "k", 1))
        a.apply("2", ("set", "k", 2))
        b.apply("2", ("set", "k", 2))
        b.apply("1", ("set", "k", 1))
        assert a.state_digest() != b.state_digest()

    def test_digest_equal_for_equal_histories(self):
        a, b = KVStore(), KVStore()
        for store in (a, b):
            store.apply("1", ("set", "x", 1))
            store.apply("2", ("incr", "x", 1))
        assert a.state_digest() == b.state_digest()


def run_replicas(
    n: int = 4,
    txns: int = 40,
    batch: int = 5,
    policy=None,
    horizon: float = 80.0,
    max_slots: int | None = None,
) -> list[Replica]:
    config = MultiShotConfig(
        base=ProtocolConfig.create(n),
        max_slots=max_slots if max_slots is not None else txns // batch + 10,
    )
    sim = Simulation(policy or SynchronousDelays(1.0))
    replicas = [Replica(i, config, max_batch=batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx{k}", ("incr", f"key{k % 3}", 1)))
    sim.run(until=horizon)
    return replicas


class TestReplicaIntegration:
    def test_replicas_converge_to_identical_state(self):
        replicas = run_replicas()
        digests = {r.state_digest() for r in replicas}
        assert len(digests) == 1

    def test_all_transactions_eventually_execute(self):
        replicas = run_replicas(txns=40, batch=5, horizon=100.0)
        for replica in replicas:
            assert replica.store.applied_count == 40

    def test_no_transaction_executes_twice(self):
        replicas = run_replicas()
        for replica in replicas:
            applied = replica.store.applied_txids
            assert len(applied) == len(set(applied))

    def test_execution_follows_chain_order(self):
        replicas = run_replicas()
        reference = replicas[0].store.applied_txids
        for replica in replicas[1:]:
            assert replica.store.applied_txids == reference

    def test_liveness_through_leader_crash(self):
        """Definition 2 liveness: transactions survive aborted blocks
        (their batches are re-proposed after the view change)."""
        policy = TargetedDropPolicy(
            SynchronousDelays(1.0), silence_nodes([3]), end=25.0
        )
        replicas = run_replicas(policy=policy, horizon=200.0, txns=30, batch=5)
        live = [r for r in replicas]
        digests = {r.state_digest() for r in live}
        assert len(digests) == 1
        assert all(r.store.applied_count == 30 for r in live)

    def test_submission_to_single_replica_insufficient_alone(self):
        """A txn submitted only to a non-leader replica executes only
        once that replica gets to lead a slot — eventually it does."""
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=16)
        sim = Simulation(SynchronousDelays(1.0))
        replicas = [Replica(i, config, max_batch=5) for i in range(4)]
        for replica in replicas:
            sim.add_node(replica)
        replicas[2].submit(Transaction("solo", ("set", "who", 2)))
        sim.run(until=60)
        for replica in replicas:
            assert replica.store.get("who") == 2

    def test_consistency_under_asynchrony(self):
        for seed in range(4):
            policy = PartialSynchronyPolicy(
                gst=15.0, delta=1.0, loss_before_gst=0.5, seed=seed
            )
            replicas = run_replicas(
                policy=policy, horizon=400.0, txns=20, batch=5
            )
            digests = {r.state_digest() for r in replicas}
            assert len(digests) == 1, f"seed {seed}: divergent state"
