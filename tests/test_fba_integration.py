"""Heterogeneous-trust extension: TetraBFT over an FBA quorum system.

The paper (§1.2) argues unauthenticated protocols transfer to federated
trust models like Stellar's FBA, where quorums come from per-node slice
declarations instead of a global n/f.  The node state machines in this
library only ever talk to the :class:`QuorumSystem` interface, so the
transfer is literal: build a ProtocolConfig around an FBAQuorumSystem
and run the unchanged TetraBFTNode.
"""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, TetraBFTNode
from repro.quorums import FBAQuorumSystem, SliceConfig, validate_fba_system
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    UniformRandomDelays,
    silence_nodes,
)
from tests.conftest import assert_agreement


def symmetric_fba(n: int = 4, k: int = 2) -> FBAQuorumSystem:
    return FBAQuorumSystem.from_slices([SliceConfig.threshold(i, range(n), k=k) for i in range(n)])


def tiered_fba() -> FBAQuorumSystem:
    """Three core nodes trusting 2-of-core; two leaves trusting the core.

    A realistic federated topology: the core can make progress alone,
    leaves follow the core.
    """
    core = [SliceConfig.threshold(i, [0, 1, 2], k=2) for i in (0, 1, 2)]
    leaves = [
        SliceConfig(node=3, slices=frozenset([frozenset({0, 1, 3}), frozenset({1, 2, 3})])),
        SliceConfig(node=4, slices=frozenset([frozenset({0, 2, 4}), frozenset({1, 2, 4})])),
    ]
    return FBAQuorumSystem.from_slices(core + leaves)


def build_fba_sim(qs: FBAQuorumSystem, policy=None) -> Simulation:
    config = ProtocolConfig(quorum_system=qs)
    sim = Simulation(policy or SynchronousDelays(1.0))
    for i in sorted(qs.nodes):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    return sim


class TestSymmetricFBA:
    def test_good_case_matches_threshold_behaviour(self):
        qs = symmetric_fba()
        validate_fba_system(qs)
        sim = build_fba_sim(qs)
        sim.run_until_all_decided(until=100)
        assert_agreement(sim, [0, 1, 2, 3])
        assert sim.metrics.latency.max_decision_time() == 5.0

    def test_crashed_leader_view_change(self):
        qs = symmetric_fba()
        sim = build_fba_sim(qs, TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0])))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=300)
        assert_agreement(sim, [1, 2, 3])

    @pytest.mark.parametrize("seed", range(5))
    def test_random_delays(self, seed):
        sim = build_fba_sim(symmetric_fba(), UniformRandomDelays(0.2, 1.0, seed=seed))
        sim.run_until_all_decided(until=500)
        assert_agreement(sim, [0, 1, 2, 3])


class TestTieredFBA:
    def test_validates(self):
        validate_fba_system(tiered_fba())

    def test_all_nodes_decide_and_agree(self):
        sim = build_fba_sim(tiered_fba())
        sim.run_until_all_decided(until=300)
        assert_agreement(sim, [0, 1, 2, 3, 4])

    def test_core_alone_is_a_quorum(self):
        qs = tiered_fba()
        assert qs.is_quorum({0, 1, 2})
        # Leaves cannot form one without the core.
        assert not qs.is_quorum({3, 4})

    def test_progress_with_crashed_leaf(self):
        """The core plus one leaf still decides when a leaf crashes."""
        sim = build_fba_sim(
            tiered_fba(),
            TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([4])),
        )
        sim.run_until_all_decided(node_ids=[0, 1, 2, 3], until=300)
        assert_agreement(sim, [0, 1, 2, 3])
