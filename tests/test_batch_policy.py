"""Unit contract of the adaptive/fixed chunk-cap policies.

The :class:`~repro.multishot.batching.AdaptiveBatchPolicy` is the one
controller shared by all three adaptive planes (engine batching,
transport delayed flush, gateway submission batching), so its algebra
is pinned here once: determinism (a pure function of the observation
sequence), clamped bounds, hysteresis (no oscillation on flat load),
patience-gated decay, and the fixed-mode reference arm that reproduces
the historical constant byte-for-byte.  ``REPRO_BATCH_POLICY`` parsing
is covered alongside because the env knob is the only selection
surface the replica processes have.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.multishot.batching import (
    ADAPTIVE_HI,
    ADAPTIVE_LO,
    MAX_BATCH,
    AdaptiveBatchPolicy,
    BatchingContext,
    FixedBatchPolicy,
    batch_policy_from_env,
)


def limits_after(policy: AdaptiveBatchPolicy, observations) -> list[int]:
    """The limit trajectory one observation sequence produces."""
    trajectory = []
    for occupancy in observations:
        policy.observe(occupancy)
        trajectory.append(policy.limit)
    return trajectory


class TestAdaptivePolicy:
    def test_deterministic_replay(self):
        """Same observation sequence, same limit trajectory — no clocks,
        no randomness, nothing but the observations."""
        observations = [1, 2, 8, 8, 1, 1, 1, 1, 32, 3, 1, 2, 64, 64, 1] * 10
        a = limits_after(AdaptiveBatchPolicy(lo=2, hi=64, start=8), observations)
        b = limits_after(AdaptiveBatchPolicy(lo=2, hi=64, start=8), observations)
        assert a == b

    def test_growth_doubles_and_clamps_at_hi(self):
        policy = AdaptiveBatchPolicy(lo=1, hi=20, start=4)
        policy.observe(4)
        assert policy.limit == 8
        policy.observe(8)
        assert policy.limit == 16
        policy.observe(16)
        assert policy.limit == 20  # clamp, not 32
        policy.observe(20)
        assert policy.limit == 20

    def test_decay_halves_and_clamps_at_lo(self):
        # lo_band=0.5 so occupancy 1 is low pressure at every limit
        # down to the clamp (with the default 0.25 band, 1 is *in* band
        # once the limit reaches 4 — see the transport lanes, which
        # pick wide bands for exactly this reason).
        policy = AdaptiveBatchPolicy(
            lo=3, hi=64, start=16, patience=1, lo_band=0.5, hi_band=0.9
        )
        policy.observe(1)
        assert policy.limit == 8
        policy.observe(1)
        assert policy.limit == 4
        policy.observe(1)
        assert policy.limit == 3  # clamp, not 2
        policy.observe(1)
        assert policy.limit == 3

    def test_start_is_clamped_into_bounds(self):
        assert AdaptiveBatchPolicy(lo=4, hi=32, start=1).limit == 4
        assert AdaptiveBatchPolicy(lo=4, hi=32, start=100).limit == 32
        assert AdaptiveBatchPolicy(lo=4, hi=32).limit == 4  # default start=lo

    def test_singleton_flush_is_never_growth_pressure(self):
        """occupancy 1 trivially fills a limit-1 policy; growing on it
        would make every idle lane ratchet upward."""
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=1)
        for _ in range(50):
            policy.observe(1)
        assert policy.limit == 1

    def test_in_band_occupancy_never_moves_the_limit(self):
        """Hysteresis: flat load inside the band is stable forever."""
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=16)
        # band at limit 16 (defaults): [0.25*16, 0.75*16) = [4, 12)
        assert limits_after(policy, [8] * 200) == [16] * 200

    def test_no_oscillation_after_growth(self):
        """The occupancy that triggered growth sits inside the doubled
        limit's band, so constant load settles instead of flapping."""
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=8)
        policy.observe(8)  # 8 >= 0.75*8 -> grow to 16
        assert policy.limit == 16
        # 8 is in [0.25*16, 0.75*16) = [4, 12): stable from here on.
        assert limits_after(policy, [8] * 100) == [16] * 100

    def test_decay_needs_patience_consecutive_lows(self):
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=16, patience=3)
        policy.observe(1)
        policy.observe(1)
        assert policy.limit == 16  # two lows, not enough
        policy.observe(1)
        assert policy.limit == 8  # third consecutive low decays

    def test_in_band_observation_resets_the_low_streak(self):
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=16, patience=2)
        policy.observe(1)
        policy.observe(8)  # in band: streak resets
        policy.observe(1)
        assert policy.limit == 16
        policy.observe(1)
        assert policy.limit == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(lo=0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(lo=8, hi=4)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(lo_band=0.8, hi_band=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(lo_band=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(hi_band=1.5)
        with pytest.raises(ConfigurationError):
            AdaptiveBatchPolicy(patience=0)


class TestFixedPolicy:
    def test_limit_never_moves(self):
        policy = FixedBatchPolicy(10)
        for occupancy in (1, 100, 0, 10, 5000):
            policy.observe(occupancy)
            assert policy.limit == 10

    def test_default_is_the_historical_constant(self):
        assert FixedBatchPolicy().limit == MAX_BATCH

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ConfigurationError):
            FixedBatchPolicy(0)

    def test_fixed_mode_equivalence_with_saturated_adaptive(self):
        """An adaptive policy pinned to [n, n] is the fixed policy: the
        same limit on every step of any observation sequence."""
        observations = [1, 2, 32, 32, 1, 1, 1, 1, 7, 64] * 5
        pinned = AdaptiveBatchPolicy(lo=MAX_BATCH, hi=MAX_BATCH, start=MAX_BATCH)
        fixed = FixedBatchPolicy(MAX_BATCH)
        for occupancy in observations:
            pinned.observe(occupancy)
            fixed.observe(occupancy)
            assert pinned.limit == fixed.limit == MAX_BATCH


class TestEnvSelection:
    def test_default_is_adaptive_seeded_at_the_constant(self, monkeypatch):
        monkeypatch.delenv("REPRO_BATCH_POLICY", raising=False)
        policy = batch_policy_from_env()
        assert isinstance(policy, AdaptiveBatchPolicy)
        assert policy.limit == MAX_BATCH
        assert (policy.lo, policy.hi) == (ADAPTIVE_LO, ADAPTIVE_HI)

    def test_explicit_adaptive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_POLICY", "adaptive")
        assert isinstance(batch_policy_from_env(), AdaptiveBatchPolicy)

    def test_fixed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed")
        policy = batch_policy_from_env()
        assert isinstance(policy, FixedBatchPolicy)
        assert policy.limit == MAX_BATCH

    def test_fixed_with_explicit_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed:5")
        policy = batch_policy_from_env()
        assert isinstance(policy, FixedBatchPolicy)
        assert policy.limit == 5

    def test_fixed_with_garbage_cap_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed:lots")
        with pytest.raises(ConfigurationError):
            batch_policy_from_env()

    def test_unknown_policy_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_POLICY", "nagle")
        with pytest.raises(ConfigurationError):
            batch_policy_from_env()


class _RecordingContext:
    """Bare NodeContext stand-in that records broadcast payloads."""

    node_id = 0
    now = 0.0

    def __init__(self):
        self.broadcasts = []

    def broadcast(self, message):
        self.broadcasts.append(message)

    def send(self, dst, message):
        pass

    def set_timer(self, delay, callback):
        return None


class TestBatchingContextPolicy:
    def test_flush_chunks_at_the_policy_limit(self):
        from repro.multishot.messages import VoteBatch

        inner = _RecordingContext()
        ctx = BatchingContext(inner, policy=FixedBatchPolicy(3))
        for k in range(7):
            ctx.broadcast(("m", k))
        ctx.flush()
        sizes = [
            len(b.messages) if isinstance(b, VoteBatch) else 1 for b in inner.broadcasts
        ]
        assert sizes == [3, 3, 1]

    def test_adaptive_policy_observes_flush_occupancy(self):
        policy = AdaptiveBatchPolicy(lo=1, hi=64, start=4)
        ctx = BatchingContext(_RecordingContext(), policy=policy)
        for k in range(4):
            ctx.broadcast(("m", k))
        ctx.flush()  # occupancy 4 >= 0.75*4: the cap widens
        assert policy.limit == 8
