"""Unit and property tests for the constant persistent vote storage."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EMPTY_VOTE, Phase, VoteStorage
from repro.errors import ProtocolViolation


class TestVoteStorage:
    def test_starts_empty(self):
        storage = VoteStorage()
        for phase in Phase:
            assert storage.highest_vote(phase).is_empty
        assert storage.prev_vote(Phase.VOTE1).is_empty
        assert storage.prev_vote(Phase.VOTE2).is_empty

    def test_highest_tracks_latest_vote(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE1, 3, "a")
        record = storage.highest_vote(Phase.VOTE1)
        assert (record.view, record.value) == (3, "a")

    def test_prev_updates_on_value_change(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE2, 1, "a")
        storage.record_vote(Phase.VOTE2, 2, "b")
        assert storage.highest_vote(Phase.VOTE2).value == "b"
        prev = storage.prev_vote(Phase.VOTE2)
        assert (prev.view, prev.value) == (1, "a")

    def test_prev_unchanged_on_same_value(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE2, 1, "a")
        storage.record_vote(Phase.VOTE2, 2, "b")
        storage.record_vote(Phase.VOTE2, 3, "b")
        prev = storage.prev_vote(Phase.VOTE2)
        assert (prev.view, prev.value) == (1, "a")

    def test_prev_replaced_when_old_highest_differs(self):
        # votes: (1,a) (2,b) (3,a) → prev must be (2,b), not (1,a).
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE1, 1, "a")
        storage.record_vote(Phase.VOTE1, 2, "b")
        storage.record_vote(Phase.VOTE1, 3, "a")
        prev = storage.prev_vote(Phase.VOTE1)
        assert (prev.view, prev.value) == (2, "b")

    def test_same_view_revote_allowed_for_equal_view(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE3, 2, "a")
        storage.record_vote(Phase.VOTE3, 2, "a")
        assert storage.highest_vote(Phase.VOTE3).view == 2

    def test_decreasing_view_rejected(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE1, 5, "a")
        with pytest.raises(ProtocolViolation):
            storage.record_vote(Phase.VOTE1, 4, "b")

    def test_no_prev_slot_for_phases_3_and_4(self):
        storage = VoteStorage()
        for phase in (Phase.VOTE3, Phase.VOTE4):
            with pytest.raises(ProtocolViolation):
                storage.prev_vote(phase)

    def test_suggest_message_reflects_slots(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE2, 1, "a")
        storage.record_vote(Phase.VOTE2, 4, "b")
        storage.record_vote(Phase.VOTE3, 2, "a")
        suggest = storage.make_suggest(view=5)
        assert suggest.view == 5
        assert (suggest.vote2.view, suggest.vote2.value) == (4, "b")
        assert (suggest.prev_vote2.view, suggest.prev_vote2.value) == (1, "a")
        assert (suggest.vote3.view, suggest.vote3.value) == (2, "a")

    def test_proof_message_reflects_slots(self):
        storage = VoteStorage()
        storage.record_vote(Phase.VOTE1, 2, "x")
        storage.record_vote(Phase.VOTE4, 1, "x")
        proof = storage.make_proof(view=3)
        assert (proof.vote1.view, proof.vote1.value) == (2, "x")
        assert proof.prev_vote1 is EMPTY_VOTE or proof.prev_vote1.is_empty
        assert (proof.vote4.view, proof.vote4.value) == (1, "x")

    def test_size_is_constant(self):
        storage = VoteStorage()
        baseline = storage.size_bytes()
        for view in range(100):
            storage.record_vote(Phase.VOTE1, view, f"value-{view}")
            storage.record_vote(Phase.VOTE2, view, f"value-{view}")
        assert storage.size_bytes() == baseline

    def test_snapshot_has_all_six_slots(self):
        snapshot = VoteStorage().snapshot()
        assert set(snapshot) == {
            "highest_vote1", "highest_vote2", "highest_vote3", "highest_vote4",
            "prev_vote1", "prev_vote2",
        }


# -- property tests: the invariants the paper's Lemma 1 relies on ------------------

vote_sequences = st.lists(
    st.tuples(st.integers(0, 8), st.sampled_from(["a", "b", "c"])),
    min_size=1,
    max_size=30,
)


def _record_monotone(storage: VoteStorage, phase: Phase, seq):
    """Record the subsequence with non-decreasing views (as a correct
    node would produce) and return it."""
    recorded = []
    current = -1
    for view, value in seq:
        if view < current:
            continue
        storage.record_vote(phase, view, value)
        recorded.append((view, value))
        current = view
    return recorded


@given(seq=vote_sequences)
@settings(max_examples=200)
def test_highest_is_the_last_vote(seq):
    storage = VoteStorage()
    recorded = _record_monotone(storage, Phase.VOTE2, seq)
    view, value = recorded[-1]
    record = storage.highest_vote(Phase.VOTE2)
    assert (record.view, record.value) == (view, value)


@given(seq=vote_sequences)
@settings(max_examples=200)
def test_prev_is_highest_vote_with_different_value(seq):
    """The second-highest slot equals the spec: the highest recorded
    vote whose value differs from the current highest's."""
    storage = VoteStorage()
    recorded = _record_monotone(storage, Phase.VOTE2, seq)
    highest_value = recorded[-1][1]
    differing = [(v, val) for v, val in recorded if val != highest_value]
    prev = storage.prev_vote(Phase.VOTE2)
    if not differing:
        assert prev.is_empty
    else:
        expected_view = max(v for v, _ in differing)
        assert prev.view == expected_view
        assert prev.value != highest_value


@given(seq=vote_sequences)
@settings(max_examples=100)
def test_lemma1_claim_preservation(seq):
    """Lemma 1's mechanism: after voting for `val` in view `v`, the
    suggest/proof records always let the node claim `val` safe at any
    view ≤ v (either the highest vote is still for val at ≥ v, or the
    second-highest reaches ≥ v)."""
    from repro.core.rules import claims_safe

    storage = VoteStorage()
    recorded = _record_monotone(storage, Phase.VOTE2, seq)
    for view, value in recorded:
        vote = storage.highest_vote(Phase.VOTE2)
        prev = storage.prev_vote(Phase.VOTE2)
        for v_prime in range(view + 1):
            assert claims_safe(vote, prev, v_prime, value), (
                f"cannot claim {value!r} safe at {v_prime} after voting "
                f"for it at {view}; storage: {storage.snapshot()}"
            )
