"""Unit tests for the network substrate and delay policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.metrics import MessageMetrics
from repro.sim import (
    EventScheduler,
    Network,
    PartialSynchronyPolicy,
    SynchronousDelays,
    UniformRandomDelays,
)


def make_network(policy) -> tuple[EventScheduler, Network, dict[int, list]]:
    sched = EventScheduler()
    net = Network(sched, policy, metrics=MessageMetrics())
    inboxes: dict[int, list] = {}
    for node in range(3):
        inboxes[node] = []
        net.register(node, lambda s, m, n=node: inboxes[n].append((s, m)))
    return sched, net, inboxes


def test_synchronous_delivery_takes_exactly_delta():
    sched, net, inboxes = make_network(SynchronousDelays(2.0))
    net.send(0, 1, "hello")
    sched.run()
    assert sched.now == 2.0
    assert inboxes[1] == [(0, "hello")]


def test_broadcast_reaches_everyone_including_sender():
    sched, net, inboxes = make_network(SynchronousDelays(1.0))
    net.broadcast(0, "ping")
    sched.run()
    for node in range(3):
        assert inboxes[node] == [(0, "ping")]


def test_sender_identity_is_truthful():
    """Channels are authenticated: the delivery callback sees the true
    source, not anything the message claims."""
    sched, net, inboxes = make_network(SynchronousDelays(1.0))
    net.send(2, 0, {"claims_to_be": 1})
    sched.run()
    (sender, _message), = inboxes[0]
    assert sender == 2


def test_unknown_destination_rejected():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    with pytest.raises(SimulationError):
        net.send(0, 42, "x")


def test_duplicate_registration_rejected():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    with pytest.raises(SimulationError):
        net.register(0, lambda s, m: None)


def test_metrics_count_sends_and_bytes():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    net.broadcast(1, "abcdef")
    sched.run()
    metrics = net.metrics
    assert metrics.sent_count[1] == 3
    assert metrics.total_messages_sent == 3
    assert metrics.bytes_sent_by_node[1] == 3 * 6  # len("abcdef") per copy


def test_uniform_delays_within_bounds_and_deterministic():
    policy_a = UniformRandomDelays(0.5, 2.0, seed=7)
    policy_b = UniformRandomDelays(0.5, 2.0, seed=7)
    delays_a = [policy_a.delay(0.0, 0, 1, None) for _ in range(50)]
    delays_b = [policy_b.delay(0.0, 0, 1, None) for _ in range(50)]
    assert delays_a == delays_b
    assert all(0.5 <= d <= 2.0 for d in delays_a)


def test_uniform_delays_validation():
    with pytest.raises(ConfigurationError):
        UniformRandomDelays(2.0, 1.0)
    with pytest.raises(ConfigurationError):
        UniformRandomDelays(0.0, 1.0)


class TestPartialSynchrony:
    def test_post_gst_messages_bounded_by_delta(self):
        policy = PartialSynchronyPolicy(gst=10.0, delta=1.5, seed=1)
        for t in (10.0, 11.0, 100.0):
            assert policy.delay(t, 0, 1, None) == 1.5

    def test_post_gst_delta_min_range(self):
        policy = PartialSynchronyPolicy(gst=0.0, delta=2.0, delta_min=0.5, seed=3)
        delays = [policy.delay(1.0, 0, 1, None) for _ in range(50)]
        assert all(0.5 <= d <= 2.0 for d in delays)

    def test_pre_gst_messages_may_be_lost(self):
        policy = PartialSynchronyPolicy(gst=100.0, delta=1.0, loss_before_gst=1.0, seed=2)
        assert policy.delay(0.0, 0, 1, None) is None

    def test_pre_gst_survivors_defer_to_gst(self):
        policy = PartialSynchronyPolicy(
            gst=50.0, delta=1.0, loss_before_gst=0.0, seed=4
        )
        for _ in range(20):
            delay = policy.delay(0.0, 0, 1, None)
            assert delay is not None
            assert 0.0 + delay >= 50.0  # never delivered before GST

    def test_zero_loss_no_defer_keeps_raw_delays(self):
        policy = PartialSynchronyPolicy(
            gst=50.0, delta=1.0, loss_before_gst=0.0,
            max_delay_before_gst=5.0, defer_to_gst=False, seed=5,
        )
        delays = [policy.delay(0.0, 0, 1, None) for _ in range(20)]
        assert all(d is not None and d <= 5.0 for d in delays)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=0.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, delta_min=2.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, loss_before_gst=1.5)


def test_drop_recorded_in_metrics():
    policy = PartialSynchronyPolicy(gst=100.0, delta=1.0, loss_before_gst=1.0, seed=0)
    sched = EventScheduler()
    net = Network(sched, policy)
    received = []
    net.register(0, lambda s, m: received.append(m))
    net.register(1, lambda s, m: received.append(m))
    net.send(0, 1, "lost")
    sched.run()
    assert received == []
    assert net.metrics.dropped_count[0] == 1
