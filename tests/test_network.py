"""Unit tests for the network substrate and delay policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.metrics import MessageMetrics
from repro.sim import (
    CrashRecoveryPolicy,
    EventScheduler,
    GeoLatencyPolicy,
    Network,
    PartialSynchronyPolicy,
    SynchronousDelays,
    Trace,
    TraceKind,
    UniformRandomDelays,
)


def make_network(policy) -> tuple[EventScheduler, Network, dict[int, list]]:
    sched = EventScheduler()
    net = Network(sched, policy, metrics=MessageMetrics())
    inboxes: dict[int, list] = {}
    for node in range(3):
        inboxes[node] = []
        net.register(node, lambda s, m, n=node: inboxes[n].append((s, m)))
    return sched, net, inboxes


def test_synchronous_delivery_takes_exactly_delta():
    sched, net, inboxes = make_network(SynchronousDelays(2.0))
    net.send(0, 1, "hello")
    sched.run()
    assert sched.now == 2.0
    assert inboxes[1] == [(0, "hello")]


def test_broadcast_reaches_everyone_including_sender():
    sched, net, inboxes = make_network(SynchronousDelays(1.0))
    net.broadcast(0, "ping")
    sched.run()
    for node in range(3):
        assert inboxes[node] == [(0, "ping")]


def test_sender_identity_is_truthful():
    """Channels are authenticated: the delivery callback sees the true
    source, not anything the message claims."""
    sched, net, inboxes = make_network(SynchronousDelays(1.0))
    net.send(2, 0, {"claims_to_be": 1})
    sched.run()
    (sender, _message), = inboxes[0]
    assert sender == 2


def test_unknown_destination_rejected():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    with pytest.raises(SimulationError):
        net.send(0, 42, "x")


def test_duplicate_registration_rejected():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    with pytest.raises(SimulationError):
        net.register(0, lambda s, m: None)


def test_metrics_count_sends_and_bytes():
    sched, net, _ = make_network(SynchronousDelays(1.0))
    net.broadcast(1, "abcdef")
    sched.run()
    metrics = net.metrics
    assert metrics.sent_count[1] == 3
    assert metrics.total_messages_sent == 3
    assert metrics.bytes_sent_by_node[1] == 3 * 6  # len("abcdef") per copy


def test_uniform_delays_within_bounds_and_deterministic():
    policy_a = UniformRandomDelays(0.5, 2.0, seed=7)
    policy_b = UniformRandomDelays(0.5, 2.0, seed=7)
    delays_a = [policy_a.delay(0.0, 0, 1, None) for _ in range(50)]
    delays_b = [policy_b.delay(0.0, 0, 1, None) for _ in range(50)]
    assert delays_a == delays_b
    assert all(0.5 <= d <= 2.0 for d in delays_a)


def test_uniform_delays_validation():
    with pytest.raises(ConfigurationError):
        UniformRandomDelays(2.0, 1.0)
    with pytest.raises(ConfigurationError):
        UniformRandomDelays(0.0, 1.0)


class TestPartialSynchrony:
    def test_post_gst_messages_bounded_by_delta(self):
        policy = PartialSynchronyPolicy(gst=10.0, delta=1.5, seed=1)
        for t in (10.0, 11.0, 100.0):
            assert policy.delay(t, 0, 1, None) == 1.5

    def test_post_gst_delta_min_range(self):
        policy = PartialSynchronyPolicy(gst=0.0, delta=2.0, delta_min=0.5, seed=3)
        delays = [policy.delay(1.0, 0, 1, None) for _ in range(50)]
        assert all(0.5 <= d <= 2.0 for d in delays)

    def test_pre_gst_messages_may_be_lost(self):
        policy = PartialSynchronyPolicy(gst=100.0, delta=1.0, loss_before_gst=1.0, seed=2)
        assert policy.delay(0.0, 0, 1, None) is None

    def test_pre_gst_survivors_defer_to_gst(self):
        policy = PartialSynchronyPolicy(gst=50.0, delta=1.0, loss_before_gst=0.0, seed=4)
        for _ in range(20):
            delay = policy.delay(0.0, 0, 1, None)
            assert delay is not None
            assert 0.0 + delay >= 50.0  # never delivered before GST

    def test_zero_loss_no_defer_keeps_raw_delays(self):
        policy = PartialSynchronyPolicy(
            gst=50.0, delta=1.0, loss_before_gst=0.0,
            max_delay_before_gst=5.0, defer_to_gst=False, seed=5,
        )
        delays = [policy.delay(0.0, 0, 1, None) for _ in range(20)]
        assert all(d is not None and d <= 5.0 for d in delays)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=0.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, delta_min=2.0)
        with pytest.raises(ConfigurationError):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, loss_before_gst=1.5)

    def test_validation_messages_name_the_actual_failure(self):
        # Regression: a non-positive delta_min used to report
        # "{delta_min} > {delta}" even though the failure was the sign.
        with pytest.raises(ConfigurationError, match="delta_min must be positive"):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, delta_min=0.0)
        with pytest.raises(ConfigurationError, match="delta_min cannot exceed delta"):
            PartialSynchronyPolicy(gst=0.0, delta=1.0, delta_min=2.0)


class TestGeoLatency:
    def make(self, **overrides):
        params = dict(
            region_of={0: "us", 1: "us", 2: "eu"},
            latency={("us", "us"): 0.05, ("us", "eu"): 0.4},
            default=0.8,
        )
        params.update(overrides)
        return GeoLatencyPolicy(**params)

    def test_matrix_lookup(self):
        policy = self.make()
        assert policy.delay(0.0, 0, 1, None) == 0.05

    def test_reverse_pair_fallback_makes_links_symmetric(self):
        policy = self.make()
        assert policy.delay(0.0, 0, 2, None) == 0.4  # us -> eu
        assert policy.delay(0.0, 2, 0, None) == 0.4  # eu -> us, reversed key

    def test_unknown_pair_uses_default(self):
        policy = self.make(region_of={0: "us", 1: "us", 2: "asia"})
        assert policy.delay(0.0, 0, 2, None) == 0.8

    def test_jitter_is_bounded_and_deterministic_per_seed(self):
        delays_a = []
        delays_b = []
        policy_a = self.make(jitter=0.2, seed=9)
        policy_b = self.make(jitter=0.2, seed=9)
        for _ in range(50):
            delays_a.append(policy_a.delay(0.0, 0, 2, None))
            delays_b.append(policy_b.delay(0.0, 0, 2, None))
        assert delays_a == delays_b
        assert all(0.4 <= d <= 0.6 for d in delays_a)

    def test_delta_cap_validates_worst_case(self):
        with pytest.raises(ConfigurationError, match="delta_cap"):
            self.make(jitter=0.5, delta_cap=1.0)  # default 0.8 + 0.5 > 1.0
        self.make(jitter=0.1, delta_cap=1.0)  # 0.9 <= 1.0: fine

    def test_latencies_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            self.make(latency={("us", "us"): 0.0})
        with pytest.raises(ConfigurationError):
            self.make(default=0.0)
        with pytest.raises(ConfigurationError):
            self.make(jitter=-0.1)


class TestCrashRecovery:
    def test_messages_touching_a_down_node_are_dropped(self):
        policy = CrashRecoveryPolicy(SynchronousDelays(1.0), downtime={2: [(5.0, 10.0)]})
        assert policy.delay(6.0, 2, 0, None) is None  # down sender
        assert policy.delay(6.0, 0, 2, None) is None  # down receiver
        assert policy.delay(6.0, 0, 1, None) == 1.0  # unaffected link

    def test_node_recovers_at_interval_end(self):
        policy = CrashRecoveryPolicy(SynchronousDelays(1.0), downtime={2: [(5.0, 10.0)]})
        assert policy.delay(4.9, 0, 2, None) == 1.0
        assert policy.delay(10.0, 0, 2, None) == 1.0  # half-open interval

    def test_periodic_schedule_rolls_through_nodes(self):
        policy = CrashRecoveryPolicy.periodic(
            SynchronousDelays(1.0),
            node_ids=[0, 1],
            period=20.0,
            outage=5.0,
            horizon=50.0,
            stagger=10.0,
        )
        assert policy.downtime[0] == [(0.0, 5.0), (20.0, 25.0), (40.0, 45.0)]
        assert policy.downtime[1] == [(10.0, 15.0), (30.0, 35.0)]
        assert policy.is_down(0, 2.0)
        assert not policy.is_down(0, 7.0)
        assert policy.is_down(1, 12.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            CrashRecoveryPolicy(SynchronousDelays(1.0), downtime={0: [(5.0, 5.0)]})

    def test_periodic_rejects_non_positive_period_and_outage(self):
        # Regression: period<=0 used to loop forever building intervals.
        with pytest.raises(ConfigurationError, match="period"):
            CrashRecoveryPolicy.periodic(
                SynchronousDelays(1.0), [0], period=0.0, outage=1.0, horizon=10.0
            )
        with pytest.raises(ConfigurationError, match="outage"):
            CrashRecoveryPolicy.periodic(
                SynchronousDelays(1.0), [0], period=5.0, outage=-1.0, horizon=10.0
            )

    def test_periodic_rejects_outage_covering_the_whole_period(self):
        # outage >= period would mean the node never actually recovers —
        # a crash-only fault wearing a churn label.
        with pytest.raises(ConfigurationError, match="never recover"):
            CrashRecoveryPolicy.periodic(
                SynchronousDelays(1.0), [0], period=5.0, outage=5.0, horizon=10.0
            )

    def test_end_to_end_drop_then_deliver(self):
        policy = CrashRecoveryPolicy(SynchronousDelays(1.0), downtime={1: [(0.0, 3.0)]})
        sched, net, inboxes = make_network(policy)
        net.send(0, 1, "early")  # node 1 is down: dropped
        sched.schedule(4.0, lambda: net.send(0, 1, "late"))
        sched.run()
        assert inboxes[1] == [(0, "late")]
        assert net.metrics.dropped_count[0] == 1


class TestBroadcastFastPath:
    """The batched broadcast must be observationally identical to n sends."""

    def test_metrics_match_per_send_path(self):
        sched_a, net_a, _ = make_network(SynchronousDelays(1.0))
        sched_b, net_b, _ = make_network(SynchronousDelays(1.0))
        message = ("payload", 123, "abc")
        net_a.broadcast(0, message)
        for dst in net_b.node_ids:
            net_b.send(0, dst, message)
        sched_a.run()
        sched_b.run()
        for attr in (
            "sent_count", "delivered_count", "dropped_count",
            "bytes_sent_by_node", "bytes_by_type", "count_by_type",
        ):
            assert getattr(net_a.metrics, attr) == getattr(net_b.metrics, attr), attr

    def test_trace_matches_per_send_path(self):
        def run_one(use_broadcast: bool):
            sched = EventScheduler()
            trace = Trace(enabled=True)
            net = Network(sched, SynchronousDelays(1.0), trace=trace)
            for node in range(3):
                net.register(node, lambda s, m: None)
            if use_broadcast:
                net.broadcast(1, "msg")
            else:
                for dst in net.node_ids:
                    net.send(1, dst, "msg")
            sched.run()
            return [(e.time, e.node, e.kind, e.detail) for e in trace]

        assert run_one(True) == run_one(False)

    def test_broadcast_records_drops_per_destination(self):
        from repro.sim import TargetedDropPolicy, silence_nodes

        policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
        sched, net, inboxes = make_network(policy)
        net.broadcast(0, "silenced")
        net.broadcast(1, "heard")
        sched.run()
        assert net.metrics.dropped_count[0] == 3
        assert net.metrics.sent_count[0] == 3  # sends are counted pre-drop
        assert inboxes[2] == [(1, "heard")]

    def test_disabled_metrics_record_nothing(self):
        sched = EventScheduler()
        metrics = MessageMetrics(enabled=False)
        net = Network(sched, SynchronousDelays(1.0), metrics=metrics)
        received = []
        for node in range(3):
            net.register(node, lambda s, m: received.append(m))
        net.broadcast(0, "msg")
        net.send(0, 1, "msg")
        sched.run()
        assert len(received) == 4  # delivery itself is unaffected
        assert metrics.total_messages_sent == 0
        assert not metrics.delivered_count

    def test_stateful_policy_consumes_randomness_in_sorted_dst_order(self):
        def delays_via(use_broadcast: bool):
            policy = UniformRandomDelays(0.1, 2.0, seed=11)
            sched = EventScheduler()
            net = Network(sched, policy)
            arrivals = {}
            for node in range(3):
                net.register(node, lambda s, m, n=node: arrivals.setdefault(n, sched.now))
            if use_broadcast:
                net.broadcast(0, "m")
            else:
                for dst in net.node_ids:
                    net.send(0, dst, "m")
            sched.run()
            return arrivals

        assert delays_via(True) == delays_via(False)


def test_record_broadcast_equals_repeated_record_send():
    single, batched = MessageMetrics(), MessageMetrics()
    message = ("abc", 7)
    for _ in range(5):
        single.record_send(3, message)
    batched.record_broadcast(3, message, 5)
    assert single == batched


def test_drop_recorded_in_metrics():
    policy = PartialSynchronyPolicy(gst=100.0, delta=1.0, loss_before_gst=1.0, seed=0)
    sched = EventScheduler()
    net = Network(sched, policy)
    received = []
    net.register(0, lambda s, m: received.append(m))
    net.register(1, lambda s, m: received.append(m))
    net.send(0, 1, "lost")
    sched.run()
    assert received == []
    assert net.metrics.dropped_count[0] == 1
