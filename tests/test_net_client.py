"""The shared client repository layer: timeouts, correlation, the pool.

In-process tests (fake replica servers on localhost sockets, no
subprocesses): the :mod:`repro.net.client` layer is what both the A7
bench driver and the gateway stand on, so its contracts are pinned
here — the ``time_scale`` → wall-clock timeout derivation, the
ack-correlation bookkeeping, and the pool's broadcast / batch /
snapshot / collect behaviour against scripted replicas.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.net.client import (
    COLLECT_TIMEOUT_BASE,
    CONNECT_TIMEOUT_BASE,
    REFERENCE_TIME_SCALE,
    AckCorrelator,
    ReplicaPool,
    scaled_timeout,
)
from repro.net.cluster import allocate_ports
from repro.net.codec import (
    WIRE_CODEC,
    ClientSubmit,
    ClientSubmitBatch,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    SnapshotRequest,
    StartRun,
)
from repro.smr.mempool import Transaction

HOST = "127.0.0.1"


# -- timeout derivation (the hard-coded waits are gone) -----------------------


def test_scaled_timeout_reproduces_the_historical_constants_exactly():
    # At the reference smoke time scale the old 15-second constants
    # come back bit-for-bit — A7 smoke behaviour is unchanged.
    assert scaled_timeout(CONNECT_TIMEOUT_BASE, REFERENCE_TIME_SCALE) == 15.0
    assert scaled_timeout(COLLECT_TIMEOUT_BASE, REFERENCE_TIME_SCALE) == 15.0


def test_scaled_timeout_grows_linearly_above_the_reference_scale():
    assert scaled_timeout(15.0, 2 * REFERENCE_TIME_SCALE) == 30.0
    assert scaled_timeout(15.0, 4 * REFERENCE_TIME_SCALE) == 60.0


def test_scaled_timeout_keeps_the_base_as_floor_below_the_reference():
    # Process spawn and socket accept do not speed up with the
    # protocol clock, so a fast cluster keeps the full base.
    assert scaled_timeout(15.0, REFERENCE_TIME_SCALE / 5) == 15.0
    assert scaled_timeout(15.0, 1e-9) == 15.0


def test_pool_timeouts_derive_from_time_scale():
    pool = ReplicaPool({0: (HOST, 1)}, time_scale=0.2)
    assert pool.connect_timeout == pytest.approx(60.0)
    assert pool.collect_timeout == pytest.approx(60.0)


# -- AckCorrelator ------------------------------------------------------------


def _ack(txid: str, slot: int = 3, node_id: int = 0) -> CommitAck:
    return CommitAck(node_id=node_id, txid=txid, slot=slot)


def test_correlator_yields_one_latency_sample_per_new_ack():
    correlator = AckCorrelator()
    correlator.record_submit("t1", now=10.0)
    assert correlator.record_ack(0, _ack("t1"), now=10.5) == pytest.approx(0.5)
    assert correlator.record_ack(1, _ack("t1"), now=11.0) == pytest.approx(1.0)
    assert correlator.latency_samples == pytest.approx([0.5, 1.0])
    assert correlator.ack_count("t1") == 2


def test_correlator_ignores_duplicate_and_unknown_acks():
    correlator = AckCorrelator()
    correlator.record_submit("t1", now=0.0)
    assert correlator.record_ack(0, _ack("t1"), now=1.0) is not None
    assert correlator.record_ack(0, _ack("t1"), now=2.0) is None  # duplicate
    assert correlator.record_ack(0, _ack("never-sent"), now=2.0) is None
    assert correlator.latency_samples == pytest.approx([1.0])


def test_correlator_all_acked_requires_every_live_replica():
    correlator = AckCorrelator()
    correlator.track_nodes([0, 1, 2])
    correlator.record_submit("t1", now=0.0)
    correlator.record_ack(0, _ack("t1"), now=1.0)
    assert not correlator.all_acked({0, 1, 2})
    correlator.record_ack(1, _ack("t1"), now=1.0)
    correlator.record_ack(2, _ack("t1"), now=1.0)
    assert correlator.all_acked({0, 1, 2})
    # Excluding a replica shrinks the quorum the check runs over.
    assert correlator.all_acked({0, 1})
    assert not correlator.all_acked(set())


def test_correlator_first_ack_wins_the_slot():
    correlator = AckCorrelator()
    correlator.record_submit("t1", now=0.0)
    correlator.record_ack(0, _ack("t1", slot=7), now=1.0)
    correlator.record_ack(1, _ack("t1", slot=9), now=1.0)
    assert correlator.slots["t1"] == 7


# -- ReplicaPool against scripted in-process replicas -------------------------


class FakeReplica:
    """A scripted replica client port: acks submissions, answers
    snapshot/collect, records everything it saw."""

    def __init__(self, node_id: int, port: int) -> None:
        self.node_id = node_id
        self.port = port
        self.received: list[object] = []
        self.server: asyncio.Server | None = None

    async def start(self) -> None:
        self.server = await asyncio.start_server(self._serve, HOST, self.port)

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        buffer = FrameBuffer(WIRE_CODEC)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for message in buffer.feed(data):
                    self.received.append(message)
                    for reply in self._replies(message):
                        writer.write(WIRE_CODEC.encode_frame(reply))
                    await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def _replies(self, message: object) -> list[object]:
        if isinstance(message, ClientSubmit):
            return [CommitAck(node_id=self.node_id, txid=message.txn.txid, slot=1)]
        if isinstance(message, ClientSubmitBatch):
            return [
                CommitAck(node_id=self.node_id, txid=txn.txid, slot=1)
                for txn in message.txns
            ]
        if isinstance(message, (SnapshotRequest, CollectRequest)):
            return [
                CollectReply(
                    node_id=self.node_id,
                    chain=(),
                    state_digest=f"digest-{self.node_id}",
                    applied_txids=(),
                    blocks_applied=0,
                    txns_applied=0,
                )
            ]
        return []

    def close(self) -> None:
        if self.server is not None:
            self.server.close()


async def _fake_cluster(n: int) -> tuple[list[FakeReplica], dict[int, tuple[str, int]]]:
    ports = allocate_ports(n)
    replicas = [FakeReplica(node_id, ports[node_id]) for node_id in range(n)]
    for replica in replicas:
        await replica.start()
    return replicas, {replica.node_id: (HOST, replica.port) for replica in replicas}


async def _wait_for(predicate, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not reached within timeout")


def _txn(i: int) -> Transaction:
    return Transaction(txid=f"t{i}", op=("noop",))


def test_pool_submits_reach_every_replica_and_acks_flow_back():
    acks = []

    async def scenario():
        replicas, addrs = await _fake_cluster(3)
        pool = ReplicaPool(addrs, on_ack=lambda nid, ack: acks.append((nid, ack.txid)))
        await pool.connect()
        pool.start_run()
        pool.submit(_txn(0))
        await _wait_for(lambda: len(acks) == 3)
        for replica in replicas:
            kinds = [type(m).__name__ for m in replica.received]
            assert kinds == ["StartRun", "ClientSubmit"]
            replica.close()
        pool.close()

    asyncio.run(scenario())
    assert sorted(acks) == [(0, "t0"), (1, "t0"), (2, "t0")]


def test_pool_submit_many_degenerates_singleton_to_bare_submit():
    async def scenario():
        replicas, addrs = await _fake_cluster(1)
        pool = ReplicaPool(addrs)
        await pool.connect()
        pool.submit_many([_txn(1)])
        pool.submit_many([_txn(2), _txn(3)])
        pool.submit_many([])  # no frame at all
        await _wait_for(lambda: len(replicas[0].received) == 2)
        single, batch = replicas[0].received
        assert isinstance(single, ClientSubmit) and single.txn.txid == "t1"
        assert isinstance(batch, ClientSubmitBatch)
        assert [txn.txid for txn in batch.txns] == ["t2", "t3"]
        replicas[0].close()
        pool.close()

    asyncio.run(scenario())


def test_pool_snapshot_gathers_a_reply_per_replica_without_shutdown():
    async def scenario():
        replicas, addrs = await _fake_cluster(3)
        pool = ReplicaPool(addrs)
        await pool.connect()
        replies = await pool.snapshot(timeout=5.0)
        assert sorted(replies) == [0, 1, 2]
        assert replies[1].state_digest == "digest-1"
        # The read path is repeatable: replicas are still serving.
        again = await pool.snapshot(timeout=5.0)
        assert sorted(again) == [0, 1, 2]
        for replica in replicas:
            assert [type(m).__name__ for m in replica.received] == [
                "SnapshotRequest",
                "SnapshotRequest",
            ]
            replica.close()
        pool.close()

    asyncio.run(scenario())


def test_pool_excluded_replica_gets_no_frames_and_no_collect():
    async def scenario():
        replicas, addrs = await _fake_cluster(3)
        pool = ReplicaPool(addrs)
        await pool.connect()
        pool.exclude(2)
        pool.submit(_txn(0))
        replies = await pool.collect(timeout=5.0)
        assert sorted(replies) == [0, 1]
        assert replicas[2].received == []
        for replica in replicas:
            replica.close()
        pool.close()

    asyncio.run(scenario())


def test_pool_collect_skips_a_replica_that_dies_mid_request():
    deaths = []

    async def scenario():
        replicas, addrs = await _fake_cluster(2)
        pool = ReplicaPool(addrs, on_death=deaths.append)
        await pool.connect()
        # Replica 1 vanishes before the collect: its server stops
        # accepting and its open connection is torn down.
        replicas[1].close()
        assert replicas[1].server is not None
        replicas[1].server.close()
        await replicas[1].server.wait_closed()
        for conn in pool._conns.values():
            if conn.node_id == 1 and conn.writer is not None:
                conn.writer.close()
        await _wait_for(lambda: 1 in deaths)
        replies = await pool.collect(timeout=5.0)
        assert sorted(replies) == [0]
        replicas[0].close()
        pool.close()

    asyncio.run(scenario())
