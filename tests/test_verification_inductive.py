"""Property-based inductive-invariant checking (the Apalache analogue).

The paper's Section 5 verifies TetraBFT by showing a ConsistencyInvariant
is *inductive*: it holds initially, and any single protocol step from an
invariant-satisfying state lands in an invariant-satisfying state.  We
reproduce exactly that check with hypothesis generating arbitrary
(not-necessarily-reachable) states: filter to those satisfying the
invariant, apply every enabled action, and require preservation — plus
the implication invariant ⇒ agreement.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verification import (
    ModelConfig,
    ModelState,
    consistency,
    consistency_invariant,
    successors,
)

CFG = ModelConfig(n=4, f=1, num_values=2, max_round=1)

votes_strategy = st.frozensets(
    st.tuples(
        st.integers(0, CFG.max_round),      # round
        st.integers(1, 4),                  # phase
        st.integers(0, CFG.num_values - 1),  # value
    ),
    max_size=5,
)


@st.composite
def model_states(draw) -> ModelState:
    votes = tuple(draw(votes_strategy) for _ in range(CFG.honest))
    rounds = tuple(
        draw(
            st.integers(
                min_value=max((vt[0] for vt in vs), default=-1),
                max_value=CFG.max_round,
            )
        )
        for vs in votes
    )
    return ModelState(rounds=rounds, votes=votes)


@given(state=model_states())
@settings(max_examples=400, deadline=None)
def test_invariant_implies_agreement(state):
    """TLA+ theorem: ConsistencyInvariant ⇒ Consistency."""
    if consistency_invariant(state, CFG):
        assert consistency(state, CFG)


@given(state=model_states())
@settings(max_examples=150, deadline=None)
def test_invariant_is_inductive(state):
    """TLA+ theorem: Inv ∧ Next ⇒ Inv′ (the 3-hour Apalache check)."""
    if not consistency_invariant(state, CFG):
        return
    for action, nxt in successors(state, CFG):
        assert consistency_invariant(nxt, CFG), (f"invariant broken by {action} from {state}")


@given(state=model_states())
@settings(max_examples=150, deadline=None)
def test_initial_state_satisfies_invariant_trivially(state):
    """Sanity on the base case plus: decided values never shrink along
    a step (decisions are irrevocable)."""
    initial = ModelState.initial(CFG)
    assert consistency_invariant(initial, CFG)
    if not consistency_invariant(state, CFG):
        return
    from repro.verification import decided_values

    before = decided_values(state, CFG)
    for _action, nxt in successors(state, CFG):
        assert before <= decided_values(nxt, CFG)
