"""Wire-codec contract tests: round trips, byte stability, hard errors.

The codec is the deployment subsystem's trust boundary, so the suite
is exhaustive by construction: a seeded fuzz generator exists for
*every* registered message type (the coverage assertion fails the
moment someone registers a new type without adding a generator), and
each generated instance must round-trip to an identical object AND
re-encode to identical bytes — byte stability is what makes frames
hashable for trace comparison.

The error surface is tested as a contract too: unregistered types,
truncated frames at every prefix length, magic/version mismatches,
unknown type ids, trailing bytes, undecodable value tags and
non-deterministic values (sets, dicts) are all hard
:class:`~repro.net.codec.CodecError`\\ s, never silent misdecodes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.baselines.base import BPhaseVote, BProposal, BRound, BViewChange
from repro.baselines.chained import CatchUp, SlotMessage
from repro.core.messages import (
    EMPTY_VOTE,
    Proof,
    Proposal,
    Suggest,
    ViewChange,
    Vote,
    VoteRecord,
)
from repro.core.values import Phase
from repro.multishot.block import Block
from repro.multishot.messages import (
    MSProof,
    MSProposal,
    MSSuggest,
    MSViewChange,
    MSVote,
    VoteBatch,
)
from repro.net.codec import (
    MAGIC,
    MAX_FRAME,
    WIRE_CODEC,
    ClientSubmit,
    ClientSubmitBatch,
    CodecError,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    Hello,
    MetricsReply,
    MetricsRequest,
    SnapshotImage,
    SnapshotRequest,
    StartRun,
    StateTransferReply,
    StateTransferRequest,
    WalAppend,
    WalSeal,
    WireCodec,
    wire_codec,
)
from repro.smr.mempool import Transaction

# -- seeded instance generators, one per registered type ----------------------


def _value(rng: random.Random) -> object:
    """A random consensus value: digest-like strings dominate."""
    return rng.choice([None, "", f"digest-{rng.randrange(1 << 30):x}", rng.randrange(-5, 99), True])


def _vote_record(rng: random.Random) -> VoteRecord:
    if rng.random() < 0.25:
        return EMPTY_VOTE
    return VoteRecord(view=rng.randrange(0, 50), value=_value(rng))


def _txn(rng: random.Random) -> Transaction:
    op = rng.choice(
        [
            ("set", f"key-{rng.randrange(64)}", rng.randrange(1 << 40)),
            ("incr", f"c-{rng.randrange(8)}", rng.randrange(1, 9)),
            ("del", f"key-{rng.randrange(64)}"),
            ("noop",),
        ]
    )
    return Transaction(txid=f"tx-{rng.randrange(1 << 30):x}", op=op)


def _block(rng: random.Random) -> Block:
    payload = tuple(_txn(rng) for _ in range(rng.randrange(0, 4)))
    return Block.create(
        slot=rng.randrange(1, 200), parent=f"{rng.randrange(1 << 60):016x}", payload=payload
    )


def _vote_batch(rng: random.Random) -> VoteBatch:
    """An aggregated frame over the multishot generators (2..8 items)."""
    inner = [
        lambda r: MSVote(r.randrange(1, 200), r.randrange(0, 20), f"{r.randrange(1 << 60):016x}"),
        lambda r: MSProposal(r.randrange(1, 200), r.randrange(0, 20), _block(r)),
        lambda r: MSViewChange(r.randrange(1, 200), r.randrange(0, 20)),
    ]
    return VoteBatch(tuple(rng.choice(inner)(rng) for _ in range(rng.randrange(2, 9))))


def _snapshot_image(rng: random.Random) -> SnapshotImage:
    """A structurally plausible snapshot (codec round-trips do not
    require hash-valid chains — validation is the snapshot layer's
    job, tested in test_replica_storage)."""
    chain = tuple(_block(rng) for _ in range(rng.randrange(1, 5)))
    return SnapshotImage(
        tip_slot=chain[-1].slot,
        tip_digest=chain[-1].digest,
        state_digest=f"{rng.randrange(1 << 60):016x}",
        applied_txids=tuple(f"tx-{k}" for k in range(rng.randrange(0, 6))),
        kv_items=tuple(
            (f"key-{k}", rng.randrange(1 << 20)) for k in range(rng.randrange(0, 6))
        ),
        chain=chain,
    )


def _metric_items(rng: random.Random) -> tuple:
    """A sorted obs-metrics payload, the shape
    :meth:`repro.obs.MetricsRegistry.snapshot_items` emits."""
    names = sorted({f"m.{rng.randrange(32)}" for _ in range(rng.randrange(0, 8))})
    return tuple((name, rng.random() * 1000) for name in names)


GENERATORS = {
    Hello: lambda rng: Hello(rng.randrange(0, 128)),
    ClientSubmit: lambda rng: ClientSubmit(_txn(rng)),
    StartRun: lambda rng: StartRun(),
    CommitAck: lambda rng: CommitAck(
        rng.randrange(0, 16), f"tx-{rng.randrange(1 << 20)}", rng.randrange(0, 500)
    ),
    CollectRequest: lambda rng: CollectRequest(),
    SnapshotRequest: lambda rng: SnapshotRequest(),
    ClientSubmitBatch: lambda rng: ClientSubmitBatch(
        tuple(_txn(rng) for _ in range(rng.randrange(2, 9)))
    ),
    CollectReply: lambda rng: CollectReply(
        node_id=rng.randrange(0, 16),
        chain=tuple(_block(rng) for _ in range(rng.randrange(0, 5))),
        state_digest=f"{rng.randrange(1 << 60):016x}",
        applied_txids=tuple(f"tx-{k}" for k in range(rng.randrange(0, 6))),
        blocks_applied=rng.randrange(0, 100),
        txns_applied=rng.randrange(0, 1000),
        metrics=_metric_items(rng),
    ),
    MetricsRequest: lambda rng: MetricsRequest(),
    MetricsReply: lambda rng: MetricsReply(
        node_id=rng.randrange(0, 16),
        items=_metric_items(rng),
        events=rng.randrange(0, 256),
    ),
    StateTransferRequest: lambda rng: StateTransferRequest(since_slot=rng.randrange(0, 500)),
    StateTransferReply: lambda rng: StateTransferReply(
        node_id=rng.randrange(0, 16),
        tip_slot=rng.randrange(0, 500),
        blocks=tuple(_block(rng) for _ in range(rng.randrange(0, 5))),
    ),
    WalAppend: lambda rng: WalAppend(seq=rng.randrange(1, 1 << 30), block=_block(rng)),
    WalSeal: lambda rng: WalSeal(
        seq=rng.randrange(1, 1 << 30),
        upto_slot=rng.randrange(0, 500),
        state_digest=f"{rng.randrange(1 << 60):016x}",
    ),
    SnapshotImage: _snapshot_image,
    VoteRecord: _vote_record,
    Block: _block,
    Transaction: _txn,
    Proposal: lambda rng: Proposal(view=rng.randrange(0, 99), value=_value(rng)),
    Vote: lambda rng: Vote(
        phase=rng.choice(list(Phase)), view=rng.randrange(0, 99), value=_value(rng)
    ),
    Suggest: lambda rng: Suggest(
        view=rng.randrange(0, 99),
        vote2=_vote_record(rng),
        prev_vote2=_vote_record(rng),
        vote3=_vote_record(rng),
    ),
    Proof: lambda rng: Proof(
        view=rng.randrange(0, 99),
        vote1=_vote_record(rng),
        prev_vote1=_vote_record(rng),
        vote4=_vote_record(rng),
    ),
    ViewChange: lambda rng: ViewChange(view=rng.randrange(0, 99)),
    MSProposal: lambda rng: MSProposal(
        slot=rng.randrange(1, 200), view=rng.randrange(0, 20), block=_block(rng)
    ),
    MSVote: lambda rng: MSVote(
        slot=rng.randrange(1, 200),
        view=rng.randrange(0, 20),
        digest=f"{rng.randrange(1 << 60):016x}",
    ),
    MSViewChange: lambda rng: MSViewChange(
        slot=rng.randrange(1, 200), view=rng.randrange(0, 20)
    ),
    MSSuggest: lambda rng: MSSuggest(
        slot=rng.randrange(1, 200),
        view=rng.randrange(0, 20),
        vote2=_vote_record(rng),
        prev_vote2=_vote_record(rng),
        vote3=_vote_record(rng),
    ),
    MSProof: lambda rng: MSProof(
        slot=rng.randrange(1, 200),
        view=rng.randrange(0, 20),
        vote1=_vote_record(rng),
        prev_vote1=_vote_record(rng),
        vote4=_vote_record(rng),
    ),
    VoteBatch: _vote_batch,
    BProposal: lambda rng: BProposal(
        protocol=rng.choice(["pbft", "it-hs", "li"]),
        view=rng.randrange(0, 20),
        value=_value(rng),
    ),
    BPhaseVote: lambda rng: BPhaseVote(
        protocol=rng.choice(["pbft", "it-hs", "li"]),
        view=rng.randrange(0, 20),
        phase=rng.randrange(0, 3),
        value=_value(rng),
    ),
    BViewChange: lambda rng: BViewChange(
        protocol="pbft",
        view=rng.randrange(0, 20),
        lock_view=rng.randrange(-1, 20),
        lock_value=_value(rng),
        entries=rng.randrange(2, 40),
    ),
    BRound: lambda rng: BRound(
        protocol="it-hs",
        view=rng.randrange(0, 20),
        round_index=rng.randrange(0, 3),
        lock_view=rng.randrange(-1, 20),
        lock_value=_value(rng),
        entries=rng.randrange(2, 40),
    ),
    SlotMessage: lambda rng: SlotMessage(
        slot=rng.randrange(1, 200),
        inner=rng.choice(
            [
                BProposal("pbft", rng.randrange(0, 9), _value(rng)),
                BPhaseVote("li", rng.randrange(0, 9), 1, _value(rng)),
            ]
        ),
    ),
    CatchUp: lambda rng: CatchUp(
        slot=rng.randrange(1, 50),
        blocks=tuple(_block(rng) for _ in range(rng.randrange(0, 4))),
    ),
}


def test_every_registered_type_has_a_generator():
    """Registering a wire type without fuzz coverage fails loudly."""
    assert set(WIRE_CODEC.registered_types) == set(GENERATORS)


@pytest.mark.parametrize("cls", sorted(GENERATORS, key=lambda c: c.__name__))
def test_fuzz_round_trip_and_byte_stability(cls):
    """encode→decode is the identity; decode→encode is byte-stable."""
    rng = random.Random(f"codec-{cls.__name__}")
    for _ in range(25):
        message = GENERATORS[cls](rng)
        body = WIRE_CODEC.encode(message)
        decoded = WIRE_CODEC.decode(body)
        assert decoded == message
        assert type(decoded) is cls
        assert WIRE_CODEC.encode(decoded) == body


def test_encoding_is_deterministic_across_codec_instances():
    """Two independently built registries produce identical bytes."""
    fresh = wire_codec()
    rng = random.Random(1234)
    for cls, generate in sorted(GENERATORS.items(), key=lambda kv: kv[0].__name__):
        message = generate(rng)
        assert fresh.encode(message) == WIRE_CODEC.encode(message), cls


def test_golden_frame_pins_the_wire_format():
    """v5 bytes are a contract: changing them must bump WIRE_VERSION."""
    assert WIRE_CODEC.encode(ViewChange(7)).hex() == "b7050024490000000000000007"
    assert (
        WIRE_CODEC.encode_frame(MSVote(3, 1, "abcd")).hex()
        == "0000001fb7050031490000000000000003490000000000000001530000000461626364"
    )
    # Aggregated frame: one envelope, two nested (C-tagged) messages.
    assert WIRE_CODEC.encode_frame(
        VoteBatch((MSVote(3, 1, "abcd"), MSViewChange(4, 2)))
    ).hex() == (
        "0000003cb70500355500000002"
        "430031490000000000000003490000000000000001530000000461626364"
        "430032490000000000000004490000000000000002"
    )


def test_golden_metrics_frames_pin_the_scrape_format():
    """The in-band scrape types are part of the same pinned contract:
    the operator tooling (``python -m repro obs``, the gateway's
    ``/v1/cluster/metrics``) must interoperate across builds."""
    assert WIRE_CODEC.encode(MetricsRequest()).hex() == "b705000b"
    assert WIRE_CODEC.encode(
        MetricsReply(node_id=2, items=(("consensus.commits", 40.0),), events=5)
    ).hex() == (
        "b705000c490000000000000002"
        "550000000155000000025300000011636f6e73656e7375732e636f6d6d697473"
        "444044000000000000490000000000000005"
    )


def test_golden_durability_frames_pin_the_wal_format():
    """WAL/snapshot records are disk formats: their bytes are pinned
    independently of the network path (a silent change would orphan
    every existing data dir, not just break a live connection)."""
    block = Block(slot=1, parent="genesis", payload=(), digest="d1")
    assert WIRE_CODEC.encode(WalAppend(seq=5, block=block)).hex() == (
        "b7050050490000000000000005"
        "430011490000000000000001530000000767656e65736973550000000053000000026431"
    )
    assert WIRE_CODEC.encode(WalSeal(seq=6, upto_slot=1, state_digest="sd")).hex() == (
        "b705005149000000000000000649000000000000000153000000027364"
    )
    assert WIRE_CODEC.encode(StateTransferRequest(since_slot=3)).hex() == (
        "b7050009490000000000000003"
    )


# -- hard errors --------------------------------------------------------------


@dataclass(frozen=True)
class _Rogue:
    """A dataclass nobody registered."""

    x: int


def test_unregistered_type_is_a_hard_error():
    with pytest.raises(CodecError, match="not registered"):
        WIRE_CODEC.encode(_Rogue(1))


def test_unregistered_nested_value_is_a_hard_error():
    # Registered envelope, unregistered payload object.
    with pytest.raises(CodecError, match="no\\s+deterministic wire encoding"):
        WIRE_CODEC.encode(ClientSubmit(_Rogue(2)))


def test_non_deterministic_values_are_rejected():
    for value in ({1, 2}, {"a": 1}, [1, 2], 3.5j):
        with pytest.raises(CodecError):
            WIRE_CODEC.encode(Proposal(view=1, value=value))


def test_truncated_frames_fail_at_every_prefix():
    body = WIRE_CODEC.encode(MSProposal(slot=3, view=1, block=_block(random.Random(7))))
    for cut in range(len(body)):
        with pytest.raises(CodecError):
            WIRE_CODEC.decode(body[:cut])


def test_version_mismatch_is_a_hard_error():
    body = bytearray(WIRE_CODEC.encode(ViewChange(1)))
    body[1] = 99
    with pytest.raises(CodecError, match="version mismatch"):
        WIRE_CODEC.decode(bytes(body))


def test_bad_magic_is_a_hard_error():
    body = bytearray(WIRE_CODEC.encode(ViewChange(1)))
    body[0] = (MAGIC + 1) & 0xFF
    with pytest.raises(CodecError, match="magic"):
        WIRE_CODEC.decode(bytes(body))


def test_unknown_type_id_is_a_hard_error():
    body = bytearray(WIRE_CODEC.encode(ViewChange(1)))
    body[2:4] = (0xFEED).to_bytes(2, "big")
    with pytest.raises(CodecError, match="unknown wire type id"):
        WIRE_CODEC.decode(bytes(body))


def test_invalid_utf8_string_payload_is_a_hard_error():
    body = bytearray(WIRE_CODEC.encode(MSVote(1, 0, "abcd")))
    assert body[-5:-4] == b"S" or b"abcd" in body  # locate the string tail
    body[-4:] = b"\xff\xfe\xfd\xfc"  # same length, invalid UTF-8
    with pytest.raises(CodecError, match="garbled"):
        WIRE_CODEC.decode(bytes(body))


def test_out_of_range_phase_byte_is_a_hard_error():
    body = bytearray(WIRE_CODEC.encode(Vote(Phase.VOTE1, 1, "x")))
    index = body.index(b"P") + 1
    body[index] = 99  # no such Phase
    with pytest.raises(CodecError, match="garbled"):
        WIRE_CODEC.decode(bytes(body))


def test_trailing_bytes_are_a_hard_error():
    body = WIRE_CODEC.encode(ViewChange(1)) + b"\x00"
    with pytest.raises(CodecError, match="trailing"):
        WIRE_CODEC.decode(body)


def test_registry_rejects_collisions_and_non_dataclasses():
    codec = WireCodec()
    codec.register(1, Hello)
    with pytest.raises(CodecError, match="already registered"):
        codec.register(1, StartRun)
    with pytest.raises(CodecError, match="already registered"):
        codec.register(2, Hello)
    with pytest.raises(CodecError, match="dataclasses"):
        codec.register(3, int)


def test_big_integers_round_trip():
    huge = 1 << 200
    message = Proposal(view=1, value=huge)
    assert WIRE_CODEC.decode(WIRE_CODEC.encode(message)) == message
    negative = Proposal(view=1, value=-huge)
    assert WIRE_CODEC.decode(WIRE_CODEC.encode(negative)) == negative


# -- framing ------------------------------------------------------------------


def test_frame_buffer_reassembles_arbitrary_chunking():
    rng = random.Random(99)
    messages = [GENERATORS[cls](rng) for cls in GENERATORS]
    stream = b"".join(WIRE_CODEC.encode_frame(m) for m in messages)
    for chunk_size in (1, 3, 7, 64, len(stream)):
        buffer = FrameBuffer(WIRE_CODEC)
        received: list[object] = []
        for start in range(0, len(stream), chunk_size):
            received.extend(buffer.feed(stream[start : start + chunk_size]))
        assert received == messages, chunk_size


def test_frame_buffer_rejects_oversized_length_words():
    buffer = FrameBuffer(WIRE_CODEC)
    with pytest.raises(CodecError, match="MAX_FRAME"):
        buffer.feed((MAX_FRAME + 1).to_bytes(4, "big"))
