"""Fault-injection tests: safety and liveness under Byzantine nodes.

Each scenario replaces up to ``f`` nodes with an adversarial behaviour
from :mod:`repro.adversary` and asserts Definition 1's properties for
the remaining honest nodes, over several network schedules.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    ChaosMonkey,
    CrashNode,
    EquivocatingLeader,
    HistoryFabricator,
    SilentNode,
    VoteWithholder,
)
from repro.core import Phase, ProtocolConfig, TetraBFTNode
from repro.sim import Simulation, SynchronousDelays, UniformRandomDelays
from tests.conftest import assert_agreement

CFG4 = ProtocolConfig.create(4)


def run_with_byzantine(byz_factory, seed: int, n: int = 4, horizon: float = 1500.0):
    config = ProtocolConfig.create(n)
    policy = UniformRandomDelays(0.2, 1.0, seed=seed)
    sim = Simulation(policy)
    sim.add_node(byz_factory(config))
    for i in range(1, n):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    honest = list(range(1, n))
    sim.run_until_all_decided(node_ids=honest, until=horizon)
    return sim, honest


class TestSilent:
    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_and_termination(self, seed):
        sim, honest = run_with_byzantine(lambda c: SilentNode(0), seed)
        assert_agreement(sim, honest)


class TestCrash:
    def test_mid_view_crash(self):
        """The leader crashes mid-view 0, after proposing but before
        the pipeline completes under slow links."""
        config = CFG4
        policy = UniformRandomDelays(0.9, 1.0, seed=1)
        sim = Simulation(policy)
        sim.add_node(CrashNode(0, config, "val-0", crash_time=2.5))
        for i in range(1, 4):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=1000)
        assert_agreement(sim, [1, 2, 3])

    @pytest.mark.parametrize("crash_time", [0.5, 4.0, 9.5, 12.0])
    def test_crash_at_various_times(self, crash_time):
        config = CFG4
        sim = Simulation(SynchronousDelays(1.0))
        sim.add_node(CrashNode(0, config, "val-0", crash_time=crash_time))
        for i in range(1, 4):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=1000)
        assert_agreement(sim, [1, 2, 3])


class TestEquivocation:
    @pytest.mark.parametrize("seed", range(8))
    def test_equivocating_leader_cannot_split_decisions(self, seed):
        sim, honest = run_with_byzantine(
            lambda c: EquivocatingLeader(0, c, "evil-A", "evil-B"), seed
        )
        value = assert_agreement(sim, honest)
        # Whatever was decided, it is a single value (it may well be
        # one of the equivocated ones — that is allowed).
        assert value is not None

    def test_equivocation_in_seven_node_system(self):
        config = ProtocolConfig.create(7)
        sim = Simulation(UniformRandomDelays(0.3, 1.0, seed=42))
        sim.add_node(EquivocatingLeader(0, config, "eA", "eB"))
        sim.add_node(EquivocatingLeader(1, config, "eC", "eD"))
        for i in range(2, 7):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        honest = list(range(2, 7))
        sim.run_until_all_decided(node_ids=honest, until=2000)
        assert_agreement(sim, honest)


class TestFabricatedHistories:
    @pytest.mark.parametrize("seed", range(8))
    def test_forged_suggest_proof_never_breaks_agreement(self, seed):
        """A lone fabricator may well get its value *adopted* — when no
        honest history exists, any value is safe and Rule 1 lets the
        leader pick up the forged suggestion.  What it must never do is
        cause disagreement; that is the property asserted here (the
        can't-overturn-real-history cases are pinned in test_rules)."""
        sim, honest = run_with_byzantine(
            lambda c: HistoryFabricator(0, c, poison_value="poison"), seed
        )
        assert_agreement(sim, honest)


class TestWithholding:
    @pytest.mark.parametrize(
        "phases",
        [
            (Phase.VOTE1,),
            (Phase.VOTE2, Phase.VOTE3),
            (Phase.VOTE3, Phase.VOTE4),
            (Phase.VOTE1, Phase.VOTE2, Phase.VOTE3, Phase.VOTE4),
        ],
    )
    def test_withholder_cannot_block_progress(self, phases):
        config = CFG4
        sim = Simulation(SynchronousDelays(1.0))
        sim.add_node(VoteWithholder(0, config, "val-0", withheld_phases=phases))
        for i in range(1, 4):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=500)
        assert_agreement(sim, [1, 2, 3])


class TestChaos:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_byzantine_havoc(self, seed):
        sim, honest = run_with_byzantine(
            lambda c: ChaosMonkey(
                0, c, values=["val-1", "val-2", "junk"], seed=seed, burst=8
            ),
            seed,
        )
        assert_agreement(sim, honest)

    def test_two_monkeys_in_seven_node_system(self):
        config = ProtocolConfig.create(7)
        sim = Simulation(UniformRandomDelays(0.2, 1.0, seed=5))
        sim.add_node(ChaosMonkey(0, config, values=["x", "y"], seed=1))
        sim.add_node(ChaosMonkey(1, config, values=["y", "z"], seed=2))
        for i in range(2, 7):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        honest = list(range(2, 7))
        sim.run_until_all_decided(node_ids=honest, until=2000)
        assert_agreement(sim, honest)
