"""The same node objects over real asyncio wall-clock time."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import ProtocolConfig, TetraBFTNode
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.sim.asyncio_transport import AsyncioCluster


def test_singleshot_decides_over_asyncio():
    config = ProtocolConfig.create(4)
    cluster = AsyncioCluster(link_delay=0.004)
    for i in range(4):
        cluster.add_node(TetraBFTNode(i, config, initial_value=f"v{i}"))
    asyncio.run(cluster.run_until_all_decided(timeout=5.0))
    latency = cluster.metrics.latency
    assert latency.all_decided([0, 1, 2, 3])
    assert len(latency.decided_values()) == 1
    # Wall-clock latency ≈ 5 link delays (generous bounds: CI jitter).
    assert latency.max_decision_time() < 40


def test_multishot_pipelines_over_asyncio():
    config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=10)
    cluster = AsyncioCluster(link_delay=0.004)
    nodes = [MultiShotNode(i, config) for i in range(4)]
    for node in nodes:
        cluster.add_node(node)

    asyncio.run(
        cluster.run(
            duration=3.0,
            stop_when=lambda: all(len(n.finalized_chain) >= 7 for n in nodes),
        )
    )
    chains = [[b.digest for b in n.finalized_chain] for n in nodes]
    reference = max(chains, key=len)
    for chain in chains:
        assert reference[: len(chain)] == chain
    assert all(len(c) >= 7 for c in chains)


def test_duplicate_node_rejected():
    from repro.errors import SimulationError

    cluster = AsyncioCluster()
    config = ProtocolConfig.create(4)
    cluster.add_node(TetraBFTNode(0, config, initial_value="v"))
    with pytest.raises(SimulationError):
        cluster.add_node(TetraBFTNode(0, config, initial_value="v"))


def test_zero_link_delay_rejected_instead_of_dividing_by_zero():
    # Regression: link_delay=0 used to default time_scale to 0, so the
    # first `cluster.now` read raised ZeroDivisionError mid-run.
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="time_scale must be positive"):
        AsyncioCluster(link_delay=0)


def test_explicit_non_positive_time_scale_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="time_scale must be positive"):
        AsyncioCluster(link_delay=0.005, time_scale=0)
    with pytest.raises(ConfigurationError, match="time_scale must be positive"):
        AsyncioCluster(link_delay=0.005, time_scale=-1.0)


def test_zero_link_delay_with_explicit_time_scale_is_allowed():
    cluster = AsyncioCluster(link_delay=0, time_scale=0.005)
    assert cluster.now == 0.0  # no ZeroDivisionError


def test_view_entry_emits_trace_like_simulated_context():
    # Regression: the asyncio context recorded the latency metric but
    # never the VIEW_ENTER trace event, so traces diverged between the
    # simulated and asyncio transports.
    from repro.sim.asyncio_transport import AsyncNodeContext
    from repro.sim.trace import TraceKind

    cluster = AsyncioCluster()
    ctx = AsyncNodeContext(2, cluster)
    ctx.report_view_entry(5)
    (event,) = cluster.trace.events(kind=TraceKind.VIEW_ENTER)
    assert event.node == 2
    assert event.get("view") == 5
    assert cluster.metrics.latency.view_entry_times[2] == [(5, 0.0)]


def test_module_docstring_example_uses_real_run_signature():
    # Regression: the usage example advertised run(until_idle=...),
    # a parameter that never existed.
    import repro.sim.asyncio_transport as transport

    assert "until_idle" not in transport.__doc__
    assert "duration=" in transport.__doc__
