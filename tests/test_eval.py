"""Smoke tests for the evaluation harness (small parameters).

The full-size assertions live in benchmarks/; these verify the
experiment runners are importable, run on reduced parameters, and
return structurally sound results, so a broken harness fails fast in
the unit suite rather than late in a long bench.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.eval import (
    PROTOCOLS,
    run_lemma_chain,
    run_pipeline,
    run_responsiveness,
    run_scaling,
    run_table1,
    run_timeout_ablation,
    run_verification,
    run_viewchange,
)
from repro.eval.report import format_series, format_table, merge_record
from repro.eval.smr_bench import build_workload, format_smr_report, run_smr_bench
from repro.eval.table1 import fit_growth_exponent
from repro.verification import ModelConfig


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22.5, "b": "y"}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "22.50" in text and "xx" in text

    def test_format_series(self):
        text = format_series([(1, 2.0), (10, 3.5)], title="S")
        assert text.startswith("S")
        assert "3.50" in text

    def test_fit_growth_exponent_recovers_powers(self):
        ns = [4, 8, 16, 32]
        assert fit_growth_exponent(ns, [n**2 for n in ns]) == pytest.approx(2.0)
        assert fit_growth_exponent(ns, [n**3 for n in ns]) == pytest.approx(3.0)


class TestMergeRecord:
    def test_merges_under_key_preserving_others(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        merge_record(path, "a", [1, 2])
        merge_record(path, "b", {"k": 3})
        data = json.loads(path.read_text())
        assert data == {"a": [1, 2], "b": {"k": 3}}

    def test_replaces_malformed_files_wholesale(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{truncated")
        merge_record(path, "a", 1)
        assert json.loads(path.read_text()) == {"a": 1}

    def test_write_is_atomic_no_temp_residue(self, tmp_path):
        """The merge goes through a same-directory temp + os.replace:
        after any completed call only the target file exists, so an
        interrupted run can leave a stale record but never a truncated
        one."""
        path = tmp_path / "BENCH_x.json"
        merge_record(path, "a", list(range(100)))
        merge_record(path, "a", list(range(50)))
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_x.json"]
        assert json.loads(path.read_text())["a"] == list(range(50))

    def test_interrupted_write_leaves_old_record_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_x.json"
        merge_record(path, "a", "old")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            merge_record(path, "a", "new")
        monkeypatch.undo()
        # The old record survives byte-for-byte and no temp file leaks.
        assert json.loads(path.read_text()) == {"a": "old"}
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH_x.json"]


class TestTable1Small:
    def test_rows_have_expected_protocols(self):
        rows = run_table1(n=4, sweep=(4, 7), storage_runs=(30.0, 90.0))
        names = {row["protocol"] for row in rows}
        assert names == {entry.name for entry in PROTOCOLS}

    def test_latencies_exact_even_at_small_params(self):
        rows = run_table1(n=4, sweep=(4, 7), storage_runs=(30.0, 90.0))
        for row in rows:
            assert row["good_case"] == row["paper_good_case"]
            assert row["view_change"] == row["paper_view_change"]


class TestFigures:
    def test_fig1_chain(self):
        assert run_lemma_chain(n=4).chain_holds

    def test_fig2_small(self):
        result = run_pipeline(n=4, blocks=8)
        assert result.finalize_times[0] == (5.0, 1)
        assert result.blocks_finalized == 8
        assert result.speedup > 2.5  # fill dominates at 8 blocks

    def test_fig3_small(self):
        result = run_viewchange(n=4, crashed=3, crash_end=25.0, max_slots=10)
        assert result.consistent
        assert 1 <= result.max_aborted <= 5
        assert result.recovery_delays <= 5.0


class TestAblations:
    def test_responsiveness_shape(self):
        points = run_responsiveness(delta_bound=4.0, actual_deltas=(0.5, 4.0))
        fast, slow = points
        assert fast.tetrabft_latency == pytest.approx(7 * 0.5)
        assert fast.blog_latency >= 4.0

    def test_scaling_small(self):
        rows = run_scaling(ns=(4, 7, 10))
        by_name = {r.protocol: r for r in rows}
        assert by_name["pbft"].total_exponent > by_name["tetrabft"].total_exponent

    def test_timeout_point_structure(self):
        from repro.eval.timeout_ablation import run_timeout_point

        point = run_timeout_point(9.0)
        assert point.all_decided and point.views_entered == 1
        assert run_timeout_ablation((9.0,))[0].all_decided


class TestVerificationRunner:
    def test_tiny_verification_summary(self):
        summary = run_verification(
            explore_config=ModelConfig(n=4, f=1, num_values=2, max_round=0),
            liveness_config=ModelConfig(
                n=4, f=1, num_values=1, max_round=1, byz_support=False, good_round=1
            ),
            max_states=50_000,
        )
        assert summary.agreement_ok
        assert summary.invariant_ok
        assert summary.liveness_ok
        assert summary.inductive_ok
        assert summary.inductive_steps_checked > 100


class TestSMRBench:
    def test_single_cell_structure(self):
        row = run_smr_bench("uniform", "sync", 4, txns=40, batch=5)
        assert row.workload == "uniform" and row.scenario == "sync" and row.n == 4
        assert row.txns == 40
        assert row.committed == 40  # liveness at tiny scale
        # The pipeline cannot beat the finality window, and percentile
        # ordering must hold.
        assert 2.0 <= row.p50 <= row.p95 <= row.p99
        assert row.txns_per_sec > 0
        assert row.txns_per_delay > 0
        assert row.blocks_per_delay > 0
        assert row.mempool_peak >= 5

    def test_crash_recovery_excludes_faulty_from_committed(self):
        row = run_smr_bench("hotkey", "crash-recovery", 4, txns=30, batch=5)
        assert row.committed == 30
        assert row.p99 >= row.p50

    def test_report_renders_every_column(self):
        row = run_smr_bench("bursty", "sync", 4, txns=25, batch=5)
        text = format_smr_report([row])
        for column in ("workload", "p50(Δ)", "txn/s", "blk/Δ", "mp-peak"):
            assert column in text

    def test_build_workload_shapes(self):
        assert build_workload("uniform", 40, 5).count == 40
        bursty = build_workload("bursty", 100, 5)
        assert bursty.bursts * bursty.burst_size == 100
        assert build_workload("hotkey", 40, 5).count == 40
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("zipfian", 40, 5)
