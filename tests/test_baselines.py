"""Tests for the Table 1 baseline protocols and the generic machine."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BaselineSpec,
    ChainVotingNode,
    IT_HS_BLOG_SPEC,
    IT_HS_SPEC,
    ITHotStuffBlogNode,
    ITHotStuffNode,
    LI_SPEC,
    LiNode,
    PBFT_BOUNDED_SPEC,
    PBFT_UNBOUNDED_SPEC,
    PBFTNode,
    PBFTUnboundedNode,
)
from repro.core import ProtocolConfig
from repro.errors import ConfigurationError
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)

CFG4 = ProtocolConfig.create(4)

ALL_NODES = [
    (ITHotStuffNode, IT_HS_SPEC),
    (ITHotStuffBlogNode, IT_HS_BLOG_SPEC),
    (PBFTNode, PBFT_BOUNDED_SPEC),
    (PBFTUnboundedNode, PBFT_UNBOUNDED_SPEC),
    (LiNode, LI_SPEC),
]


class TestSpecs:
    def test_analytic_latencies_match_table1(self):
        assert IT_HS_SPEC.good_case_latency == 6
        assert IT_HS_SPEC.view_change_latency == 9
        assert IT_HS_BLOG_SPEC.good_case_latency == 4
        assert IT_HS_BLOG_SPEC.view_change_latency == 5
        assert PBFT_BOUNDED_SPEC.good_case_latency == 3
        assert PBFT_BOUNDED_SPEC.view_change_latency == 7
        assert LI_SPEC.good_case_latency == 6

    def test_responsiveness_flags(self):
        assert IT_HS_SPEC.responsive
        assert not IT_HS_BLOG_SPEC.responsive
        assert PBFT_BOUNDED_SPEC.responsive
        assert not LI_SPEC.responsive

    def test_unbounded_log_flags(self):
        assert not PBFT_BOUNDED_SPEC.unbounded_log
        assert PBFT_UNBOUNDED_SPEC.unbounded_log
        assert LI_SPEC.unbounded_log

    def test_spec_needs_phases(self):
        with pytest.raises(ConfigurationError):
            BaselineSpec(name="empty", phases=())


@pytest.mark.parametrize("node_cls,spec", ALL_NODES)
class TestGoodCase:
    def test_measured_latency_matches_spec(self, node_cls, spec):
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(node_cls(i, CFG4, f"val-{i}"))
        sim.run_until_all_decided(until=100)
        assert sim.metrics.latency.max_decision_time() == spec.good_case_latency

    def test_agreement_on_leader_value(self, node_cls, spec):
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(node_cls(i, CFG4, f"val-{i}"))
        sim.run_until_all_decided(until=100)
        assert set(sim.metrics.latency.decision_values.values()) == {"val-0"}


@pytest.mark.parametrize("node_cls,spec", ALL_NODES)
class TestViewChange:
    def test_crashed_leader_recovery_latency(self, node_cls, spec):
        sim = Simulation(TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0])))
        for i in range(4):
            sim.add_node(node_cls(i, CFG4, f"val-{i}"))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=200)
        decided_at = max(sim.metrics.latency.decision_times[i] for i in (1, 2, 3))
        measured_vc = decided_at - CFG4.view_timeout
        expected = spec.view_change_latency
        if spec is LI_SPEC:
            expected = 7  # documented +1 accounting delay, see baselines/li.py
        assert measured_vc == expected


class TestLockSafety:
    def test_crash_after_lock_preserves_value(self):
        """If the first leader crashes *after* some nodes locked its
        value, the next leader must re-propose that value (highest-lock
        rule) so a possibly-completed decision is never contradicted."""
        # Crash the leader's outbound link only after its proposal and
        # the first phases have flowed (time 4.5 in IT-HS reaches key
        # phases; locks form at the penultimate phase).
        policy = TargetedDropPolicy(
            SynchronousDelays(1.0), silence_nodes([0]), start=4.5
        )
        sim = Simulation(policy)
        for i in range(4):
            sim.add_node(ITHotStuffNode(i, CFG4, f"val-{i}"))
        sim.run_until_all_decided(node_ids=[1, 2, 3], until=200)
        assert set(sim.metrics.latency.decision_values[i] for i in (1, 2, 3)) == {"val-0"}


class TestUnboundedLogGrowth:
    def test_log_grows_with_run_length(self):
        def max_storage(duration: float) -> int:
            from repro.sim import censor_types

            sim = Simulation(TargetedDropPolicy(SynchronousDelays(1.0), censor_types("BProposal")))
            for i in range(4):
                sim.add_node(PBFTUnboundedNode(i, CFG4, f"val-{i}"))
            sim.run(until=duration)
            return sim.metrics.storage.max_storage()

        assert max_storage(400.0) > 2 * max_storage(40.0)

    def test_bounded_variant_stays_flat(self):
        def max_storage(duration: float) -> int:
            from repro.sim import censor_types

            sim = Simulation(TargetedDropPolicy(SynchronousDelays(1.0), censor_types("BProposal")))
            for i in range(4):
                sim.add_node(PBFTNode(i, CFG4, f"val-{i}"))
            sim.run(until=duration)
            return sim.metrics.storage.max_storage()

        assert max_storage(400.0) == max_storage(40.0)


class TestIsolationBetweenProtocols:
    def test_nodes_ignore_other_protocols_messages(self):
        """Messages tagged with another protocol's name are dropped —
        the spec-name check that lets mixed simulations coexist."""
        sim = Simulation(SynchronousDelays(1.0))
        # 4 PBFT nodes + traffic from 4 IT-HS nodes on the same network.
        for i in range(4):
            sim.add_node(PBFTNode(i, CFG4, f"val-{i}"))
        cfg8 = ProtocolConfig.create(4)
        del cfg8
        sim.run_until_all_decided(until=50)
        assert sim.metrics.latency.max_decision_time() == 3.0

    def test_pbft_viewchange_messages_carry_linear_payload(self):
        from repro.baselines.base import BViewChange

        small = BViewChange("pbft", 1, -1, None, entries=2 + 4)
        large = BViewChange("pbft", 1, -1, None, entries=2 + 40)
        assert large.wire_size() > small.wire_size()
