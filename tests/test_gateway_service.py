"""Gateway session-service behaviour: fairness, batching, commits, reads.

Pure in-process tests — the service runs over a stub pool (no sockets,
no subprocesses) and an injected fake clock, so token refill
arithmetic, quorum arithmetic and eviction policy are pinned exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.gateway.ratelimit import (
    AdmissionController,
    AdmissionDenied,
    RateLimited,
    TokenBucket,
)
from repro.gateway.service import (
    EVICTED,
    DuplicateTransaction,
    GatewayConfig,
    GatewayService,
    SnapshotUnavailable,
)
from repro.net.codec import (
    ClientSubmit,
    ClientSubmitBatch,
    CollectReply,
    CommitAck,
    MetricsReply,
)
from repro.smr.kvstore import KVStore
from repro.smr.mempool import Transaction
from repro.multishot.block import GENESIS_DIGEST, Block


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class StubPool:
    """Records submissions; snapshot() serves canned replies."""

    def __init__(self, n: int = 4) -> None:
        self.live = set(range(n))
        self.on_ack = None
        self.on_death = None
        self.sent: list[object] = []
        self.canned_snapshots: dict[int, CollectReply] = {}
        self.canned_scrapes: dict[int, MetricsReply] = {}
        self.scrape_error: Exception | None = None
        self.started = False

    def start_run(self) -> None:
        self.started = True

    def submit(self, txn: Transaction) -> None:
        self.sent.append(ClientSubmit(txn))

    def submit_many(self, txns: list[Transaction]) -> None:
        if len(txns) == 1:
            self.submit(txns[0])
        elif txns:
            self.sent.append(ClientSubmitBatch(tuple(txns)))

    async def snapshot(self, timeout=None) -> dict[int, CollectReply]:
        return dict(self.canned_snapshots)

    async def scrape(self, timeout=None) -> dict[int, MetricsReply]:
        if self.scrape_error is not None:
            raise self.scrape_error
        return dict(self.canned_scrapes)


def _txn(i: int, op: tuple = ("noop",)) -> Transaction:
    return Transaction(txid=f"t{i}", op=op)


def _service(
    n: int = 4, clock: FakeClock | None = None, **overrides
) -> tuple[GatewayService, StubPool, FakeClock]:
    clock = clock or FakeClock()
    pool = StubPool(n)
    defaults = dict(n=n, rate=10.0, burst=3.0, max_batch=4, snapshot_interval=0.0)
    defaults.update(overrides)
    service = GatewayService(pool, GatewayConfig(**defaults), clock=clock)
    return service, pool, clock


def _commit(service: GatewayService, txid: str, *, n_acks: int, slot: int = 1) -> None:
    for node_id in range(n_acks):
        service._on_ack(node_id, CommitAck(node_id=node_id, txid=txid, slot=slot))


# -- token bucket -------------------------------------------------------------


def test_token_bucket_refills_at_rate_up_to_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=5.0, clock=clock)
    assert bucket.tokens == pytest.approx(5.0)  # starts full
    for _ in range(5):
        assert bucket.try_take() == 0.0
    assert bucket.tokens == pytest.approx(0.0)
    clock.advance(0.25)  # 2.5 tokens back
    assert bucket.tokens == pytest.approx(2.5)
    clock.advance(10.0)  # refill clamps at burst
    assert bucket.tokens == pytest.approx(5.0)


def test_token_bucket_reports_exact_retry_after_when_empty():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
    assert bucket.try_take() == 0.0
    # Empty: one token refills in exactly 1/4 second.
    assert bucket.try_take() == pytest.approx(0.25)
    clock.advance(0.1)  # 0.4 tokens there, 0.6 missing
    assert bucket.try_take() == pytest.approx(0.6 / 4.0)


def test_token_bucket_rejects_non_positive_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=-2.0)


# -- admission control --------------------------------------------------------


def test_burst_rejection_carries_retry_after():
    clock = FakeClock()
    admission = AdmissionController(
        max_clients=10, max_inflight_per_client=100, rate=10.0, burst=2.0, clock=clock
    )
    admission.check_submit("alice")
    admission.check_submit("alice")
    with pytest.raises(RateLimited) as exc_info:
        admission.check_submit("alice")
    assert exc_info.value.retry_after == pytest.approx(0.1)
    clock.advance(0.1)
    admission.check_submit("alice")  # refilled


def test_per_client_isolation_one_flooder_cannot_starve_another():
    clock = FakeClock()
    admission = AdmissionController(
        max_clients=10, max_inflight_per_client=100, rate=10.0, burst=2.0, clock=clock
    )
    admission.check_submit("flooder")
    admission.check_submit("flooder")
    with pytest.raises(RateLimited):
        admission.check_submit("flooder")
    # A different client has its own untouched bucket.
    admission.check_submit("bob")
    assert admission.clients["flooder"].rejected == 1
    assert admission.clients["bob"].rejected == 0


def test_client_capacity_is_denied_not_rate_limited():
    admission = AdmissionController(
        max_clients=2, max_inflight_per_client=10, rate=10.0, burst=5.0, clock=FakeClock()
    )
    admission.check_submit("a")
    admission.check_submit("b")
    with pytest.raises(AdmissionDenied) as exc_info:
        admission.check_submit("c")
    assert exc_info.value.code == "client_capacity"
    # Existing clients are unaffected by the full house.
    admission.check_submit("a")


def test_inflight_cap_limits_uncommitted_submissions_per_client():
    clock = FakeClock()
    admission = AdmissionController(
        max_clients=10, max_inflight_per_client=2, rate=1000.0, burst=1000.0, clock=clock
    )
    admission.check_submit("a").inflight = 2
    with pytest.raises(RateLimited):
        admission.check_submit("a")


# -- submission batching ------------------------------------------------------


def test_submissions_batch_up_to_max_batch_into_one_frame():
    async def scenario():
        service, pool, _clock = _service(rate=1000.0, burst=1000.0, max_batch=3)
        await service.start(start_consensus=False)
        for i in range(3):
            service.submit("alice", _txn(i))
        assert len(pool.sent) == 1
        (frame,) = pool.sent
        assert isinstance(frame, ClientSubmitBatch)
        assert [txn.txid for txn in frame.txns] == ["t0", "t1", "t2"]
        await service.stop()

    asyncio.run(scenario())


def test_batch_window_flushes_a_singleton_as_bare_submit():
    async def scenario():
        service, pool, _clock = _service(
            rate=1000.0, burst=1000.0, max_batch=64, batch_window=0.01
        )
        await service.start(start_consensus=False)
        service.submit("alice", _txn(0))
        assert pool.sent == []  # still buffered
        await asyncio.sleep(0.05)
        assert len(pool.sent) == 1
        assert isinstance(pool.sent[0], ClientSubmit)
        await service.stop()

    asyncio.run(scenario())


def test_repro_no_batch_disables_submission_coalescing(monkeypatch):
    """REPRO_NO_BATCH=1 means one thing repo-wide: the gateway must stop
    coalescing ClientSubmitBatch frames, not just the engines."""
    monkeypatch.setenv("REPRO_NO_BATCH", "1")

    async def scenario():
        service, pool, _clock = _service(rate=1000.0, burst=1000.0, max_batch=3)
        await service.start(start_consensus=False)
        for i in range(3):
            service.submit("alice", _txn(i))
        assert len(pool.sent) == 3  # no buffering, no batch frame
        assert all(isinstance(frame, ClientSubmit) for frame in pool.sent)
        assert service.counters["flushes"] == 3
        assert service.counters["flushed_txns"] == 3
        await service.stop()

    asyncio.run(scenario())


def test_gateway_window_shrinks_with_arrival_rate():
    """The flush deadline tracks limit × observed inter-arrival gap,
    capped at the configured batch_window."""
    async def scenario():
        service, pool, clock = _service(
            rate=1000.0, burst=1000.0, max_batch=4, batch_window=0.005
        )
        await service.start(start_consensus=False)
        # First arrival: no gap observed yet, window rests at the cap.
        service.submit("alice", _txn(0))
        assert service._window() == pytest.approx(0.005)
        # Fast arrivals (0.1 ms apart): window = 4 × 0.1 ms = 0.4 ms.
        for i in range(1, 4):
            clock.advance(0.0001)
            service.submit("alice", _txn(i))
        assert service._window() < 0.005
        # Slow arrivals drag the EWMA back up to the cap.
        for i in range(4, 10):
            clock.advance(1.0)
            service.submit("alice", _txn(i))
        assert service._window() == pytest.approx(0.005)
        await service.stop()

    asyncio.run(scenario())


def test_duplicate_txid_is_rejected_without_spending_tokens():
    async def scenario():
        service, _pool, _clock = _service(rate=10.0, burst=2.0)
        await service.start(start_consensus=False)
        service.submit("alice", _txn(0))
        with pytest.raises(DuplicateTransaction):
            service.submit("alice", _txn(0))
        # The duplicate did not burn the second token.
        service.submit("alice", _txn(1))
        await service.stop()

    asyncio.run(scenario())


# -- quorum commit tracking ---------------------------------------------------


def test_commit_requires_f_plus_one_distinct_replica_acks():
    async def scenario():
        service, _pool, clock = _service(n=4, rate=1000.0, burst=1000.0)
        await service.start(start_consensus=False)
        status = service.submit("alice", _txn(0))
        assert service.config.ack_quorum == 2
        clock.advance(0.5)
        service._on_ack(0, CommitAck(node_id=0, txid="t0", slot=5))
        assert not status.committed
        # A duplicate ack from the same replica is not quorum.
        service._on_ack(0, CommitAck(node_id=0, txid="t0", slot=5))
        assert not status.committed
        service._on_ack(1, CommitAck(node_id=1, txid="t0", slot=5))
        assert status.committed
        assert status.slot == 5
        assert status.latency == pytest.approx(0.5)
        view = service.txn_view("t0")
        assert view["status"] == "committed"
        assert view["latency_ms"] == pytest.approx(500.0)
        await service.stop()

    asyncio.run(scenario())


def test_commit_frees_the_clients_inflight_budget():
    async def scenario():
        service, _pool, _clock = _service(
            n=4, rate=1000.0, burst=1000.0, max_inflight_per_client=2
        )
        await service.start(start_consensus=False)
        service.submit("alice", _txn(0))
        service.submit("alice", _txn(1))
        with pytest.raises(RateLimited):
            service.submit("alice", _txn(2))
        _commit(service, "t0", n_acks=2)
        service.submit("alice", _txn(3))  # budget freed by the commit
        await service.stop()

    asyncio.run(scenario())


# -- subscription fan-out -----------------------------------------------------


def test_commit_events_fan_out_to_every_subscriber():
    async def scenario():
        service, _pool, _clock = _service(n=4, rate=1000.0, burst=1000.0)
        await service.start(start_consensus=False)
        sub_a, sub_b = service.subscribe(), service.subscribe()
        service.submit("alice", _txn(0))
        _commit(service, "t0", n_acks=2, slot=9)
        for sub in (sub_a, sub_b):
            event = await asyncio.wait_for(sub.next_event(), timeout=1.0)
            assert event["type"] == "commit"
            assert event["txid"] == "t0"
            assert event["slot"] == 9
        await service.stop()

    asyncio.run(scenario())


def test_slow_subscriber_is_evicted_with_a_sentinel():
    async def scenario():
        service, _pool, _clock = _service(
            n=4, rate=1000.0, burst=1000.0, subscriber_queue=2, max_batch=1000
        )
        await service.start(start_consensus=False)
        slow = service.subscribe()
        for i in range(4):
            service.submit("alice", _txn(i))
            _commit(service, f"t{i}", n_acks=2)
        assert slow.evicted
        assert slow not in service.subscriptions  # no further deliveries
        assert service.counters["subscribers_evicted"] == 1
        # The queue ends with the eviction notice; earlier events that
        # fit are still deliverable.
        drained = []
        while True:
            event = await asyncio.wait_for(slow.next_event(), timeout=1.0)
            drained.append(event)
            if event is EVICTED:
                break
        assert drained[-1] is EVICTED
        assert len(drained) == 2  # queue depth held
        await service.stop()

    asyncio.run(scenario())


def test_unsubscribed_subscriber_stops_counting():
    async def scenario():
        service, _pool, _clock = _service(n=4, rate=1000.0, burst=1000.0)
        await service.start(start_consensus=False)
        sub = service.subscribe()
        service.unsubscribe(sub)
        service.submit("alice", _txn(0))
        _commit(service, "t0", n_acks=2)
        assert sub.queue.empty()
        await service.stop()

    asyncio.run(scenario())


# -- snapshot read path -------------------------------------------------------


def _chain(*ops: tuple) -> tuple[Block, ...]:
    """A linked chain, one txn per block, with honest digests."""
    blocks: list[Block] = []
    parent = GENESIS_DIGEST
    for slot, op in enumerate(ops):
        payload = (Transaction(txid=f"c{slot}", op=op),)
        block = Block.create(slot=slot, parent=parent, payload=payload)
        blocks.append(block)
        parent = block.digest
    return tuple(blocks)


def _reply(node_id: int, chain: tuple[Block, ...]) -> CollectReply:
    store = KVStore()
    for block in chain:
        for txn in block.payload:
            store.apply(txn.txid, txn.op)
    return CollectReply(
        node_id=node_id,
        chain=chain,
        state_digest=store.state_digest(),
        applied_txids=tuple(txn.txid for block in chain for txn in block.payload),
        blocks_applied=len(chain),
        txns_applied=len(chain),
    )


def test_read_state_serves_the_majority_snapshot():
    async def scenario():
        service, pool, _clock = _service(n=4)
        await service.start(start_consensus=False)
        long_chain = _chain(("set", "x", 1), ("set", "x", 2))
        short_chain = long_chain[:1]
        pool.canned_snapshots = {
            0: _reply(0, long_chain),
            1: _reply(1, long_chain),
            2: _reply(2, long_chain),
            3: _reply(3, short_chain),  # a laggard
        }
        support = await service.refresh_snapshots()
        assert support == 3
        view = service.read_state("x")
        assert view.found and view.value == 2
        assert view.supported_by == 3
        assert view.chain_length == 2
        missing = service.read_state("nope")
        assert not missing.found and missing.value is None
        await service.stop()

    asyncio.run(scenario())


def test_snapshot_ties_break_to_the_longest_chain():
    service, pool, _clock = _service(n=2)
    long_chain = _chain(("set", "x", 1), ("set", "x", 2))
    service.ingest_snapshots({0: _reply(0, long_chain[:1]), 1: _reply(1, long_chain)})
    view = service.read_state("x")
    assert view.value == 2  # the longer chain won the 1-1 tie
    assert view.supported_by == 1


def test_read_state_without_snapshot_raises():
    service, _pool, _clock = _service(n=4)
    with pytest.raises(SnapshotUnavailable):
        service.read_state("x")
    with pytest.raises(SnapshotUnavailable):
        service.chain_history()


def test_chain_history_reports_slots_and_txids():
    service, _pool, _clock = _service(n=1)
    chain = _chain(("set", "a", 1), ("set", "b", 2), ("set", "c", 3))
    service.ingest_snapshots({0: _reply(0, chain)})
    history = service.chain_history(start=1, limit=1)
    assert history["height"] == 3
    assert history["tip"] == chain[-1].digest
    assert [block["slot"] for block in history["blocks"]] == [1]
    assert history["blocks"][0]["txids"] == ["c1"]


def test_metrics_and_health_summarize_the_service():
    async def scenario():
        service, pool, _clock = _service(n=4, rate=1000.0, burst=1000.0)
        await service.start(start_consensus=False)
        service.submit("alice", _txn(0))
        service.submit("bob", _txn(1))
        _commit(service, "t0", n_acks=2)
        metrics = service.metrics()
        assert metrics["submitted"] == 2
        assert metrics["committed"] == 1
        assert metrics["pending"] == 1
        assert metrics["clients"] == 2
        health = service.health()
        assert health["status"] == "ok"
        assert health["ack_quorum"] == 2
        # Losing all but one replica degrades health (quorum is 2).
        pool.live = {0}
        assert service.health()["status"] == "degraded"
        await service.stop()

    asyncio.run(scenario())


def test_metrics_view_is_backed_by_the_registry():
    """The counters the routes expose ARE registry counters — one
    source of truth, surfaced flat for the old callers and under
    ``registry`` (gateway.* namespace) for scrape consumers."""

    async def scenario():
        service, _pool, _clock = _service(n=4, rate=1000.0, burst=1000.0)
        await service.start(start_consensus=False)
        service.submit("alice", _txn(0))
        metrics = service.metrics()
        assert metrics["submitted"] == 1
        assert metrics["registry"]["gateway.submitted"] == 1.0
        assert service.registry.counter("gateway.submitted").value == 1.0
        await service.stop()

    asyncio.run(scenario())


def test_cluster_metrics_aggregates_per_replica_scrapes():
    async def scenario():
        service, pool, _clock = _service(n=4)
        await service.start(start_consensus=False)
        pool.canned_scrapes = {
            node_id: MetricsReply(
                node_id=node_id,
                items=(("consensus.commits", 7.0),),
                events=3,
            )
            for node_id in range(4)
        }
        view = await service.cluster_metrics()
        assert sorted(view["replicas"]) == ["0", "1", "2", "3"]
        replica = view["replicas"]["2"]
        assert replica["metrics"]["consensus.commits"] == 7.0
        assert replica["events"] == 3
        assert view["replicas_live"] == 4
        assert "gateway.submitted" in view["gateway"]
        await service.stop()

    asyncio.run(scenario())
