"""Metrics-registry contract: determinism, window math, wire shape.

The registry is the source of every scraped payload, so its contract
is determinism under an injectable clock: two registries fed the same
events at the same clock readings must produce identical snapshots —
that is what makes ``MetricsReply`` frames comparable across replicas
and runs.
"""

from __future__ import annotations

from repro.obs import MetricsRegistry, WindowedHistogram, items_to_dict


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


# -- counters and gauges ------------------------------------------------------


def test_counters_are_get_or_create_and_monotonic():
    registry = MetricsRegistry(clock=FakeClock())
    counter = registry.counter("net.frames_in")
    counter.inc()
    counter.inc(4)
    assert registry.counter("net.frames_in") is counter
    assert registry.snapshot()["net.frames_in"] == 5.0
    counter.set(2)
    assert registry.snapshot()["net.frames_in"] == 2.0


def test_gauges_hold_the_last_set_value():
    registry = MetricsRegistry(clock=FakeClock())
    registry.gauge("mempool.depth").set(7)
    registry.gauge("mempool.depth").set(3)
    assert registry.snapshot()["mempool.depth"] == 3.0


# -- windowed histogram math --------------------------------------------------


def test_window_evicts_samples_older_than_the_window():
    clock = FakeClock()
    hist = WindowedHistogram("commit", window=2.0, clock=clock)
    hist.record(1.0)
    clock.advance(1.0)
    hist.record(1.0)
    assert hist.count == 2
    clock.advance(1.5)  # first sample (t=0) now outside [0.5, 2.5]
    assert hist.count == 1
    clock.advance(2.0)
    assert hist.count == 0
    assert hist.stats() == {
        "count": 0.0,
        "rate": 0.0,
        "mean": 0.0,
        "p50": 0.0,
        "p95": 0.0,
        "max": 0.0,
    }


def test_rate_is_events_per_second_over_the_window():
    clock = FakeClock()
    hist = WindowedHistogram("commit", window=2.0, clock=clock)
    for _ in range(10):
        hist.record(1.0)  # a meter: constant 1.0 per event
    assert hist.rate == 5.0  # 10 events / 2s window


def test_percentiles_are_nearest_rank():
    clock = FakeClock()
    hist = WindowedHistogram("lat", window=100.0, clock=clock)
    for v in range(1, 101):  # 1..100
        hist.record(float(v))
    stats = hist.stats()
    assert stats["p50"] == 50.0
    assert stats["p95"] == 95.0
    assert stats["max"] == 100.0
    assert stats["mean"] == 50.5
    assert hist.percentile(50) == 50.0


def test_maxlen_bounds_memory_oldest_first():
    clock = FakeClock()
    hist = WindowedHistogram("hot", window=1000.0, maxlen=8, clock=clock)
    for v in range(100):
        hist.record(float(v))
    assert hist.count == 8
    assert hist.stats()["max"] == 99.0


# -- determinism / wire shape -------------------------------------------------


def _feed(registry: MetricsRegistry, clock: FakeClock) -> None:
    registry.counter("consensus.commits").inc(40)
    registry.gauge("consensus.view").set(2)
    meter = registry.histogram("consensus.commit", window=2.0)
    for _ in range(6):
        meter.record(1.0)
        clock.advance(0.1)


def test_two_registries_same_events_same_clock_identical_snapshots():
    clock_a, clock_b = FakeClock(), FakeClock()
    a, b = MetricsRegistry(clock=clock_a), MetricsRegistry(clock=clock_b)
    _feed(a, clock_a)
    _feed(b, clock_b)
    assert a.snapshot() == b.snapshot()
    assert a.snapshot_items() == b.snapshot_items()


def test_snapshot_items_are_sorted_and_round_trip():
    clock = FakeClock()
    registry = MetricsRegistry(clock=clock)
    _feed(registry, clock)
    items = registry.snapshot_items()
    assert list(items) == sorted(items)
    assert all(isinstance(v, float) for _, v in items)
    assert items_to_dict(items) == registry.snapshot()
    # Histograms expand into the flat namespace.
    names = [name for name, _ in items]
    assert "consensus.commit.rate" in names and "consensus.commit.p95" in names
