"""Unit and property tests for the quorum-system substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QuorumSystemError
from repro.quorums import (
    FBAQuorumSystem,
    SliceConfig,
    ThresholdQuorumSystem,
    quorums_intersect,
    validate_fba_system,
)


class TestThresholdQuorumSystem:
    def test_canonical_4_node_system(self):
        qs = ThresholdQuorumSystem.for_nodes(4)
        assert qs.f == 1
        assert qs.quorum_size() == 3
        assert qs.blocking_size() == 2

    def test_quorum_membership(self):
        qs = ThresholdQuorumSystem.for_nodes(4)
        assert qs.is_quorum({0, 1, 2})
        assert qs.is_quorum({0, 1, 2, 3})
        assert not qs.is_quorum({0, 1})

    def test_blocking_membership(self):
        qs = ThresholdQuorumSystem.for_nodes(4)
        assert qs.is_blocking({1, 3})
        assert not qs.is_blocking({2})

    def test_unknown_members_do_not_count(self):
        qs = ThresholdQuorumSystem.for_nodes(4)
        assert not qs.is_quorum({0, 1, 99, 100})
        assert not qs.is_blocking({77, 99})

    def test_explicit_f_below_max(self):
        qs = ThresholdQuorumSystem.for_nodes(10, f=2)
        assert qs.quorum_size() == 8
        assert qs.blocking_size() == 3

    def test_rejects_insufficient_n(self):
        with pytest.raises(ConfigurationError):
            ThresholdQuorumSystem.for_nodes(3, f=1)

    def test_rejects_negative_f(self):
        with pytest.raises(ConfigurationError):
            ThresholdQuorumSystem.for_nodes(4, f=-1)

    def test_f_zero_still_works(self):
        qs = ThresholdQuorumSystem.for_nodes(1, f=0)
        assert qs.is_quorum({0})
        assert qs.is_blocking({0})

    def test_closed_form_intersection(self):
        assert quorums_intersect(ThresholdQuorumSystem.for_nodes(7))

    @given(n=st.integers(1, 40))
    def test_max_f_satisfies_resilience(self, n):
        qs = ThresholdQuorumSystem.for_nodes(n)
        assert qs.n > 3 * qs.f

    @given(n=st.integers(4, 30), data=st.data())
    @settings(max_examples=60)
    def test_two_quorums_intersect_in_honest_node(self, n, data):
        """Quorum intersection: |Q1 ∩ Q2| > f for any two quorums."""
        qs = ThresholdQuorumSystem.for_nodes(n)
        members = sorted(qs.nodes)
        q1 = data.draw(st.sets(st.sampled_from(members), min_size=qs.quorum_size()))
        q2 = data.draw(st.sets(st.sampled_from(members), min_size=qs.quorum_size()))
        assert len(q1 & q2) >= qs.f + 1

    @given(n=st.integers(4, 30), data=st.data())
    @settings(max_examples=60)
    def test_blocking_set_intersects_every_quorum(self, n, data):
        qs = ThresholdQuorumSystem.for_nodes(n)
        members = sorted(qs.nodes)
        blocking = data.draw(st.sets(st.sampled_from(members), min_size=qs.blocking_size()))
        quorum = data.draw(st.sets(st.sampled_from(members), min_size=qs.quorum_size()))
        assert blocking & quorum


class TestFBAQuorumSystem:
    def _tier_system(self) -> FBAQuorumSystem:
        """Four nodes, each trusting any 2 of the other 3 (≅ 3f+1, f=1)."""
        peers = range(4)
        return FBAQuorumSystem.from_slices([SliceConfig.threshold(i, peers, k=2) for i in peers])

    def test_threshold_slices_match_classic_quorums(self):
        fba = self._tier_system()
        assert fba.is_quorum({0, 1, 2})
        assert not fba.is_quorum({0, 1})
        assert fba.quorum_size() == 3

    def test_blocking_sets(self):
        fba = self._tier_system()
        assert fba.is_blocking({0, 1})
        assert not fba.is_blocking({3})
        assert fba.blocking_size() == 2

    def test_validate_accepts_intersecting_system(self):
        validate_fba_system(self._tier_system())

    def test_validate_rejects_disjoint_quorums(self):
        # Two cliques that trust only themselves: disjoint quorums.
        group_a = [SliceConfig.threshold(i, [0, 1, 2], k=2) for i in (0, 1, 2)]
        group_b = [SliceConfig.threshold(i, [3, 4, 5], k=2) for i in (3, 4, 5)]
        fba = FBAQuorumSystem.from_slices(group_a + group_b)
        with pytest.raises(QuorumSystemError, match="disjoint"):
            validate_fba_system(fba)

    def test_heterogeneous_slices(self):
        """A core of mutually-trusting nodes plus a leaf trusting the core."""
        core = [SliceConfig.threshold(i, [0, 1, 2], k=2) for i in (0, 1, 2)]
        leaf = SliceConfig(node=3, slices=frozenset([frozenset({0, 1, 3}), frozenset({1, 2, 3})]))
        fba = FBAQuorumSystem.from_slices(core + [leaf])
        # The core alone is a quorum; the leaf joins it but cannot form
        # one without core members.
        assert fba.is_quorum({0, 1, 2})
        assert not fba.is_quorum({3})
        assert fba.is_quorum({0, 1, 2, 3})

    def test_quorum_closure_discards_unsatisfied_members(self):
        fba = self._tier_system()
        # {0,1,2,99}: unknown member is ignored, closure is {0,1,2}.
        assert fba.is_quorum({0, 1, 2, 99})

    def test_empty_system_rejected(self):
        with pytest.raises(QuorumSystemError):
            FBAQuorumSystem.from_slices([])

    def test_slices_always_include_declaring_node(self):
        cfg = SliceConfig(node=0, slices=frozenset([frozenset({1, 2})]))
        normalized = cfg.normalized()
        assert all(0 in s for s in normalized.slices)

    def test_threshold_k_out_of_range(self):
        with pytest.raises(QuorumSystemError):
            SliceConfig.threshold(0, [0, 1], k=5)

    def test_minimal_quorums_are_minimal(self):
        fba = self._tier_system()
        for quorum in fba.minimal_quorums:
            for member in quorum:
                shrunk = quorum - {member}
                assert not fba._quorum_closure(shrunk) == shrunk or not shrunk
