"""Unit tests for adversarial network schedulers."""

from __future__ import annotations

from repro.sim import (
    PartitionPolicy,
    ScriptedPolicy,
    SkewedDelays,
    SynchronousDelays,
    TargetedDropPolicy,
    censor_types,
    silence_nodes,
)

BASE = SynchronousDelays(1.0)


class TestTargetedDrop:
    def test_silenced_node_messages_dropped(self):
        policy = TargetedDropPolicy(BASE, silence_nodes([2]))
        assert policy.delay(0.0, 2, 0, "x") is None
        assert policy.delay(0.0, 0, 2, "x") == 1.0  # inbound unaffected

    def test_window_bounds(self):
        policy = TargetedDropPolicy(BASE, silence_nodes([0]), start=5.0, end=10.0)
        assert policy.delay(0.0, 0, 1, "x") == 1.0   # before window
        assert policy.delay(7.0, 0, 1, "x") is None  # inside
        assert policy.delay(10.0, 0, 1, "x") == 1.0  # end is exclusive

    def test_censor_types_matches_class_name(self):
        class Proposal:
            pass

        policy = TargetedDropPolicy(BASE, censor_types("Proposal"))
        assert policy.delay(0.0, 0, 1, Proposal()) is None
        assert policy.delay(0.0, 0, 1, "other") == 1.0


class TestPartition:
    def test_cross_partition_dropped_until_heal(self):
        policy = PartitionPolicy(BASE, groups=[frozenset({0, 1})], heal_time=10.0)
        assert policy.delay(0.0, 0, 2, "x") is None   # cross groups
        assert policy.delay(0.0, 0, 1, "x") == 1.0    # same group
        assert policy.delay(10.0, 0, 2, "x") == 1.0   # healed

    def test_nodes_outside_all_groups_form_implicit_group(self):
        policy = PartitionPolicy(BASE, groups=[frozenset({0})], heal_time=100.0)
        assert policy.delay(0.0, 1, 2, "x") == 1.0  # both implicit
        assert policy.delay(0.0, 0, 1, "x") is None


class TestSkewedDelays:
    def test_per_destination_delays(self):
        policy = SkewedDelays(delta=1.0, delta_for={0: 0.25})
        assert policy.delay(0.0, 1, 0, "x") == 0.25
        assert policy.delay(0.0, 1, 2, "x") == 1.0

    def test_never_exceeds_delta(self):
        policy = SkewedDelays(delta=1.0, delta_for={0: 5.0})
        assert policy.delay(0.0, 1, 0, "x") == 1.0


class TestScripted:
    def test_script_controls_specific_occurrence(self):
        policy = ScriptedPolicy(
            BASE,
            script={(0, 1, "str", 0): None, (0, 1, "str", 1): 3.0},
        )
        assert policy.delay(0.0, 0, 1, "first") is None
        assert policy.delay(0.0, 0, 1, "second") == 3.0
        assert policy.delay(0.0, 0, 1, "third") == 1.0  # falls through

    def test_unscripted_links_fall_through(self):
        policy = ScriptedPolicy(BASE, script={})
        assert policy.delay(0.0, 0, 1, "x") == 1.0
