"""Tests for workload generators and their SMR integration."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.errors import ConfigurationError
from repro.multishot import MultiShotConfig
from repro.sim import Simulation, SynchronousDelays
from repro.smr import Replica
from repro.workloads import BurstyWorkload, HotKeyWorkload, UniformWorkload


class TestGenerators:
    def test_uniform_count_and_monotone_times(self):
        txns = list(UniformWorkload(count=30, rate=5.0, seed=1).transactions())
        assert len(txns) == 30
        times = [t for t, _ in txns]
        assert times == sorted(times)
        assert times[-1] == 29 / 5.0

    def test_uniform_deterministic_per_seed(self):
        a = [t.txid for _, t in UniformWorkload(10, seed=3).transactions()]
        b = [t.txid for _, t in UniformWorkload(10, seed=3).transactions()]
        c = [t.txid for _, t in UniformWorkload(10, seed=4).transactions()]
        assert a == b
        assert a != c

    def test_bursty_batches_share_timestamps(self):
        txns = list(BurstyWorkload(bursts=3, burst_size=4, period=10.0).transactions())
        assert len(txns) == 12
        assert {t for t, _ in txns} == {0.0, 10.0, 20.0}

    def test_hotkey_skew(self):
        txns = list(HotKeyWorkload(count=500, hot_keys=2, hot_fraction=0.9, seed=0).transactions())
        hot = sum(1 for _, t in txns if str(t.op[1]).startswith("hot-"))
        assert hot / len(txns) > 0.8

    def test_unique_txids(self):
        txns = list(UniformWorkload(count=100, seed=5).transactions())
        ids = [t.txid for _, t in txns]
        assert len(ids) == len(set(ids))


class TestInjection:
    def _run(self, workload, max_slots=20, horizon=60.0, batch=10):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=max_slots)
        sim = Simulation(SynchronousDelays(1.0))
        replicas = [Replica(i, config, max_batch=batch) for i in range(4)]
        for replica in replicas:
            sim.add_node(replica)
        count = workload.inject(sim, replicas)
        sim.run(until=horizon)
        return replicas, count

    def test_uniform_workload_executes_everywhere(self):
        replicas, count = self._run(UniformWorkload(count=60, rate=10.0, seed=2))
        assert count == 60
        assert {r.state_digest() for r in replicas} == {replicas[0].state_digest()}
        assert all(r.store.applied_count == 60 for r in replicas)

    def test_bursty_backlog_drains(self):
        """A burst larger than one block drains over subsequent slots
        — the backlog behaviour the paper's responsiveness discussion
        worries about, handled by pipelining."""
        # Generous slot budget: slots between bursts carry empty blocks
        # (the pipeline never idles), so draining needs extra headroom.
        replicas, count = self._run(
            BurstyWorkload(bursts=2, burst_size=30, period=15.0),
            horizon=80.0,
            max_slots=45,
        )
        assert all(r.store.applied_count == count for r in replicas)
        # Burst counters ended exactly at burst size on every replica.
        for replica in replicas:
            assert replica.store.get("burst-0") == 30
            assert replica.store.get("burst-1") == 30

    def test_hotkey_counters_sum_correctly(self):
        replicas, count = self._run(
            HotKeyWorkload(count=80, rate=20.0, hot_keys=2, seed=9), horizon=70.0
        )
        reference = replicas[0]
        total = sum(
            reference.store.get(key, 0)
            for key in {f"hot-{i}" for i in range(2)} | {f"cold-{i}" for i in range(50)}
        )
        assert total == count

    def test_targeted_injection_subset(self):
        config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=16)
        sim = Simulation(SynchronousDelays(1.0))
        replicas = [Replica(i, config, max_batch=5) for i in range(4)]
        for replica in replicas:
            sim.add_node(replica)
        workload = UniformWorkload(count=10, rate=10.0, seed=1)
        workload.inject(sim, replicas, targets=[2])
        sim.run(until=60)
        # Only replica 2's mempool had them, but execution reaches all.
        assert all(r.store.applied_count == 10 for r in replicas)

    def _cluster(self, n: int = 4):
        config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=16)
        sim = Simulation(SynchronousDelays(1.0))
        replicas = [Replica(i, config, max_batch=5) for i in range(n)]
        for replica in replicas:
            sim.add_node(replica)
        return sim, replicas

    def test_unknown_target_id_rejected(self):
        """A typo in targets used to inject to *zero* replicas and let a
        liveness run pass vacuously; now it is a configuration error."""
        sim, replicas = self._cluster()
        workload = UniformWorkload(count=5, rate=10.0, seed=1)
        with pytest.raises(ConfigurationError, match="unknown replica ids \\[7\\]"):
            workload.inject(sim, replicas, targets=[7])

    def test_partially_unknown_targets_rejected(self):
        sim, replicas = self._cluster()
        workload = UniformWorkload(count=5, rate=10.0, seed=1)
        with pytest.raises(ConfigurationError, match="unknown replica ids"):
            workload.inject(sim, replicas, targets=[0, 99])

    def test_empty_target_set_rejected(self):
        sim, replicas = self._cluster()
        workload = UniformWorkload(count=5, rate=10.0, seed=1)
        with pytest.raises(ConfigurationError, match="at least one target"):
            workload.inject(sim, replicas, targets=[])

    def test_empty_replica_list_rejected(self):
        sim, _ = self._cluster()
        workload = UniformWorkload(count=5, rate=10.0, seed=1)
        with pytest.raises(ConfigurationError, match="at least one target"):
            workload.inject(sim, [])
