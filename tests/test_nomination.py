"""Tests for hash-priority leader nomination (FBA future-work hook)."""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig, TetraBFTNode
from repro.errors import ConfigurationError
from repro.quorums.nomination import (
    NominationRound,
    PriorityLeaderElection,
    leader_fn_for,
    priority,
)
from repro.sim import Simulation, SynchronousDelays
from tests.conftest import assert_agreement


class TestPriority:
    def test_deterministic(self):
        assert priority(3, 1) == priority(3, 1)

    def test_varies_with_inputs(self):
        values = {priority(v, n) for v in range(5) for n in range(5)}
        assert len(values) == 25  # 64-bit hashes: collisions ~impossible

    def test_seed_separates_deployments(self):
        assert priority(0, 0, b"chain-a") != priority(0, 0, b"chain-b")


class TestElection:
    def test_unique_leader_per_view(self):
        election = PriorityLeaderElection((0, 1, 2, 3))
        for view in range(50):
            assert election.leader_of(view) in (0, 1, 2, 3)

    def test_all_participants_agree(self):
        a = PriorityLeaderElection((0, 1, 2, 3))
        b = PriorityLeaderElection((0, 1, 2, 3))
        assert a.schedule(100) == b.schedule(100)

    def test_rotation_is_not_round_robin(self):
        election = PriorityLeaderElection((0, 1, 2, 3))
        schedule = election.schedule(40)
        round_robin = [v % 4 for v in range(40)]
        assert schedule != round_robin

    def test_long_run_fairness(self):
        election = PriorityLeaderElection((0, 1, 2, 3))
        shares = election.fairness(4000)
        for node, share in shares.items():
            assert 0.15 < share < 0.35, f"node {node} leads {share:.0%} of views"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PriorityLeaderElection(())
        with pytest.raises(ConfigurationError):
            PriorityLeaderElection((0, 0, 1))

    def test_consensus_runs_under_nominated_leaders(self):
        """TetraBFT with hash-priority election instead of round-robin."""
        config = ProtocolConfig(
            quorum_system=ProtocolConfig.create(4).quorum_system,
            leader_fn=leader_fn_for(range(4)),
        )
        sim = Simulation(SynchronousDelays(1.0))
        for i in range(4):
            sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
        sim.run_until_all_decided(until=100)
        value = assert_agreement(sim, [0, 1, 2, 3])
        leader0 = config.leader_of(0)
        assert value == f"val-{leader0}"
        assert sim.metrics.latency.max_decision_time() == 5.0


class TestNominationRound:
    def test_convergence_with_shared_candidates(self):
        round_ = NominationRound(view=7, blocking_size=2)
        for participant in range(4):
            choice = round_.nominate(participant, [0, 1, 2, 3])
        assert round_.confirmed_leader() == choice

    def test_no_confirmation_below_blocking(self):
        round_ = NominationRound(view=7, blocking_size=3)
        round_.nominate(0, [0, 1])
        assert round_.confirmed_leader() is None

    def test_divergent_candidate_views_may_still_confirm(self):
        """Participants with different candidate subsets: confirmation
        happens once a blocking set's top choices coincide."""
        round_ = NominationRound(view=3, blocking_size=2)
        round_.nominate(0, [0, 1, 2, 3])
        round_.nominate(1, [0, 1, 2, 3])
        round_.nominate(2, [2, 3])
        assert round_.confirmed_leader() is not None

    def test_empty_candidates_rejected(self):
        round_ = NominationRound(view=0, blocking_size=2)
        with pytest.raises(ConfigurationError):
            round_.nominate(0, [])
