"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from collections.abc import Callable

import pytest

from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import Simulation, SynchronousDelays
from repro.sim.trace import TraceKind


class FakeTimer:
    """Handle returned by :class:`FakeContext.set_timer`."""

    def __init__(self, deadline: float, callback: Callable[[], None]) -> None:
        self.deadline = deadline
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class FakeContext:
    """A duck-typed NodeContext that records everything a node does.

    Unit tests drive a single node state machine directly: feed it
    messages via ``node.receive``, then inspect ``sent``/``broadcasts``
    and fire timers manually with :meth:`fire_timers`.
    """

    def __init__(self, node_id: int = 0) -> None:
        self.node_id = node_id
        self._now = 0.0
        self.sent: list[tuple[int, object]] = []          # (dst, message)
        self.broadcasts: list[object] = []
        self.timers: list[FakeTimer] = []
        self.decisions: list[object] = []
        self.view_entries: list[int] = []
        self.storage_reports: list[int] = []
        self.trace_events: list[tuple[TraceKind, dict]] = []

    # -- context API ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    def send(self, dst: int, message: object) -> None:
        self.sent.append((dst, message))

    def broadcast(self, message: object) -> None:
        self.broadcasts.append(message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> FakeTimer:
        timer = FakeTimer(self._now + delay, callback)
        self.timers.append(timer)
        return timer

    def report_decision(self, value: object) -> None:
        self.decisions.append(value)

    def report_view_entry(self, view: int) -> None:
        self.view_entries.append(view)

    def report_storage(self, size_bytes: int) -> None:
        self.storage_reports.append(size_bytes)

    def trace(self, kind: TraceKind, **detail: object) -> None:
        self.trace_events.append((kind, detail))

    # -- test helpers ----------------------------------------------------------

    def advance(self, dt: float) -> None:
        self._now += dt

    def fire_timers(self) -> int:
        """Fire every due, uncancelled timer; returns how many fired."""
        fired = 0
        for timer in list(self.timers):
            if not timer.cancelled and timer.deadline <= self._now:
                self.timers.remove(timer)
                timer.callback()
                fired += 1
        return fired

    def messages_of(self, message_type: type) -> list[object]:
        return [m for m in self.broadcasts if isinstance(m, message_type)]


@pytest.fixture
def fake_ctx() -> FakeContext:
    return FakeContext()


@pytest.fixture
def config4() -> ProtocolConfig:
    """The paper's canonical n=4, f=1 configuration."""
    return ProtocolConfig.create(4)


@pytest.fixture
def config7() -> ProtocolConfig:
    return ProtocolConfig.create(7)


def build_simulation(
    n: int,
    policy=None,
    config: ProtocolConfig | None = None,
    values: Callable[[int], object] | None = None,
    trace: bool = False,
) -> Simulation:
    """A simulation of n honest TetraBFT nodes (helper for integration tests)."""
    config = config or ProtocolConfig.create(n)
    sim = Simulation(policy or SynchronousDelays(1.0), trace_enabled=trace)
    for i in range(n):
        value = values(i) if values else f"val-{i}"
        sim.add_node(TetraBFTNode(i, config, initial_value=value))
    return sim


def assert_agreement(sim: Simulation, node_ids: list[int]) -> object:
    """All listed nodes decided, and on the same value; returns it."""
    latency = sim.metrics.latency
    undecided = [i for i in node_ids if i not in latency.decision_times]
    assert not undecided, f"nodes {undecided} never decided"
    values = {latency.decision_values[i] for i in node_ids}
    assert len(values) == 1, f"disagreement: {values}"
    return values.pop()
