"""Unit tests for Rules 1–4 / Algorithms 1, 4, 5 (repro.core.rules).

These construct suggest/proof message sets by hand and check the
verdicts against the paper's prose, including the adversarial cases
the safety proof turns on (a lying minority must never flip a verdict).
"""

from __future__ import annotations

from repro.core import (
    EMPTY_VOTE,
    GENESIS_VIEW,
    Proof,
    Suggest,
    VoteRecord,
)
from repro.core.rules import (
    claims_safe,
    find_safe_value,
    proof_claims_safe,
    proposal_is_safe,
    suggest_claims_safe,
)
from repro.quorums import ThresholdQuorumSystem

QS4 = ThresholdQuorumSystem.for_nodes(4)


def fresh_suggest(view: int) -> Suggest:
    return Suggest(view=view)


def fresh_proof(view: int) -> Proof:
    return Proof(view=view)


class TestClaimsSafe:
    def test_view_zero_always_safe(self):
        assert claims_safe(EMPTY_VOTE, EMPTY_VOTE, GENESIS_VIEW, "anything")

    def test_highest_vote_certifies_its_value(self):
        vote = VoteRecord(3, "a")
        assert claims_safe(vote, EMPTY_VOTE, 2, "a")
        assert claims_safe(vote, EMPTY_VOTE, 3, "a")
        assert not claims_safe(vote, EMPTY_VOTE, 4, "a")

    def test_highest_vote_does_not_certify_other_values(self):
        vote = VoteRecord(3, "a")
        assert not claims_safe(vote, EMPTY_VOTE, 2, "b")

    def test_prev_vote_certifies_any_value(self):
        """Rule 2/4 item 3: a second-highest (different-value) vote at
        ≥ v' proves two certified values exist above v', so any value
        is claimable."""
        vote = VoteRecord(5, "a")
        prev = VoteRecord(3, "b")
        assert claims_safe(vote, prev, 3, "zebra")
        assert claims_safe(vote, prev, 2, "b")
        assert not claims_safe(vote, prev, 4, "zebra")
        assert claims_safe(vote, prev, 4, "a")  # via the highest vote

    def test_empty_history_claims_nothing_above_zero(self):
        assert not claims_safe(EMPTY_VOTE, EMPTY_VOTE, 1, "a")

    def test_suggest_and_proof_wrappers(self):
        suggest = Suggest(view=4, vote2=VoteRecord(2, "a"))
        assert suggest_claims_safe(suggest, 2, "a")
        assert not suggest_claims_safe(suggest, 3, "a")
        proof = Proof(view=4, vote1=VoteRecord(2, "a"))
        assert proof_claims_safe(proof, 1, "a")
        assert not proof_claims_safe(proof, 1, "b")


class TestFindSafeValue:
    def test_view_zero_everything_safe(self):
        assert find_safe_value({}, GENESIS_VIEW, QS4, "init") == "init"

    def test_needs_a_quorum_of_suggests(self):
        suggests = {0: fresh_suggest(1), 1: fresh_suggest(1)}
        assert find_safe_value(suggests, 1, QS4, "init") is None

    def test_rule1_2a_no_vote3_anywhere(self):
        suggests = {i: fresh_suggest(1) for i in range(3)}
        assert find_safe_value(suggests, 1, QS4, "init") == "init"

    def test_rule1_2b_forced_value(self):
        """A reported vote-3 for 'a' at view 0, with a blocking set
        claiming 'a' safe there: the leader must pick 'a'."""
        suggests = {
            0: Suggest(view=1, vote2=VoteRecord(0, "a"), vote3=VoteRecord(0, "a")),
            1: Suggest(view=1, vote2=VoteRecord(0, "a")),
            2: fresh_suggest(1),
        }
        assert find_safe_value(suggests, 1, QS4, "init") == "a"

    def test_rule1_anchor_at_zero_claims_trivially(self):
        """vote-3 at view 0 with v' = 0: Rule 2 item 1 lets everyone
        claim, so the value is safe even with empty vote-2 histories."""
        suggests = {
            0: Suggest(view=1, vote3=VoteRecord(0, "a")),
            1: fresh_suggest(1),
            2: fresh_suggest(1),
        }
        assert find_safe_value(suggests, 1, QS4, "init") == "a"

    def test_higher_vote3_blocks_lower_anchor(self):
        """Rule 1 item 2(b)i: a member's vote-3 above v' disqualifies
        that anchor; with view-2 suggests reporting vote-3 at 1 for
        'b', the anchor must be view 1 and the value 'b'."""
        suggests = {
            0: Suggest(view=2, vote2=VoteRecord(1, "b"), vote3=VoteRecord(1, "b")),
            1: Suggest(view=2, vote2=VoteRecord(1, "b"), vote3=VoteRecord(0, "a")),
            2: Suggest(view=2, vote2=VoteRecord(1, "b")),
        }
        assert find_safe_value(suggests, 2, QS4, "init") == "b"

    def test_conflicting_vote3_at_anchor_blocks_verdict(self):
        """Two different vote-3 values at the same anchor view make a
        quorum impossible for either value at that anchor (and the
        blocking evidence only reaches that view): no verdict."""
        suggests = {
            0: Suggest(view=1, vote2=VoteRecord(0, "a"), vote3=VoteRecord(0, "a")),
            1: Suggest(view=1, vote2=VoteRecord(0, "b"), vote3=VoteRecord(0, "b")),
            2: Suggest(view=1, vote2=VoteRecord(0, "a"), vote3=VoteRecord(0, "a")),
            3: Suggest(view=1, vote2=VoteRecord(0, "b"), vote3=VoteRecord(0, "b")),
        }
        # Anchor 0, value 'a': quorum needs vote3.view < 0 or == 0 with
        # value 'a' — nodes 1 and 3 fail it; same for 'b'.  v' = 0
        # claims are trivial but the quorum condition cannot be met.
        assert find_safe_value(suggests, 1, QS4, "init") is None

    def test_single_liar_cannot_force_unsafe_value(self):
        """One fabricated suggest claiming 'poison' everywhere is below
        the blocking threshold once the honest quorum's vote-3 reports
        pin the anchor: the leader never returns 'poison'."""
        honest_value = "a"
        suggests = {
            i: Suggest(
                view=2,
                vote2=VoteRecord(1, honest_value),
                vote3=VoteRecord(1, honest_value),
            )
            for i in range(3)
        } | {
            3: Suggest(view=2, vote2=VoteRecord(1, "poison"), vote3=VoteRecord(1, "poison")),
        }
        assert find_safe_value(suggests, 2, QS4, "init") == honest_value

    def test_returns_default_when_histories_stale(self):
        """All vote-3s far in the past with fresh vote-2 coverage: any
        value is safe, so the leader proposes its own."""
        suggests = {
            i: Suggest(view=5, vote2=VoteRecord(4, "x"), vote3=EMPTY_VOTE)
            for i in range(3)
        }
        assert find_safe_value(suggests, 5, QS4, "mine") == "mine"


class TestProposalIsSafe:
    def test_view_zero_trivially_safe(self):
        assert proposal_is_safe({}, GENESIS_VIEW, "anything", QS4)

    def test_needs_quorum_of_proofs(self):
        proofs = {0: fresh_proof(1)}
        assert not proposal_is_safe(proofs, 1, "a", QS4)

    def test_rule3_2a_no_vote4(self):
        proofs = {i: fresh_proof(1) for i in range(3)}
        assert proposal_is_safe(proofs, 1, "whatever", QS4)

    def test_rule3_forced_value_accepted(self):
        proofs = {
            0: Proof(view=1, vote1=VoteRecord(0, "a"), vote4=VoteRecord(0, "a")),
            1: Proof(view=1, vote1=VoteRecord(0, "a")),
            2: fresh_proof(1),
        }
        assert proposal_is_safe(proofs, 1, "a", QS4)

    def test_rule3_conflicting_value_rejected(self):
        """A quorum member's vote-4 for 'a' at the only viable anchor
        forbids determining 'b' safe."""
        proofs = {
            0: Proof(view=1, vote1=VoteRecord(0, "a"), vote4=VoteRecord(0, "a")),
            1: Proof(view=1, vote1=VoteRecord(0, "a"), vote4=VoteRecord(0, "a")),
            2: Proof(view=1, vote1=VoteRecord(0, "a"), vote4=VoteRecord(0, "a")),
        }
        assert not proposal_is_safe(proofs, 1, "b", QS4)
        assert proposal_is_safe(proofs, 1, "a", QS4)

    def test_rule3_2a_subsumes_quorum_without_vote4(self):
        """If any quorum reports never having voted phase 4, every value
        is safe (Rule 3 item 2a) — sound because a decision quorum must
        intersect this one in a truthful honest node."""
        proofs = {
            0: Proof(view=3, vote1=VoteRecord(1, "a"), vote4=VoteRecord(1, "a")),
            1: Proof(view=3, vote1=VoteRecord(1, "a")),
            2: Proof(view=3, vote1=VoteRecord(2, "b")),
            3: Proof(view=3, vote1=VoteRecord(2, "b")),
        }
        # Nodes 1,2,3 report no vote-4: that is a quorum, so even a
        # fresh value is safe.
        assert proposal_is_safe(proofs, 3, "anything", QS4)

    def test_rule3_iiiB_two_blocking_sets(self):
        """Rule 3 item 2(b)iiiB: blocking sets certifying two *different*
        values at ṽ < ṽ' prove no decision completed at or below ṽ, so
        a proposal consistent with the vote-4 reports is safe even
        without any direct claim for it."""
        proofs = {
            # vote-4s at view 1 for 'a' (so no-vote-4 set is not a quorum
            # and item 2a cannot fire).
            0: Proof(view=4, vote1=VoteRecord(3, "d"), vote4=VoteRecord(1, "a")),
            1: Proof(view=4, vote1=VoteRecord(2, "b"), vote4=VoteRecord(1, "a")),
            # Blocking set {1,2} claims 'b' safe at ṽ=2...
            2: Proof(view=4, vote1=VoteRecord(2, "b")),
            # ...and blocking set {0,3} claims 'd' safe at ṽ'=3.
            3: Proof(view=4, vote1=VoteRecord(3, "d")),
        }
        # No blocking set claims 'a' directly above view 1 (iiiA fails
        # above the vote-4 anchor), but the ('b'@2, 'd'@3) pair shows
        # views 2 and 3 both certified fresh values: 'a' is safe.
        assert proposal_is_safe(proofs, 4, "a", QS4)
        # With the vote-4s moved up to the lower certified view, the
        # anchor's 2(b)ii value condition pins proposals to 'b'.
        pinned = {
            0: Proof(view=4, vote1=VoteRecord(3, "d"), vote4=VoteRecord(2, "b")),
            1: Proof(view=4, vote1=VoteRecord(2, "b"), vote4=VoteRecord(2, "b")),
            2: Proof(view=4, vote1=VoteRecord(2, "b")),
            3: Proof(view=4, vote1=VoteRecord(3, "d")),
        }
        assert proposal_is_safe(pinned, 4, "b", QS4)
        assert not proposal_is_safe(pinned, 4, "a", QS4)

    def test_liar_below_blocking_threshold_rejected(self):
        """A single fabricated proof cannot make an unsafe value pass:
        the blocking intersection requires f+1 concurring claims."""
        proofs = {
            0: Proof(view=2, vote1=VoteRecord(1, "a"), vote4=VoteRecord(1, "a")),
            1: Proof(view=2, vote1=VoteRecord(1, "a"), vote4=VoteRecord(1, "a")),
            2: Proof(view=2, vote1=VoteRecord(1, "a"), vote4=VoteRecord(1, "a")),
            3: Proof(view=2, vote1=VoteRecord(1, "poison"), vote4=EMPTY_VOTE),
        }
        assert not proposal_is_safe(proofs, 2, "poison", QS4)
        assert proposal_is_safe(proofs, 2, "a", QS4)


class TestRulesOverFBA:
    """The same rules run unchanged over a heterogeneous quorum system."""

    def _fba(self):
        from repro.quorums import FBAQuorumSystem, SliceConfig

        return FBAQuorumSystem.from_slices(
            [SliceConfig.threshold(i, range(4), k=2) for i in range(4)]
        )

    def test_find_safe_value_over_fba(self):
        qs = self._fba()
        suggests = {i: fresh_suggest(1) for i in range(3)}
        assert find_safe_value(suggests, 1, qs, "init") == "init"

    def test_proposal_safety_over_fba(self):
        qs = self._fba()
        proofs = {
            0: Proof(view=1, vote1=VoteRecord(0, "a"), vote4=VoteRecord(0, "a")),
            1: Proof(view=1, vote1=VoteRecord(0, "a")),
            2: fresh_proof(1),
        }
        assert proposal_is_safe(proofs, 1, "a", qs)
        assert not proposal_is_safe(proofs, 1, "b", qs)
