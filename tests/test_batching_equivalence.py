"""Message-plane equivalence: batching must be invisible to the protocol.

The aggregated-vote-frame plane (``VoteBatch`` envelopes, proposal
piggybacking, coalesced sim deliveries) is *semantics-free* by
contract: it may change how many physical frames cross the network,
never what any replica concludes.  This suite pins that contract for
every registered consensus engine by running the A5 smoke cell twice —
batching forced on and forced off — under deterministic delay policies
and requiring:

* **byte-identical state digests** per replica,
* **identical finalized chains** (digest-for-digest),
* a **clean SafetyAuditor replay** of both runs,

plus the same comparison through a view-change-heavy crash-recovery
scenario, where batch flush boundaries interact with timers and slot
view changes.  Deterministic policies are essential: batching reduces
how often RNG-consuming delay policies are consulted, so seeded-random
scenarios may diverge (accepted and documented in the sim layer);
under :class:`~repro.sim.SynchronousDelays` and
:class:`~repro.sim.CrashRecoveryPolicy` the runs must agree exactly.
"""

from __future__ import annotations

import pytest

from repro.core import ProtocolConfig
from repro.eval.scaling import scenario_policy
from repro.smr import ENGINE_NAMES, Replica, Transaction
from repro.smr.engine import engine_factory
from repro.sim import Simulation, SynchronousDelays
from repro.verification import SafetyAuditor

TXNS = 60
BATCH = 10


def _run_cluster(engine: str, batching: bool, scenario: str = "sync", n: int = 4):
    """One full SMR cluster run; returns (replicas, sim)."""
    policy, excluded = scenario_policy(scenario, n)
    max_slots = TXNS // BATCH + 40 if engine == "tetrabft" else None
    factory = engine_factory(
        engine, ProtocolConfig.create(n), max_slots=max_slots, batching=batching
    )
    sim = Simulation(policy)
    sim.metrics.messages.enabled = False
    replicas = [Replica(i, max_batch=BATCH, engine_factory=factory) for i in range(n)]
    sim.add_nodes(list(replicas))
    for k in range(TXNS):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("incr", f"key-{k % 5}", 1)))
    del excluded
    # Fixed horizon, no early-stop predicate: stop_when is polled per
    # *event*, and batching legitimately changes the event count, so an
    # early stop would truncate the two runs at different sim times.
    # Equal simulated time is what makes the comparison byte-exact.
    sim.run(until=120)
    return replicas, sim


def _fingerprint(replicas) -> list[tuple[str, list[str]]]:
    return [
        (r.state_digest(), [b.digest for b in r.finalized_chain]) for r in replicas
    ]


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_batching_is_byte_identical_per_engine(engine):
    """A5 smoke cell, batching on vs off: same digests, same chains,
    auditor-clean both ways — for every registered engine."""
    batched, sim_on = _run_cluster(engine, batching=True)
    unbatched, sim_off = _run_cluster(engine, batching=False)
    assert _fingerprint(batched) == _fingerprint(unbatched), engine
    for replicas in (batched, unbatched):
        report = SafetyAuditor(expected_txns=TXNS).audit(replicas)
        assert report.safe and report.live, (engine, report.violations)
    # The plane really was on/off.  Unbatched: one frame per message.
    # Batched: never more frames than messages, and strictly fewer for
    # TetraBFT, whose leader piggybacks its proposal on its own vote
    # every slot (the chained baselines emit one broadcast per
    # activation in this workload, so they have nothing to merge).
    assert sim_off.network.frames_sent == sim_off.network.messages_sent
    assert sim_on.network.frames_sent <= sim_on.network.messages_sent, engine
    if engine == "tetrabft":
        assert sim_on.network.frames_sent < sim_on.network.messages_sent


@pytest.mark.parametrize("engine", ("tetrabft", "pbft"))
def test_batching_survives_view_changes_identically(engine):
    """Crash-recovery scenario (rolling outages force slot view changes
    and timer-driven flushes): batched and unbatched runs still agree."""
    batched, _ = _run_cluster(engine, batching=True, scenario="crash-recovery")
    unbatched, _ = _run_cluster(engine, batching=False, scenario="crash-recovery")
    assert _fingerprint(batched) == _fingerprint(unbatched), engine
    for replicas in (batched, unbatched):
        # No liveness expectation: the outage node may lag the others.
        report = SafetyAuditor().audit(replicas)
        assert report.safe, (engine, report.violations)


@pytest.mark.parametrize("engine", ("tetrabft", "pbft"))
def test_adaptive_policy_is_byte_identical_to_fixed(engine, monkeypatch):
    """The adaptive chunk cap is semantics-free like the plane itself:
    REPRO_BATCH_POLICY=adaptive (the default) and =fixed (PR 6's
    constant) produce byte-identical digests and chains, both
    auditor-clean.  The policy only ever re-chunks a flush — it cannot
    change what is delivered or when."""
    monkeypatch.setenv("REPRO_BATCH_POLICY", "adaptive")
    adaptive, sim_adaptive = _run_cluster(engine, batching=True)
    monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed")
    fixed, _ = _run_cluster(engine, batching=True)
    monkeypatch.delenv("REPRO_BATCH_POLICY")
    default, _ = _run_cluster(engine, batching=True)
    assert _fingerprint(adaptive) == _fingerprint(fixed), engine
    assert _fingerprint(adaptive) == _fingerprint(default), engine
    for replicas in (adaptive, fixed):
        report = SafetyAuditor(expected_txns=TXNS).audit(replicas)
        assert report.safe and report.live, (engine, report.violations)
    # Aggregation still happened under the adaptive cap.
    assert sim_adaptive.network.frames_sent <= sim_adaptive.network.messages_sent


def test_adaptive_policy_survives_view_changes_identically(monkeypatch):
    """Crash-recovery scenario under the adaptive cap: timer-driven
    flushes and slot view changes still agree with the fixed arm."""
    monkeypatch.setenv("REPRO_BATCH_POLICY", "adaptive")
    adaptive, _ = _run_cluster("tetrabft", batching=True, scenario="crash-recovery")
    monkeypatch.setenv("REPRO_BATCH_POLICY", "fixed")
    fixed, _ = _run_cluster("tetrabft", batching=True, scenario="crash-recovery")
    assert _fingerprint(adaptive) == _fingerprint(fixed)
    report = SafetyAuditor().audit(adaptive)
    assert report.safe, report.violations


def test_env_escape_hatch_disables_batching(monkeypatch):
    """REPRO_NO_BATCH=1 is the documented kill switch: engines built
    with batching=None consult it at start() and run unbatched."""
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    replicas, sim = _run_cluster("tetrabft", batching=None)
    assert sim.network.frames_sent == sim.network.messages_sent
    monkeypatch.delenv("REPRO_NO_BATCH")
    baseline, _ = _run_cluster("tetrabft", batching=True)
    assert _fingerprint(replicas) == _fingerprint(baseline)
