"""Durability-layer contract tests: WAL, snapshots, recovery edges.

The recovery invariant under test everywhere here: whatever the crash
did to the files, ``recover()`` returns the longest locally *provable*
finalized prefix — never a corrupt block, never a gapped chain, and a
bad snapshot is exactly as good as no snapshot.  Torn tails are
expected (a crash inside the fsync window), so they are flagged, not
fatal.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core import ProtocolConfig
from repro.errors import ProtocolViolation
from repro.multishot import MultiShotConfig
from repro.multishot.block import GENESIS_DIGEST, Block
from repro.net.codec import WIRE_CODEC, SnapshotImage, WalAppend, WalSeal
from repro.smr.kvstore import KVStore
from repro.smr.mempool import Transaction
from repro.smr.replica import Replica
from repro.storage import (
    DiskStorage,
    MemoryStorage,
    WriteAheadLog,
    load_snapshot,
    read_wal,
    snapshot_image,
    state_digest_of,
    validate_snapshot,
    write_snapshot,
)


def make_chain(slots: int, txns_per_block: int = 2) -> list[Block]:
    """A hash-linked finalized chain with real transaction payloads."""
    chain: list[Block] = []
    parent = GENESIS_DIGEST
    counter = 0
    for slot in range(1, slots + 1):
        payload = tuple(
            Transaction(txid=f"tx-{counter + k}", op=("set", f"k{counter + k}", slot))
            for k in range(txns_per_block)
        )
        counter += txns_per_block
        block = Block.create(slot=slot, parent=parent, payload=payload)
        chain.append(block)
        parent = block.digest
    return chain


def stub_replica():
    """The slice of Replica the storage hooks consume: a finalized
    chain plus an executed-state store."""
    return SimpleNamespace(finalized_chain=[], store=KVStore())


def execute(stub, storage, block: Block) -> None:
    """Drive one block through the stub the way Replica does: apply
    transactions first, then hand the block to storage."""
    for txn in block.payload:
        stub.store.apply(txn.txid, txn.op)
    stub.finalized_chain.append(block)
    storage.block_executed(block, stub)


# -- WAL ----------------------------------------------------------------------


def test_wal_round_trip(tmp_path):
    chain = make_chain(5)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.close()
    records, torn = read_wal(tmp_path / "wal.log")
    assert not torn
    assert [r.seq for r in records] == [1, 2, 3, 4, 5]
    assert [r.block for r in records] == chain


def test_wal_missing_file_is_empty_untorn(tmp_path):
    records, torn = read_wal(tmp_path / "nope.log")
    assert records == [] and not torn


def test_wal_flushes_at_policy_limit_without_event_loop(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    limit = wal.policy.limit
    chain = make_chain(limit)
    for block in chain[:-1]:
        wal.append_block(block)
    # Below the limit with no loop running: nothing durable yet.
    assert read_wal(tmp_path / "wal.log")[0] == []
    wal.append_block(chain[-1])
    records, torn = read_wal(tmp_path / "wal.log")
    assert len(records) == limit and not torn
    wal.close()


def test_wal_torn_tail_partial_record(tmp_path):
    chain = make_chain(3)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.close()
    # Simulate a crash mid-write: half of a fourth record's frame.
    frame = WIRE_CODEC.encode_frame(WalAppend(seq=4, block=make_chain(4)[-1]))
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(frame[: len(frame) // 2])
    records, torn = read_wal(tmp_path / "wal.log")
    assert torn
    assert [r.block for r in records] == chain  # the intact prefix survives


def test_wal_torn_tail_trailing_partial_length_word(tmp_path):
    chain = make_chain(2)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.close()
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(b"\x00\x00")  # 2 of the 4 length bytes
    records, torn = read_wal(tmp_path / "wal.log")
    assert torn and len(records) == 2


def test_wal_garbage_record_stops_the_read(tmp_path):
    chain = make_chain(2)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.close()
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(len(b"garbage!").to_bytes(4, "big") + b"garbage!")
    records, torn = read_wal(tmp_path / "wal.log")
    assert torn and len(records) == 2


def test_wal_truncated_mid_record(tmp_path):
    chain = make_chain(4)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.close()
    path = tmp_path / "wal.log"
    data = path.read_bytes()
    path.write_bytes(data[:-3])  # tear the last record
    records, torn = read_wal(path)
    assert torn
    assert [r.block for r in records] == chain[:3]


def test_wal_non_wal_frame_stops_the_read(tmp_path):
    """A decodable frame of the wrong type is corruption, not data."""
    chain = make_chain(1)
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append_block(chain[0])
    wal.close()
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(WIRE_CODEC.encode_frame(Transaction("tx-x", ("noop",))))
    records, torn = read_wal(tmp_path / "wal.log")
    assert torn and len(records) == 1


def test_wal_seal_is_immediately_durable(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.seal(upto_slot=7, state_digest="abc")
    records, torn = read_wal(tmp_path / "wal.log")  # no close, no flush call
    assert not torn
    assert isinstance(records[0], WalSeal)
    assert records[0].upto_slot == 7 and records[0].state_digest == "abc"
    wal.close()


def test_wal_compaction_keeps_seal_and_suffix(tmp_path):
    chain = make_chain(10)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    seal = wal.seal(upto_slot=8, state_digest="sd8")
    wal.compact(keep_above_slot=8, seal=seal)
    # Appends still work after the file handle swap.
    extra = Block.create(slot=11, parent=chain[-1].digest, payload=())
    wal.append_block(extra)
    wal.close()
    records, torn = read_wal(tmp_path / "wal.log")
    assert not torn
    assert isinstance(records[0], WalSeal) and records[0].upto_slot == 8
    survivors = [r.block.slot for r in records if isinstance(r, WalAppend)]
    assert survivors == [9, 10, 11]


# -- snapshots ----------------------------------------------------------------


def test_snapshot_round_trip(tmp_path):
    chain = make_chain(6)
    stub = stub_replica()
    for block in chain:
        for txn in block.payload:
            stub.store.apply(txn.txid, txn.op)
    image = snapshot_image(
        tuple(chain), tuple(stub.store.items()), tuple(stub.store.applied_txids)
    )
    assert image.state_digest == stub.store.state_digest()
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, image)
    loaded = load_snapshot(path)
    assert loaded == image


def test_snapshot_missing_or_short_file(tmp_path):
    assert load_snapshot(tmp_path / "nope.bin") is None
    (tmp_path / "short.bin").write_bytes(b"\x00\x01")
    assert load_snapshot(tmp_path / "short.bin") is None


def test_snapshot_corrupt_bytes_degrade_to_none(tmp_path):
    chain = make_chain(4)
    image = snapshot_image(tuple(chain), (), ())
    path = tmp_path / "snapshot.bin"
    write_snapshot(path, image)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))
    assert load_snapshot(path) is None


def test_snapshot_wrong_frame_type_is_rejected(tmp_path):
    path = tmp_path / "snapshot.bin"
    path.write_bytes(WIRE_CODEC.encode_frame(Transaction("tx-1", ("noop",))))
    assert load_snapshot(path) is None


def test_validate_snapshot_rejects_tampering():
    chain = make_chain(4)
    good = snapshot_image(tuple(chain), (("k", 1),), ("tx-0",))
    assert validate_snapshot(good)
    # Wrong tip fields.
    assert not validate_snapshot(
        SnapshotImage(
            tip_slot=99,
            tip_digest=good.tip_digest,
            state_digest=good.state_digest,
            applied_txids=good.applied_txids,
            kv_items=good.kv_items,
            chain=good.chain,
        )
    )
    # Broken linkage: drop a middle block.
    gapped = (chain[0], chain[2], chain[3])
    assert not validate_snapshot(
        SnapshotImage(
            tip_slot=chain[3].slot,
            tip_digest=chain[3].digest,
            state_digest=good.state_digest,
            applied_txids=good.applied_txids,
            kv_items=good.kv_items,
            chain=gapped,
        )
    )
    # Executed state not matching its recorded digest.
    assert not validate_snapshot(
        SnapshotImage(
            tip_slot=good.tip_slot,
            tip_digest=good.tip_digest,
            state_digest=good.state_digest,
            applied_txids=good.applied_txids,
            kv_items=(("k", 2),),
            chain=good.chain,
        )
    )


def test_state_digest_matches_kvstore():
    store = KVStore()
    store.apply("tx-1", ("set", "a", 1))
    store.apply("tx-2", ("incr", "c", 3))
    assert (
        state_digest_of(tuple(store.items()), tuple(store.applied_txids))
        == store.state_digest()
    )


# -- DiskStorage end to end ---------------------------------------------------


def test_disk_storage_recovers_snapshot_plus_wal(tmp_path):
    chain = make_chain(10)
    storage = DiskStorage(tmp_path, snapshot_interval=4)
    stub = stub_replica()
    for block in chain:
        execute(stub, storage, block)
    storage.close()
    # Two snapshots happened (after slots 4 and 8); slots 9..10 live in
    # the compacted WAL only.
    reopened = DiskStorage(tmp_path, snapshot_interval=4)
    recovered = reopened.recover()
    assert recovered is not None
    assert [b.digest for b in recovered.chain] == [b.digest for b in chain]
    assert recovered.snapshot_slot == 8
    assert recovered.wal_blocks == 2
    assert not recovered.torn_tail
    assert reopened.recovered_blocks == 10
    # New appends pick up past the recovered sequence, not over it.
    assert reopened.wal.next_seq > 1
    reopened.close()


def test_disk_storage_recovers_wal_only(tmp_path):
    chain = make_chain(3)
    storage = DiskStorage(tmp_path, snapshot_interval=100)
    stub = stub_replica()
    for block in chain:
        execute(stub, storage, block)
    storage.close()
    recovered = DiskStorage(tmp_path, snapshot_interval=100).recover()
    assert recovered is not None
    assert recovered.snapshot_slot == 0 and recovered.wal_blocks == 3
    assert [b.slot for b in recovered.chain] == [1, 2, 3]


def test_disk_storage_empty_dir_recovers_none(tmp_path):
    assert DiskStorage(tmp_path).recover() is None


def test_disk_storage_torn_wal_tail_recovers_prefix(tmp_path):
    chain = make_chain(6)
    storage = DiskStorage(tmp_path, snapshot_interval=100)
    stub = stub_replica()
    for block in chain:
        execute(stub, storage, block)
    storage.close()
    wal_path = tmp_path / "wal.log"
    data = wal_path.read_bytes()
    wal_path.write_bytes(data[:-5])
    recovered = DiskStorage(tmp_path, snapshot_interval=100).recover()
    assert recovered is not None
    assert recovered.torn_tail
    assert [b.slot for b in recovered.chain] == [1, 2, 3, 4, 5]


def test_disk_storage_wal_gap_stops_recovery(tmp_path):
    """A WAL whose records skip a slot proves nothing past the gap."""
    chain = make_chain(4)
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain[:2] + chain[3:]:  # slot 3 missing
        wal.append_block(block)
    wal.close()
    recovered = DiskStorage(tmp_path).recover()
    assert recovered is not None
    assert recovered.torn_tail
    assert [b.slot for b in recovered.chain] == [1, 2]


def test_disk_storage_corrupt_block_body_stops_recovery(tmp_path):
    chain = make_chain(3)
    bad = Block(
        slot=4, parent=chain[-1].digest, payload=("tampered",), digest="f" * 16
    )
    wal = WriteAheadLog(tmp_path / "wal.log")
    for block in chain:
        wal.append_block(block)
    wal.append_block(bad)
    wal.close()
    recovered = DiskStorage(tmp_path).recover()
    assert recovered is not None
    assert recovered.torn_tail
    assert [b.slot for b in recovered.chain] == [1, 2, 3]


def test_disk_storage_corrupt_snapshot_falls_back_to_wal(tmp_path):
    chain = make_chain(10)
    storage = DiskStorage(tmp_path, snapshot_interval=4)
    stub = stub_replica()
    for block in chain:
        execute(stub, storage, block)
    storage.close()
    snap_path = tmp_path / "snapshot.bin"
    data = bytearray(snap_path.read_bytes())
    data[len(data) // 3] ^= 0xFF
    snap_path.write_bytes(bytes(data))
    # The compacted WAL starts above slot 8; without the snapshot the
    # surviving records (9, 10) cannot link to genesis, so the longest
    # provable prefix is empty — and recovery says so rather than
    # fabricating a gapped chain.
    assert DiskStorage(tmp_path, snapshot_interval=4).recover() is None


# -- replica integration ------------------------------------------------------


def _replica(node_id: int = 0, storage=None) -> Replica:
    config = MultiShotConfig(base=ProtocolConfig.create(4), max_slots=16)
    return Replica(node_id, config, storage=storage)


def test_replica_defaults_to_memory_storage():
    replica = _replica()
    assert isinstance(replica.storage, MemoryStorage)
    assert replica.storage.recover() is None


def test_replica_bootstrap_rebuilds_state(tmp_path):
    chain = make_chain(5)
    replica = _replica()
    replica.bootstrap(chain)
    assert [b.digest for b in replica.finalized_chain] == [b.digest for b in chain]
    # The executed state matches a store that applied every payload.
    expected = KVStore()
    for block in chain:
        for txn in block.payload:
            expected.apply(txn.txid, txn.op)
    assert replica.state_digest() == expected.state_digest()
    # Replayed transactions are deduplicated like any finalized ones.
    assert replica.mempool.is_finalized(chain[0].payload[0].txid)


def test_replica_bootstrap_rejects_broken_chain():
    chain = make_chain(4)
    replica = _replica()
    with pytest.raises(ProtocolViolation):
        replica.bootstrap([chain[0], chain[2], chain[3]])


def test_replica_bootstrap_does_not_repersist(tmp_path):
    """Recovery replay must not re-append recovered blocks to the WAL."""
    chain = make_chain(4)
    storage = DiskStorage(tmp_path, snapshot_interval=100)
    replica = _replica(storage=storage)
    replica.bootstrap(chain)
    storage.close()
    records, _ = read_wal(tmp_path / "wal.log")
    assert records == []


def test_replica_offer_blocks_extends_the_bootstrapped_tip():
    chain = make_chain(8)
    replica = _replica()
    replica.bootstrap(chain[:4])
    advanced = replica.offer_blocks(chain[4:])
    # Bodies alone do not finalize: TetraBFT needs notarizations for
    # the offered slots, which a live rejoin gets from peer votes.  The
    # offer must simply never corrupt the recovered prefix.
    assert advanced >= 0
    assert [b.digest for b in replica.finalized_chain[:4]] == [
        b.digest for b in chain[:4]
    ]


def test_disk_storage_full_cycle_via_replica(tmp_path):
    """Persist through the real Replica hook path, then recover into a
    fresh Replica and compare digests — the restart cell in miniature.

    Blocks are fed straight to ``_execute_block`` (no engine run), so
    this exercises the WAL leg; the snapshot leg is covered by the
    stub-driven tests above, where ``finalized_chain`` is populated.
    """
    chain = make_chain(7)
    storage = DiskStorage(tmp_path, snapshot_interval=100)
    replica = _replica(storage=storage)
    for block in chain:
        replica._execute_block(block)
    storage.close()

    recovered = DiskStorage(tmp_path, snapshot_interval=100).recover()
    assert recovered is not None
    assert [b.digest for b in recovered.chain] == [b.digest for b in chain]
    twin = _replica(node_id=1)
    twin.bootstrap(recovered.chain)
    assert twin.state_digest() == replica.state_digest()
