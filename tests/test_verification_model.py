"""Tests for the TLA+ spec port and the explicit-state checker."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, VerificationError
from repro.verification import (
    ModelConfig,
    ModelState,
    accepted,
    check_agreement,
    check_invariants,
    check_liveness,
    claims_safe_at,
    decided_values,
    explore,
    shows_safe_at,
    successors,
)

CFG = ModelConfig(n=4, f=1, num_values=2, max_round=1)


def state_with(votes, rounds=None) -> ModelState:
    rounds = rounds if rounds is not None else tuple(
        max((vt[0] for vt in vs), default=-1) for vs in votes
    )
    return ModelState(rounds=tuple(rounds), votes=tuple(frozenset(v) for v in votes))


class TestModelConfig:
    def test_rejects_bad_resilience(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(n=3, f=1)

    def test_honest_count(self):
        assert CFG.honest == 3
        assert CFG.quorum_size == 3
        assert CFG.blocking_size == 2


class TestPredicates:
    def test_accepted_with_wildcard_credit(self):
        # 2 honest votes + 1 Byzantine credit = quorum of 3.
        state = state_with([{(0, 1, 0)}, {(0, 1, 0)}, set()])
        assert accepted(state, CFG, value=0, rnd=0, phase=1)
        state2 = state_with([{(0, 1, 0)}, set(), set()])
        assert not accepted(state2, CFG, value=0, rnd=0, phase=1)

    def test_accepted_without_credit_in_liveness_mode(self):
        liveness_cfg = ModelConfig(
            n=4, f=1, num_values=2, max_round=1, byz_support=False, good_round=1
        )
        state = state_with([{(0, 1, 0)}, {(0, 1, 0)}, set()])
        assert not accepted(state, liveness_cfg, value=0, rnd=0, phase=1)

    def test_claims_safe_at_round_zero(self):
        assert claims_safe_at(frozenset(), value=0, rnd=1, r2=0, phase=1)

    def test_claims_safe_via_matching_vote(self):
        votes = frozenset({(1, 1, 0)})
        assert claims_safe_at(votes, value=0, rnd=2, r2=1, phase=1)
        assert not claims_safe_at(votes, value=1, rnd=2, r2=1, phase=1)

    def test_claims_safe_via_two_differing_votes(self):
        # Voted value 1 at round 1 then value 0 at round 2: the pair
        # certifies any value at r2 ≤ 1 (TLA+ ClaimsSafeAt disjunct 2).
        votes = frozenset({(1, 1, 1), (2, 1, 0)})
        assert claims_safe_at(votes, value=1, rnd=3, r2=1, phase=1)
        assert claims_safe_at(votes, value=0, rnd=3, r2=1, phase=1)

    def test_shows_safe_at_round_zero(self):
        state = ModelState.initial(CFG)
        assert shows_safe_at(state, CFG, value=0, rnd=0, phase_a=4, phase_b=1)

    def test_shows_safe_needs_members_in_round(self):
        state = ModelState.initial(CFG)  # everyone still at round -1
        assert not shows_safe_at(state, CFG, value=0, rnd=1, phase_a=4, phase_b=1)

    def test_decided_needs_quorum_of_phase4(self):
        state = state_with([{(0, 4, 1)}, {(0, 4, 1)}, set()])
        assert decided_values(state, CFG) == {1}
        state2 = state_with([{(0, 4, 1)}, set(), set()])
        assert decided_values(state2, CFG) == set()


class TestSuccessors:
    def test_initial_state_offers_start_round_only(self):
        state = ModelState.initial(CFG)
        names = {a.name for a, _ in successors(state, CFG)}
        assert names == {"StartRound"}

    def test_vote1_enabled_after_start_round_zero(self):
        state = ModelState(rounds=(0, -1, -1), votes=(frozenset(),) * 3)
        actions = {a.name for a, _ in successors(state, CFG)}
        assert "Vote1" in actions

    def test_do_vote_blocks_double_voting(self):
        state = state_with([{(0, 1, 0)}, set(), set()], rounds=(0, -1, -1))
        vote1_actions = [
            a for a, _ in successors(state, CFG)
            if a.name == "Vote1" and a.process == 0 and a.round == 0
        ]
        assert vote1_actions == []  # both values blocked: (0,1) slot taken

    def test_vote2_requires_accepted_phase1(self):
        state = state_with([{(0, 1, 0)}, {(0, 1, 0)}, set()])
        actions = {(a.name, a.process) for a, _ in successors(state, CFG)}
        assert ("Vote2", 2) in actions  # 2 honest + 1 wildcard = quorum

    def test_vote_moves_process_round_forward(self):
        state = state_with([{(0, 1, 0)}, {(0, 1, 0)}, set()], rounds=(0, 0, -1))
        for action, nxt in successors(state, CFG):
            if action.name == "Vote2" and action.process == 2:
                assert nxt.rounds[2] == action.round
                break
        else:
            pytest.fail("Vote2 for process 2 not offered")


class TestChecker:
    def test_tiny_exhaustive_agreement(self):
        result = check_agreement(ModelConfig(n=4, f=1, num_values=2, max_round=0))
        assert result.ok and not result.truncated
        assert result.states_explored > 50

    def test_tiny_exhaustive_invariants(self):
        result = check_invariants(ModelConfig(n=4, f=1, num_values=2, max_round=0))
        assert result.ok

    def test_violation_raises_with_trace(self):
        def always_false(state, config):
            return state.rounds[0] < 0  # fails after any StartRound(0, ·)

        with pytest.raises(VerificationError) as excinfo:
            explore(CFG, {"bogus": always_false})
        assert excinfo.value.trace, "counterexample trace missing"
        assert excinfo.value.trace[-1].name == "StartRound"

    def test_truncation_reported(self):
        result = explore(
            ModelConfig(n=4, f=1, num_values=2, max_round=1),
            {},
            max_states=10,
        )
        assert result.truncated

    def test_liveness_tiny(self):
        result = check_liveness(
            ModelConfig(
                n=4, f=1, num_values=1, max_round=1, byz_support=False, good_round=1
            )
        )
        assert result.ok
        assert result.deadlocked_states > 0

    def test_liveness_requires_good_round(self):
        with pytest.raises(VerificationError):
            check_liveness(ModelConfig(n=4, f=1, byz_support=False))
        with pytest.raises(VerificationError):
            check_liveness(ModelConfig(n=4, f=1, good_round=1))

    def test_seven_node_tiny_bounds(self):
        result = check_agreement(
            ModelConfig(n=7, f=2, num_values=2, max_round=0), max_states=100_000
        )
        assert result.ok


class TestSymmetryReduction:
    def test_canonical_key_identifies_process_permutations(self):
        a = state_with([{(0, 1, 0)}, set(), set()], rounds=(0, -1, -1))
        b = state_with([set(), set(), {(0, 1, 0)}], rounds=(-1, -1, 0))
        assert a.canonical_key(CFG) == b.canonical_key(CFG)

    def test_canonical_key_identifies_value_permutations(self):
        a = state_with([{(0, 1, 0)}, set(), set()], rounds=(0, -1, -1))
        b = state_with([{(0, 1, 1)}, set(), set()], rounds=(0, -1, -1))
        assert a.canonical_key(CFG) == b.canonical_key(CFG)

    def test_canonical_key_distinguishes_real_differences(self):
        a = state_with([{(0, 1, 0)}, set(), set()], rounds=(0, -1, -1))
        b = state_with([{(0, 2, 0)}, set(), set()], rounds=(0, -1, -1))
        assert a.canonical_key(CFG) != b.canonical_key(CFG)
