"""Live observability over a deployed cluster: scrape, events, forensics.

The integration surface of the obs plane: a real 4-replica cluster
(one OS process each, TCP sockets, the versioned codec) runs a
workload while the driver scrapes it **in-band** — the same
``MetricsRequest`` round ``python -m repro obs`` and the gateway's
``/v1/cluster/metrics`` use — and the scraped payload must carry the
consensus, transport and durability series the A7 bench persists.
Event-log forensics are checked end to end too: every replica of a
durable cluster leaves an NDJSON tail next to its WAL at shutdown,
and ``REPRO_EVENT_LOG=1`` streams it live.
"""

from __future__ import annotations

import json
import os

from repro.net.cluster import ClusterConfig, reply_metric, run_cluster_workload
from repro.obs import EVENT_FIELDS
from repro.smr.mempool import Transaction


def _schedule(count: int, rate: float = 10.0):
    out = []
    for k in range(count):
        if k % 3 == 0:
            txn = Transaction(f"obs-{k}", ("incr", f"counter-{k % 4}", 1))
        else:
            txn = Transaction(f"obs-{k}", ("set", f"key-{k % 7}", k))
        out.append((k / rate, txn))
    return out


def test_scrape_during_live_run_carries_the_metric_series(tmp_path):
    """A durable n=4 cluster is scraped mid-run (while still in
    consensus): the per-replica payload carries the consensus,
    transport and durability metrics the acceptance list names."""
    schedule = _schedule(30)
    result = run_cluster_workload(
        ClusterConfig(n=4, engine="tetrabft", deadline=25.0, data_dir=str(tmp_path)),
        schedule,
    )
    assert result.completed
    assert set(result.scrapes) == {0, 1, 2, 3}, "mid-run scrape missed a replica"
    for node_id, reply in result.scrapes.items():
        assert reply.node_id == node_id
        names = {name for name, _ in reply.items}
        for required in (
            "consensus.commits",
            "consensus.commit.rate",
            "consensus.view_changes",
            "mempool.depth",
            "mempool.in_flight",
            "net.frames_in",
            "net.messages_in",
            "transport.queue_lag",
            "storage.fsyncs",
            "storage.wal_bytes",
            "storage.snapshots",
            "events.buffered",
        ):
            assert required in names, f"replica {node_id} scrape missing {required}"
        # The cluster was mid-consensus and fully acked: commits flowed
        # and the WAL was written before the scrape answered.
        assert reply_metric(reply, "consensus.commits") > 0
        assert reply_metric(reply, "storage.fsyncs") > 0
        assert reply_metric(reply, "storage.wal_bytes") > 0
        assert reply.events > 0, "event ring was empty mid-run"
    # The final CollectReply carries the same registry payload.
    for reply in result.replies.values():
        assert reply_metric(reply, "consensus.commits") > 0
        assert reply_metric(reply, "net.frames_in") > 0


def test_shutdown_dumps_event_ring_next_to_the_wal(tmp_path):
    """Without REPRO_EVENT_LOG, a durable replica still dumps its ring
    tail to ``events.ndjson`` on clean shutdown — the forensics file
    the CI artifact uploads."""
    schedule = _schedule(20)
    result = run_cluster_workload(
        ClusterConfig(n=4, engine="tetrabft", deadline=25.0, data_dir=str(tmp_path)),
        schedule,
    )
    assert result.completed
    for node_id in range(4):
        path = tmp_path / f"replica-{node_id}" / "events.ndjson"
        assert path.exists(), f"replica {node_id} left no event log"
        lines = path.read_text().splitlines()
        assert lines, "event log is empty"
        kinds = set()
        for line in lines:
            event = json.loads(line)
            assert list(event) == list(EVENT_FIELDS)
            assert event["replica"] == node_id
            kinds.add(event["kind"])
        assert "finalize" in kinds


def test_event_log_streams_live_under_repro_event_log(tmp_path):
    """REPRO_EVENT_LOG=1 (inherited by the replica processes) switches
    the log from dump-at-exit to append-as-it-happens."""
    os.environ["REPRO_EVENT_LOG"] = "1"
    try:
        schedule = _schedule(15)
        result = run_cluster_workload(
            ClusterConfig(n=4, engine="tetrabft", deadline=25.0, data_dir=str(tmp_path)),
            schedule,
        )
    finally:
        os.environ.pop("REPRO_EVENT_LOG", None)
    assert result.completed
    for node_id in range(4):
        path = tmp_path / f"replica-{node_id}" / "events.ndjson"
        assert path.exists()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(e["kind"] == "finalize" for e in events)


def test_no_obs_disables_events_but_keeps_the_scrape_counters(tmp_path):
    """REPRO_NO_OBS=1 is the kill switch: no event records, no trace
    series — but the scrape payload still answers with counters (the
    collect/bench path is built from them)."""
    os.environ["REPRO_NO_OBS"] = "1"
    try:
        schedule = _schedule(15)
        result = run_cluster_workload(
            ClusterConfig(n=4, engine="tetrabft", deadline=25.0, data_dir=str(tmp_path)),
            schedule,
        )
    finally:
        os.environ.pop("REPRO_NO_OBS", None)
    assert result.completed
    for node_id, reply in result.scrapes.items():
        assert reply_metric(reply, "consensus.commits") > 0
        assert reply.events == 0, "event ring filled despite REPRO_NO_OBS"
        names = {name for name, _ in reply.items}
        assert not any(name.startswith("trace.") for name in names)
    for node_id in range(4):
        assert not (tmp_path / f"replica-{node_id}" / "events.ndjson").exists()
