"""Bench A7 — deployed clusters: real processes, real sockets.

Unlike every other bench, nothing here runs in simulated time: each
cell spawns one OS process per replica, serializes every protocol
message through the versioned wire codec, and drives transactions over
TCP.  The smoke slice (tier-1 and the CI ``net-smoke`` job) is the
n=4 localhost cluster — every A4 workload on the lan scenario plus the
crash cell that SIGTERMs one replica mid-run (n=4 tolerates f=1) —
and asserts the acceptance contract of the deployment subsystem:

* every cell's collected chains/digests pass the full
  :class:`~repro.verification.audit.SafetyAuditor` (agreement,
  no-fork, hash linkage, execute-once, replay determinism) — real
  sockets change nothing about safety;
* every live replica executes the entire workload (liveness), and the
  measured wall-clock throughput is nonzero;
* results persist to ``BENCH_net.json`` for the regression gate.

Smoke invocation (records the deployment trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_net_bench.py -q``.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.eval.net_bench import (
    NET_SCENARIOS,
    NET_WORKLOADS,
    format_net_report,
    net_record,
    run_net_batching_ablation,
    run_net_grid,
    run_net_smoke,
)

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY"),
    reason="full net grid (n in {4,7} x workload x scenario + engine slice); "
    "set REPRO_HEAVY=1 to run",
)


def test_net_smoke(once, bench_record):
    """Tier-1 slice of A7: n=4 over TCP, lan + crash + capacity + restart."""
    rows = once(run_net_smoke)
    print()
    print(format_net_report(rows))
    assert {row.workload for row in rows} == set(NET_WORKLOADS)
    assert {row.scenario for row in rows} == {"lan", "crash", "capacity", "restart"}
    for row in rows:
        cell = (row.workload, row.scenario)
        # The audit must pass over real sockets exactly as in
        # simulation: zero invariant violations, itemized.
        for name, passed in row.checks.items():
            assert passed, (cell, name)
        assert row.safe and row.live, cell
        # Every live replica executed the whole workload, at a real
        # (nonzero, wall-clock) rate, with finite measured latency.
        assert row.committed == row.txns, cell
        assert row.txns_per_sec > 0, cell
        assert not math.isnan(row.p50_ms) and row.p50_ms > 0, cell
    crash_rows = [row for row in rows if row.scenario == "crash"]
    assert crash_rows, "the smoke slice must include the kill-one cell"
    for row in crash_rows:
        # One replica was really SIGTERMed and the survivors finalized.
        assert len(row.killed) == 1, row.killed
    restart_rows = [row for row in rows if row.scenario == "restart"]
    assert restart_rows, "the smoke slice must include the kill-and-restart cell"
    for row in restart_rows:
        # The victim was killed, respawned over its data dir, replayed
        # a nonzero prefix from snapshot+WAL, caught the rest up from
        # peers, and converged to the survivors' byte-identical digest
        # (state_agreement above covers the digest; converged pins that
        # the rejoiner was present in the collected evidence).
        assert row.killed == row.restarted and len(row.restarted) == 1, row
        assert row.converged, row
        assert row.recovered_blocks > 0, row.recovered_blocks
    capacity_rows = [row for row in rows if row.scenario == "capacity"]
    assert capacity_rows, "the smoke slice must include the capacity cell"
    for row in capacity_rows:
        # The adaptive planes really ran: writes were coalesced and the
        # CPU-duty instrumentation produced a real figure.  The >80%
        # duty bound is asserted in the ablation (pinned regime); the
        # smoke cell only proves the measurement plumbing end to end.
        assert row.flushes > 0 and row.frames_per_flush >= 1.0, row.engine
        assert 0.0 < row.busy_duty <= 1.5, row.busy_duty
    bench_record("net", "net_smoke", [net_record(row) for row in rows])


@heavy
def test_net_batching_ablation_n7(once, bench_record):
    """Three-arm ablation (off / fixed / adaptive) on the
    capacity-bound n=7 bursty cell.

    Wall-clock rate *ordering* on shared runners is too noisy to
    hard-assert — the committed ``net_batching_ablation`` record
    carries the measured medians, and ROADMAP.md discusses the result
    — but the structural facts must hold: every arm audited safe+live
    with every txn committed; the cell really is capacity-bound
    (>80% busy duty on the arms that run the measurement-era
    transport); the off arm really does not aggregate (exactly 1
    message per frame) while the batching arms never de-aggregate
    below it.
    """
    rows = once(run_net_batching_ablation)
    print()
    print(format_net_report(rows))
    off, fixed, adaptive = rows
    assert off.engine == "tetrabft-nobatch"
    assert fixed.engine == "tetrabft-fixed"
    assert adaptive.engine == "tetrabft"
    for row in rows:
        assert row.safe and row.live, (row.engine, row.checks)
        assert row.committed == row.txns, row.engine
        assert row.txns_per_sec > 0, row.engine
        # CPU-bound by construction: the replicas + driver keep the
        # host's cores busy for most of the wall clock.  (The off arm
        # idles a little more than the batching arms — per-arm this is
        # a loose floor; the >80% bound is asserted on the cell below.)
        assert row.busy_duty > 0.60, (row.engine, row.busy_duty)
        # Writer-wakeup coalescing merges frames in every arm — that
        # free aggregation is exactly why the hold has to measure its
        # *marginal* gain (see ROADMAP.md).
        assert row.frames_per_flush > 1.0, (row.engine, row.frames_per_flush)
    assert max(row.busy_duty for row in rows) > 0.80, [r.busy_duty for r in rows]
    assert off.msgs_per_frame == 1.0
    assert fixed.msgs_per_frame >= off.msgs_per_frame
    assert adaptive.msgs_per_frame >= off.msgs_per_frame
    bench_record("net", "net_batching_ablation", [net_record(row) for row in rows])


@heavy
def test_net_full_grid(once, bench_record):
    """The full A7 grid — what REPRO_HEAVY=1 `python -m repro net` runs."""
    rows = once(run_net_grid)
    print()
    print(format_net_report(rows))
    assert {row.n for row in rows} == {4, 7}
    assert {row.scenario for row in rows} == set(NET_SCENARIOS)
    assert {row.engine for row in rows} == {"tetrabft", "pbft", "ithotstuff", "li"}
    for row in rows:
        cell = (row.engine, row.workload, row.scenario, row.n)
        assert row.safe, (cell, row.checks)
        assert row.live and row.committed == row.txns, cell
        assert row.txns_per_sec > 0, cell
    bench_record("net", "net_grid", [net_record(row) for row in rows])
