"""Bench A3 — the 9Δ view-timeout justification (§3.2).

Under a crashed leader plus adversarial within-bound delay skew, too
small a timeout keeps aborting views that were about to decide, while
the paper's 9Δ budget (and anything comfortably above the true
requirement) decides after a single view change.
"""

from __future__ import annotations

from repro.eval.timeout_ablation import run_timeout_ablation


def test_timeout_ablation(once):
    points = once(run_timeout_ablation, (2.0, 3.0, 5.0, 7.0, 9.0, 12.0))
    print()
    by_timeout = {}
    for p in points:
        print(
            f"timeout={p.timeout_delays:>5}Δ decided={p.all_decided} "
            f"t={p.decision_time} views={p.views_entered}"
        )
        by_timeout[p.timeout_delays] = p
    # Far too tight: liveness is lost within the horizon and views churn.
    assert not by_timeout[2.0].all_decided
    assert by_timeout[2.0].views_entered > 20
    # The paper's 9Δ (and anything above the true budget): decides
    # after a single view change.
    for timeout in (9.0, 12.0):
        assert by_timeout[timeout].all_decided
        assert by_timeout[timeout].views_entered == 1
    # Monotone benefit: once decided, a bigger timeout only delays the
    # (fixed single) view change, never costs extra views.
    decided = [p for p in points if p.all_decided]
    assert all(p.views_entered == 1 for p in decided)
