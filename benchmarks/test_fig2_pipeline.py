"""Bench F2 — regenerate Figure 2 (pipelined good case).

Asserts the commit cadence (one block per message delay after a
5-delay fill) and the multi-shot vs repeated-single-shot speedup
approaching the paper's 5×.
"""

from __future__ import annotations

import pytest

from repro.eval.fig2_pipeline import run_pipeline


def test_fig2_pipeline(once):
    result = once(run_pipeline, n=4, blocks=30)
    print()
    print(f"first finalization: t={result.finalize_times[0][0]} (paper: 5)")
    print(f"cadence: {result.steady_state_cadence:.3f} delays/block (paper: 1)")
    print(f"speedup: {result.speedup:.2f}x (paper: 5x in the limit)")
    # Pipeline fill: the first block finalizes after exactly 5 delays.
    assert result.finalize_times[0] == (5.0, 1)
    # Steady state: one block per delay.
    assert result.steady_state_cadence == pytest.approx(1.0)
    # All requested blocks finalized.
    assert result.blocks_finalized == 30
    # Speedup approaches 5x; with a 30-block run the fill amortizes to >4.2x.
    assert result.speedup > 4.2
    # Single-shot throughput is exactly one decision per 5 delays.
    assert result.singleshot_throughput == pytest.approx(1 / 5)
