"""Bench F3 — regenerate Figure 3 (multi-shot view change).

Asserts consistency across correct nodes, the abort-window bound, the
§6.3 recovery bound (new notarization ≤ 5Δ after the view change), and
that slots beyond the aborted window resume at view 0.
"""

from __future__ import annotations

from repro.eval.fig3_viewchange import run_viewchange


def test_fig3_viewchange(once):
    result = once(run_viewchange, n=4, crashed=3, crash_end=25.0, max_slots=12)
    print()
    print(f"heights={result.final_heights} aborted={result.aborted_slots}")
    print(f"recovery in {result.recovery_delays:.0f} delays (paper bound: 5)")
    assert result.consistent, "correct nodes' finalized chains forked"
    # Every correct node finalized everything finalizable (12 - 3 tail).
    assert result.final_heights == [9, 9, 9]
    # Abort window bounded by the finality latency (paper: at most 5).
    assert 1 <= result.max_aborted <= 5
    # §6.3: a new block is notarized within 5Δ of the view change.
    assert result.recovery_delays <= 5.0
    # Slots never started before the view change default to view 0
    # (Figure 3's slot 4 behaviour).
    assert result.post_recovery_view0_slots, "no view-0 slots after recovery"
