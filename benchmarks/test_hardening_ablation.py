"""Bench (ablation) — liveness-hardening mechanisms of the node.

Asserts the measured ablation finding recorded in EXPERIMENTS.md:
retransmission is load-bearing (liveness fails without it under heavy
pre-GST loss); the vote-4 ledger is redundant given full decided-node
participation (liveness holds either way — it is a fast path only).
"""

from __future__ import annotations

from repro.eval.hardening_ablation import run_hardening_ablation


def test_hardening_ablation(once):
    outcomes = once(run_hardening_ablation, (0, 1, 2, 3, 4, 5))
    print()
    by_name = {}
    for outcome in outcomes:
        print(
            f"{outcome.mechanism:15s} enabled={outcome.enabled_all_decide} "
            f"disabled={outcome.disabled_all_decide}"
        )
        by_name[outcome.mechanism] = outcome
    retrans = by_name["retransmission"]
    assert retrans.enabled_all_decide, "baseline liveness broken"
    assert not retrans.disabled_all_decide, (
        "retransmission should be load-bearing under 90% pre-GST loss"
    )
    ledger = by_name["vote4_ledger"]
    assert ledger.enabled_all_decide
    # The documented negative result: the view-change path rescues the
    # starved minority even without the ledger.
    assert ledger.disabled_all_decide
