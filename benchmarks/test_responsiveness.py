"""Bench A2 — optimistic responsiveness (§1, Table 1 column 1).

With the bound Δ fixed and the actual delay δ swept below it, a
responsive protocol's post-view-change latency must scale with δ
(TetraBFT: ≤ 7δ once the view change completes) while a
non-responsive one stays pinned near Δ however fast the network is.
"""

from __future__ import annotations

import pytest

from repro.eval.responsiveness import run_responsiveness


def test_responsiveness_curves(once):
    delta_bound = 8.0
    points = once(run_responsiveness, delta_bound, (0.5, 1.0, 2.0, 4.0, 8.0))
    print()
    for p in points:
        print(
            f"delta={p.delta_actual:<5} tetrabft={p.tetrabft_latency:<7} "
            f"blog={p.blog_latency}"
        )
    by_delta = {p.delta_actual: p for p in points}
    # Responsive: latency is exactly 7δ (view-change latency in actual
    # delays) at every point.
    for delta, p in by_delta.items():
        assert p.tetrabft_latency == pytest.approx(7 * delta)
    # Non-responsive: at the fastest network the blog version is
    # dominated by its Δ-calibrated wait — observing a fast network
    # bought it almost nothing.
    fastest = by_delta[0.5]
    assert fastest.blog_latency >= delta_bound
    assert fastest.tetrabft_latency < fastest.blog_latency / 2
    # When δ = Δ the non-responsive penalty disappears and the blog
    # version's shorter pipeline wins — the trade the table shows.
    slowest = by_delta[8.0]
    assert slowest.blog_latency < slowest.tetrabft_latency
