"""Bench F1 — Figure 1's liveness-lemma chain, checked on traces.

Lemma 2 (leader proposes a safe value) → Lemma 4 (every correct node
determines it safe, witnessed by vote-1) → Lemma 5 (every correct node
decides it), in a post-view-change view led by a correct leader.
"""

from __future__ import annotations

from repro.eval.fig1_lemmas import run_lemma_chain


def test_fig1_lemma_chain(once):
    result = once(run_lemma_chain, n=4)
    print()
    print(
        f"view={result.view} lemma2={result.lemma2_leader_proposed} "
        f"lemma4={result.lemma4_all_determined_safe} "
        f"lemma5={result.lemma5_all_decided} value={result.agreed_value!r}"
    )
    assert result.lemma2_leader_proposed
    assert result.lemma4_all_determined_safe
    assert result.lemma5_all_decided
    assert result.chain_holds


def test_fig1_lemma_chain_larger_system(once):
    result = once(run_lemma_chain, n=7)
    assert result.chain_holds
