"""Bench T1 — regenerate Table 1 (protocol comparison).

Asserts the exact message-delay counts the paper tabulates, the
storage classifications, and the byte-growth separation between the
quadratic and cubic protocols.
"""

from __future__ import annotations

from repro.eval.report import format_table
from repro.eval.table1 import TABLE1_COLUMNS, run_table1

#: The analytic rows of the paper's Table 1 (good case, view change).
PAPER_LATENCIES = {
    "it-hs-blog": (4, 5),
    "it-hs": (6, 9),
    "pbft": (3, 7),
    "pbft-unbounded": (3, 7),
    # Li et al.: paper says 6/6; our harness's explicit view-change
    # signal adds one accounting delay (see repro.baselines.li).
    "li-et-al": (6, 7),
    "tetrabft": (5, 7),
}

PAPER_STORAGE = {
    "it-hs-blog": "O(1)",
    "it-hs": "O(1)",
    "pbft": "O(1)",
    "pbft-unbounded": "unbounded",
    "li-et-al": "unbounded",
    "tetrabft": "O(1)",
}


def test_table1(once):
    rows = once(run_table1, n=4, sweep=(4, 7, 10, 13), storage_runs=(60.0, 400.0))
    print()
    print(format_table(rows, TABLE1_COLUMNS, title="Table 1 (measured vs paper)"))
    by_name = {row["protocol"]: row for row in rows}
    assert set(by_name) == set(PAPER_LATENCIES)
    for name, (good, with_vc) in PAPER_LATENCIES.items():
        row = by_name[name]
        assert row["good_case"] == good, f"{name} good-case {row['good_case']} != {good}"
        assert row["view_change"] == with_vc, (
            f"{name} view-change {row['view_change']} != {with_vc}"
        )
    for name, storage in PAPER_STORAGE.items():
        assert by_name[name]["storage"] == storage, f"{name} storage class"
    # TetraBFT's headline: one delay better than IT-HS, responsive,
    # while PBFT's view change sends asymptotically more bytes.
    assert by_name["tetrabft"]["good_case"] < by_name["it-hs"]["good_case"]
    assert (
        by_name["pbft"]["bytes_exponent_per_node"]
        > by_name["tetrabft"]["bytes_exponent_per_node"] + 0.4
    )
