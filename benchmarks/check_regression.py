"""CI regression gate over the committed BENCH_*.json perf records.

The benchmark smoke runs persist machine-readable perf records —
``BENCH_scaling.json`` (events/sec per scenario × n cell),
``BENCH_smr.json`` (txns/sec per engine × workload × scenario × n cell)
and ``BENCH_net.json`` (wall-clock txns/sec per deployed-cluster cell)
— precisely so the per-PR perf trajectory is data.  This script is the
gate that makes the trajectory binding: it compares freshly produced
records against the committed baselines and fails (exit 1) when any
smoke cell's wall-clock rate regressed by more than the threshold
(default 30%).

Three kinds of cells are gated:

* **aggregate hot-path records** (``event_core_2x`` events/sec,
  ``smr_hot_path_2x`` txns/sec) — measured over large runs, ~1%
  run-to-run variance, always gated;
* **per-cell grid records** — gated only when the cell's measured wall
  clock is above ``--min-wall`` (default 50 ms).  The small-n smoke
  cells finish in a few milliseconds; at that resolution a single-shot
  rate cannot distinguish a 30% regression from scheduler noise (the
  observed run-to-run swing is larger than the threshold), so they are
  reported but not gated.  The large cells and the aggregates carry
  the gate.
* **message-plane ceilings** (messages/Δ and frames/Δ per SMR smoke
  cell) — deterministic simulated-time rates that must not *grow* past
  the threshold; a jump means aggregation silently stopped working or
  a change multiplied protocol traffic.

Usage (what the CI workflow runs after the bench smoke jobs)::

    python benchmarks/check_regression.py --baseline-dir .bench-baseline

where ``.bench-baseline/`` holds copies of the *committed*
``BENCH_scaling.json`` / ``BENCH_smr.json`` taken before the benches
overwrote them.  ``--fresh-dir`` defaults to the repo root.

New cells (present only in the fresh run) are reported, never failed —
benchmarks grow.  The reverse is a hard failure: a cell present in the
committed baseline but **missing from the fresh run** means a cell was
renamed or dropped, and silently passing would let any regression
evade the gate by disappearing.  Refresh the committed baseline in the
same PR when cells legitimately move.  Simulated-time metrics (latency
in Δ, txns/Δ) are deliberately not gated here — they are
deterministic, and the benches themselves assert their invariants.

Override: set ``REPRO_ACCEPT_REGRESSION=1`` to report regressions
without failing — for PRs that knowingly trade throughput for
correctness or features (say so in the PR description).  When a PR
legitimately shifts performance, refresh the committed baselines in
the same PR.
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

#: Per-cell grid records: file stem → (record key, identity fields,
#: gated rate metric).
GATED_GRIDS: tuple[tuple[str, str, tuple[str, ...], str], ...] = (
    ("scaling", "throughput", ("scenario", "n"), "events_per_sec"),
    ("smr", "smr_smoke", ("engine", "workload", "scenario", "n"), "txns_per_sec"),
    (
        "smr",
        "engine_matrix_smoke",
        ("engine", "workload", "scenario", "n"),
        "txns_per_sec",
    ),
    ("net", "net_smoke", ("engine", "workload", "scenario", "n"), "txns_per_sec"),
    # Three-arm batching ablation (off / fixed / adaptive) on the
    # capacity-bound cell: the arms are distinct engine names, so each
    # arm's wall-clock rate is gated like any other cell.
    ("net", "net_batching_ablation", ("engine", "workload", "scenario", "n"), "txns_per_sec"),
    # Gateway levels gate on paced throughput: only unsaturated rows
    # carry ``paced_tps`` (the arrival process pins it to the offered
    # rate), so the noisy capacity probes drop out of the gate.
    ("gateway", "gateway_smoke", ("engine", "n", "offered"), "paced_tps"),
)

#: Every BENCH file stem the gate reads.
BENCH_STEMS = ("scaling", "smr", "net", "gateway")

#: Aggregate hot-path records: file stem → (record key, rate metric).
#: Dict-shaped, measured over large runs — always gated.
GATED_AGGREGATES: tuple[tuple[str, str], ...] = (
    ("scaling", "event_core_2x"),
    ("smr", "smr_hot_path_2x"),
    # The gateway's saturation point: the first offered rate of the
    # ramp whose level fell under 80% goodput.  The ramp levels bracket
    # capacity with wide margins, so this is deterministic per ramp
    # shape — a drop means the gateway lost a whole capacity tier.
    ("gateway", "gateway_saturation"),
)

#: Ceiling-gated cells: simulated-time message-plane rates (messages/Δ
#: and frames/Δ) that must not *grow* past the threshold.  These are
#: deterministic — the same seed replays the same run — so they gate
#: regardless of wall clock: a jump means the message plane regressed
#: (batching silently off, or a protocol change multiplying traffic).
GATED_CEILINGS: tuple[tuple[str, str, tuple[str, ...], str], ...] = (
    ("smr", "smr_smoke", ("engine", "workload", "scenario", "n"), "messages_per_delay"),
    ("smr", "smr_smoke", ("engine", "workload", "scenario", "n"), "frames_per_delay"),
    (
        "smr",
        "engine_matrix_smoke",
        ("engine", "workload", "scenario", "n"),
        "messages_per_delay",
    ),
    (
        "smr",
        "engine_matrix_smoke",
        ("engine", "workload", "scenario", "n"),
        "frames_per_delay",
    ),
    # Gateway commit latency on the *paced* (unsaturated) levels: the
    # consensus pipeline sets these, not host load, so p50/p99 must
    # not grow past the threshold.
    ("gateway", "gateway_smoke", ("engine", "n", "offered"), "paced_p50_ms"),
    ("gateway", "gateway_smoke", ("engine", "n", "offered"), "paced_p99_ms"),
)

_AGGREGATE_METRICS = {
    "event_core_2x": "events_per_sec",
    "smr_hot_path_2x": "txns_per_sec",
    "gateway_saturation": "saturation_offered",
}

#: Observability columns every freshly produced ``net_smoke`` row must
#: carry: the per-replica series scraped in-band mid-run.  The gate is
#: *presence-only* — live values (a commit rate, a queue depth) are
#: point-in-time reads and legitimately vary run to run, but a row
#: that lost the columns means the scrape plumbing broke silently.
REQUIRED_NET_OBS_COLUMNS = (
    "commit_rate",
    "view_changes",
    "mempool_depth",
    "queue_lag",
    "fsyncs",
    "wal_bytes",
    "snapshots",
)


def missing_obs_columns(fresh_net: dict) -> list[str]:
    """Presence check over the fresh smoke rows (see
    :data:`REQUIRED_NET_OBS_COLUMNS`); returns failure lines.

    Scoped to ``net_smoke`` — the one key every CI net run rewrites —
    so stale heavy-grid rows from older builds cannot false-fail."""
    failures = []
    for row in fresh_net.get("net_smoke", []) or []:
        if not isinstance(row, dict):
            continue
        missing = [col for col in REQUIRED_NET_OBS_COLUMNS if col not in row]
        if missing:
            ident = {k: row.get(k) for k in ("engine", "workload", "scenario", "n")}
            failures.append(
                f"net/net_smoke {ident}: fresh row is missing scraped "
                f"metric column(s) {missing} — the obs scrape plumbing broke"
            )
    return failures


def load_records(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except OSError:
        return {}
    except ValueError:
        print(f"WARNING: {path} is not valid JSON; treating as empty")
        return {}
    return data if isinstance(data, dict) else {}


def cell_wall_seconds(row: dict, metric: str) -> float | None:
    """Measured wall clock of one cell, inferred when not recorded."""
    wall = row.get("wall_seconds")
    if isinstance(wall, (int, float)):
        return float(wall)
    # SMR rows record committed work and its rate; wall follows.
    committed = row.get("committed")
    rate = row.get(metric)
    if isinstance(committed, (int, float)) and rate:
        return float(committed) / float(rate)
    return None


def index_cells(
    records: dict, key: str, identity: tuple[str, ...], metric: str
) -> dict[tuple, tuple[float, float | None]]:
    """cell id → (rate, wall seconds or None) for one grid record."""
    cells = {}
    for row in records.get(key, []) or []:
        if not isinstance(row, dict) or metric not in row:
            continue
        cell_id = tuple(row.get(field) for field in identity)
        cells[cell_id] = (float(row[metric]), cell_wall_seconds(row, metric))
    return cells


def compare(
    baseline_dir: Path, fresh_dir: Path, threshold: float, min_wall: float
) -> tuple[list[str], list[str]]:
    """Returns (regressions, notes); a non-empty first list fails the gate."""
    regressions: list[str] = []
    notes: list[str] = []

    def judge(
        label: str,
        metric: str,
        base_rate: float,
        rate: float,
        gated: bool,
        ceiling: bool = False,
    ) -> None:
        if base_rate <= 0:
            notes.append(f"{label}: non-positive baseline {base_rate}")
            return
        ratio = rate / base_rate
        line = f"{label}: {metric} {base_rate:,.0f} → {rate:,.0f} " f"({(ratio - 1) * 100:+.1f}%)"
        if not gated:
            notes.append(f"{line} [noisy cell, not gated]")
        elif ceiling and ratio > 1.0 + threshold:
            regressions.append(f"{line} [ceiling]")
        elif not ceiling and ratio < 1.0 - threshold:
            regressions.append(line)
        else:
            notes.append(line)

    baselines = {stem: load_records(baseline_dir / f"BENCH_{stem}.json") for stem in BENCH_STEMS}
    fresh_all = {stem: load_records(fresh_dir / f"BENCH_{stem}.json") for stem in BENCH_STEMS}

    regressions.extend(missing_obs_columns(fresh_all["net"]))

    for stem, key in GATED_AGGREGATES:
        metric = _AGGREGATE_METRICS[key]
        base = baselines[stem].get(key)
        new = fresh_all[stem].get(key)
        label = f"{stem}/{key}"
        if not isinstance(base, dict) or metric not in base:
            notes.append(f"{label}: no baseline — skipping")
            continue
        if not isinstance(new, dict) or metric not in new:
            regressions.append(
                f"{label}: in committed baseline but missing from fresh run "
                "— renamed or dropped? refresh the baseline in the same PR"
            )
            continue
        judge(label, metric, float(base[metric]), float(new[metric]), gated=True)

    for stem, key, identity, metric in GATED_GRIDS:
        baseline = index_cells(baselines[stem], key, identity, metric)
        fresh = index_cells(fresh_all[stem], key, identity, metric)
        if not baseline:
            notes.append(f"{stem}/{key}: no baseline cells — skipping")
            continue
        for cell_id, (base_rate, base_wall) in sorted(baseline.items(), key=repr):
            label = f"{stem}/{key} {dict(zip(identity, cell_id))}"
            if cell_id not in fresh:
                regressions.append(
                    f"{label}: in committed baseline but missing from fresh "
                    "run — renamed or dropped? refresh the baseline in the "
                    "same PR"
                )
                continue
            rate, wall = fresh[cell_id]
            # Gate when EITHER side is measurably slow: two fast walls
            # mean pure timer noise, but a cell that jumped from
            # milliseconds to a measurable wall is a real regression
            # and must not hide behind its formerly-fast baseline.
            walls = [w for w in (base_wall, wall) if w is not None]
            gated = bool(walls) and max(walls) >= min_wall
            judge(label, metric, base_rate, rate, gated)
        for cell_id in sorted(set(fresh) - set(baseline), key=repr):
            notes.append(f"{stem}/{key} {dict(zip(identity, cell_id))}: new cell (no baseline)")

    for stem, key, identity, metric in GATED_CEILINGS:
        baseline = index_cells(baselines[stem], key, identity, metric)
        fresh = index_cells(fresh_all[stem], key, identity, metric)
        if not baseline:
            notes.append(f"{stem}/{key} ({metric}): no baseline cells — skipping")
            continue
        for cell_id, (base_rate, _) in sorted(baseline.items(), key=repr):
            label = f"{stem}/{key} {dict(zip(identity, cell_id))}"
            if cell_id not in fresh:
                regressions.append(
                    f"{label}: {metric} in committed baseline but missing "
                    "from fresh run — renamed or dropped? refresh the "
                    "baseline in the same PR"
                )
                continue
            rate, _ = fresh[cell_id]
            judge(label, metric, base_rate, rate, gated=True, ceiling=True)
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="maximum tolerated fractional slowdown per cell (default 0.30)",
    )
    parser.add_argument(
        "--min-wall",
        type=float,
        default=0.05,
        help="minimum measured cell wall clock (s) for the cell to be "
        "gated rather than merely reported (default 0.05)",
    )
    args = parser.parse_args(argv)
    regressions, notes = compare(args.baseline_dir, args.fresh_dir, args.threshold, args.min_wall)
    for note in notes:
        print(f"  ok    {note}")
    for line in regressions:
        print(f"  SLOW  {line}")
    if not regressions:
        print(f"regression gate: all gated cells within {args.threshold:.0%}")
        return 0
    print(
        f"regression gate: {len(regressions)} cell(s) regressed more than "
        f"{args.threshold:.0%}"
    )
    if os.environ.get("REPRO_ACCEPT_REGRESSION"):
        print("REPRO_ACCEPT_REGRESSION set — reporting only, not failing")
        return 0
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
