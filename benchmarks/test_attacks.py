"""Bench A6 — the Byzantine campaign over the engine matrix.

Two layers, mirroring the A5 bench:

* **Smoke campaign** (tier-1): every attack family × every consensus
  engine, n=4, synchronous network, f=1 Byzantine replica per cell.
  Asserts the paper's headline end to end: TetraBFT stays **safe and
  live** under every unauthenticated deviation, and *no* engine ever
  fails a safety audit (agreement, no-fork, hash linkage, execute-once,
  replay determinism).  The verdicts are persisted to
  ``BENCH_attacks.json``, which is what the CI pipeline gates on.
* **Full grid** (heavy, ``REPRO_HEAVY=1``): attack × engine ×
  sync/geo/crash-recovery × n ∈ {4, 16}.  Safety is asserted on every
  cell; liveness only where the fault budget is respected — the
  crash-recovery scenario stacks a network-crashed node on top of the
  ``f`` Byzantine replicas (f+1 total faults at n=4), so n > 3f no
  longer guarantees progress there, only safety.

Smoke invocation (records the verdict trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_attacks.py -q``.
"""

from __future__ import annotations

import os

import pytest

from repro.adversary.faulty_engine import ATTACK_NAMES
from repro.eval.attacks import (
    attack_record,
    format_attack_report,
    run_attack_grid,
    run_attack_smoke,
)
from repro.smr import ENGINE_NAMES

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY"),
    reason="full attack grid (6 attacks x 4 engines x 3 scenarios x 2 sizes); "
    "set REPRO_HEAVY=1 to run",
)


def test_attack_campaign_smoke(once, bench_record):
    """Tier-1 slice of A6: every attack × engine, sync, n=4, audited."""
    rows = once(run_attack_smoke)
    print()
    print(format_attack_report(rows))
    assert {row.attack for row in rows} == set(ATTACK_NAMES)
    assert {row.engine for row in rows} == set(ENGINE_NAMES)
    assert len(rows) == len(ATTACK_NAMES) * len(ENGINE_NAMES)
    for row in rows:
        cell = (row.attack, row.engine)
        # Every cell really ran an f-bounded adversary.
        assert row.f == 1 and len(row.faulty) == 1, cell
        # The safety audit must pass on every engine, every attack:
        # zero invariant violations, itemized.
        for name, passed in row.checks.items():
            assert passed, (cell, name)
        assert row.safe, cell
    for row in rows:
        if row.engine == "tetrabft":
            # The paper's claim, end to end: TetraBFT stays safe AND
            # live with f Byzantine replicas under synchrony, for
            # every deviation family.
            assert row.live and row.committed == row.txns, row.attack
    bench_record("attacks", "attack_smoke", [attack_record(row) for row in rows])


@heavy
def test_attack_campaign_full_grid(once):
    """The full A6 grid — what REPRO_HEAVY=1 `python -m repro attacks` runs."""
    rows = once(run_attack_grid)
    print()
    print(format_attack_report(rows))
    assert {row.scenario for row in rows} == {"sync", "geo", "crash-recovery"}
    assert {row.n for row in rows} == {4, 16}
    for row in rows:
        cell = (row.attack, row.engine, row.scenario, row.n)
        # Safety is unconditional — no attack, scenario or size may
        # produce a fork, a double execution or a replay divergence.
        assert row.safe, (cell, row.checks)
        # Liveness is only guaranteed within the fault budget: the
        # crash-recovery scenario adds a network-crashed node on top
        # of the f Byzantine replicas.
        if row.engine == "tetrabft" and row.scenario in ("sync", "geo"):
            assert row.live, cell
