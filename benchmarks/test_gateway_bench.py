"""Bench A8 — the client gateway under open-loop HTTP load.

The tier-1 smoke cell deploys a real n=4 cluster, stands the layered
gateway in front of it, and runs the offered-rate ramp through actual
HTTP connections — so the full handler → service → repository path is
on the hook, not just the consensus plane underneath it.  Asserted
acceptance contract:

* every level's accepted submissions all reach f+1-quorum commit and
  the collected chains/digests pass the SafetyAuditor (safety under
  client-plane load, not just under the cooperative A7 driver);
* the paced (sub-capacity) levels really pace — achieved throughput
  tracks the offered rate — and report finite commit latency;
* the saturation probe really saturates, which pins the bench's
  capacity-finding machinery itself;
* the snapshot read path serves an executed value back over HTTP while
  the cluster keeps running;
* results persist to ``BENCH_gateway.json`` for the regression gate.

Smoke invocation (records the gateway trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_gateway_bench.py -q``.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.eval.gateway_bench import (
    SMOKE_LEVELS,
    format_gateway_report,
    run_gateway_cell,
    write_gateway_records,
)

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY"),
    reason="gateway grid (n in {4,7}, 2000 clients); set REPRO_HEAVY=1 to run",
)


def test_gateway_smoke(once):
    """Tier-1 slice of A8: the n=4 ramp, audited, recorded."""
    result = once(run_gateway_cell)
    print()
    print(format_gateway_report(result.rows))
    assert [row.offered for row in result.rows] == list(SMOKE_LEVELS)
    for row in result.rows:
        cell = (row.n, row.offered)
        for name, passed in row.checks.items():
            assert passed, (cell, name)
        assert row.safe, cell
        # Everything the gateway accepted reached quorum commit within
        # the drain window — admission control means no silent loss.
        assert row.committed == row.accepted, cell
        assert row.accepted > 0, cell
        assert not math.isnan(row.p50_ms) and row.p50_ms > 0, cell
    paced = [row for row in result.rows if not row.saturated]
    probe = [row for row in result.rows if row.saturated]
    # The ramp brackets capacity: sub-capacity levels pace, the top
    # level saturates (its goodput fell under 80% of offered).
    assert len(paced) >= 2, [row.offered for row in result.rows]
    assert probe, "the top ramp level must exceed cluster capacity"
    for row in paced:
        assert row.achieved_tps >= 0.8 * row.offered, (row.offered, row.achieved_tps)
    assert result.saturation_offered == min(row.offered for row in probe)
    # The read path served an executed value over HTTP mid-run, and the
    # commit stream reached the WebSocket subscriber.
    assert result.reads_ok
    assert result.ws_events > 0
    write_gateway_records([result], "gateway_smoke")


@heavy
def test_gateway_grid(once):
    """The n ∈ {4, 7} grid — what REPRO_HEAVY=1 `python -m repro
    gateway` runs (2000 logical clients)."""
    results = once(lambda: [run_gateway_cell(n=n, clients=2000) for n in (4, 7)])
    rows = [row for result in results for row in result.rows]
    print()
    print(format_gateway_report(rows))
    assert {row.n for row in rows} == {4, 7}
    for result in results:
        assert result.safe
        assert result.reads_ok
        for row in result.rows:
            assert row.committed == row.accepted, (row.n, row.offered)
    write_gateway_records(results, "gateway_grid")
