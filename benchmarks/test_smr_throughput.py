"""Bench (extension) — end-to-end SMR throughput and liveness.

Not a paper table, but the deployment scenario §1 motivates: a
replicated KV store over Multi-shot TetraBFT.  Measures finalized
transactions per message delay and asserts Definition 2's properties
(consistency of chains, liveness of submitted transactions) plus
identical replica state digests.
"""

from __future__ import annotations

from repro.core import ProtocolConfig
from repro.multishot import MultiShotConfig
from repro.sim import Simulation, SynchronousDelays
from repro.smr import Replica, Transaction


def run_smr(n: int = 4, txns: int = 200, batch: int = 10) -> dict:
    config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=txns // batch + 8)
    sim = Simulation(SynchronousDelays(1.0))
    replicas = [Replica(i, config, max_batch=batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("incr", f"key-{k % 7}", 1)))
    end = sim.run(until=txns // batch + 40)
    digests = {r.state_digest() for r in replicas}
    applied = [r.store.applied_count for r in replicas]
    return {
        "duration": end,
        "digests": digests,
        "applied": applied,
        "throughput": min(applied) / end,
        "heights": [len(r.finalized_chain) for r in replicas],
    }


def test_smr_throughput(once):
    result = once(run_smr, n=4, txns=200, batch=10)
    print()
    print(
        f"applied={result['applied']} over t={result['duration']} "
        f"=> {result['throughput']:.1f} txn/delay"
    )
    # Determinism: every replica ends in the same state.
    assert len(result["digests"]) == 1
    # Liveness: all 200 transactions executed everywhere.
    assert all(a == 200 for a in result["applied"])
    # Pipelining pays: ~one block (= batch txns) per delay in steady
    # state, so throughput approaches the batch size.
    assert result["throughput"] > 3.0
