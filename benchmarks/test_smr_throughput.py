"""Bench A4 — end-to-end SMR throughput, latency, and the 2× hot path.

Three layers of coverage for the deployment scenario §1 motivates (a
replicated KV store over Multi-shot TetraBFT):

* **End-to-end liveness + rate** (tier-1): a full n=4 cluster commits
  every submitted transaction at ≈ one block of txns per message delay,
  with identical replica state digests, plus a smoke pass of the A4
  latency/throughput sweep (all workloads × all scenarios at n=4).
* **Full A4 sweep** (heavy, ``REPRO_HEAVY=1``): Uniform/Bursty/HotKey ×
  sync/geo/crash-recovery × n ∈ {4, 16, 64} — the client-observed
  latency table ``python -m repro smr`` prints.
* **2× micro-benchmark** (tier-1): the proposal+finalization hot path —
  indexed mempool + incremental :class:`InFlightIndex` + frontier-based
  :class:`ChainState` — against a faithful replica of the seed
  implementation (O(chain) ``chain_to_genesis`` walk per proposal,
  ``sorted()`` full rescan per notarization, linear finalized-tail
  scan, full-chain rebuild per finalization) on the n=64 bursty slot
  schedule.  The indexed path must sustain ≥2× the seed's txns/sec
  while producing byte-identical state digests.

Smoke invocation (records the perf trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_smr_throughput.py -q``;
add ``REPRO_HEAVY=1`` for the full sweep.
"""

from __future__ import annotations

import math
import os
import time
from collections import OrderedDict

import pytest

from repro.core import ProtocolConfig
from repro.errors import ProtocolViolation
from repro.eval.smr_bench import format_smr_report, run_smr_smoke, run_smr_sweep
from repro.multishot import MultiShotConfig
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore
from repro.multishot.chain import FINALITY_WINDOW, ChainState
from repro.sim import Simulation, SynchronousDelays
from repro.smr import InFlightIndex, KVStore, Mempool, Replica, Transaction
from repro.workloads import BurstyWorkload

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY"),
    reason="full A4 sweep (n up to 64, 27 runs); set REPRO_HEAVY=1 to run",
)


def run_smr(n: int = 4, txns: int = 200, batch: int = 10) -> dict:
    config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=txns // batch + 8)
    sim = Simulation(SynchronousDelays(1.0))
    replicas = [Replica(i, config, max_batch=batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("incr", f"key-{k % 7}", 1)))
    end = sim.run(until=txns // batch + 40)
    digests = {r.state_digest() for r in replicas}
    applied = [r.store.applied_count for r in replicas]
    return {
        "duration": end,
        "digests": digests,
        "applied": applied,
        "throughput": min(applied) / end,
        "heights": [len(r.finalized_chain) for r in replicas],
    }


def test_smr_throughput(once, bench_record):
    result = once(run_smr, n=4, txns=200, batch=10)
    print()
    print(
        f"applied={result['applied']} over t={result['duration']} "
        f"=> {result['throughput']:.1f} txn/delay"
    )
    bench_record(
        "smr",
        "end_to_end_n4",
        {
            "txns": 200,
            "sim_duration": result["duration"],
            "txns_per_delay": result["throughput"],
        },
    )
    # Determinism: every replica ends in the same state.
    assert len(result["digests"]) == 1
    # Liveness: all 200 transactions executed everywhere.
    assert all(a == 200 for a in result["applied"])
    # Pipelining pays: ~one block (= batch txns) per delay in steady
    # state, so throughput approaches the batch size.
    assert result["throughput"] > 3.0


def test_smr_latency_smoke(once, bench_record, row_record):
    """Tier-1 slice of A4: n=4, every workload × scenario, tiny load."""
    rows = once(run_smr_smoke)
    print()
    print(format_smr_report(rows))
    assert {row.workload for row in rows} == {"uniform", "bursty", "hotkey"}
    assert {row.scenario for row in rows} == {"sync", "geo", "crash-recovery"}
    for row in rows:
        # Liveness: the whole workload commits on every live replica.
        assert row.committed == row.txns, (row.workload, row.scenario)
        assert math.isfinite(row.p50) and row.p50 > 0
        assert row.p50 <= row.p95 <= row.p99
        # The pipeline's floor: finalization lags the proposal by the
        # 4-slot window, so no commit can beat ~4 message delays; the
        # crash-recovery scenario pays view-change stalls on top.
        assert row.p50 >= 2.0, (row.workload, row.scenario)
    bench_record("smr", "smr_smoke", [row_record(row) for row in rows])


@heavy
def test_smr_full_sweep(once):
    """The full A4 table — the figure `python -m repro smr` prints."""
    rows = once(run_smr_sweep)
    print()
    print(format_smr_report(rows))
    assert {row.n for row in rows} == {4, 16, 64}
    for row in rows:
        assert row.committed >= 0.95 * row.txns, (row.workload, row.scenario, row.n)
        if row.scenario == "sync":
            assert row.committed == row.txns, (row.workload, row.n)


# --- seed-hot-path replicas for the 2× micro-benchmark -----------------
#
# Faithful copies of the pre-refactor SMR hot path, kept here so the
# speedup claim stays measurable against the exact code shape it
# replaced: the seed walked the whole chain to genesis to compute the
# in-flight set before every proposal, re-sorted every notarized slot
# on every notarization, resolved finalized-slot lookups with a linear
# scan, and rebuilt the finalized chain from genesis on every
# finalization.


class _SeedMempool:
    """The seed pool: no in-flight index, rescan-and-skip per proposal."""

    def __init__(self, max_batch: int = 100) -> None:
        self.max_batch = max_batch
        self._pending: OrderedDict[str, Transaction] = OrderedDict()
        self._finalized: set[str] = set()

    def add(self, txn: Transaction) -> bool:
        if txn.txid in self._pending or txn.txid in self._finalized:
            return False
        self._pending[txn.txid] = txn
        return True

    def next_batch(self, exclude: frozenset = frozenset()) -> tuple:
        batch = []
        for txid, txn in self._pending.items():
            if txid in exclude:
                continue
            batch.append(txn)
            if len(batch) >= self.max_batch:
                break
        return tuple(batch)

    def mark_finalized(self, txids) -> None:
        for txid in txids:
            self._pending.pop(txid, None)
            self._finalized.add(txid)

    def is_finalized(self, txid: str) -> bool:
        return txid in self._finalized


class _SeedChainState:
    """The seed finalization bookkeeping: sorted rescans, linear tails."""

    def __init__(self, store: BlockStore) -> None:
        self.store = store
        self._notarized: dict[int, set[str]] = {}
        self.finalized: list[Block] = []

    def notarize(self, slot: int, digest: str) -> list[Block]:
        self._notarized.setdefault(slot, set()).add(digest)
        return self.check_finalization()

    def is_notarized(self, slot: int, digest: str) -> bool:
        if slot <= 0:
            return digest == GENESIS_DIGEST or self._tail_digest_at(slot) == digest
        if digest in self._notarized.get(slot, set()):
            return True
        return self._tail_digest_at(slot) == digest

    def _tail_digest_at(self, slot: int) -> str | None:
        for block in self.finalized:
            if block.slot == slot:
                return block.digest
        return None

    @property
    def finalized_height(self) -> int:
        return self.finalized[-1].slot if self.finalized else 0

    def check_finalization(self) -> list[Block]:
        newly: list[Block] = []
        progress = True
        while progress:
            progress = False
            for top_slot in sorted(self._notarized):
                if top_slot - (FINALITY_WINDOW - 1) < self.finalized_height:
                    continue
                for top_digest in self._notarized[top_slot]:
                    appended = self._try_finalize_run(top_slot, top_digest)
                    if appended:
                        newly.extend(appended)
                        progress = True
                        break
                if progress:
                    break
        return newly

    def _try_finalize_run(self, top_slot: int, top_digest: str) -> list[Block]:
        current = top_digest
        for depth in range(FINALITY_WINDOW - 1):
            block = self.store.get(current)
            if block is None:
                return []
            parent_slot = top_slot - depth - 1
            if parent_slot <= 0:
                return []
            if not self.is_notarized(parent_slot, block.parent):
                return []
            current = block.parent
        return self._finalize_chain_to(current)

    def _finalize_chain_to(self, digest: str) -> list[Block]:
        chain = self.store.chain_to_genesis(digest)
        if chain is None:
            return []
        for old, new in zip(self.finalized, chain):
            if old.digest != new.digest:
                raise ProtocolViolation(
                    f"finalized-chain fork at slot {old.slot}: "
                    f"{old.digest} vs {new.digest}"
                )
        if chain and chain[-1].slot <= self.finalized_height:
            return []
        newly = chain[len(self.finalized):]
        self.finalized = chain
        return newly


class _SeedInFlight:
    """The seed in-flight computation: walk the whole chain to genesis."""

    def __init__(self, store: BlockStore) -> None:
        self._store = store

    def txids_on(self, parent: str) -> frozenset:
        in_flight: set[str] = set()
        chain = self._store.chain_to_genesis(parent)
        if chain is not None:
            for block in chain:
                payload = block.payload
                if isinstance(payload, tuple):
                    in_flight.update(txn.txid for txn in payload if isinstance(txn, Transaction))
        return frozenset(in_flight)

    def mark_finalized(self, block: Block) -> None:
        pass  # the seed kept no finalized frontier


def _bursty_feed(slots: int, batch: int) -> list[tuple[float, Transaction]]:
    """The bursty transaction stream, sized so the pool never runs dry.

    Same burst shape as the A4 n=64 bursty cell (bursts of 5 blocks)
    but offered slightly above the drain rate, so every proposal carries
    a full batch and the backlog the workload exists to stress persists
    across the whole run.
    """
    workload = BurstyWorkload(bursts=slots // 4, burst_size=5 * batch, period=4.0, seed=0)
    return list(workload.transactions())


def _drive_proposal_finalization(
    chain_cls, mempool, in_flight_cls, feed, slots: int, batch: int
) -> dict:
    """Replay one replica's proposal+finalization schedule.

    The slot schedule is the one a 64-replica bursty run produces in the
    good case — one proposal per message delay, each extending the
    previous slot's block, notarization arriving a delay later — with
    the network stripped away so the measured object is exactly the SMR
    hot path: in-flight computation, batch extraction, notarization and
    finalization bookkeeping, and deterministic execution.
    """
    store = BlockStore()
    chain = chain_cls(store)
    in_flight = in_flight_cls(store)
    kv = KVStore()
    feed_pos = 0
    parent = GENESIS_DIGEST
    start = time.perf_counter()
    for slot in range(1, slots + 1):
        now = float(slot)
        while feed_pos < len(feed) and feed[feed_pos][0] <= now:
            mempool.add(feed[feed_pos][1])
            feed_pos += 1
        batch_txns = mempool.next_batch(exclude=in_flight.txids_on(parent))
        block = Block.create(slot, parent, batch_txns)
        store.add(block)
        newly = chain.notarize(slot, block.digest)
        # A real node also re-checks on every proposal-body arrival.
        newly.extend(chain.check_finalization())
        for final in newly:
            applied = []
            for txn in final.payload:
                if mempool.is_finalized(txn.txid):
                    continue
                kv.apply(txn.txid, txn.op)
                applied.append(txn.txid)
            mempool.mark_finalized(applied)
            in_flight.mark_finalized(final)
        parent = block.digest
    wall = time.perf_counter() - start
    return {
        "digest": kv.state_digest(),
        "applied": kv.applied_count,
        "txns_per_sec": kv.applied_count / wall,
        "height": chain.finalized_height,
    }


def _best_of(fn, repeats: int = 3) -> dict:
    results = [fn() for _ in range(repeats)]
    return max(results, key=lambda r: r["txns_per_sec"])


def test_indexed_smr_path_at_least_2x_seed(benchmark, bench_record):
    slots, batch = 240, 50
    feed = _bursty_feed(slots, batch)

    def seed_run():
        return _drive_proposal_finalization(
            _SeedChainState, _SeedMempool(max_batch=batch), _SeedInFlight,
            feed, slots, batch,
        )

    def indexed_run():
        return _drive_proposal_finalization(
            ChainState, Mempool(max_batch=batch), InFlightIndex,
            feed, slots, batch,
        )

    seed = _best_of(seed_run)
    indexed = benchmark.pedantic(lambda: _best_of(indexed_run), rounds=1, iterations=1)
    print(
        f"\nseed SMR path: {seed['txns_per_sec']:,.0f} txn/s   "
        f"indexed path: {indexed['txns_per_sec']:,.0f} txn/s   "
        f"ratio {indexed['txns_per_sec'] / seed['txns_per_sec']:.2f}x"
    )
    bench_record(
        "smr",
        "smr_hot_path_2x",
        {
            "seed_txns_per_sec": seed["txns_per_sec"],
            "txns_per_sec": indexed["txns_per_sec"],
            "ratio": indexed["txns_per_sec"] / seed["txns_per_sec"],
        },
    )
    # Same schedule, same feed: the refactor must not change a single
    # committed byte...
    assert indexed["digest"] == seed["digest"]
    assert indexed["applied"] == seed["applied"] > 0
    assert indexed["height"] == seed["height"]
    # ...and must at least double the seed's sustained commit rate.
    assert indexed["txns_per_sec"] >= 2.0 * seed["txns_per_sec"], (
        f"SMR hot path regressed: {indexed['txns_per_sec']:,.0f} vs seed "
        f"{seed['txns_per_sec']:,.0f} txn/s "
        f"({indexed['txns_per_sec'] / seed['txns_per_sec']:.2f}x, need >= 2x)"
    )
