"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artifact (DESIGN.md §3 has the
experiment index) and asserts the *shape* the paper reports — who
wins, by what factor, where growth exponents land — while
pytest-benchmark records the wall-clock cost of the regeneration.
Benches run each experiment once (``rounds=1``): the experiments are
deterministic simulations, so repetition would measure nothing new.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "heavy: full-scale sweeps excluded from tier-1 runs "
        "(set REPRO_HEAVY=1 to include them)",
    )


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
