"""Shared configuration for the benchmark harness.

Every bench regenerates one paper artifact (DESIGN.md §3 has the
experiment index) and asserts the *shape* the paper reports — who
wins, by what factor, where growth exponents land — while
pytest-benchmark records the wall-clock cost of the regeneration.
Benches run each experiment once (``rounds=1``): the experiments are
deterministic simulations, so repetition would measure nothing new.

The smoke runs additionally persist machine-readable perf records —
``BENCH_scaling.json`` and ``BENCH_smr.json`` at the repo root — via
the ``bench_record`` fixture, so the per-PR perf trajectory
(events/sec, txns/sec, latency percentiles per cell) is captured as
data, not just log text.  Each test merges its own key into the file,
leaving records written by other tests in place.
"""

from __future__ import annotations

from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


def record_bench(stem: str, key: str, payload: object) -> None:
    """Merge ``payload`` under ``key`` into ``BENCH_<stem>.json``.

    Delegates to :func:`repro.eval.report.merge_record`, the single
    implementation of the merge-under-key record format.
    """
    from repro.eval.report import merge_record

    merge_record(_REPO_ROOT / f"BENCH_{stem}.json", key, payload)


@pytest.fixture
def bench_record():
    """The perf-record writer (a fixture so tests need no path logic)."""
    return record_bench


def smr_row_record(row) -> dict:
    """One SMRRow as a BENCH_smr.json cell (shared by the A4/A5 benches
    so both emit the same schema)."""
    return {
        "engine": row.engine,
        "workload": row.workload,
        "scenario": row.scenario,
        "n": row.n,
        "txns": row.txns,
        "committed": row.committed,
        "p50_delays": row.p50,
        "p95_delays": row.p95,
        "p99_delays": row.p99,
        "txns_per_sec": row.txns_per_sec,
        "txns_per_delay": row.txns_per_delay,
        "messages_per_delay": row.messages_per_delay,
        "frames_per_delay": row.frames_per_delay,
        "mempool_peak": row.mempool_peak,
    }


@pytest.fixture
def row_record():
    """The SMRRow serializer, as a fixture for the same reason."""
    return smr_row_record


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "heavy: full-scale sweeps excluded from tier-1 runs "
        "(set REPRO_HEAVY=1 to include them)",
    )


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark clock."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
