"""Bench V5 — regenerate the Section 5 formal-verification result.

The paper verifies agreement for 4 nodes / 1 Byzantine / 3 values /
5 views by proving an invariant inductive with Apalache.  We
exhaustively explore the same transition system (wildcard-Byzantine +
symmetry reduction) at explicit-search bounds, check agreement and
every invariant conjunct on all reachable states, verify bounded
liveness, and run the deterministic inductive-step pass.
"""

from __future__ import annotations

from repro.eval.verification_run import run_verification
from repro.verification import ModelConfig


def test_verification_exhaustive(once):
    summary = once(
        run_verification,
        explore_config=ModelConfig(n=4, f=1, num_values=2, max_round=1),
        liveness_config=ModelConfig(
            n=4, f=1, num_values=2, max_round=1, byz_support=False, good_round=1
        ),
        max_states=400_000,
    )
    print()
    print(f"agreement over {summary.agreement_states} states: {summary.agreement_ok}")
    print(f"invariants over {summary.invariant_states} states: {summary.invariant_ok}")
    print(
        f"liveness over {summary.liveness_states} states "
        f"({summary.liveness_deadlocks} deadlocks): {summary.liveness_ok}"
    )
    print(
        f"inductive step: {summary.inductive_states_checked} states / "
        f"{summary.inductive_steps_checked} steps: {summary.inductive_ok}"
    )
    assert summary.agreement_ok
    assert summary.invariant_ok
    assert summary.liveness_ok
    assert summary.inductive_ok
    # The exploration is genuinely exhaustive at these bounds (no
    # truncation) and non-trivial in size.
    assert summary.agreement_states > 100_000


def test_verification_three_values_bounded(once):
    """The paper's 3-value bound, explored to a large explicit cap.

    Full exhaustion at 3 values × 2 rounds is beyond explicit search
    (that is why the authors used a symbolic checker); agreement must
    still hold on every state we do reach.
    """
    from repro.verification import check_agreement

    result = once(
        check_agreement,
        ModelConfig(n=4, f=1, num_values=3, max_round=1),
        max_states=150_000,
    )
    print()
    print(f"3-value bounded sweep: {result.states_explored} states, ok={result.ok}")
    assert result.ok
