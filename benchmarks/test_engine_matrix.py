"""Bench A5 — the cross-engine SMR matrix over the pluggable boundary.

Two layers:

* **Smoke matrix** (tier-1): every consensus engine — pipelined
  TetraBFT plus the chained PBFT / IT-HotStuff / Li baselines — runs
  the identical SMR client path (n=4, sync network, all three
  workloads).  Asserts the liveness of every cell and the paper's
  comparative ordering: TetraBFT's pipelining must beat every chained
  baseline on p50 commit latency *and* per-delay throughput, and the
  3-delay PBFT must beat the 6-delay IT-HS/Li on latency.
* **Full grid** (heavy, ``REPRO_HEAVY=1``): engine × workload ×
  sync/geo/crash-recovery × n ∈ {4, 16} — the table
  ``REPRO_HEAVY=1 python -m repro engines`` prints.

A separate tier-1 test pins the refactor invariant the boundary was
built under: TetraBFT *through* the ConsensusEngine interface produces
byte-identical state digests and finalized chains to the pre-refactor
direct wiring (a faithful copy of which is kept below, following the
same convention as the seed-path replicas in the sibling benches).

Smoke invocation (records the perf trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_engine_matrix.py -q``.
"""

from __future__ import annotations

import math
import os

import pytest

from repro.core import ProtocolConfig
from repro.eval.engine_matrix import (
    format_engine_report,
    run_batching_ablation,
    run_engine_matrix,
    run_engine_smoke,
)
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.multishot.block import Block
from repro.sim import Simulation, SynchronousDelays
from repro.smr import (
    ENGINE_NAMES,
    InFlightIndex,
    KVStore,
    Mempool,
    Replica,
    Transaction,
)
from repro.smr.engine import multishot_engine

heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_HEAVY"),
    reason="full engine grid (4 engines x 27 cells); set REPRO_HEAVY=1 to run",
)


def test_engine_matrix_smoke(once, bench_record, row_record):
    """Tier-1 slice of A5: one row per engine × workload, sync, n=4."""
    rows = once(run_engine_smoke)
    print()
    print(format_engine_report(rows))
    assert {row.engine for row in rows} == set(ENGINE_NAMES)
    by_cell = {(row.engine, row.workload): row for row in rows}
    for row in rows:
        # Liveness over the shared client path, for every engine.
        assert row.committed == row.txns, (row.engine, row.workload)
        assert math.isfinite(row.p50) and row.p50 > 0
        assert row.p50 <= row.p95 <= row.p99
    for workload in {row.workload for row in rows}:
        tetra = by_cell[("tetrabft", workload)]
        pbft = by_cell[("pbft", workload)]
        for name in ENGINE_NAMES:
            if name == "tetrabft":
                continue
            other = by_cell[(name, workload)]
            # The paper's comparative claim, end to end: pipelined
            # TetraBFT beats every chained baseline on client-observed
            # latency and per-delay throughput.
            assert tetra.p50 < other.p50, (name, workload)
            assert tetra.txns_per_delay > other.txns_per_delay, (name, workload)
        # And within the baselines, fewer phases means lower latency.
        for name in ("ithotstuff", "li"):
            assert pbft.p50 < by_cell[(name, workload)].p50, (name, workload)
    bench_record("smr", "engine_matrix_smoke", [row_record(row) for row in rows])


@heavy
def test_engine_matrix_full_grid(once):
    """The full A5 grid — what REPRO_HEAVY=1 `python -m repro engines` prints."""
    rows = once(run_engine_matrix)
    print()
    print(format_engine_report(rows))
    assert {row.engine for row in rows} == set(ENGINE_NAMES)
    assert {row.n for row in rows} == {4, 16}
    assert {row.scenario for row in rows} == {"sync", "geo", "crash-recovery"}
    for row in rows:
        assert row.committed >= 0.95 * row.txns, (
            row.engine, row.workload, row.scenario, row.n,
        )
        if row.scenario == "sync":
            assert row.committed == row.txns, (row.engine, row.workload, row.n)


@heavy
def test_batching_ablation_n16(once, bench_record, row_record):
    """Message-plane A/B at n=16: batching changes frames/Δ, nothing else.

    The nightly cell that keeps the aggregation plane honest at a size
    where it matters: same commits and identical client-observed
    latency (batching is semantics-free and the scenario is
    deterministic), strictly fewer physical frames.
    """
    rows = once(run_batching_ablation)
    print()
    print(format_engine_report(rows))
    batched, unbatched = rows
    assert batched.engine == "tetrabft"
    assert unbatched.engine == "tetrabft-nobatch"
    assert batched.committed == batched.txns
    assert unbatched.committed == unbatched.txns
    assert (batched.p50, batched.p95, batched.p99) == (
        unbatched.p50,
        unbatched.p95,
        unbatched.p99,
    )
    assert unbatched.frames == unbatched.messages
    assert batched.frames < unbatched.frames
    bench_record("smr", "batching_ablation_n16", [row_record(row) for row in rows])


# --- pre-refactor direct wiring (the boundary's identity oracle) ---------------


class _DirectWiredReplica:
    """The pre-ConsensusEngine replica: MultiShotNode built inline.

    A sibling copy lives in tests/test_engine.py (which additionally
    compares traces); benchmarks and tests are separate pytest roots,
    so each keeps its own.  Edit both together or the identity
    baseline drifts.
    """

    def __init__(self, node_id: int, config: MultiShotConfig, max_batch: int) -> None:
        self.node_id = node_id
        self.mempool = Mempool(max_batch=max_batch)
        self.store = KVStore()
        self.consensus = MultiShotNode(
            node_id,
            config,
            payload_fn=self._make_payload,
            on_finalize=self._execute_block,
        )
        self.in_flight = InFlightIndex(self.consensus.store)

    def start(self, ctx) -> None:
        self.consensus.start(ctx)

    def receive(self, sender: int, message: object) -> None:
        self.consensus.receive(sender, message)

    def submit(self, txn: Transaction) -> bool:
        return self.mempool.add(txn)

    @property
    def finalized_chain(self) -> list[Block]:
        return self.consensus.finalized_chain

    def state_digest(self) -> str:
        return self.store.state_digest()

    def _make_payload(self, slot: int, parent: str) -> object:
        del slot
        return self.mempool.next_batch(exclude=self.in_flight.txids_on(parent))

    def _execute_block(self, block: Block) -> None:
        self.in_flight.mark_finalized(block)
        payload = block.payload
        if not isinstance(payload, tuple):
            return
        applied = []
        for txn in payload:
            if isinstance(txn, Transaction) and not self.mempool.is_finalized(txn.txid):
                self.store.apply(txn.txid, txn.op)
                applied.append(txn.txid)
        self.mempool.mark_finalized(applied)


def _run_cluster(make_replica, n=4, txns=120, batch=10):
    config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=txns // batch + 10)
    sim = Simulation(SynchronousDelays(1.0))
    replicas = [make_replica(i, config, batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)
    for k in range(txns):
        for replica in replicas:
            replica.submit(Transaction(f"tx-{k}", ("incr", f"key-{k % 7}", 1)))
    sim.run(until=txns // batch + 40)
    return replicas


def test_tetrabft_engine_boundary_byte_identical(benchmark):
    """The A5 tetrabft row's path ≡ the pre-refactor direct wiring."""
    oracle = _run_cluster(_DirectWiredReplica)
    engines = benchmark.pedantic(
        lambda: _run_cluster(
            lambda i, config, batch: Replica(
                i, max_batch=batch, engine_factory=multishot_engine(config)
            )
        ),
        rounds=1,
        iterations=1,
    )
    assert [r.state_digest() for r in engines] == [r.state_digest() for r in oracle]
    assert [[b.digest for b in r.finalized_chain] for r in engines] == [
        [b.digest for b in r.finalized_chain] for r in oracle
    ]
    assert all(r.store.applied_count == 120 for r in engines)
