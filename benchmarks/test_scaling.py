"""Bench A1 — communication-complexity scaling (Table 1 bits column).

Fits byte-growth exponents over an n sweep with one forced view change
per run.  Expected separation: TetraBFT and IT-HS land near the
quadratic total (O(n²) bits), PBFT's view change pushes it toward the
cubic (O(n³) worst case).
"""

from __future__ import annotations

from repro.eval.scaling import PAPER_TOTAL_EXPONENTS, run_scaling


def test_scaling_exponents(once):
    rows = once(run_scaling, ns=(4, 7, 10, 16, 22))
    print()
    by_name = {}
    for row in rows:
        print(
            f"{row.protocol:10s} total-exp={row.total_exponent:.2f} "
            f"(paper {PAPER_TOTAL_EXPONENTS[row.protocol]:.0f}) "
            f"per-node-exp={row.per_node_exponent:.2f}"
        )
        by_name[row.protocol] = row
    # Quadratic protocols: total exponent ≈ 2, per-node ≈ 1 (linear).
    for name in ("tetrabft", "it-hs"):
        assert 1.7 <= by_name[name].total_exponent <= 2.2, name
        assert by_name[name].per_node_exponent <= 1.2, name
    # PBFT's view change: clearly super-quadratic total, super-linear
    # per node, and separated from the quadratic protocols.
    pbft = by_name["pbft"]
    assert pbft.total_exponent >= 2.5
    assert pbft.per_node_exponent >= 1.5
    assert pbft.total_exponent > by_name["tetrabft"].total_exponent + 0.5
    # Absolute volumes tell the same story at the largest n.
    assert pbft.total_bytes[-1] > 4 * by_name["tetrabft"].total_bytes[-1]
