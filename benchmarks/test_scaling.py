"""Bench A1 — communication-complexity scaling (Table 1 bits column)
and A1b — simulator throughput.

The byte sweep fits growth exponents over an n sweep with one forced
view change per run.  Expected separation: TetraBFT and IT-HS land near
the quadratic total (O(n²) bits), PBFT's view change pushes it toward
the cubic (O(n³) worst case).

The throughput sweep runs full TetraBFT executions at n ∈ {4, 16, 64,
128} across the sync / geo / crash-recovery scenarios and reports the
event core's events-per-second figure, and a micro-benchmark pits the
tuple-heap scheduler against a faithful replica of the seed scheduler
(``order=True`` dataclass heap entries, per-message delivery closures,
per-copy wire-size estimation) on an n=64 synchronous all-to-all
broadcast workload.  The refactored core must clear 2× the replica's
rate — the floor the scaling roadmap item depends on.

Smoke invocation (records the perf trajectory; see ROADMAP.md):
``PYTHONPATH=src python -m pytest benchmarks/test_scaling.py -q``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.eval.scaling import (
    PAPER_TOTAL_EXPONENTS,
    format_throughput_report,
    run_scaling,
    run_throughput,
)
from repro.metrics.collectors import MessageMetrics
from repro.sim import EventScheduler, Network, SynchronousDelays, Trace


def test_scaling_exponents(once):
    rows = once(run_scaling, ns=(4, 7, 10, 16, 22))
    print()
    by_name = {}
    for row in rows:
        print(
            f"{row.protocol:10s} total-exp={row.total_exponent:.2f} "
            f"(paper {PAPER_TOTAL_EXPONENTS[row.protocol]:.0f}) "
            f"per-node-exp={row.per_node_exponent:.2f}"
        )
        by_name[row.protocol] = row
    # Quadratic protocols: total exponent ≈ 2, per-node ≈ 1 (linear).
    for name in ("tetrabft", "it-hs"):
        assert 1.7 <= by_name[name].total_exponent <= 2.2, name
        assert by_name[name].per_node_exponent <= 1.2, name
    # PBFT's view change: clearly super-quadratic total, super-linear
    # per node, and separated from the quadratic protocols.
    pbft = by_name["pbft"]
    assert pbft.total_exponent >= 2.5
    assert pbft.per_node_exponent >= 1.5
    assert pbft.total_exponent > by_name["tetrabft"].total_exponent + 0.5
    # Absolute volumes tell the same story at the largest n.
    assert pbft.total_bytes[-1] > 4 * by_name["tetrabft"].total_bytes[-1]


def test_throughput_sweep_reaches_n128(once, bench_record):
    rows = once(run_throughput)
    print()
    print(format_throughput_report(rows))
    assert {row.n for row in rows} == {4, 16, 64, 128}
    assert {row.scenario for row in rows} == {"sync", "geo", "crash-recovery"}
    for row in rows:
        # Every scenario decides at every size, well inside the default
        # 2M-event budget — including the n=128 runs.
        assert row.decided, (row.scenario, row.n)
        assert row.events < 2_000_000, (row.scenario, row.n)
    bench_record(
        "scaling",
        "throughput",
        [
            {
                "scenario": row.scenario,
                "n": row.n,
                "events": row.events,
                "wall_seconds": row.wall_seconds,
                "events_per_sec": row.events_per_sec,
                "messages_per_delay": row.messages_per_delay,
                "frames_per_delay": row.frames_per_delay,
                "decided": row.decided,
            }
            for row in rows
        ],
    )


# --- seed-scheduler replica for the 2× micro-benchmark -----------------
#
# A faithful copy of the pre-refactor hot path: the heap holds
# order=True dataclass instances (every sift calls a generated Python
# __lt__), each delivery allocates a closure plus an f-string label, and
# every broadcast copy re-estimates the message's wire size.  Kept here
# so the speedup claim stays measurable against the exact code shape it
# replaced.


@dataclass(order=True)
class _SeedEvent:
    time: float
    seq: int
    callback: object = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class _SeedScheduler:
    def __init__(self) -> None:
        self._heap: list[_SeedEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self.events_fired = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay, callback, label=""):
        event = _SeedEvent(
            time=self._now + delay, seq=next(self._counter),
            callback=callback, label=label,
        )
        heapq.heappush(self._heap, event)
        return event

    def run(self) -> float:
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_fired += 1
            event.callback()
        return self._now


class _SeedNetwork:
    def __init__(self, scheduler, policy) -> None:
        self.scheduler = scheduler
        self.policy = policy
        self.metrics = MessageMetrics()
        self.trace = Trace(enabled=False)
        self._inboxes = {}

    def register(self, node_id, deliver) -> None:
        self._inboxes[node_id] = deliver

    @property
    def node_ids(self):
        return sorted(self._inboxes)

    def send(self, src, dst, message) -> None:
        self.metrics.record_send(src, message)
        self.trace.record(self.scheduler.now, src, None, dst=dst, msg=type(message).__name__)
        delay = self.policy.delay(self.scheduler.now, src, dst, message)
        if delay is None:
            self.metrics.record_drop(src)
            return
        self.scheduler.schedule(
            delay,
            lambda: self._deliver(src, dst, message),
            label=f"deliver {type(message).__name__} {src}->{dst}",
        )

    def broadcast(self, src, message) -> None:
        for dst in self.node_ids:
            self.send(src, dst, message)

    def _deliver(self, src, dst, message) -> None:
        self.metrics.record_delivery(src)
        self.trace.record(self.scheduler.now, dst, None, src=src, msg=type(message).__name__)
        self._inboxes[dst](src, message)


@dataclass(frozen=True)
class _Ping:
    round: int
    origin: int


def _drive_broadcast_workload(scheduler, network, n=64, rounds=6):
    """All-to-all broadcast rounds: n² deliveries per round."""
    received = [0] * n
    for i in range(n):
        network.register(i, lambda s, m, i=i: received.__setitem__(i, received[i] + 1))

    def kick(r: int) -> None:
        for src in range(n):
            network.broadcast(src, _Ping(r, src))
        if r + 1 < rounds:
            scheduler.schedule(2.0, lambda: kick(r + 1))

    scheduler.schedule(0.0, lambda: kick(0))
    start = time.perf_counter()
    scheduler.run()
    wall = time.perf_counter() - start
    fired = scheduler.events_fired
    assert all(count == n * rounds for count in received)
    return fired / wall


def _best_of(fn, repeats=3):
    return max(fn() for _ in range(repeats))


def test_event_core_at_least_2x_seed_scheduler(benchmark, bench_record):
    n, rounds = 64, 6

    def seed_eps():
        scheduler = _SeedScheduler()
        network = _SeedNetwork(scheduler, SynchronousDelays(1.0))
        return _drive_broadcast_workload(scheduler, network, n, rounds)

    def new_eps():
        scheduler = EventScheduler()
        network = Network(scheduler, SynchronousDelays(1.0))
        return _drive_broadcast_workload(scheduler, network, n, rounds)

    seed = _best_of(seed_eps)
    new = benchmark.pedantic(lambda: _best_of(new_eps), rounds=1, iterations=1)
    print(f"\nseed scheduler: {seed:,.0f} events/s   "
          f"tuple-heap core: {new:,.0f} events/s   ratio {new / seed:.2f}x")
    bench_record(
        "scaling",
        "event_core_2x",
        {
            "seed_events_per_sec": seed,
            "events_per_sec": new,
            "ratio": new / seed,
        },
    )
    assert new >= 2.0 * seed, (
        f"event core regressed: {new:,.0f} vs seed {seed:,.0f} events/s "
        f"({new / seed:.2f}x, need >= 2x)"
    )
