#!/usr/bin/env python3
"""TetraBFT over federated (heterogeneous) trust — the paper's §1.2.

Unauthenticated protocols transfer to Stellar-style Federated Byzantine
Agreement, where each participant declares its own *quorum slices*
instead of agreeing on a global n/f.  Because every TetraBFT rule in
this library talks to the abstract QuorumSystem interface, the node
state machines run over an FBA system unchanged.

The example builds a two-tier topology — three core validators that
trust any 2-of-3 among themselves, plus two leaf validators that trust
core pairs — validates quorum intersection, and runs consensus on it,
including a view change with a crashed core node.

Run:  python examples/heterogeneous_trust.py
"""

from __future__ import annotations

from repro import FBAQuorumSystem, ProtocolConfig, Simulation, SliceConfig, TetraBFTNode
from repro.quorums import validate_fba_system
from repro.sim import SynchronousDelays, TargetedDropPolicy, silence_nodes


def build_topology() -> FBAQuorumSystem:
    core = [SliceConfig.threshold(i, [0, 1, 2], k=2) for i in (0, 1, 2)]
    leaves = [
        SliceConfig(node=3, slices=frozenset([frozenset({0, 1, 3}), frozenset({1, 2, 3})])),
        SliceConfig(node=4, slices=frozenset([frozenset({0, 2, 4}), frozenset({1, 2, 4})])),
    ]
    return FBAQuorumSystem.from_slices(core + leaves)


def main() -> None:
    fba = build_topology()
    validate_fba_system(fba)  # raises if any two quorums are disjoint
    print("federated topology:")
    print(f"  nodes           : {sorted(fba.nodes)}")
    print(f"  minimal quorums : {[sorted(q) for q in fba.minimal_quorums]}")
    print(f"  blocking size   : {fba.blocking_size()}")

    print("\n--- consensus over the federation (all honest) ---")
    config = ProtocolConfig(quorum_system=fba)
    sim = Simulation(SynchronousDelays(1.0))
    for i in sorted(fba.nodes):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"ledger-{i}"))
    sim.run_until_all_decided(until=300)
    for node_id, value in sorted(sim.metrics.latency.decision_values.items()):
        at = sim.metrics.latency.decision_times[node_id]
        print(f"  node {node_id} decided {value!r} at t={at}")

    print("\n--- crash tolerance is topology-dependent ---")
    # Each core validator's slice needs *both* other core members, so
    # the federation cannot survive a core crash (no quorum remains) —
    # heterogeneous trust makes fault tolerance a per-topology fact,
    # not a global n/f.  A *leaf* crash, however, leaves the core
    # quorum intact:
    sim = Simulation(
        TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([4]))
    )
    for i in sorted(fba.nodes):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"ledger-{i}"))
    sim.run_until_all_decided(node_ids=[0, 1, 2, 3], until=500)
    values = {sim.metrics.latency.decision_values[i] for i in (0, 1, 2, 3)}
    print(f"  leaf 4 crashed: remaining nodes agreed on {values.pop()!r} "
          f"by t={max(sim.metrics.latency.decision_times[i] for i in (0,1,2,3))}")


if __name__ == "__main__":
    main()
