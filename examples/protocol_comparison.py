#!/usr/bin/env python3
"""Side-by-side protocol comparison — a live rendering of Table 1.

Runs TetraBFT against IT-HS, the non-responsive IT-HS blog variant, and
unauthenticated PBFT under identical conditions, and prints the
good-case latency, view-change latency, and communication volumes.

Also demonstrates responsiveness: with the network suddenly much faster
than the configured Δ bound, responsive protocols speed up
proportionally while the non-responsive one stays pinned at Δ.

Finally, the same comparison end to end: every protocol runs as a
pluggable consensus engine under the full SMR client path (mempool →
blocks → deterministic execution), so Table 1's "fewer message delays"
column turns into client-observed commit latency.

Run:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.eval.engine_matrix import format_engine_report, run_engine_matrix
from repro.eval.report import format_table
from repro.eval.responsiveness import run_responsiveness
from repro.eval.table1 import PROTOCOLS, measure_good_case, measure_view_change


def main() -> None:
    rows = []
    for entry in PROTOCOLS:
        rows.append(
            {
                "protocol": entry.name,
                "good-case (measured)": measure_good_case(entry, n=4),
                "good-case (paper)": entry.paper_good_case,
                "view-change (measured)": measure_view_change(entry, n=4),
                "view-change (paper)": entry.paper_view_change,
            }
        )
    print(
        format_table(
            rows,
            [
                "protocol",
                "good-case (measured)",
                "good-case (paper)",
                "view-change (measured)",
                "view-change (paper)",
            ],
            title="Latencies in message delays (n=4, unit-delay network)",
        )
    )

    print("\nResponsiveness (Δ bound = 8, actual network delay δ swept):")
    print("  δ      TetraBFT   IT-HS-blog")
    for point in run_responsiveness(delta_bound=8.0, actual_deltas=(0.5, 2.0, 8.0)):
        print(f"  {point.delta_actual:<6} {point.tetrabft_latency:<10} " f"{point.blog_latency}")
    print("  → TetraBFT's post-view-change latency is 7δ: it tracks the real")
    print("    network.  The non-responsive variant waits out Δ regardless.")

    print("\nThe same protocols as SMR engines (full client path, n=4):")
    rows = run_engine_matrix(
        ns=(4,), workloads=("uniform",), scenarios=("sync",), txns=40, batch=8
    )
    print(format_engine_report(rows))
    print("  → pipelining pays end to end: TetraBFT commits a block per")
    print("    delay while each baseline spends its whole phase ladder.")


if __name__ == "__main__":
    main()
