#!/usr/bin/env python3
"""A replicated key-value blockchain over Multi-shot TetraBFT.

The deployment the paper's introduction motivates: four replicas run
pipelined TetraBFT, clients stream transactions into their mempools,
leaders batch them into blocks, and every finalized block executes on
a deterministic KV store.  The pipeline commits one block per message
delay (Figure 2), so throughput ≈ batch size per delay.

The script prints the finalized chain, per-replica state digests
(identical — that's the whole point), and the measured throughput.

Run:  python examples/blockchain_smr.py
"""

from __future__ import annotations

from repro import MultiShotConfig, ProtocolConfig, Replica, Simulation, Transaction
from repro.sim import SynchronousDelays
from repro.workloads import UniformWorkload


def main() -> None:
    n, batch, txn_count = 4, 10, 300
    config = MultiShotConfig(base=ProtocolConfig.create(n), max_slots=txn_count // batch + 8)
    sim = Simulation(SynchronousDelays(1.0))
    replicas = [Replica(i, config, max_batch=batch) for i in range(n)]
    for replica in replicas:
        sim.add_node(replica)

    # An open-loop client stream, broadcast to every replica.
    workload = UniformWorkload(count=txn_count, rate=15.0, seed=7)
    injected = workload.inject(sim, replicas)
    print(f"injecting {injected} transactions at 15 txn/delay ...")

    end = sim.run(until=txn_count / 10 + 60)

    chain = replicas[0].finalized_chain
    print(f"\nfinalized chain height: {len(chain)} blocks by t={end}")
    for block in chain[:5]:
        size = len(block.payload) if isinstance(block.payload, tuple) else 0
        print(f"  slot {block.slot}: {size:3d} txns  digest {block.digest}")
    print("  ...")

    print("\nreplica state digests (must be identical):")
    for replica in replicas:
        print(
            f"  replica {replica.node_id}: {replica.state_digest()} "
            f"({replica.store.applied_count} txns applied)"
        )
    digests = {r.state_digest() for r in replicas}
    assert len(digests) == 1, "replicas diverged!"

    applied = replicas[0].store.applied_count
    print(f"\nthroughput: {applied / end:.1f} committed txns per message delay")
    print("(pipelining: one block of", batch, "txns finalizes every delay in steady state)")


if __name__ == "__main__":
    main()
