#!/usr/bin/env python3
"""A client's-eye view of the cluster: through the gateway, end to end.

Everything the other examples do in one interpreter, this one does the
way a real client would — over HTTP.  A four-replica TetraBFT cluster
runs as separate OS processes; the layered gateway (HTTP/WebSocket
handlers → session service → replica connection pool) stands in front
of it; and this script plays three clients:

1. a *writer* submitting transactions through ``POST
   /v1/transactions`` and polling one to quorum commit,
2. a *subscriber* watching commits stream in over the WebSocket, and
3. a *flooder* who burns through its token bucket and collects a 429
   with a ``Retry-After`` hint — the gateway protects the cluster, per
   client, before a single frame reaches a replica mempool.

Finally the script reads executed state back through ``GET
/v1/state/…`` (served from live replica snapshots, no consensus
traffic) and checks the cluster's health summary.

Run:  python examples/gateway_client.py
"""

from __future__ import annotations

import asyncio

from repro.gateway import GatewayConfig, GatewayServer, GatewayService, HTTPClient, WSClient
from repro.net.client import ReplicaPool
from repro.net.cluster import ClusterConfig, cluster_processes


async def demo(specs) -> None:
    n = len(specs)
    pool = ReplicaPool.from_specs(specs, time_scale=0.05)
    await pool.connect()
    service = GatewayService(
        pool,
        GatewayConfig(n=n, rate=5.0, burst=3.0, snapshot_interval=0.0),
    )
    await service.start()
    server = GatewayServer(service)
    await server.start()
    print(f"gateway serving {n} replicas on http://{server.host}:{server.port}")

    # Client 2 first: subscribe before the writes so no commit is missed.
    subscriber = WSClient(server.host, server.port)
    await subscriber.connect()

    writer = HTTPClient(server.host, server.port)
    print("\n-- writer: submitting 3 transactions --")
    for i in range(3):
        response = await writer.request(
            "POST",
            "/v1/transactions",
            payload={"txid": f"demo-{i}", "op": ["incr", "counter", 1]},
            headers={"x-client-id": "writer"},
        )
        body = response.json()
        print(f"  {response.status} txid=demo-{i} status={body['status']}")

    print("\n-- subscriber: commit events over the WebSocket --")
    committed = set()
    while len(committed) < 3:
        event = await asyncio.wait_for(subscriber.next_json(), timeout=30.0)
        assert event is not None, "commit stream closed early"
        committed.add(event["txid"])
        print(
            f"  commit txid={event['txid']} slot={event['slot']} "
            f"acks={event['acks']} latency={event['latency_ms']:.1f}ms"
        )

    status = await writer.request("GET", "/v1/transactions/demo-0")
    body = status.json()
    print(f"\n-- poll: demo-0 is {body['status']} ({body['acks']}/{body['quorum']} acks) --")
    assert body["status"] == "committed"

    print("\n-- flooder: rate=5/s, burst=3 — the 4th rapid submit bounces --")
    flooder = HTTPClient(server.host, server.port)
    for i in range(4):
        response = await flooder.request(
            "POST",
            "/v1/transactions",
            payload={"txid": f"flood-{i}", "op": ["noop"]},
            headers={"x-client-id": "flooder"},
        )
        if response.status == 429:
            error = response.json()["error"]
            print(
                f"  submit {i}: 429 {error['code']}, "
                f"Retry-After {response.headers['retry-after']}s"
            )
        else:
            print(f"  submit {i}: {response.status} accepted")
    assert response.status == 429, "the burst should have been exhausted"

    # Wait until the flooder's accepted txns commit, then read state
    # back from live replica snapshots — no consensus traffic involved.
    while service.metrics()["pending"] > 0:
        await asyncio.sleep(0.05)
    await service.refresh_snapshots()
    read = await writer.request("GET", "/v1/state/counter")
    body = read.json()
    print(
        f"\n-- read path: counter={body['value']} "
        f"(snapshot supported by {body['supported_by']}/{n} replicas) --"
    )
    assert body["value"] == 3  # the writer's three incrs, flood was noops

    health = await writer.request("GET", "/v1/health")
    print(f"-- health: {health.json()} --")

    subscriber.close()
    writer.close()
    flooder.close()
    await asyncio.sleep(0.1)  # let handlers see the EOFs
    await service.stop()
    replies = await pool.collect()
    await server.stop()
    pool.close()
    digests = {reply.state_digest for reply in replies.values()}
    assert len(digests) == 1, "replicas disagree?!"
    print(f"\nall {len(replies)} replicas report state digest {digests.pop()[:16]}…")


def main() -> None:
    config = ClusterConfig(n=4, time_scale=0.05, max_slots=4096)
    with cluster_processes(config) as (specs, _processes):
        asyncio.run(demo(specs))
    print("gateway demo complete: submit, subscribe, rate-limit, read — all over HTTP")


if __name__ == "__main__":
    main()
