#!/usr/bin/env python3
"""Quickstart: single-shot TetraBFT consensus among 4 nodes.

Runs the paper's canonical configuration (n = 4, f = 1) on a
synchronous unit-delay network and prints the decision timeline —
you should see every node decide the first leader's value after
exactly 5 message delays, the headline result of the paper.

Then it crashes the first leader to show the view-change path: a 9Δ
timeout followed by the 7-delay view-change latency of Table 1.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ProtocolConfig, Simulation, TetraBFTNode
from repro.sim import SynchronousDelays, TargetedDropPolicy, silence_nodes


def good_case() -> None:
    print("=== good case: synchronous network, honest leader ===")
    config = ProtocolConfig.create(4)  # n=4, tolerating f=1 Byzantine
    sim = Simulation(SynchronousDelays(1.0))
    for i in range(4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"value-from-{i}"))
    sim.run_until_all_decided()

    for node_id, when in sorted(sim.metrics.latency.decision_times.items()):
        value = sim.metrics.latency.decision_values[node_id]
        print(f"  node {node_id} decided {value!r} at t={when}  (= {when:.0f} message delays)")
    print(f"  messages sent in total: {sim.metrics.messages.total_messages_sent}")
    print()


def crashed_leader() -> None:
    print("=== view change: the view-0 leader is crashed ===")
    config = ProtocolConfig.create(4)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"value-from-{i}"))
    sim.run_until_all_decided(node_ids=[1, 2, 3], until=200)

    timeout = config.view_timeout
    for node_id in (1, 2, 3):
        when = sim.metrics.latency.decision_times[node_id]
        value = sim.metrics.latency.decision_values[node_id]
        print(
            f"  node {node_id} decided {value!r} at t={when} "
            f"(timeout {timeout:.0f} + view-change latency {when - timeout:.0f})"
        )
    print("  (Table 1: TetraBFT's latency with view-change is 7 delays)")


if __name__ == "__main__":
    good_case()
    crashed_leader()
