#!/usr/bin/env python3
"""Surviving Byzantine behaviour: equivocation, forged histories, chaos.

Three scenarios on the n = 4 system (so the single Byzantine node is
exactly the tolerated f = 1):

1. an *equivocating leader* proposes different values to each half of
   the network and votes both ways — within-view quorum intersection
   (Lemma 6) keeps honest nodes from deciding differently;
2. a *history fabricator* answers every view change with forged
   suggest/proof messages — Rules 1–4 only trust claims vouched for by
   a blocking set, so a lone liar can nudge the chosen value but never
   break agreement;
3. a *chaos monkey* sprays random well-formed protocol messages — the
   TLA+ ByzantineHavoc, live.

Each scenario prints the honest nodes' decisions and asserts agreement.

Run:  python examples/byzantine_recovery.py
"""

from __future__ import annotations

from repro import ProtocolConfig, Simulation, TetraBFTNode
from repro.adversary import ChaosMonkey, EquivocatingLeader, HistoryFabricator
from repro.sim import UniformRandomDelays


def run_scenario(title: str, make_byzantine) -> None:
    print(f"=== {title} ===")
    config = ProtocolConfig.create(4)
    sim = Simulation(UniformRandomDelays(0.2, 1.0, seed=11))
    sim.add_node(make_byzantine(config))
    for i in range(1, 4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"honest-{i}"))
    sim.run_until_all_decided(node_ids=[1, 2, 3], until=1500)

    latency = sim.metrics.latency
    for node_id in (1, 2, 3):
        print(
            f"  node {node_id}: decided {latency.decision_values[node_id]!r} "
            f"at t={latency.decision_times[node_id]:.1f}"
        )
    values = {latency.decision_values[i] for i in (1, 2, 3)}
    assert len(values) == 1, f"AGREEMENT BROKEN: {values}"
    print(f"  agreement holds on {values.pop()!r}\n")


if __name__ == "__main__":
    run_scenario(
        "equivocating leader (value A to one half, value B to the other)",
        lambda config: EquivocatingLeader(0, config, "evil-A", "evil-B"),
    )
    run_scenario(
        "history fabricator (forged suggest/proof on every view change)",
        lambda config: HistoryFabricator(0, config, poison_value="poison"),
    )
    run_scenario(
        "chaos monkey (random protocol messages to random nodes)",
        lambda config: ChaosMonkey(
            0, config, values=["honest-1", "honest-2", "junk"], seed=3
        ),
    )
    print("all Byzantine scenarios survived: agreement held in each.")
