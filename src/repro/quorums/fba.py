"""Federated Byzantine Agreement (FBA) quorum systems.

The paper (§1.2) observes that unauthenticated protocols such as
TetraBFT transfer to heterogeneous-trust settings like Stellar's FBA
model, where each participant unilaterally declares *quorum slices* —
sets of participants it is willing to trust as a group — and a quorum
is a set of nodes that contains one slice of each of its members.

This module implements that model:

* :class:`SliceConfig` — per-node slice declarations;
* :class:`FBAQuorumSystem` — a :class:`QuorumSystem` whose
  ``is_quorum`` follows the FBA closure definition and whose
  ``is_blocking`` uses v-blocking sets (a set that intersects every
  slice of the node);
* :func:`validate_fba_system` — checks quorum intersection among the
  discovered quorums (safety precondition).

It is the substrate for the heterogeneous-trust extension example and
tests; the TetraBFT node state machines run unchanged on top of it.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from itertools import combinations

from repro.errors import QuorumSystemError
from repro.quorums.system import NodeId, QuorumSystem


@dataclass(frozen=True)
class SliceConfig:
    """Quorum slices declared by a single node.

    ``slices`` is a set of node sets; every slice should contain the
    declaring node itself (we add it if missing, as stellar-core does).
    """

    node: NodeId
    slices: frozenset[frozenset[NodeId]]

    @classmethod
    def threshold(cls, node: NodeId, peers: Iterable[NodeId], k: int) -> "SliceConfig":
        """Declare "any k of these peers (plus me)" slices.

        This mirrors the common stellar-core configuration style.
        """
        peer_list = sorted(set(peers) - {node})
        if not 0 < k <= len(peer_list):
            raise QuorumSystemError(f"threshold k={k} out of range for {len(peer_list)} peers")
        slices = frozenset(frozenset(combo) | {node} for combo in combinations(peer_list, k))
        return cls(node=node, slices=slices)

    def normalized(self) -> "SliceConfig":
        """Return a copy whose slices all include the declaring node."""
        return SliceConfig(
            node=self.node,
            slices=frozenset(s | {self.node} for s in self.slices),
        )


@dataclass(frozen=True)
class FBAQuorumSystem(QuorumSystem):
    """A quorum system induced by per-node slice declarations.

    A non-empty set ``Q`` is a quorum iff every member of ``Q`` has at
    least one slice fully contained in ``Q``.  A set ``B`` is blocking
    (from the perspective of the whole system, as the homogeneous
    TetraBFT node uses it) iff ``B`` intersects every quorum; we
    compute that against the minimal quorums, which are enumerated once
    at construction for the small systems this library simulates.
    """

    slice_configs: Mapping[NodeId, SliceConfig]
    _minimal_quorums: tuple[frozenset[NodeId], ...] = field(default=(), compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.slice_configs:
            raise QuorumSystemError("FBA system needs at least one slice config")
        normalized = {node: cfg.normalized() for node, cfg in self.slice_configs.items()}
        object.__setattr__(self, "slice_configs", normalized)
        object.__setattr__(self, "_minimal_quorums", tuple(self._enumerate_minimal_quorums()))
        if not self._minimal_quorums:
            raise QuorumSystemError("FBA system admits no quorum at all")

    @classmethod
    def from_slices(cls, configs: Iterable[SliceConfig]) -> "FBAQuorumSystem":
        return cls(slice_configs={cfg.node: cfg for cfg in configs})

    @property
    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self.slice_configs)

    # -- FBA quorum definition -------------------------------------------------

    def _satisfied(self, node: NodeId, candidate: frozenset[NodeId]) -> bool:
        """Does ``candidate`` contain one of ``node``'s slices?"""
        cfg = self.slice_configs.get(node)
        if cfg is None:
            return False
        return any(s <= candidate for s in cfg.slices)

    def _quorum_closure(self, candidate: frozenset[NodeId]) -> frozenset[NodeId]:
        """Greatest subset of ``candidate`` that is a quorum (may be empty).

        Iteratively removes members whose every slice escapes the
        candidate; the fixpoint is the largest quorum inside it.
        """
        current = candidate
        while current:
            survivors = frozenset(p for p in current if self._satisfied(p, current))
            if survivors == current:
                return current
            current = survivors
        return frozenset()

    def is_quorum(self, members: Iterable[NodeId]) -> bool:
        candidate = frozenset(members) & self.nodes
        if not candidate:
            return False
        # A set *contains* a quorum iff its quorum closure is non-empty.
        return bool(self._quorum_closure(candidate))

    def is_blocking(self, members: Iterable[NodeId]) -> bool:
        witness = frozenset(members)
        return all(witness & q for q in self._minimal_quorums)

    def quorum_size(self) -> int:
        return min(len(q) for q in self._minimal_quorums)

    def blocking_size(self) -> int:
        # Smallest hitting set of the minimal quorums; exponential in
        # general, fine at the simulated scales.  Greedy lower bound is
        # not exact, so do exact search over subset sizes.
        universe = sorted(self.nodes)
        for size in range(1, len(universe) + 1):
            for combo in combinations(universe, size):
                if self.is_blocking(combo):
                    return size
        return len(universe)

    def _enumerate_minimal_quorums(self) -> list[frozenset[NodeId]]:
        universe = sorted(self.slice_configs)
        quorums: list[frozenset[NodeId]] = []
        for size in range(1, len(universe) + 1):
            for combo in combinations(universe, size):
                candidate = frozenset(combo)
                if any(q <= candidate for q in quorums):
                    continue  # not minimal
                closure = self._quorum_closure(candidate)
                if closure == candidate:
                    quorums.append(candidate)
        return quorums

    @property
    def minimal_quorums(self) -> tuple[frozenset[NodeId], ...]:
        """The minimal quorums of the system (enumerated eagerly)."""
        return self._minimal_quorums

    def __hash__(self) -> int:
        return hash(frozenset(self.slice_configs.items()))


def validate_fba_system(system: FBAQuorumSystem) -> None:
    """Raise :class:`QuorumSystemError` unless all quorums intersect.

    Quorum intersection is the safety precondition of any FBA
    deployment (and the analogue of ``n > 3f``).  Intersection must be
    checked pairwise over minimal quorums; larger quorums are supersets
    of minimal ones, so this is sufficient.
    """
    minimal = system.minimal_quorums
    for q1, q2 in combinations(minimal, 2):
        if not q1 & q2:
            raise QuorumSystemError(
                f"disjoint quorums {sorted(q1)} and {sorted(q2)}: "
                "this FBA configuration cannot guarantee safety"
            )
