"""Quorum-system abstractions.

TetraBFT (Section 2 of the paper) defines, for ``n > 3f`` nodes:

* a **quorum** is any set of at least ``n - f`` nodes, and
* a **blocking set** is any set of at least ``f + 1`` nodes.

Protocol code never hard-codes those thresholds.  Instead it talks to a
:class:`QuorumSystem`, which answers two questions — "is this set of
witnesses a quorum?" and "is this set a blocking set?" — plus a couple
of structural queries.  This indirection is what lets the same node
state machines run over heterogeneous-trust systems (see
:mod:`repro.quorums.fba`), the adaptation the paper sketches in §1.2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import ConfigurationError

NodeId = int


class QuorumSystem(ABC):
    """Answers quorum / blocking-set membership questions for one node.

    Implementations must be immutable and hashable so protocol state can
    safely share them.
    """

    @property
    @abstractmethod
    def nodes(self) -> frozenset[NodeId]:
        """All node identifiers known to this quorum system."""

    @abstractmethod
    def is_quorum(self, members: Iterable[NodeId]) -> bool:
        """Return ``True`` when ``members`` contains a quorum."""

    @abstractmethod
    def is_blocking(self, members: Iterable[NodeId]) -> bool:
        """Return ``True`` when ``members`` contains a blocking set.

        A blocking set intersects every quorum; equivalently it is a set
        the adversary cannot fully control, so a claim made by a full
        blocking set is vouched for by at least one well-behaved node.
        """

    @abstractmethod
    def quorum_size(self) -> int:
        """Minimum cardinality of a quorum (for sizing and metrics)."""

    @abstractmethod
    def blocking_size(self) -> int:
        """Minimum cardinality of a blocking set."""


@dataclass(frozen=True)
class ThresholdQuorumSystem(QuorumSystem):
    """The classic ``n > 3f`` threshold system used throughout the paper.

    Quorums are the sets of at least ``n - f`` nodes; blocking sets are
    the sets of at least ``f + 1`` nodes.

    >>> qs = ThresholdQuorumSystem.for_nodes(4, f=1)
    >>> qs.is_quorum({0, 1, 2})
    True
    >>> qs.is_blocking({3})
    False
    """

    node_set: frozenset[NodeId]
    f: int

    def __post_init__(self) -> None:
        n = len(self.node_set)
        if self.f < 0:
            raise ConfigurationError(f"f must be non-negative, got {self.f}")
        if n <= 3 * self.f:
            raise ConfigurationError(f"threshold quorum system needs n > 3f, got n={n}, f={self.f}")

    @classmethod
    def for_nodes(cls, n: int, f: int | None = None) -> "ThresholdQuorumSystem":
        """Build the system over node ids ``0..n-1``.

        When ``f`` is omitted, the maximum tolerable ``f = (n - 1) // 3``
        is used (optimal resilience).
        """
        if n < 1:
            raise ConfigurationError(f"need at least one node, got n={n}")
        if f is None:
            f = (n - 1) // 3
        return cls(node_set=frozenset(range(n)), f=f)

    @property
    def n(self) -> int:
        """Total number of nodes."""
        return len(self.node_set)

    @property
    def nodes(self) -> frozenset[NodeId]:
        return self.node_set

    def quorum_size(self) -> int:
        return self.n - self.f

    def blocking_size(self) -> int:
        return self.f + 1

    def is_quorum(self, members: Iterable[NodeId]) -> bool:
        eligible = self.node_set.intersection(members)
        return len(eligible) >= self.quorum_size()

    def is_blocking(self, members: Iterable[NodeId]) -> bool:
        eligible = self.node_set.intersection(members)
        return len(eligible) >= self.blocking_size()


def quorums_intersect(system: QuorumSystem, sample_limit: int = 0) -> bool:
    """Check the quorum-intersection property for threshold systems.

    For a :class:`ThresholdQuorumSystem` this is a closed-form check:
    two sets of size ``n - f`` drawn from ``n`` nodes overlap in at
    least ``n - 2f`` nodes, which exceeds ``f`` precisely when
    ``n > 3f`` — so intersection always contains a well-behaved node.
    For other systems, callers should use the system's own validator
    (e.g. :func:`repro.quorums.fba.validate_fba_system`).

    ``sample_limit`` is accepted for interface compatibility and is
    unused for the closed-form case.
    """
    del sample_limit
    if isinstance(system, ThresholdQuorumSystem):
        return system.n > 3 * system.f
    raise NotImplementedError("closed-form intersection check only available for threshold systems")
