"""Leader nomination for federated settings (paper §1.2, future work).

    "The main difficulty in open heterogeneous settings like FBA is
    assigning a unique leader to each view ... SCP uses a synchronous
    sub-protocol, called the nomination protocol, whose principles
    could be applied to TetraBFT to obtain [/simulate] a unique
    leader."

This module implements the deterministic core of that idea, in the
quasi-permissionless setting this library targets (participant set
known; trust heterogeneous):

* :func:`priority` — a per-(view, node) pseudo-random priority from a
  seeded content hash, the mechanism SCP uses to weight nomination;
* :class:`PriorityLeaderElection` — leader of view ``v`` is the
  maximum-priority member of a candidate set, giving a different,
  unpredictable-but-agreed rotation than round-robin (so a targeted
  adversary cannot precompute a long run of its own views without
  controlling the seed);
* :func:`leader_fn_for` — adapter producing the ``leader_fn`` hook of
  :class:`~repro.core.config.ProtocolConfig`, so the election drops
  into TetraBFT unchanged.

The fully open-membership nomination protocol (candidate value
federated voting) is beyond the paper's own scope — it sketches the
direction; this is the deterministic piece that direction needs.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.config import LeaderFn
from repro.errors import ConfigurationError
from repro.quorums.system import NodeId


def priority(view: int, node: NodeId, seed: bytes = b"tetrabft") -> int:
    """Deterministic pseudo-random priority of ``node`` in ``view``.

    A content hash, not a security primitive: every participant that
    agrees on (seed, view, node) computes the same value, which is all
    unauthenticated leader election needs.
    """
    material = seed + f"|{view}|{node}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class PriorityLeaderElection:
    """Hash-priority leader election over a fixed candidate set."""

    candidates: tuple[NodeId, ...]
    seed: bytes = b"tetrabft"

    def __post_init__(self) -> None:
        if not self.candidates:
            raise ConfigurationError("need at least one leader candidate")
        if len(set(self.candidates)) != len(self.candidates):
            raise ConfigurationError("duplicate leader candidates")

    def leader_of(self, view: int) -> NodeId:
        """The unique maximum-priority candidate for ``view``.

        Ties are impossible in practice (64-bit priorities) but broken
        by node id for determinism anyway.
        """
        return max(self.candidates, key=lambda node: (priority(view, node, self.seed), node))

    def schedule(self, views: int) -> list[NodeId]:
        """The first ``views`` leaders (useful for fairness analysis)."""
        return [self.leader_of(v) for v in range(views)]

    def fairness(self, views: int) -> dict[NodeId, float]:
        """Fraction of the first ``views`` views each candidate leads."""
        schedule = self.schedule(views)
        return {node: schedule.count(node) / views for node in self.candidates}


def leader_fn_for(candidates: Iterable[NodeId], seed: bytes = b"tetrabft") -> LeaderFn:
    """A ``ProtocolConfig.leader_fn`` from hash-priority election."""
    election = PriorityLeaderElection(tuple(sorted(set(candidates))), seed=seed)
    return election.leader_of


@dataclass
class NominationRound:
    """One round of SCP-style nomination bookkeeping (simplified).

    Participants *nominate* the highest-priority candidates they know;
    a candidate is *confirmed* once a blocking set nominated it.  With
    a known candidate set and the deterministic :func:`priority`, all
    well-behaved participants converge on the same confirmed leader —
    the property TetraBFT needs from the sub-protocol.
    """

    view: int
    blocking_size: int
    seed: bytes = b"tetrabft"
    nominations: dict[NodeId, NodeId] = field(default_factory=dict)

    def nominate(self, participant: NodeId, candidates: Sequence[NodeId]) -> NodeId:
        """Record ``participant``'s nomination (its top-priority candidate)."""
        if not candidates:
            raise ConfigurationError("cannot nominate from an empty candidate set")
        choice = max(candidates, key=lambda node: (priority(self.view, node, self.seed), node))
        self.nominations[participant] = choice
        return choice

    def confirmed_leader(self) -> NodeId | None:
        """The candidate nominated by a blocking set, if any."""
        counts: dict[NodeId, int] = {}
        for choice in self.nominations.values():
            counts[choice] = counts.get(choice, 0) + 1
        for candidate, count in sorted(counts.items()):
            if count >= self.blocking_size:
                return candidate
        return None
