"""Quorum-system substrate (classic threshold and FBA heterogeneous trust)."""

from repro.quorums.fba import FBAQuorumSystem, SliceConfig, validate_fba_system
from repro.quorums.system import (
    NodeId,
    QuorumSystem,
    ThresholdQuorumSystem,
    quorums_intersect,
)

__all__ = [
    "FBAQuorumSystem",
    "NodeId",
    "QuorumSystem",
    "SliceConfig",
    "ThresholdQuorumSystem",
    "quorums_intersect",
    "validate_fba_system",
]
