"""The ``ReplicaStorage`` seam: what a replica persists, behind a protocol.

A :class:`~repro.smr.replica.Replica` is storage-agnostic: it calls one
narrow hook per executed block and flush/close at shutdown, and asks
``recover()`` once before joining consensus.  What those calls durably
record — nothing (:class:`MemoryStorage`, the default: today's
all-in-memory behavior, exactly) or a WAL + snapshot pair
(:class:`~repro.storage.disk.DiskStorage`) — is the implementation's
business.  The seam mirrors the consensus-engine boundary in
:mod:`repro.smr.engine`: a :class:`typing.Protocol`, structural, with
the replica owning the hooks and the storage owning every file-format
decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multishot.block import Block
    from repro.smr.replica import Replica


@dataclass(frozen=True)
class RecoveredState:
    """What ``recover()`` reconstructed from disk.

    ``chain`` is the finalized prefix to bootstrap consensus with
    (snapshot chain extended by the intact, linking WAL suffix);
    ``snapshot_slot`` is how far the snapshot alone reached (0 when
    recovery ran WAL-only); ``wal_blocks`` counts blocks contributed by
    WAL replay; ``state_digest`` is the snapshot's recorded executed
    -state digest at ``snapshot_slot`` (``""`` without a snapshot);
    ``torn_tail`` records that the WAL ended in a torn/corrupt record
    that replay deliberately stopped at (expected after a crash inside
    the fsync window — the lost tail is re-fetched from peers).
    """

    chain: tuple
    snapshot_slot: int
    wal_blocks: int
    state_digest: str = ""
    torn_tail: bool = False

    @property
    def tip_slot(self) -> int:
        return self.chain[-1].slot if self.chain else 0


@runtime_checkable
class ReplicaStorage(Protocol):
    """Structural interface of a replica's durability layer."""

    def recover(self) -> RecoveredState | None:
        """Reconstruct persisted state, or ``None`` when there is none.

        Called once, before the replica starts consensus; the caller
        bootstraps its engine from the returned chain.
        """

    def block_executed(self, block: "Block", replica: "Replica") -> None:
        """One finalized block was just executed, in chain order.

        Called after the block's transactions are applied, so
        ``replica.store`` reflects the state *including* this block.
        Not called for blocks replayed during recovery bootstrap.
        """

    def flush(self) -> None:
        """Force every buffered record durable now."""

    def close(self) -> None:
        """Flush and release file handles; the storage is done."""


class MemoryStorage:
    """The default: persist nothing, recover nothing.

    Every hook is a no-op, so a replica built without a data dir runs
    byte-identically to the pre-storage code path.
    """

    def recover(self) -> RecoveredState | None:
        return None

    def block_executed(self, block: "Block", replica: "Replica") -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass
