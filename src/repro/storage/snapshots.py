"""Replica state snapshots: one self-validating file, atomically replaced.

A snapshot is a single :class:`~repro.net.codec.SnapshotImage` frame —
the wire codec again, so the file format is deterministic, versioned,
and rejects truncation the same way the WAL does.  It carries the
*full* finalized chain, not just the tip: after WAL compaction the
snapshot is the only copy of the compacted prefix, and recovery must be
able to rebuild the executed state by replaying it (blocks carry their
transactions, so replay reconstitutes the kvstore, the dedup ledger,
and the applied-txid frontier in one pass through the replica's normal
execution path).

Writes follow the ``merge_record`` discipline — temp file in the same
directory, ``fsync``, ``os.replace``, directory ``fsync`` — so readers
see either the old complete snapshot or the new complete snapshot,
never a torn one.  Loads validate before trusting: the frame must
decode, the chain must hash-link from genesis with recomputed digests,
and the recorded state digest must match one recomputed from the
kv image + applied frontier.  Anything less comes back as ``None`` and
recovery falls through to the WAL (and, ultimately, peer state
transfer).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

from repro.multishot.block import GENESIS_DIGEST, Block, _compute_digest
from repro.net.codec import WIRE_CODEC, CodecError, SnapshotImage

#: Snapshot file name inside a replica's data dir.
SNAPSHOT_NAME = "snapshot.bin"


def state_digest_of(kv_items: tuple, applied_txids: tuple) -> str:
    """The :meth:`~repro.smr.kvstore.KVStore.state_digest` a store with
    exactly this image would report (same material, byte for byte)."""
    material = repr(sorted(kv_items)) + "|" + repr(list(applied_txids))
    return hashlib.sha256(material.encode()).hexdigest()[:16]


def snapshot_image(chain: tuple, kv_items: tuple, applied_txids: tuple) -> SnapshotImage:
    """Build the image for ``chain`` + executed state (tip fields derived)."""
    tip = chain[-1]
    return SnapshotImage(
        tip_slot=tip.slot,
        tip_digest=tip.digest,
        state_digest=state_digest_of(kv_items, applied_txids),
        applied_txids=tuple(applied_txids),
        kv_items=tuple(kv_items),
        chain=tuple(chain),
    )


def write_snapshot(path: str | Path, image: SnapshotImage) -> None:
    """Atomically replace ``path`` with ``image`` (temp + ``os.replace``)."""
    path = Path(path)
    payload = WIRE_CODEC.encode_frame(image)
    fd, tmp_path = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def validate_snapshot(image: SnapshotImage) -> bool:
    """Whether ``image`` is internally consistent (see module docs)."""
    chain = image.chain
    if not chain or image.tip_slot != chain[-1].slot or image.tip_digest != chain[-1].digest:
        return False
    parent = GENESIS_DIGEST
    expected_slot = 1
    for block in chain:
        if not isinstance(block, Block):
            return False
        if block.slot != expected_slot or block.parent != parent:
            return False
        if _compute_digest(block.slot, block.parent, block.payload) != block.digest:
            return False
        parent = block.digest
        expected_slot += 1
    return state_digest_of(image.kv_items, image.applied_txids) == image.state_digest


def load_snapshot(path: str | Path) -> SnapshotImage | None:
    """The latest valid snapshot at ``path``, or ``None``.

    Missing file, partial/garbled frame, wrong frame type, or failed
    validation all degrade to ``None`` — a bad snapshot must never be
    worse than no snapshot.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return None
    if len(data) < 4:
        return None
    try:
        image = WIRE_CODEC.decode(data[4:])
    except CodecError:
        return None
    if not isinstance(image, SnapshotImage) or not validate_snapshot(image):
        return None
    return image
