"""Per-replica durability behind the :class:`ReplicaStorage` protocol.

See :mod:`repro.storage.api` for the seam, :mod:`repro.storage.wal` and
:mod:`repro.storage.snapshots` for the two file formats, and
:mod:`repro.storage.disk` for the durable implementation that combines
them.  :class:`MemoryStorage` is the default (persist nothing — the
historical behavior, byte for byte).

The disk-backed names are resolved lazily (PEP 562): their modules
serialize through :mod:`repro.net.codec`, and importing that eagerly
from here would close an import cycle (``smr.replica`` → this package →
``disk`` → ``net`` → ``replica_main`` → ``smr.replica``).  The protocol
seam and :class:`MemoryStorage` — all the core ``smr`` layer needs —
stay eager and codec-free.
"""

from importlib import import_module

from repro.storage.api import MemoryStorage, RecoveredState, ReplicaStorage

#: name → submodule holding it, for lazy resolution.
_LAZY = {
    "DiskStorage": "repro.storage.disk",
    "WAL_NAME": "repro.storage.disk",
    "SNAPSHOT_NAME": "repro.storage.snapshots",
    "load_snapshot": "repro.storage.snapshots",
    "snapshot_image": "repro.storage.snapshots",
    "state_digest_of": "repro.storage.snapshots",
    "validate_snapshot": "repro.storage.snapshots",
    "write_snapshot": "repro.storage.snapshots",
    "WriteAheadLog": "repro.storage.wal",
    "read_wal": "repro.storage.wal",
}

__all__ = [
    "DiskStorage",
    "MemoryStorage",
    "RecoveredState",
    "ReplicaStorage",
    "SNAPSHOT_NAME",
    "WAL_NAME",
    "WriteAheadLog",
    "load_snapshot",
    "read_wal",
    "snapshot_image",
    "state_digest_of",
    "validate_snapshot",
    "write_snapshot",
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module), name)
    globals()[name] = value  # cache: __getattr__ runs once per name
    return value
