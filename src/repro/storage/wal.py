"""Append-only write-ahead log of finalized blocks, fsync-batched.

The on-disk format is the wire codec, verbatim: the file is a stream of
length-prefixed :class:`~repro.net.codec.WalAppend` /
:class:`~repro.net.codec.WalSeal` frames, so the WAL inherits the
codec's determinism, versioning, and — the property recovery leans on —
torn-tail detection: a crash mid-write leaves a partial trailing frame
that fails the length/decode checks exactly like a truncated TCP
stream, and :func:`read_wal` stops at the last intact record.

Durability is group-committed.  Appends accumulate in a buffer; the
buffer goes to disk (write + ``fsync``) when either

* the pending count reaches the flush policy's limit — the same
  deterministic :class:`~repro.multishot.batching.AdaptiveBatchPolicy`
  controller the message plane uses, sizing the group to the observed
  commit rate (a quiet replica fsyncs every block, a busy one amortizes
  one fsync over a burst), or
* the flush window expires (an event-loop timer armed at first append;
  without a running loop — unit tests, synchronous callers — the
  policy limit and explicit :meth:`WriteAheadLog.flush` calls are the
  only triggers).

A crash loses at most the unflushed tail — bounded by the window — and
consensus recovers that delta from peers; what fsync acknowledged is
what :func:`read_wal` returns.
"""

from __future__ import annotations

import asyncio
import os
import struct
import tempfile
from pathlib import Path

from repro.multishot.batching import AdaptiveBatchPolicy
from repro.multishot.block import Block
from repro.net.codec import MAX_FRAME, WIRE_CODEC, CodecError, WalAppend, WalSeal

_U32 = struct.Struct(">I")

#: Flush-group bounds: the policy may shrink to fsync-per-record on a
#: quiet log and grow to amortizing one fsync over 64 records when
#: finalizations arrive in bursts.
WAL_FLUSH_LO = 1
WAL_FLUSH_HI = 64
WAL_FLUSH_START = 8


def read_wal(path: str | Path) -> tuple[list[WalAppend | WalSeal], bool]:
    """Every intact record in ``path``, plus whether the tail was torn.

    Reads stop at the first record that is truncated, fails to decode,
    or is not a WAL record type — everything before it is trusted
    (it was fsynced as a prefix), everything at and after it is
    discarded.  A missing file is an empty, untorn log.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return [], False
    records: list[WalAppend | WalSeal] = []
    pos = 0
    torn = False
    while len(data) - pos >= 4:
        (length,) = _U32.unpack_from(data, pos)
        if length > MAX_FRAME or len(data) - pos - 4 < length:
            torn = True
            break
        try:
            message = WIRE_CODEC.decode(data[pos + 4 : pos + 4 + length])
        except CodecError:
            torn = True
            break
        if not isinstance(message, (WalAppend, WalSeal)):
            torn = True
            break
        records.append(message)
        pos += 4 + length
    if pos < len(data) and not torn:
        torn = True  # trailing partial length word
    return records, torn


class WriteAheadLog:
    """One replica's append-only log file, group-committed."""

    def __init__(
        self,
        path: str | Path,
        fsync_window: float = 0.005,
        policy: AdaptiveBatchPolicy | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync_window = fsync_window
        self.policy = policy or AdaptiveBatchPolicy(
            lo=WAL_FLUSH_LO, hi=WAL_FLUSH_HI, start=WAL_FLUSH_START
        )
        self.next_seq = 1
        #: Cumulative groups/records/bytes fsynced (observability).
        self.flushes = 0
        self.records_written = 0
        self.bytes_written = 0
        self._pending = bytearray()
        self._pending_count = 0
        self._timer: asyncio.TimerHandle | None = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")

    # -- appending ------------------------------------------------------------

    def append_block(self, block: Block) -> WalAppend:
        """Log one finalized block; durable after the next group commit."""
        record = WalAppend(seq=self.next_seq, block=block)
        self.next_seq += 1
        self._append(record)
        return record

    def seal(self, upto_slot: int, state_digest: str) -> WalSeal:
        """Write a snapshot checkpoint marker and force it durable.

        The seal must not linger in the buffer: the caller is about to
        compact against it, and a compaction racing an unflushed seal
        would drop records the log never promised were covered.
        """
        record = WalSeal(seq=self.next_seq, upto_slot=upto_slot, state_digest=state_digest)
        self.next_seq += 1
        self._append(record)
        self.flush()
        return record

    def _append(self, record: WalAppend | WalSeal) -> None:
        WIRE_CODEC.encode_frame_into(record, self._pending)
        self._pending_count += 1
        if self._pending_count >= self.policy.limit:
            self.flush()
        elif self._timer is None:
            self._arm_timer()

    def _arm_timer(self) -> None:
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # synchronous caller: policy limit / explicit flush
        self._timer = loop.call_later(self.fsync_window, self._on_window)

    def _on_window(self) -> None:
        self._timer = None
        self.flush()

    # -- durability -----------------------------------------------------------

    def flush(self) -> None:
        """Write and fsync everything pending (no-op when empty)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending_count:
            return
        self.policy.observe(self._pending_count)
        self._file.write(self._pending)
        self._file.flush()
        os.fsync(self._file.fileno())
        self.flushes += 1
        self.records_written += self._pending_count
        self.bytes_written += len(self._pending)
        self._pending.clear()
        self._pending_count = 0

    def close(self) -> None:
        self.flush()
        self._file.close()

    # -- compaction -----------------------------------------------------------

    def compact(self, keep_above_slot: int, seal: WalSeal) -> None:
        """Atomically rewrite the log: ``seal`` plus every durable
        append above the snapshot frontier.

        The rewrite goes through a temp file + ``os.replace`` (the
        ``merge_record`` discipline), so a crash mid-compaction leaves
        either the old complete log or the new complete log — never a
        half-truncated one.  Only fsynced records are considered;
        :meth:`seal` flushed immediately before, so nothing eligible is
        pending.
        """
        self.flush()
        records, _torn = read_wal(self.path)
        survivors: list[WalAppend | WalSeal] = [seal]
        survivors.extend(
            r for r in records if isinstance(r, WalAppend) and r.block.slot > keep_above_slot
        )
        buf = bytearray()
        for record in survivors:
            WIRE_CODEC.encode_frame_into(record, buf)
        self._file.close()
        fd, tmp_path = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(buf)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        finally:
            self._file = open(self.path, "ab")
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
