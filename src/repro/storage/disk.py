"""``DiskStorage``: the WAL + snapshot pair behind one data directory.

Layout of a replica's data dir::

    <data_dir>/
        wal.log        append-only WalAppend/WalSeal frames (codec format)
        snapshot.bin   one SnapshotImage frame, atomically replaced

Write path: every executed block is appended to the WAL (durable after
the group commit); every ``snapshot_interval`` blocks the full replica
state is snapshotted, a seal is forced into the WAL, and the WAL is
compacted down to the records above the snapshot frontier — steady
-state disk usage is one snapshot plus one interval of log.

Recovery path (:meth:`DiskStorage.recover`): load the latest *valid*
snapshot (an invalid one degrades to none), then extend its chain with
every intact, hash-linking ``WalAppend`` above the frontier, stopping
at the first torn or non-linking record.  The result is the longest
locally provable finalized prefix; whatever the crash window lost on
top of it is re-fetched from peers by the replica's catch-up loop.
"""

from __future__ import annotations

from pathlib import Path

from repro.multishot.batching import AdaptiveBatchPolicy
from repro.multishot.block import GENESIS_DIGEST, _compute_digest
from repro.net.codec import WalAppend
from repro.storage.api import RecoveredState
from repro.storage.snapshots import (
    SNAPSHOT_NAME,
    load_snapshot,
    snapshot_image,
    write_snapshot,
)
from repro.storage.wal import WriteAheadLog, read_wal

#: WAL file name inside a replica's data dir.
WAL_NAME = "wal.log"


class DiskStorage:
    """Durable :class:`~repro.storage.api.ReplicaStorage` over one dir."""

    def __init__(
        self,
        data_dir: str | Path,
        wal_fsync_window: float = 0.005,
        snapshot_interval: int = 32,
        policy: AdaptiveBatchPolicy | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.snapshot_path = self.data_dir / SNAPSHOT_NAME
        self.snapshot_interval = snapshot_interval
        self.wal = WriteAheadLog(
            self.data_dir / WAL_NAME, fsync_window=wal_fsync_window, policy=policy
        )
        self._since_snapshot = 0
        self._snapshot_slot = 0
        #: Blocks handed back by the last :meth:`recover` (evidence the
        #: restart replayed local state; reported in CollectReply).
        self.recovered_blocks = 0
        #: Snapshots written (and WAL compactions performed — one per
        #: snapshot) over this storage's lifetime; the snapshot-cadence
        #: signal the obs registry exports.
        self.snapshots_taken = 0
        self.compactions = 0

    # -- recovery -------------------------------------------------------------

    def recover(self) -> RecoveredState | None:
        image = load_snapshot(self.snapshot_path)
        chain = list(image.chain) if image is not None else []
        snapshot_slot = image.tip_slot if image is not None else 0
        records, torn = read_wal(self.wal.path)
        max_seq = 0
        wal_blocks = 0
        for record in records:
            max_seq = max(max_seq, record.seq)
            if not isinstance(record, WalAppend):
                continue  # a seal carries no chain data
            block = record.block
            tip_slot = chain[-1].slot if chain else 0
            if block.slot <= tip_slot:
                continue  # below the frontier: covered by the snapshot
            tip_digest = chain[-1].digest if chain else GENESIS_DIGEST
            if (
                block.slot != tip_slot + 1
                or block.parent != tip_digest
                or _compute_digest(block.slot, block.parent, block.payload) != block.digest
            ):
                # A gap or corrupt body: nothing after it is provable
                # from local state alone.
                torn = True
                break
            chain.append(block)
            wal_blocks += 1
        self.wal.next_seq = max_seq + 1
        self._snapshot_slot = snapshot_slot
        self._since_snapshot = wal_blocks
        if not chain:
            return None
        self.recovered_blocks = len(chain)
        return RecoveredState(
            chain=tuple(chain),
            snapshot_slot=snapshot_slot,
            wal_blocks=wal_blocks,
            state_digest=image.state_digest if image is not None else "",
            torn_tail=torn,
        )

    # -- write path -----------------------------------------------------------

    def block_executed(self, block, replica) -> None:
        self.wal.append_block(block)
        self._since_snapshot += 1
        if self._since_snapshot >= self.snapshot_interval:
            self.take_snapshot(replica)

    def take_snapshot(self, replica) -> None:
        """Snapshot ``replica``'s full state now, then compact the WAL."""
        chain = tuple(replica.finalized_chain)
        if not chain:
            return
        image = snapshot_image(
            chain,
            tuple(replica.store.items()),
            tuple(replica.store.applied_txids),
        )
        write_snapshot(self.snapshot_path, image)
        seal = self.wal.seal(image.tip_slot, image.state_digest)
        self.wal.compact(image.tip_slot, seal)
        self._snapshot_slot = image.tip_slot
        self._since_snapshot = 0
        self.snapshots_taken += 1
        self.compactions += 1

    def flush(self) -> None:
        self.wal.flush()

    def publish_metrics(self, registry) -> None:
        """Write the durability counters into an obs registry.

        ``storage.fsyncs`` / ``storage.wal_bytes`` are the WAL's group
        commits and appended bytes; ``storage.snapshots`` /
        ``storage.compactions`` the snapshot cadence;
        ``storage.since_snapshot`` how deep into the current interval
        the replica is (a live gauge — together with the snapshot
        counter it reconstructs the cadence).
        """
        registry.counter("storage.fsyncs").set(self.wal.flushes)
        registry.counter("storage.wal_records").set(self.wal.records_written)
        registry.counter("storage.wal_bytes").set(self.wal.bytes_written)
        registry.counter("storage.snapshots").set(self.snapshots_taken)
        registry.counter("storage.compactions").set(self.compactions)
        registry.counter("storage.recovered_blocks").set(self.recovered_blocks)
        registry.gauge("storage.since_snapshot").set(self._since_snapshot)
        registry.gauge("storage.snapshot_slot").set(self._snapshot_slot)

    def close(self) -> None:
        self.wal.close()
