"""Command-line entry point: ``python -m repro <experiment>``.

Dispatches to the evaluation harness so every paper artifact can be
regenerated without remembering module paths:

    python -m repro table1
    python -m repro fig2
    python -m repro smr
    python -m repro engines
    python -m repro all

``smr`` is the end-to-end state-machine-replication experiment: full
replica clusters under the seeded Uniform/Bursty/HotKey workloads and
the sync/geo/crash-recovery network scenarios, reporting client-observed
commit latency percentiles and commit throughput.

``engines`` is the cross-protocol matrix: the same SMR client path run
over every pluggable consensus engine — pipelined TetraBFT (the
reference), plus PBFT, IT-HotStuff and Li et al. as multi-slot chained
engines — one latency/throughput row per engine × workload cell.  The
default run is the tier-1 smoke slice (sync network, n=4); set
``REPRO_HEAVY=1`` for the full engine × workload × scenario × n grid.

``attacks`` is the Byzantine campaign: every engine attacked by every
deviation family (silence, crash/recover, equivocation, vote
withholding, history fabrication, chaos) with f faulty replicas, each
run audited post hoc by the SafetyAuditor and the verdicts persisted
to ``BENCH_attacks.json``.  Same smoke/heavy split as ``engines``.

``net`` is the deployment experiment: one OS process per replica,
every protocol message serialized through the versioned wire codec and
carried over TCP sockets, with wall-clock client latency/throughput
and a post-run safety audit of the collected chains and state digests
(``BENCH_net.json``).  The smoke slice is n=4 on localhost (lan +
crash + a cheap capacity-bound cell exercising adaptive batching and
delayed flush); ``REPRO_HEAVY=1`` adds n=7, the geo latency matrix,
the chained baseline engines, and the capacity cells at both sizes.

``gateway`` is the client-plane experiment: the layered gateway
service (HTTP/WebSocket handlers → admission/batching/subscription
session service → the shared replica connection pool) deployed in
front of a real cluster and driven *open-loop* — seeded Poisson
arrivals at a ramp of offered rates from hundreds of logical clients,
reporting gateway-observed commit latency percentiles and the
saturation point, with every run's collected chains replayed through
the SafetyAuditor (``BENCH_gateway.json``).  ``REPRO_HEAVY=1`` widens
the ramp to n ∈ {4, 7} with 2000 clients.

Exit status: 0 on success (including ``-h``/``--help``), 1 on bad
usage or an unknown experiment name.
"""

from __future__ import annotations

import sys

from repro.eval import attacks, engine_matrix, fig1_lemmas, fig2_pipeline
from repro.eval import fig3_viewchange, gateway_bench, hardening_ablation
from repro.eval import net_bench, obs_live, responsiveness, scaling, smr_bench
from repro.eval import table1, timeout_ablation, verification_run

EXPERIMENTS = {
    "table1": (table1.main, "Table 1 — protocol comparison"),
    "fig1": (fig1_lemmas.main, "Figure 1 — liveness lemma chain"),
    "fig2": (fig2_pipeline.main, "Figure 2 — pipelined good case"),
    "fig3": (fig3_viewchange.main, "Figure 3 — multi-shot view change"),
    "verification": (verification_run.main, "Section 5 — formal verification"),
    "scaling": (scaling.main, "A1 — communication scaling"),
    "responsiveness": (responsiveness.main, "A2 — optimistic responsiveness"),
    "timeout": (timeout_ablation.main, "A3 — 9Δ timeout justification"),
    "hardening": (hardening_ablation.main, "Ablation — liveness hardening"),
    "smr": (smr_bench.main, "A4 — SMR client latency / throughput"),
    "engines": (engine_matrix.main, "A5 — cross-engine SMR matrix"),
    "attacks": (attacks.main, "A6 — Byzantine campaign over the engines"),
    "net": (net_bench.main, "A7 — deployed clusters over TCP"),
    "gateway": (gateway_bench.main, "A8 — client gateway under open-loop load"),
    "obs": (obs_live.main, "Live in-band metrics scrape of a deployed cluster"),
}


def usage() -> str:
    lines = ["usage: python -m repro <experiment>", "", "experiments:"]
    for name, (_fn, description) in EXPERIMENTS.items():
        lines.append(f"  {name:15s} {description}")
    lines.append(f"  {'all':15s} run every experiment in sequence")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if any(arg in ("-h", "--help") for arg in args):
        # Asking for help is not an error.
        print(usage())
        return 0
    if len(args) != 1:
        print(usage(), file=sys.stderr)
        return 1
    name = args[0]
    if name == "all":
        for key, (fn, description) in EXPERIMENTS.items():
            print(f"\n##### {key}: {description} #####")
            fn()
        return 0
    if name not in EXPERIMENTS:
        print(f"unknown experiment {name!r}\n\n{usage()}", file=sys.stderr)
        return 1
    EXPERIMENTS[name][0]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
