"""Wire codec: deterministic, versioned, length-prefixed binary frames.

The simulation passes message dataclasses between nodes as Python
references; crossing a process boundary needs bytes.  This module is
the single place the byte format is defined, with three properties the
deployment subsystem leans on:

* **Explicit registration** — every message class that may cross the
  wire is registered under a stable numeric type id.  Encoding an
  unregistered type is a hard :class:`CodecError`, never a silent
  pickle fallback: the wire surface of the protocol stays enumerable,
  auditable, and free of arbitrary-code-execution deserialization.
* **Determinism** — the same message object always encodes to the same
  bytes (fields are written in dataclass declaration order with a
  tag-based value encoding), so encode→decode round-trips are
  byte-stable and frames can be hashed for trace comparison.
* **Versioning** — every frame carries a magic byte and a format
  version; a mismatch is a hard error rather than a garbled decode, so
  rolling a cluster across incompatible builds fails loudly.

Frame layout (all integers big-endian)::

    [u32 length] [u8 magic] [u8 version] [u16 type id] [payload]

where ``length`` counts everything after the length word.  The payload
is the message's fields, each encoded with a one-byte tag:

    ``N`` None · ``T``/``F`` bool · ``I`` 64-bit int · ``J`` big int ·
    ``D`` float · ``S`` str · ``B`` bytes · ``U`` tuple ·
    ``P`` :class:`~repro.core.values.Phase` · ``C`` registered dataclass

Sets, dicts and unregistered objects are rejected: their iteration
order (or identity) would break byte stability.

:func:`wire_codec` builds the default registry covering every
wire-crossing dataclass in :mod:`repro.core.messages`,
:mod:`repro.multishot.messages`, the baseline engines, and the net
layer's own control frames; :data:`WIRE_CODEC` is the shared instance.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, fields, is_dataclass

from repro.core.values import Phase
from repro.errors import ReproError

#: Bumped whenever the frame layout or a registered message's field set
#: changes incompatibly.  Decoders reject every other version.
#: v2: VoteBatch envelope registered; CollectReply gained the
#: frames_in/messages_in counters the bench layer reports.
#: v3: CollectReply gained cpu_seconds/run_seconds (the capacity cell's
#: busy-duty evidence) and per-peer delayed-flush counters.
#: v4: CollectReply gained recovered_blocks (restart-from-disk
#: evidence); the durability frames (StateTransfer*, Wal*, Snapshot
#: Image) registered.
#: v5: in-band scraping — MetricsRequest/MetricsReply registered, and
#: CollectReply's hand-rolled counter tail (frames_in, messages_in,
#: cpu_seconds, run_seconds, flush_stats, recovered_blocks) collapsed
#: into one sorted ``metrics`` payload of (name, value) pairs drawn
#: from the replica's obs registry.
WIRE_VERSION = 5

#: First byte of every frame body; guards against a stray TCP client.
MAGIC = 0xB7

#: Upper bound on a single frame's body size.  A CollectReply carrying
#: a long finalized chain is the largest legitimate frame; 32 MiB is
#: orders of magnitude above it and still small enough to fail fast on
#: a corrupt length word.
MAX_FRAME = 32 * 1024 * 1024

_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Shared zero blocks: extending a bytearray from these allocates no new
# objects, after which ``pack_into`` writes the scalar in place — the
# struct-packed hot path that replaced the old list-of-bytes encoder.
_ZERO2 = bytes(2)
_ZERO4 = bytes(4)
_ZERO8 = bytes(8)


class CodecError(ReproError):
    """A message could not be encoded or a frame could not be decoded.

    Raised for unregistered message types, unknown type ids, magic or
    version mismatches, truncated or oversized frames, trailing bytes,
    and values outside the deterministic encodable set.
    """


class _Reader:
    """Cursor over one frame body; every read checks bounds.

    Works over ``bytes`` or a ``memoryview`` — the frame buffer hands
    decode a zero-copy view into its reassembly buffer, so per-frame
    body copies disappear from the socket hot path.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes | memoryview) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int):
        end = self.pos + count
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {count} bytes at offset {self.pos}, "
                f"have {len(self.data) - self.pos}"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    @property
    def exhausted(self) -> bool:
        return self.pos == len(self.data)


class WireCodec:
    """An explicit message-type registry plus the frame encoder/decoder."""

    def __init__(self) -> None:
        self._id_by_type: dict[type, int] = {}
        self._type_by_id: dict[int, type] = {}
        self._fields_by_type: dict[type, tuple[str, ...]] = {}

    # -- registry -------------------------------------------------------------

    def register(self, type_id: int, cls: type) -> None:
        """Register ``cls`` (a dataclass) under ``type_id``.

        Registration is explicit and collision-checked: the wire format
        is a contract, not a reflection of whatever happens to import.
        """
        if not is_dataclass(cls):
            raise CodecError(f"only dataclasses can cross the wire, got {cls!r}")
        if type_id in self._type_by_id:
            raise CodecError(
                f"type id {type_id} already registered to "
                f"{self._type_by_id[type_id].__name__}"
            )
        if cls in self._id_by_type:
            raise CodecError(f"{cls.__name__} already registered")
        if not 0 <= type_id <= 0xFFFF:
            raise CodecError(f"type id must fit in 16 bits, got {type_id}")
        self._id_by_type[cls] = type_id
        self._type_by_id[type_id] = cls
        self._fields_by_type[cls] = tuple(f.name for f in fields(cls))

    @property
    def registered_types(self) -> tuple[type, ...]:
        """Every registered class, in type-id order."""
        return tuple(self._type_by_id[i] for i in sorted(self._type_by_id))

    def type_id_of(self, cls: type) -> int:
        type_id = self._id_by_type.get(cls)
        if type_id is None:
            raise CodecError(
                f"message type {cls.__name__} is not registered with the wire "
                "codec; register it explicitly (unregistered types are a hard "
                "error by design)"
            )
        return type_id

    # -- encoding -------------------------------------------------------------

    def encode(self, message: object) -> bytes:
        """One frame body (magic + version + type id + payload)."""
        buf = bytearray()
        self._encode_body_into(message, buf)
        return bytes(buf)

    def encode_frame(self, message: object) -> bytes:
        """A full length-prefixed frame, ready for a stream socket."""
        buf = bytearray()
        self.encode_frame_into(message, buf)
        return bytes(buf)

    def encode_frame_into(self, message: object, buf: bytearray) -> None:
        """Append one length-prefixed frame to ``buf``.

        The transport builds a whole flush's worth of frames into a
        single buffer this way and hands the socket one write — the
        ``writev``-style path that replaces per-frame ``bytes``
        concatenation.
        """
        start = len(buf)
        buf.extend(_ZERO4)
        self._encode_body_into(message, buf)
        length = len(buf) - start - 4
        if length > MAX_FRAME:
            raise CodecError(f"frame body of {length} bytes exceeds MAX_FRAME")
        _U32.pack_into(buf, start, length)

    def _encode_body_into(self, message: object, buf: bytearray) -> None:
        type_id = self.type_id_of(type(message))
        pos = len(buf)
        buf.append(MAGIC)
        buf.append(WIRE_VERSION)
        buf.extend(_ZERO2)
        _U16.pack_into(buf, pos + 2, type_id)
        for name in self._fields_by_type[type(message)]:
            self._encode_value(getattr(message, name), buf)

    def _encode_value(self, value: object, buf: bytearray) -> None:
        # bool before int: bool is an int subclass.  Scalars are packed
        # in place (append tag, extend a shared zero block, pack_into)
        # rather than joined from per-field bytes objects.
        if value is None:
            buf.append(0x4E)  # N
        elif value is True:
            buf.append(0x54)  # T
        elif value is False:
            buf.append(0x46)  # F
        elif isinstance(value, int) and not isinstance(value, Phase):
            if _I64_MIN <= value <= _I64_MAX:
                pos = len(buf)
                buf.append(0x49)  # I
                buf.extend(_ZERO8)
                _I64.pack_into(buf, pos + 1, value)
            else:
                raw = value.to_bytes((value.bit_length() + 8) // 8, "big", signed=True)
                pos = len(buf)
                buf.append(0x4A)  # J
                buf.extend(_ZERO4)
                _U32.pack_into(buf, pos + 1, len(raw))
                buf.extend(raw)
        elif isinstance(value, float):
            pos = len(buf)
            buf.append(0x44)  # D
            buf.extend(_ZERO8)
            _F64.pack_into(buf, pos + 1, value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            pos = len(buf)
            buf.append(0x53)  # S
            buf.extend(_ZERO4)
            _U32.pack_into(buf, pos + 1, len(raw))
            buf.extend(raw)
        elif isinstance(value, bytes):
            pos = len(buf)
            buf.append(0x42)  # B
            buf.extend(_ZERO4)
            _U32.pack_into(buf, pos + 1, len(value))
            buf.extend(value)
        elif isinstance(value, tuple):
            pos = len(buf)
            buf.append(0x55)  # U
            buf.extend(_ZERO4)
            _U32.pack_into(buf, pos + 1, len(value))
            for item in value:
                self._encode_value(item, buf)
        elif isinstance(value, Phase):
            buf.append(0x50)  # P
            buf.append(value.value)
        elif type(value) in self._id_by_type:
            pos = len(buf)
            buf.append(0x43)  # C
            buf.extend(_ZERO2)
            _U16.pack_into(buf, pos + 1, self._id_by_type[type(value)])
            for name in self._fields_by_type[type(value)]:
                self._encode_value(getattr(value, name), buf)
        else:
            raise CodecError(
                f"value {value!r} of type {type(value).__name__} has no "
                "deterministic wire encoding (register the dataclass, or use "
                "None/bool/int/float/str/bytes/tuple)"
            )

    # -- decoding -------------------------------------------------------------

    def decode(self, body: bytes | memoryview) -> object:
        """Decode one frame body back into its message object.

        Every failure mode is a :class:`CodecError` — including garbled
        value payloads (invalid UTF-8 in a string, an out-of-range
        Phase byte, a dataclass rejecting its field values), which the
        underlying constructors surface as ``ValueError``s.
        """
        try:
            return self._decode_body(body)
        except ValueError as exc:  # UnicodeDecodeError, Phase(...), ...
            raise CodecError(f"garbled frame payload: {exc}") from exc

    def _decode_body(self, body: bytes | memoryview) -> object:
        reader = _Reader(body)
        header = reader.take(2)
        if header[0] != MAGIC:
            raise CodecError(
                f"bad magic byte 0x{header[0]:02x} (expected 0x{MAGIC:02x}): "
                "not a repro wire frame"
            )
        if header[1] != WIRE_VERSION:
            raise CodecError(
                f"wire version mismatch: frame is v{header[1]}, this build "
                f"speaks v{WIRE_VERSION}"
            )
        (type_id,) = _U16.unpack(reader.take(2))
        message = self._decode_struct(type_id, reader)
        if not reader.exhausted:
            raise CodecError(
                f"{len(reader.data) - reader.pos} trailing bytes after "
                f"decoding {type(message).__name__}"
            )
        return message

    def _decode_struct(self, type_id: int, reader: _Reader) -> object:
        cls = self._type_by_id.get(type_id)
        if cls is None:
            raise CodecError(f"unknown wire type id {type_id}")
        values = [self._decode_value(reader) for _ in self._fields_by_type[cls]]
        return cls(*values)

    def _decode_value(self, reader: _Reader) -> object:
        # Tags compare by byte value so the reader can hand back either
        # bytes or memoryview slices; str/bytes payloads materialize an
        # owned object (the view dies when the frame buffer compacts).
        tag = reader.take(1)[0]
        if tag == 0x4E:  # N
            return None
        if tag == 0x54:  # T
            return True
        if tag == 0x46:  # F
            return False
        if tag == 0x49:  # I
            return _I64.unpack(reader.take(8))[0]
        if tag == 0x4A:  # J
            (length,) = _U32.unpack(reader.take(4))
            return int.from_bytes(reader.take(length), "big", signed=True)
        if tag == 0x44:  # D
            return _F64.unpack(reader.take(8))[0]
        if tag == 0x53:  # S
            (length,) = _U32.unpack(reader.take(4))
            return str(reader.take(length), "utf-8")
        if tag == 0x42:  # B
            (length,) = _U32.unpack(reader.take(4))
            return bytes(reader.take(length))
        if tag == 0x55:  # U
            (count,) = _U32.unpack(reader.take(4))
            return tuple(self._decode_value(reader) for _ in range(count))
        if tag == 0x50:  # P
            return Phase(reader.take(1)[0])
        if tag == 0x43:  # C
            (type_id,) = _U16.unpack(reader.take(2))
            return self._decode_struct(type_id, reader)
        raise CodecError(
            f"unknown value tag {bytes((tag,))!r} at offset {reader.pos - 1}"
        )


class FrameBuffer:
    """Reassembles length-prefixed frames from a byte stream.

    Feed it whatever chunks the socket hands you; it yields every
    complete decoded message and buffers the remainder.  A length word
    beyond :data:`MAX_FRAME` is a hard error (a corrupt or hostile
    stream must not make us buffer gigabytes).
    """

    def __init__(self, codec: "WireCodec") -> None:
        self._codec = codec
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[object]:
        """Absorb ``data``; return every message completed by it.

        Complete frame bodies are decoded through a zero-copy
        ``memoryview`` into the reassembly buffer; the buffer is
        compacted once per feed, after every view is released (a live
        view would make the ``bytearray`` resize a ``BufferError``).
        """
        buf = self._buffer
        buf.extend(data)
        messages: list[object] = []
        pos = 0
        available = len(buf)
        view = memoryview(buf)
        try:
            while available - pos >= 4:
                (length,) = _U32.unpack_from(buf, pos)
                if length > MAX_FRAME:
                    raise CodecError(
                        f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
                    )
                if available - pos < 4 + length:
                    break
                body = view[pos + 4 : pos + 4 + length]
                try:
                    messages.append(self._codec.decode(body))
                finally:
                    body.release()
                pos += 4 + length
        finally:
            view.release()
            if pos:
                del buf[:pos]
        return messages


# -- net-layer control frames -------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """First frame on every peer connection: who is dialing."""

    node_id: int


@dataclass(frozen=True)
class ClientSubmit:
    """Client → replica: inject one transaction into the mempool."""

    txn: object  # a repro.smr.mempool.Transaction


@dataclass(frozen=True)
class StartRun:
    """Driver → replica: every process is up, begin consensus."""


@dataclass(frozen=True)
class CommitAck:
    """Replica → client: this replica executed ``txid`` in ``slot``."""

    node_id: int
    txid: str
    slot: int


@dataclass(frozen=True)
class CollectRequest:
    """Driver → replica: report your final state and shut down."""


@dataclass(frozen=True)
class SnapshotRequest:
    """Client → replica: report your current state, keep running.

    The gateway's read path: same :class:`CollectReply` shape as the
    terminal collect, but the replica stays in consensus — reads are
    served from finalized snapshots without touching the protocol.
    """


@dataclass(frozen=True)
class ClientSubmitBatch:
    """Client → replica: inject many transactions in one frame.

    The gateway coalesces concurrent client submissions into one frame
    per replica per flush window — the client-plane counterpart of the
    message plane's VoteBatch envelope (a singleton submission travels
    as the bare :class:`ClientSubmit` instead).
    """

    txns: tuple  # tuple[Transaction, ...]


@dataclass(frozen=True)
class CollectReply:
    """A replica's end-of-run evidence (audit input) plus its metrics.

    The evidence fields (chain, digest, applied txids) feed the
    SafetyAuditor.  Everything the bench layer used to receive as
    parallel hand-rolled fields — frames/messages counters, CPU and
    wall seconds, per-peer flush stats, recovered-block counts — now
    travels as ``metrics``: the replica's obs-registry snapshot, a
    sorted tuple of ``(name, value)`` pairs (see
    :meth:`repro.obs.MetricsRegistry.snapshot_items`).  One payload,
    one shape, shared with :class:`MetricsReply`.
    """

    node_id: int
    chain: tuple  # tuple[Block, ...]
    state_digest: str
    applied_txids: tuple  # tuple[str, ...]
    blocks_applied: int
    txns_applied: int
    metrics: tuple = ()  # tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class MetricsRequest:
    """Client → replica: report your live metrics, keep running.

    The in-band scrape: served on the existing client port like
    :class:`SnapshotRequest`, but cheap — no chain copy, just the
    registry snapshot — so drivers and the gateway can poll it mid-run
    without perturbing consensus.
    """


@dataclass(frozen=True)
class MetricsReply:
    """Replica → client: one obs-registry snapshot.

    ``items`` is the sorted ``(name, value)`` tuple from
    :meth:`repro.obs.MetricsRegistry.snapshot_items`; ``events`` is the
    current depth of the replica's structured-event ring buffer (how
    much forensics a dump would yield).
    """

    node_id: int
    items: tuple = ()  # tuple[tuple[str, float], ...]
    events: int = 0


@dataclass(frozen=True)
class StateTransferRequest:
    """Rejoining replica → peer: send your finalized blocks above
    ``since_slot`` (the requester's local finalized height)."""

    since_slot: int


@dataclass(frozen=True)
class StateTransferReply:
    """Peer → rejoining replica: the requested finalized-chain suffix.

    ``blocks`` is the peer's finalized blocks with slot > the request's
    ``since_slot``, in slot order; ``tip_slot`` is the peer's finalized
    height at reply time (so the requester knows whether another round
    is needed).
    """

    node_id: int
    tip_slot: int
    blocks: tuple  # tuple[Block, ...]


# -- durability records (WAL / snapshot file formats) -------------------------
#
# The on-disk formats of repro.storage reuse this codec verbatim: a WAL
# is a stream of length-prefixed WalAppend/WalSeal frames, a snapshot
# file is one SnapshotImage frame.  Reusing the wire codec buys the
# storage layer determinism, versioning, and torn-tail detection
# (a partial trailing frame fails the length/decode checks exactly like
# a truncated TCP stream) for free.


@dataclass(frozen=True)
class WalAppend:
    """One durably logged finalized block.

    ``seq`` is the WAL's own monotone record counter (it survives
    compaction, so replay order is checkable across rewrites); the
    block's slot/digest carry the chain position.
    """

    seq: int
    block: object  # a repro.multishot.block.Block


@dataclass(frozen=True)
class WalSeal:
    """A durability checkpoint marker written at snapshot time.

    Every record with ``seq`` <= this seal's ``seq`` is covered by the
    snapshot whose state digest is recorded here; compaction drops
    exactly those records.  A seal mid-log is therefore evidence of the
    last snapshot the WAL was compacted against.
    """

    seq: int
    upto_slot: int
    state_digest: str


@dataclass(frozen=True)
class SnapshotImage:
    """One complete recoverable replica state, atomically replacing the
    previous snapshot file.

    Carries the full finalized chain (not just the tip) so recovery is
    self-contained after WAL compaction, plus the executed-state image:
    ``kv_items`` as sorted ``(key, value)`` pairs and the applied-txid
    frontier in application order.  ``state_digest`` must equal the
    digest recomputed from the image — recovery rejects a snapshot that
    disagrees with itself.
    """

    tip_slot: int
    tip_digest: str
    state_digest: str
    applied_txids: tuple  # tuple[str, ...]
    kv_items: tuple  # tuple[tuple[str, int], ...]
    chain: tuple  # tuple[Block, ...]


def wire_codec() -> WireCodec:
    """The default registry: every wire-crossing dataclass in the repo.

    Type ids are part of the wire contract — append, never renumber
    (renumbering is a :data:`WIRE_VERSION` bump).
    """
    from repro.baselines.base import BPhaseVote, BProposal, BRound, BViewChange
    from repro.baselines.chained import CatchUp, SlotMessage
    from repro.core.messages import (
        Proof,
        Proposal,
        Suggest,
        ViewChange,
        Vote,
        VoteRecord,
    )
    from repro.multishot.block import Block
    from repro.multishot.messages import (
        MSProof,
        MSProposal,
        MSSuggest,
        MSViewChange,
        MSVote,
        VoteBatch,
    )
    from repro.smr.mempool import Transaction

    codec = WireCodec()
    # Net-layer control frames.
    codec.register(1, Hello)
    codec.register(2, ClientSubmit)
    codec.register(3, StartRun)
    codec.register(4, CommitAck)
    codec.register(5, CollectRequest)
    codec.register(6, CollectReply)
    codec.register(7, SnapshotRequest)
    codec.register(8, ClientSubmitBatch)
    codec.register(9, StateTransferRequest)
    codec.register(10, StateTransferReply)
    # In-band metrics scrape (wire v5).
    codec.register(11, MetricsRequest)
    codec.register(12, MetricsReply)
    # Shared nested structures.
    codec.register(16, VoteRecord)
    codec.register(17, Block)
    codec.register(18, Transaction)
    # Basic (single-shot) TetraBFT.
    codec.register(32, Proposal)
    codec.register(33, Vote)
    codec.register(34, Suggest)
    codec.register(35, Proof)
    codec.register(36, ViewChange)
    # Multi-shot TetraBFT.
    codec.register(48, MSProposal)
    codec.register(49, MSVote)
    codec.register(50, MSViewChange)
    codec.register(51, MSSuggest)
    codec.register(52, MSProof)
    # Aggregated vote frame: many multishot messages, one wire frame.
    codec.register(53, VoteBatch)
    # Chained baseline engines (PBFT / IT-HotStuff / Li).
    codec.register(64, BProposal)
    codec.register(65, BPhaseVote)
    codec.register(66, BViewChange)
    codec.register(67, BRound)
    codec.register(68, SlotMessage)
    codec.register(69, CatchUp)
    # Durability records: the WAL and snapshot file formats.
    codec.register(80, WalAppend)
    codec.register(81, WalSeal)
    codec.register(82, SnapshotImage)
    return codec


#: The shared default codec every transport and cluster uses.
WIRE_CODEC = wire_codec()
