"""Entry point of one replica OS process.

Spawned by :mod:`repro.net.cluster` with a picklable
:class:`ReplicaSpec`, this module assembles the same stack the
simulator drives — a :class:`~repro.smr.replica.Replica` over any
registered :class:`~repro.smr.engine.ConsensusEngine` — on top of a
:class:`~repro.net.transport.NetTransport`, plus a client-facing TCP
server:

* peer frames are decoded and fed to ``replica.receive`` (buffered
  until the driver's ``StartRun`` arrives — over real sockets a fast
  peer's first proposal can beat the local start signal);
* ``ClientSubmit`` / ``ClientSubmitBatch`` frames go to
  ``replica.submit`` (the batch form is the gateway's server-side
  submission coalescing — many client submissions, one frame);
* ``SnapshotRequest`` answers with the same ``CollectReply`` evidence
  as a collect but keeps the replica in consensus — the gateway's read
  path serves executed state from these snapshots;
* every executed transaction is acknowledged to connected clients with
  a ``CommitAck`` (the driver's wall-clock latency sample);
* ``CollectRequest`` answers with a ``CollectReply`` carrying the
  finalized chain, live state digest and applied-transaction log — the
  exact :class:`~repro.verification.audit.ReplicaEvidence` fields the
  safety auditor replays — then shuts the process down gracefully.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass

from pathlib import Path

from repro.config import repro_config
from repro.core.config import ProtocolConfig
from repro.metrics.smr_trackers import SMRTrackers
from repro.net.codec import (
    WIRE_CODEC,
    ClientSubmit,
    ClientSubmitBatch,
    CodecError,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    MetricsReply,
    MetricsRequest,
    SnapshotRequest,
    StartRun,
    StateTransferReply,
    StateTransferRequest,
)
from repro.net.client import REFERENCE_TIME_SCALE
from repro.net.transport import LinkLatency, NetContext, NetTransport, install_uvloop
from repro.obs import CommitPathTracer, EventLog, MetricsRegistry
from repro.smr.engine import engine_factory
from repro.smr.mempool import Transaction
from repro.smr.replica import Replica
from repro.storage.api import MemoryStorage

#: Events kept in a replica's in-memory forensics ring.
EVENT_RING_CAPACITY = 256

#: Trace one txn in this many (deterministic in the txid, so every
#: process samples the same population).
TRACE_SAMPLE_EVERY = 16

#: Sliding window of the live commit-rate meter, seconds.
COMMIT_RATE_WINDOW = 2.0


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything one replica process needs, in picklable primitives."""

    node_id: int
    n: int
    engine: str
    host: str
    peer_port: int
    client_port: int
    #: (peer id, host, port) triples for every *other* replica.
    peer_addrs: tuple[tuple[int, str, int], ...]
    time_scale: float
    latency_default: float
    latency_pairs: tuple[tuple[int, int, float], ...]
    max_slots: int | None
    batch: int
    #: (peer id, host, *client* port) triples for every other replica —
    #: the ports state-transfer catch-up fetches finalized chains from.
    client_addrs: tuple[tuple[int, str, int], ...] = ()
    #: Durability root for this replica; ``None`` runs MemoryStorage
    #: (no persistence — the historical behavior).
    data_dir: str | None = None
    wal_fsync_window: float = 0.005
    snapshot_interval: int = 32

    def build_latency(self) -> LinkLatency:
        return LinkLatency.from_pairs(self.latency_default, self.latency_pairs)

    def build_storage(self):
        """The spec's storage: DiskStorage under ``data_dir``, else memory."""
        if self.data_dir is None:
            return MemoryStorage()
        # Imported here, not at module top: repro.storage.disk pulls the
        # wire codec back in through repro.net, and this module sits on
        # that cycle (net.cluster -> replica_main -> storage -> net).
        from repro.storage.disk import DiskStorage

        return DiskStorage(
            self.data_dir,
            wal_fsync_window=self.wal_fsync_window,
            snapshot_interval=self.snapshot_interval,
        )


class _AckingTrackers(SMRTrackers):
    """SMR trackers that ack commits and feed the obs plane.

    Every tracker callback is already on the consensus hot path, so
    this is where the registry instruments live: commit/block counters,
    the windowed commit-rate meter, the mempool-depth gauge, finalize
    events, and the sampled commit-path trace stages.
    """

    def __init__(self, ack, registry: MetricsRegistry, events: EventLog, tracer) -> None:
        super().__init__()
        self._ack = ack
        self._events = events
        self._tracer = tracer
        self._commits = registry.counter("consensus.commits")
        self._blocks = registry.counter("consensus.blocks")
        self._commit_meter = registry.histogram("consensus.commit", window=COMMIT_RATE_WINDOW)
        self._depth = registry.gauge("mempool.depth")

    def record_submit(self, txid: str, time: float) -> None:
        super().record_submit(txid, time)
        self._tracer.record(txid, "submit")

    def record_proposal(self, node: int, txids: tuple[str, ...], time: float) -> None:
        for txid in txids:
            self._tracer.record(txid, "propose")

    def record_commit(self, node: int, txid: str, time: float) -> None:
        super().record_commit(node, txid, time)
        self._commits.inc()
        self._commit_meter.record(1.0)
        self._tracer.record(txid, "finalize")
        self._ack(txid)

    def record_block(self, node: int, slot: int, txns: int, mempool_size: int, time: float) -> None:
        super().record_block(node, slot, txns, mempool_size, time)
        self._blocks.inc()
        self._events.emit("finalize", slot=slot, txns=txns, mempool=mempool_size)

    def record_mempool(self, node: int, size: int) -> None:
        super().record_mempool(node, size)
        self._depth.set(size)


class _ObsNetContext(NetContext):
    """NetContext that counts view entries and logs them as events."""

    def __init__(self, node_id, transport, time_scale, registry, events) -> None:
        super().__init__(node_id, transport, time_scale)
        self._view_changes = registry.counter("consensus.view_changes")
        self._view = registry.gauge("consensus.view")
        self._events = events

    def report_view_entry(self, view: int) -> None:
        super().report_view_entry(view)
        if view > self._view.value:
            self._view.set(view)
        if view > 0:
            self._view_changes.inc()
        self._events.emit("view_enter", view=view)


class ReplicaProcess:
    """The asyncio program one replica process runs."""

    def __init__(self, spec: ReplicaSpec) -> None:
        self.spec = spec
        self.codec = WIRE_CODEC
        cfg = repro_config()
        factory = engine_factory(
            spec.engine, ProtocolConfig.create(spec.n), max_slots=spec.max_slots
        )
        # The obs plane: one registry + event log + tracer per replica
        # process.  REPRO_NO_OBS=1 silences event recording and trace
        # sampling; the registry's counters stay on (collect/scrape
        # payloads are built from them).
        self.registry = MetricsRegistry()
        self._events_path = self._event_log_path(cfg)
        self.events = EventLog(
            replica=spec.node_id,
            capacity=EVENT_RING_CAPACITY,
            stream_path=self._events_path if cfg.event_log else None,
            enabled=not cfg.no_obs,
        )
        self.tracer = CommitPathTracer(
            sample_every=0 if cfg.no_obs else TRACE_SAMPLE_EVERY,
            terminal="finalize",
        )
        self.trackers = _AckingTrackers(
            self._ack_commit, self.registry, self.events, self.tracer
        )
        self.storage = spec.build_storage()
        self.replica = Replica(
            spec.node_id,
            max_batch=spec.batch,
            trackers=self.trackers,
            engine_factory=factory,
            storage=self.storage,
        )
        # Recovery happens before any socket opens: load the latest
        # valid snapshot, replay the intact WAL suffix, and bootstrap
        # the engine with the recovered prefix.  The delta the crash
        # window lost is fetched from peers by the catch-up loop.
        self._recovered_blocks = 0
        recovered = self.storage.recover()
        if recovered is not None:
            self.replica.bootstrap(recovered.chain)
            self._recovered_blocks = len(recovered.chain)
            self.events.emit(
                "recover",
                slot=recovered.chain[-1].slot,
                blocks=self._recovered_blocks,
                wal_blocks=recovered.wal_blocks,
                torn_tail=recovered.torn_tail,
            )
        self.transport = NetTransport(
            spec.node_id,
            spec.host,
            spec.peer_port,
            {pid: (host, port) for pid, host, port in spec.peer_addrs},
            self._on_peer_message,
            codec=self.codec,
            latency=spec.build_latency(),
        )
        self.ctx = _ObsNetContext(
            spec.node_id, self.transport, spec.time_scale, self.registry, self.events
        )
        self._started = False
        self._run_t0: float | None = None
        self._cpu_t0 = 0.0
        self._pre_start: list[tuple[int, object]] = []
        self._frames_in = self.registry.counter("net.frames_in")
        self._messages_in = self.registry.counter("net.messages_in")
        self._current_slot = 0
        self._clients: list[asyncio.StreamWriter] = []
        self._done = asyncio.Event()
        self._catch_up_task: asyncio.Task | None = None

    def _event_log_path(self, cfg) -> Path | None:
        """Where this replica's NDJSON event log lives, if anywhere.

        A durable replica keeps it next to its WAL; a memory replica
        falls back to ``REPRO_DATA_DIR`` (an ``events/`` subdir, one
        file per node+port so concurrent cells do not collide); with
        neither configured there is nowhere to write and only the ring
        buffer exists.
        """
        if self.spec.data_dir is not None:
            return Path(self.spec.data_dir) / "events.ndjson"
        if cfg.data_dir:
            name = f"node{self.spec.node_id}-{self.spec.client_port}.ndjson"
            return Path(cfg.data_dir) / "events" / name
        return None

    # -- consensus plumbing ---------------------------------------------------

    def _on_peer_message(self, sender: int, message: object) -> None:
        """Peer traffic; buffered until the driver says StartRun."""
        self._frames_in.inc()
        count_fn = getattr(message, "logical_count", None)
        self._messages_in.inc(1 if count_fn is None else count_fn())
        if not self._started:
            self._pre_start.append((sender, message))
            return
        self.replica.receive(sender, message)

    def _start_consensus(self) -> None:
        if self._started:
            return
        self._started = True
        # Busy-duty evidence: CPU vs wall time from StartRun to collect.
        self._run_t0 = time.monotonic()
        self._cpu_t0 = time.process_time()
        self.ctx.start_clock()
        self.replica.start(self.ctx)
        backlog, self._pre_start = self._pre_start, []
        for sender, message in backlog:
            self.replica.receive(sender, message)
        if self.spec.data_dir is not None and self.spec.client_addrs:
            self._catch_up_task = asyncio.ensure_future(self._catch_up_loop())

    def _ack_commit(self, txid: str) -> None:
        executed = self.replica.executed_blocks
        slot = executed[-1].slot if executed else 0
        frame = self.codec.encode_frame(CommitAck(self.spec.node_id, txid, slot))
        for writer in self._clients:
            if not writer.is_closing():
                writer.write(frame)

    def _metrics_items(self) -> tuple[tuple[str, float], ...]:
        """One obs-registry snapshot: the scrape/collect wire payload.

        Point-in-time sources — process CPU/wall seconds, transport
        lanes, durability counters, mempool occupancy, trace
        breakdowns — are published into the registry here, at
        scrape/collect time, so the hot path never pays for them.
        """
        registry = self.registry
        started = self._run_t0 is not None
        registry.counter("process.cpu_seconds").set(
            time.process_time() - self._cpu_t0 if started else 0.0
        )
        registry.counter("process.run_seconds").set(
            time.monotonic() - self._run_t0 if started else 0.0
        )
        registry.gauge("mempool.depth").set(self.replica.mempool.pending_count)
        registry.gauge("mempool.in_flight").set(self.replica.mempool.in_flight_count)
        registry.counter("storage.recovered_blocks").set(self._recovered_blocks)
        registry.gauge("events.buffered").set(len(self.events))
        self.transport.publish_metrics(registry)
        publish = getattr(self.storage, "publish_metrics", None)
        if publish is not None:
            publish(registry)
        self.tracer.publish(registry)
        return registry.snapshot_items()

    def _collect_reply(self) -> CollectReply:
        replica = self.replica
        return CollectReply(
            node_id=self.spec.node_id,
            chain=tuple(replica.finalized_chain),
            state_digest=replica.state_digest(),
            applied_txids=tuple(replica.store.applied_txids),
            blocks_applied=self.trackers.throughput.blocks_applied(self.spec.node_id),
            txns_applied=self.trackers.throughput.txns_applied(self.spec.node_id),
            metrics=self._metrics_items(),
        )

    # -- state-transfer catch-up ----------------------------------------------

    def _finalized_height(self) -> int:
        chain = self.replica.finalized_chain
        return chain[-1].slot if chain else 0

    async def _catch_up_loop(self) -> None:
        """Fetch the finalized gap from a peer whenever progress stalls.

        Armed only on durable replicas: after a restart the recovered
        chain ends where the last fsync did, and the live vote stream
        alone cannot finalize across the missing bodies — peer state
        transfer supplies exactly that delta.  While the tip advances
        (a healthy replica in a healthy cluster) the loop never fetches.
        """
        interval = 0.2 * max(1.0, self.spec.time_scale / REFERENCE_TIME_SCALE)
        last_height = self._finalized_height()
        peer_index = 0
        while not self._done.is_set():
            await asyncio.sleep(interval)
            height = self._finalized_height()
            if height > last_height:
                last_height = height
                continue
            addr = self.spec.client_addrs[peer_index % len(self.spec.client_addrs)]
            peer_index += 1
            try:
                await asyncio.wait_for(
                    self._state_transfer(addr, height), timeout=10 * interval
                )
            except (OSError, ConnectionError, CodecError, asyncio.TimeoutError):
                continue  # that peer is down or slow; try the next one

    async def _state_transfer(self, addr: tuple[int, str, int], since_slot: int) -> None:
        """One fetch: ask ``addr`` for finalized blocks above ``since_slot``."""
        peer_id, host, port = addr
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(self.codec.encode_frame(StateTransferRequest(since_slot=since_slot)))
            await writer.drain()
            buffer = FrameBuffer(self.codec)
            reply: StateTransferReply | None = None
            while reply is None:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    # The peer's client port also pushes CommitAcks at
                    # everyone connected; skip anything but our reply.
                    if isinstance(message, StateTransferReply):
                        reply = message
                        break
        finally:
            writer.close()
        blocks = self._validate_transfer(reply.blocks, since_slot)
        if blocks:
            advanced = self.replica.offer_blocks(blocks)
            self.events.emit(
                "state_transfer",
                slot=blocks[-1].slot,
                applied=len(blocks),
                advanced=advanced,
                peer=peer_id,
            )

    @staticmethod
    def _validate_transfer(blocks: tuple, since_slot: int) -> tuple:
        """The longest trustworthy prefix of a peer's transfer reply.

        Re-derives every digest and checks consecutive hash linkage —
        a peer (or a bit flip) cannot smuggle in a body whose digest
        does not match its content, and the engine's own chain walk
        re-proves finalization before anything executes.
        """
        from repro.multishot.block import Block, _compute_digest

        good = []
        expected_slot = since_slot + 1
        for block in blocks:
            if not isinstance(block, Block) or block.slot != expected_slot:
                break
            if _compute_digest(block.slot, block.parent, block.payload) != block.digest:
                break
            if good and block.parent != good[-1].digest:
                break
            good.append(block)
            expected_slot += 1
        return tuple(good)

    # -- client server --------------------------------------------------------

    async def _on_client_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.append(writer)
        buffer = FrameBuffer(self.codec)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    if isinstance(message, ClientSubmit):
                        if isinstance(message.txn, Transaction):
                            self.replica.submit(message.txn)
                    elif isinstance(message, ClientSubmitBatch):
                        for txn in message.txns:
                            if isinstance(txn, Transaction):
                                self.replica.submit(txn)
                    elif isinstance(message, StartRun):
                        self._start_consensus()
                    elif isinstance(message, StateTransferRequest):
                        chain = self.replica.finalized_chain
                        blocks = tuple(b for b in chain if b.slot > message.since_slot)
                        self.events.emit(
                            "state_transfer",
                            slot=chain[-1].slot if chain else 0,
                            served=len(blocks),
                            since=message.since_slot,
                        )
                        writer.write(
                            self.codec.encode_frame(
                                StateTransferReply(
                                    node_id=self.spec.node_id,
                                    tip_slot=chain[-1].slot if chain else 0,
                                    blocks=blocks,
                                )
                            )
                        )
                        await writer.drain()
                    elif isinstance(message, MetricsRequest):
                        # In-band scrape: the registry snapshot, no
                        # chain copy, replica stays in consensus.
                        writer.write(
                            self.codec.encode_frame(
                                MetricsReply(
                                    node_id=self.spec.node_id,
                                    items=self._metrics_items(),
                                    events=len(self.events),
                                )
                            )
                        )
                        await writer.drain()
                    elif isinstance(message, SnapshotRequest):
                        # Read path: answer with the same evidence shape
                        # as a collect, but stay in consensus.
                        writer.write(self.codec.encode_frame(self._collect_reply()))
                        await writer.drain()
                    elif isinstance(message, CollectRequest):
                        # Dump forensics BEFORE answering: the driver
                        # reaps the process as soon as every reply is
                        # in, and SIGTERM does not unwind the finally
                        # block — the reply is the dump's barrier.
                        self._dump_events()
                        writer.write(self.codec.encode_frame(self._collect_reply()))
                        await writer.drain()
                        self._done.set()
                        return
                    else:
                        # A frame a client port has no business seeing
                        # is a protocol anomaly worth forensics.
                        self.events.emit("anomaly", frame=type(message).__name__)
        except (OSError, ConnectionError, CodecError):
            return
        finally:
            if writer in self._clients:
                self._clients.remove(writer)
            writer.close()

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> None:
        await self.transport.start()
        server = await asyncio.start_server(
            self._on_client_connection, self.spec.host, self.spec.client_port
        )
        try:
            await self._done.wait()
        finally:
            if self._catch_up_task is not None:
                self._catch_up_task.cancel()
            self.ctx.cancel_timers()
            server.close()
            await server.wait_closed()
            await self.transport.stop()
            self.storage.close()
            self._dump_events()
            self.events.close()

    def _dump_events(self) -> None:
        """Forensics: leave the ring tail next to the WAL (or under
        ``REPRO_DATA_DIR``) so a post-mortem — a SafetyAuditor
        violation, a CI failure artifact — has the last N events per
        replica.  A streaming log already has everything on disk."""
        if (
            self.events.enabled
            and self._events_path is not None
            and len(self.events)
            and not self.events.streaming
        ):
            self.events.dump(self._events_path)


def run_replica(spec: ReplicaSpec) -> None:
    """Process target: run one replica until collected (or killed)."""
    # A dead peer's socket produces per-write "socket.send() raised
    # exception" warnings until the transport notices; the reconnect
    # machinery exists precisely to absorb those, so quiet them.
    logging.getLogger("asyncio").setLevel(logging.ERROR)
    install_uvloop()
    asyncio.run(ReplicaProcess(spec).run())


if __name__ == "__main__":  # pragma: no cover - debugging aid
    import argparse
    import pickle
    from dataclasses import replace as _replace

    parser = argparse.ArgumentParser(description="run one replica process")
    parser.add_argument("spec_hex", help="hex-pickled ReplicaSpec")
    parser.add_argument(
        "--data-dir",
        default=None,
        help="override the spec's durability root (restart-from-disk runs)",
    )
    cli = parser.parse_args()
    spec = pickle.loads(bytes.fromhex(cli.spec_hex))
    if cli.data_dir is not None:
        spec = _replace(spec, data_dir=cli.data_dir)
    run_replica(spec)
