"""Entry point of one replica OS process.

Spawned by :mod:`repro.net.cluster` with a picklable
:class:`ReplicaSpec`, this module assembles the same stack the
simulator drives — a :class:`~repro.smr.replica.Replica` over any
registered :class:`~repro.smr.engine.ConsensusEngine` — on top of a
:class:`~repro.net.transport.NetTransport`, plus a client-facing TCP
server:

* peer frames are decoded and fed to ``replica.receive`` (buffered
  until the driver's ``StartRun`` arrives — over real sockets a fast
  peer's first proposal can beat the local start signal);
* ``ClientSubmit`` / ``ClientSubmitBatch`` frames go to
  ``replica.submit`` (the batch form is the gateway's server-side
  submission coalescing — many client submissions, one frame);
* ``SnapshotRequest`` answers with the same ``CollectReply`` evidence
  as a collect but keeps the replica in consensus — the gateway's read
  path serves executed state from these snapshots;
* every executed transaction is acknowledged to connected clients with
  a ``CommitAck`` (the driver's wall-clock latency sample);
* ``CollectRequest`` answers with a ``CollectReply`` carrying the
  finalized chain, live state digest and applied-transaction log — the
  exact :class:`~repro.verification.audit.ReplicaEvidence` fields the
  safety auditor replays — then shuts the process down gracefully.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass

from repro.core.config import ProtocolConfig
from repro.metrics.smr_trackers import SMRTrackers
from repro.net.codec import (
    WIRE_CODEC,
    ClientSubmit,
    ClientSubmitBatch,
    CodecError,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    SnapshotRequest,
    StartRun,
    StateTransferReply,
    StateTransferRequest,
)
from repro.net.client import REFERENCE_TIME_SCALE
from repro.net.transport import LinkLatency, NetContext, NetTransport, install_uvloop
from repro.smr.engine import engine_factory
from repro.smr.mempool import Transaction
from repro.smr.replica import Replica
from repro.storage.api import MemoryStorage


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything one replica process needs, in picklable primitives."""

    node_id: int
    n: int
    engine: str
    host: str
    peer_port: int
    client_port: int
    #: (peer id, host, port) triples for every *other* replica.
    peer_addrs: tuple[tuple[int, str, int], ...]
    time_scale: float
    latency_default: float
    latency_pairs: tuple[tuple[int, int, float], ...]
    max_slots: int | None
    batch: int
    #: (peer id, host, *client* port) triples for every other replica —
    #: the ports state-transfer catch-up fetches finalized chains from.
    client_addrs: tuple[tuple[int, str, int], ...] = ()
    #: Durability root for this replica; ``None`` runs MemoryStorage
    #: (no persistence — the historical behavior).
    data_dir: str | None = None
    wal_fsync_window: float = 0.005
    snapshot_interval: int = 32

    def build_latency(self) -> LinkLatency:
        return LinkLatency.from_pairs(self.latency_default, self.latency_pairs)

    def build_storage(self):
        """The spec's storage: DiskStorage under ``data_dir``, else memory."""
        if self.data_dir is None:
            return MemoryStorage()
        # Imported here, not at module top: repro.storage.disk pulls the
        # wire codec back in through repro.net, and this module sits on
        # that cycle (net.cluster -> replica_main -> storage -> net).
        from repro.storage.disk import DiskStorage

        return DiskStorage(
            self.data_dir,
            wal_fsync_window=self.wal_fsync_window,
            snapshot_interval=self.snapshot_interval,
        )


class _AckingTrackers(SMRTrackers):
    """SMR trackers that also push a CommitAck per executed transaction."""

    def __init__(self, ack) -> None:
        super().__init__()
        self._ack = ack

    def record_commit(self, node: int, txid: str, time: float) -> None:
        super().record_commit(node, txid, time)
        self._ack(txid)


class ReplicaProcess:
    """The asyncio program one replica process runs."""

    def __init__(self, spec: ReplicaSpec) -> None:
        self.spec = spec
        self.codec = WIRE_CODEC
        factory = engine_factory(
            spec.engine, ProtocolConfig.create(spec.n), max_slots=spec.max_slots
        )
        self.trackers = _AckingTrackers(self._ack_commit)
        self.storage = spec.build_storage()
        self.replica = Replica(
            spec.node_id,
            max_batch=spec.batch,
            trackers=self.trackers,
            engine_factory=factory,
            storage=self.storage,
        )
        # Recovery happens before any socket opens: load the latest
        # valid snapshot, replay the intact WAL suffix, and bootstrap
        # the engine with the recovered prefix.  The delta the crash
        # window lost is fetched from peers by the catch-up loop.
        self._recovered_blocks = 0
        recovered = self.storage.recover()
        if recovered is not None:
            self.replica.bootstrap(recovered.chain)
            self._recovered_blocks = len(recovered.chain)
        self.transport = NetTransport(
            spec.node_id,
            spec.host,
            spec.peer_port,
            {pid: (host, port) for pid, host, port in spec.peer_addrs},
            self._on_peer_message,
            codec=self.codec,
            latency=spec.build_latency(),
        )
        self.ctx = NetContext(spec.node_id, self.transport, spec.time_scale)
        self._started = False
        self._run_t0: float | None = None
        self._cpu_t0 = 0.0
        self._pre_start: list[tuple[int, object]] = []
        self._frames_in = 0
        self._messages_in = 0
        self._current_slot = 0
        self._clients: list[asyncio.StreamWriter] = []
        self._done = asyncio.Event()
        self._catch_up_task: asyncio.Task | None = None

    # -- consensus plumbing ---------------------------------------------------

    def _on_peer_message(self, sender: int, message: object) -> None:
        """Peer traffic; buffered until the driver says StartRun."""
        self._frames_in += 1
        count_fn = getattr(message, "logical_count", None)
        self._messages_in += 1 if count_fn is None else count_fn()
        if not self._started:
            self._pre_start.append((sender, message))
            return
        self.replica.receive(sender, message)

    def _start_consensus(self) -> None:
        if self._started:
            return
        self._started = True
        # Busy-duty evidence: CPU vs wall time from StartRun to collect.
        self._run_t0 = time.monotonic()
        self._cpu_t0 = time.process_time()
        self.ctx.start_clock()
        self.replica.start(self.ctx)
        backlog, self._pre_start = self._pre_start, []
        for sender, message in backlog:
            self.replica.receive(sender, message)
        if self.spec.data_dir is not None and self.spec.client_addrs:
            self._catch_up_task = asyncio.ensure_future(self._catch_up_loop())

    def _ack_commit(self, txid: str) -> None:
        executed = self.replica.executed_blocks
        slot = executed[-1].slot if executed else 0
        frame = self.codec.encode_frame(CommitAck(self.spec.node_id, txid, slot))
        for writer in self._clients:
            if not writer.is_closing():
                writer.write(frame)

    def _collect_reply(self) -> CollectReply:
        replica = self.replica
        started = self._run_t0 is not None
        return CollectReply(
            node_id=self.spec.node_id,
            chain=tuple(replica.finalized_chain),
            state_digest=replica.state_digest(),
            applied_txids=tuple(replica.store.applied_txids),
            blocks_applied=self.trackers.throughput.blocks_applied(self.spec.node_id),
            txns_applied=self.trackers.throughput.txns_applied(self.spec.node_id),
            frames_in=self._frames_in,
            messages_in=self._messages_in,
            cpu_seconds=time.process_time() - self._cpu_t0 if started else 0.0,
            run_seconds=time.monotonic() - self._run_t0 if started else 0.0,
            flush_stats=self.transport.flush_stats(),
            recovered_blocks=self._recovered_blocks,
        )

    # -- state-transfer catch-up ----------------------------------------------

    def _finalized_height(self) -> int:
        chain = self.replica.finalized_chain
        return chain[-1].slot if chain else 0

    async def _catch_up_loop(self) -> None:
        """Fetch the finalized gap from a peer whenever progress stalls.

        Armed only on durable replicas: after a restart the recovered
        chain ends where the last fsync did, and the live vote stream
        alone cannot finalize across the missing bodies — peer state
        transfer supplies exactly that delta.  While the tip advances
        (a healthy replica in a healthy cluster) the loop never fetches.
        """
        interval = 0.2 * max(1.0, self.spec.time_scale / REFERENCE_TIME_SCALE)
        last_height = self._finalized_height()
        peer_index = 0
        while not self._done.is_set():
            await asyncio.sleep(interval)
            height = self._finalized_height()
            if height > last_height:
                last_height = height
                continue
            addr = self.spec.client_addrs[peer_index % len(self.spec.client_addrs)]
            peer_index += 1
            try:
                await asyncio.wait_for(
                    self._state_transfer(addr, height), timeout=10 * interval
                )
            except (OSError, ConnectionError, CodecError, asyncio.TimeoutError):
                continue  # that peer is down or slow; try the next one

    async def _state_transfer(self, addr: tuple[int, str, int], since_slot: int) -> None:
        """One fetch: ask ``addr`` for finalized blocks above ``since_slot``."""
        peer_id, host, port = addr
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(self.codec.encode_frame(StateTransferRequest(since_slot=since_slot)))
            await writer.drain()
            buffer = FrameBuffer(self.codec)
            reply: StateTransferReply | None = None
            while reply is None:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    # The peer's client port also pushes CommitAcks at
                    # everyone connected; skip anything but our reply.
                    if isinstance(message, StateTransferReply):
                        reply = message
                        break
        finally:
            writer.close()
        blocks = self._validate_transfer(reply.blocks, since_slot)
        if blocks:
            self.replica.offer_blocks(blocks)

    @staticmethod
    def _validate_transfer(blocks: tuple, since_slot: int) -> tuple:
        """The longest trustworthy prefix of a peer's transfer reply.

        Re-derives every digest and checks consecutive hash linkage —
        a peer (or a bit flip) cannot smuggle in a body whose digest
        does not match its content, and the engine's own chain walk
        re-proves finalization before anything executes.
        """
        from repro.multishot.block import Block, _compute_digest

        good = []
        expected_slot = since_slot + 1
        for block in blocks:
            if not isinstance(block, Block) or block.slot != expected_slot:
                break
            if _compute_digest(block.slot, block.parent, block.payload) != block.digest:
                break
            if good and block.parent != good[-1].digest:
                break
            good.append(block)
            expected_slot += 1
        return tuple(good)

    # -- client server --------------------------------------------------------

    async def _on_client_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.append(writer)
        buffer = FrameBuffer(self.codec)
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    if isinstance(message, ClientSubmit):
                        if isinstance(message.txn, Transaction):
                            self.replica.submit(message.txn)
                    elif isinstance(message, ClientSubmitBatch):
                        for txn in message.txns:
                            if isinstance(txn, Transaction):
                                self.replica.submit(txn)
                    elif isinstance(message, StartRun):
                        self._start_consensus()
                    elif isinstance(message, StateTransferRequest):
                        chain = self.replica.finalized_chain
                        blocks = tuple(b for b in chain if b.slot > message.since_slot)
                        writer.write(
                            self.codec.encode_frame(
                                StateTransferReply(
                                    node_id=self.spec.node_id,
                                    tip_slot=chain[-1].slot if chain else 0,
                                    blocks=blocks,
                                )
                            )
                        )
                        await writer.drain()
                    elif isinstance(message, SnapshotRequest):
                        # Read path: answer with the same evidence shape
                        # as a collect, but stay in consensus.
                        writer.write(self.codec.encode_frame(self._collect_reply()))
                        await writer.drain()
                    elif isinstance(message, CollectRequest):
                        writer.write(self.codec.encode_frame(self._collect_reply()))
                        await writer.drain()
                        self._done.set()
                        return
        except (OSError, ConnectionError, CodecError):
            return
        finally:
            if writer in self._clients:
                self._clients.remove(writer)
            writer.close()

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> None:
        await self.transport.start()
        server = await asyncio.start_server(
            self._on_client_connection, self.spec.host, self.spec.client_port
        )
        try:
            await self._done.wait()
        finally:
            if self._catch_up_task is not None:
                self._catch_up_task.cancel()
            self.ctx.cancel_timers()
            server.close()
            await server.wait_closed()
            await self.transport.stop()
            self.storage.close()


def run_replica(spec: ReplicaSpec) -> None:
    """Process target: run one replica until collected (or killed)."""
    # A dead peer's socket produces per-write "socket.send() raised
    # exception" warnings until the transport notices; the reconnect
    # machinery exists precisely to absorb those, so quiet them.
    logging.getLogger("asyncio").setLevel(logging.ERROR)
    install_uvloop()
    asyncio.run(ReplicaProcess(spec).run())


if __name__ == "__main__":  # pragma: no cover - debugging aid
    import argparse
    import pickle
    from dataclasses import replace as _replace

    parser = argparse.ArgumentParser(description="run one replica process")
    parser.add_argument("spec_hex", help="hex-pickled ReplicaSpec")
    parser.add_argument(
        "--data-dir",
        default=None,
        help="override the spec's durability root (restart-from-disk runs)",
    )
    cli = parser.parse_args()
    spec = pickle.loads(bytes.fromhex(cli.spec_hex))
    if cli.data_dir is not None:
        spec = _replace(spec, data_dir=cli.data_dir)
    run_replica(spec)
