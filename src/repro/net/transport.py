"""Asyncio TCP transport speaking the length-prefixed wire codec.

One :class:`NetTransport` per replica process: it listens on the
replica's peer port, dials every other replica, and moves encoded
frames.  Design points, in the order they matter operationally:

* **Per-peer outbound queues** — sends never block the protocol state
  machine; each peer has a queue drained by its own writer task.
* **Coalesced writes** — each writer wakeup drains every already-due
  frame in its queue into a single ``writev``-style buffer and hands
  the socket one write, so a burst of aggregated vote frames costs one
  syscall, not one per frame.
* **Reconnect with backoff** — replicas start at different instants
  and may crash mid-run; a writer that cannot connect (or loses its
  connection) retries with exponential backoff while its queue keeps
  absorbing messages, so a rebooted peer picks up from the live
  traffic without any node noticing at the protocol layer.
* **Injected link latency** — an optional per-link one-way delay,
  applied as a FIFO pipe (each frame is written no earlier than
  ``enqueue time + latency``): localhost RTTs are tens of
  microseconds, far below any interesting Δ geometry, and the
  injected delay is what lets the sync/geo scenarios of the simulated
  experiments carry over to real sockets.
* **Loopback included** — ``broadcast`` delivers to the sender too
  (a node processes its own votes, exactly as in the simulator), via
  the event loop with the same injected latency as any other link.

:class:`NetContext` is the duck-typed
:class:`~repro.sim.runner.NodeContext` the transport hands a node:
wall-clock ``now`` in protocol Δ units (via ``time_scale`` seconds per
Δ), asyncio timers, and local metric/trace sinks.
"""

from __future__ import annotations

import asyncio
import logging
from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.metrics.collectors import RunMetrics
from repro.net.codec import WIRE_CODEC, CodecError, FrameBuffer, Hello, WireCodec
from repro.sim.trace import Trace, TraceKind

_LOG = logging.getLogger(__name__)


def install_uvloop() -> bool:
    """Switch asyncio to ``uvloop``'s event loop when it is installed.

    ``uvloop`` is an *optional* extra (``pip install repro[uvloop]``);
    the deployment subsystem must run identically without it, so a
    missing module is the documented fallback, not an error.  Returns
    ``True`` when uvloop's policy is now active, ``False`` when stock
    asyncio remains in charge.  Set ``REPRO_NO_UVLOOP=1`` to force the
    stock loop even where uvloop is available (A/B timing runs).
    """
    import os

    if os.environ.get("REPRO_NO_UVLOOP", "").lower() in ("1", "true", "yes"):
        return False
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True

#: Reconnect backoff: first retry after INITIAL, doubling to CAP.
BACKOFF_INITIAL = 0.05
BACKOFF_CAP = 1.0

#: Outbound frames queued per peer before the oldest are dropped.  A
#: dead peer must not grow our memory without bound; consensus already
#: tolerates message loss (that is what view changes are for).
MAX_OUTBOUND_QUEUE = 65_536


class LinkLatency:
    """Static one-way link delays: a scalar, or per-(src, dst) overrides.

    ``overrides`` maps ``(src, dst)`` pairs to seconds; missing pairs
    fall back to ``default``.  Symmetric maps list both directions.
    """

    def __init__(
        self,
        default: float = 0.0,
        overrides: dict[tuple[int, int], float] | None = None,
    ) -> None:
        if default < 0:
            raise ConfigurationError(f"link latency must be >= 0, got {default}")
        self.default = default
        self.overrides = dict(overrides or {})
        for pair, value in self.overrides.items():
            if value < 0:
                raise ConfigurationError(f"link latency for {pair} is negative")

    def of(self, src: int, dst: int) -> float:
        return self.overrides.get((src, dst), self.default)

    def as_pairs(self) -> tuple[tuple[int, int, float], ...]:
        """Picklable form for crossing the process boundary."""
        return tuple((s, d, v) for (s, d), v in sorted(self.overrides.items()))

    @classmethod
    def from_pairs(cls, default: float, pairs: tuple[tuple[int, int, float], ...]) -> "LinkLatency":
        return cls(default, {(s, d): v for s, d, v in pairs})


class _PeerLane:
    """Outbound state for one peer: queue + reconnecting writer task."""

    __slots__ = ("queue", "task", "dropped")

    def __init__(self) -> None:
        self.queue: asyncio.Queue[tuple[float, bytes]] = asyncio.Queue()
        self.task: asyncio.Task | None = None
        self.dropped = 0


class NetTransport:
    """Frame mover for one replica: server + per-peer outbound lanes."""

    def __init__(
        self,
        node_id: int,
        listen_host: str,
        listen_port: int,
        peers: dict[int, tuple[str, int]],
        on_message: Callable[[int, object], None],
        codec: WireCodec = WIRE_CODEC,
        latency: LinkLatency | None = None,
    ) -> None:
        self.node_id = node_id
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.peers = dict(peers)
        self.on_message = on_message
        self.codec = codec
        self.latency = latency if latency is not None else LinkLatency()
        self._lanes: dict[int, _PeerLane] = {}
        self._server: asyncio.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_peer_connection, self.listen_host, self.listen_port
        )
        for peer_id in self.peers:
            lane = _PeerLane()
            lane.task = asyncio.ensure_future(self._writer(peer_id, lane))
            self._lanes[peer_id] = lane

    async def stop(self) -> None:
        self._closed = True
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- sending --------------------------------------------------------------

    def send(self, dst: int, message: object) -> None:
        """Queue one message for ``dst`` (or loop it back to ourselves)."""
        if dst == self.node_id:
            self._loopback(message)
            return
        lane = self._lanes.get(dst)
        if lane is None:
            return  # unknown peer: mirrors the simulator's closed world
        if lane.queue.qsize() >= MAX_OUTBOUND_QUEUE:
            lane.queue.get_nowait()
            lane.dropped += 1
        loop = asyncio.get_event_loop()
        lane.queue.put_nowait((loop.time(), self.codec.encode_frame(message)))

    def broadcast(self, message: object) -> None:
        """Send to every peer and to ourselves (loopback semantics)."""
        frame: bytes | None = None
        loop = asyncio.get_event_loop()
        for dst in sorted(self.peers):
            lane = self._lanes.get(dst)
            if lane is None:
                continue
            if frame is None:
                frame = self.codec.encode_frame(message)
            if lane.queue.qsize() >= MAX_OUTBOUND_QUEUE:
                lane.queue.get_nowait()
                lane.dropped += 1
            lane.queue.put_nowait((loop.time(), frame))
        self._loopback(message)

    def _loopback(self, message: object) -> None:
        delay = self.latency.of(self.node_id, self.node_id)
        loop = asyncio.get_event_loop()
        if delay > 0:
            loop.call_later(delay, self.on_message, self.node_id, message)
        else:
            loop.call_soon(self.on_message, self.node_id, message)

    # -- outbound lanes -------------------------------------------------------

    async def _writer(self, peer_id: int, lane: _PeerLane) -> None:
        """Drain one peer's queue over a connection that self-heals."""
        host, port = self.peers[peer_id]
        latency = self.latency.of(self.node_id, peer_id)
        hello = self.codec.encode_frame(Hello(self.node_id))
        backoff = BACKOFF_INITIAL
        reconnect_delay = 0.0
        pending: tuple[float, bytes] | None = None
        while not self._closed:
            if reconnect_delay > 0:
                await asyncio.sleep(reconnect_delay)
                reconnect_delay = 0.0
            try:
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            try:
                writer.write(hello)
                await writer.drain()
                # Only a landed handshake proves the link is real: a
                # listener that accepts and immediately resets must
                # keep escalating the backoff, not spin at full speed.
                backoff = BACKOFF_INITIAL
                loop = asyncio.get_event_loop()
                queue = lane.queue
                while True:
                    if pending is None:
                        pending = await lane.queue.get()
                    enqueued, frame = pending
                    if latency > 0:
                        wait = enqueued + latency - loop.time()
                        if wait > 0:
                            await asyncio.sleep(wait)
                    if writer.is_closing():
                        break  # peer went away: keep the frame, reconnect
                    # Coalesce every other already-due frame into the
                    # same write: one writev-style buffer per wakeup
                    # instead of one write per frame.  The first
                    # not-yet-due frame stays pending for the next
                    # wakeup, so injected latency is still a FIFO pipe.
                    pending = None
                    if queue.empty():
                        writer.write(frame)
                    else:
                        batch = bytearray(frame)
                        due_before = loop.time() - latency
                        while not queue.empty():
                            nxt = queue.get_nowait()
                            if latency > 0 and nxt[0] > due_before:
                                pending = nxt
                                break
                            batch.extend(nxt[1])
                        writer.write(batch)
                    if writer.transport.get_write_buffer_size() > 1 << 20:
                        await writer.drain()
            except (OSError, ConnectionError):
                # Connection lost mid-write: the frame in flight is
                # dropped (consensus tolerates loss); pause one backoff
                # step, then reconnect and carry on with the queue.
                pending = None
                reconnect_delay = backoff
                backoff = min(backoff * 2, BACKOFF_CAP)
            finally:
                writer.close()

    # -- inbound --------------------------------------------------------------

    async def _on_peer_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        buffer = FrameBuffer(self.codec)
        sender: int | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    if sender is None:
                        if not isinstance(message, Hello):
                            return  # not a peer speaking our protocol
                        sender = message.node_id
                        continue
                    try:
                        self.on_message(sender, message)
                    except Exception:
                        # A dispatch bug must be loud (the simulator
                        # fails the whole run here) but one poisoned
                        # message must not silently drop the rest of
                        # the decoded batch.
                        _LOG.exception(
                            "node %s: dispatch of %s from peer %s failed",
                            self.node_id,
                            type(message).__name__,
                            sender,
                        )
        except (OSError, ConnectionError, CodecError):
            return
        except asyncio.CancelledError:
            return  # transport shutdown: a cancelled reader is clean
        finally:
            writer.close()


class _NetTimerHandle:
    """Duck-typed EventHandle over an asyncio task."""

    __slots__ = ("_task",)

    def __init__(self, task: asyncio.Task) -> None:
        self._task = task

    def cancel(self) -> None:
        self._task.cancel()

    @property
    def cancelled(self) -> bool:
        return self._task.cancelled()


class NetContext:
    """Duck-typed :class:`~repro.sim.runner.NodeContext` over a transport.

    ``time_scale`` is seconds of wall clock per protocol Δ: timers a
    node arms in Δ units sleep ``delay * time_scale`` seconds, and
    ``now`` reports wall time elapsed since :meth:`start_clock` in Δ
    units, matching the simulated geometry.
    """

    def __init__(
        self,
        node_id: int,
        transport: NetTransport,
        time_scale: float,
        metrics: RunMetrics | None = None,
        trace: Trace | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
        self.node_id = node_id
        self.transport = transport
        self.time_scale = time_scale
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.trace_sink = trace if trace is not None else Trace(enabled=False)
        self._t0: float | None = None
        self._timer_tasks: set[asyncio.Task] = set()

    def start_clock(self) -> None:
        self._t0 = asyncio.get_event_loop().time()

    @property
    def now(self) -> float:
        if self._t0 is None:
            return 0.0
        return (asyncio.get_event_loop().time() - self._t0) / self.time_scale

    # -- node-facing surface --------------------------------------------------

    def send(self, dst: int, message: object) -> None:
        self.transport.send(dst, message)

    def broadcast(self, message: object) -> None:
        self.transport.broadcast(message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> _NetTimerHandle:
        async def fire() -> None:
            await asyncio.sleep(delay * self.time_scale)
            try:
                callback()
            except Exception:
                # The simulator propagates a timer-callback exception
                # and fails the run with a traceback; over sockets the
                # least we owe the operator is the same traceback
                # instead of a silent dead timer.
                _LOG.exception("node %s: timer callback failed", self.node_id)
                raise

        task = asyncio.ensure_future(fire())
        self._timer_tasks.add(task)
        task.add_done_callback(self._timer_tasks.discard)
        return _NetTimerHandle(task)

    def cancel_timers(self) -> None:
        for task in list(self._timer_tasks):
            task.cancel()

    # -- milestone reporting --------------------------------------------------

    def report_decision(self, value: object) -> None:
        self.metrics.latency.record_decision(self.node_id, value, self.now)
        self.trace(TraceKind.DECIDE, value=value)

    def report_view_entry(self, view: int) -> None:
        self.metrics.latency.record_view_entry(self.node_id, view, self.now)
        self.trace(TraceKind.VIEW_ENTER, view=view)

    def report_storage(self, size_bytes: int) -> None:
        self.metrics.storage.record(self.node_id, size_bytes)

    def trace(self, kind: TraceKind, **detail: object) -> None:
        if self.trace_sink.enabled:
            self.trace_sink.record(self.now, self.node_id, kind, **detail)
