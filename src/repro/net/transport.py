"""Asyncio TCP transport speaking the length-prefixed wire codec.

One :class:`NetTransport` per replica process: it listens on the
replica's peer port, dials every other replica, and moves encoded
frames.  Design points, in the order they matter operationally:

* **Per-peer outbound queues** — sends never block the protocol state
  machine; each peer has a queue drained by its own writer task.
* **Coalesced writes** — each writer wakeup drains every already-due
  frame in its queue into a single ``writev``-style buffer and hands
  the socket one write, so a burst of aggregated vote frames costs one
  syscall, not one per frame.
* **Adaptive delayed flush** — a Nagle-style hold window per peer
  lane: when recent traffic shows frames arriving close together, a
  sub-threshold buffer is held up to a deadline scaled off the link
  RTT observed on the reconnect path, so several activations' frames
  share one syscall.  The hold is governed by the same deterministic
  :class:`~repro.multishot.batching.AdaptiveBatchPolicy` controller
  the message plane uses (over frames per flush): an idle, Δ-paced
  lane decays the target back to one frame and stops holding, so
  latency-bound cells never pay the window.  Flush-critical frames —
  anything that is not good-case vote/proposal traffic, e.g. a
  timer-driven view change — bypass the hold immediately, and
  ``REPRO_NO_DELAY=1`` disables holding process-wide.  Per-lane
  ``flushes`` / ``frames`` / ``bytes`` / ``held_us`` counters feed the
  bench layer through ``CollectReply``.
* **Reconnect with backoff** — replicas start at different instants
  and may crash mid-run; a writer that cannot connect (or loses its
  connection) retries with exponential backoff while its queue keeps
  absorbing messages, so a rebooted peer picks up from the live
  traffic without any node noticing at the protocol layer.
* **Injected link latency** — an optional per-link one-way delay,
  applied as a FIFO pipe (each frame is written no earlier than
  ``enqueue time + latency``): localhost RTTs are tens of
  microseconds, far below any interesting Δ geometry, and the
  injected delay is what lets the sync/geo scenarios of the simulated
  experiments carry over to real sockets.
* **Loopback included** — ``broadcast`` delivers to the sender too
  (a node processes its own votes, exactly as in the simulator), via
  the event loop with the same injected latency as any other link.

:class:`NetContext` is the duck-typed
:class:`~repro.sim.runner.NodeContext` the transport hands a node:
wall-clock ``now`` in protocol Δ units (via ``time_scale`` seconds per
Δ), asyncio timers, and local metric/trace sinks.
"""

from __future__ import annotations

import asyncio
import logging
from collections.abc import Callable

from repro.config import repro_config
from repro.errors import ConfigurationError
from repro.metrics.collectors import RunMetrics
from repro.multishot.batching import AdaptiveBatchPolicy
from repro.net.codec import WIRE_CODEC, CodecError, FrameBuffer, Hello, WireCodec
from repro.sim.trace import Trace, TraceKind

_LOG = logging.getLogger(__name__)


def install_uvloop() -> bool:
    """Switch asyncio to ``uvloop``'s event loop when it is installed.

    ``uvloop`` is an *optional* extra (``pip install repro[uvloop]``);
    the deployment subsystem must run identically without it, so a
    missing module is the documented fallback, not an error.  Returns
    ``True`` when uvloop's policy is now active, ``False`` when stock
    asyncio remains in charge.  Set ``REPRO_NO_UVLOOP=1`` to force the
    stock loop even where uvloop is available (A/B timing runs).
    """
    if repro_config().no_uvloop:
        return False
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True

#: Reconnect backoff: first retry after INITIAL, doubling to CAP.
BACKOFF_INITIAL = 0.05
BACKOFF_CAP = 1.0

#: Outbound frames queued per peer before the oldest are dropped.  A
#: dead peer must not grow our memory without bound; consensus already
#: tolerates message loss (that is what view changes are for).
MAX_OUTBOUND_QUEUE = 65_536

#: A buffer at or past this many bytes flushes immediately — holding a
#: bulk transfer for more company only adds latency.
FLUSH_THRESHOLD = 16_384

#: Clamp bounds of the per-lane hold window, seconds.  The window is
#: RTT-scaled (see below) but must stay far below any Δ geometry the
#: benches run — 2 ms against the smallest 4 ms Δ keeps timers honest.
FLUSH_WINDOW_MIN = 100e-6
FLUSH_WINDOW_MAX = 2e-3

#: Longest the hold will wait for the *next* frame, seconds.  Frames
#: emitted by one activation burst land microseconds apart; one that
#: has not arrived within this gap is a round-trip away (a peer must
#: speak first), and waiting out the rest of the window for it would
#: only delay the quorum it is part of.  The gap — not the window —
#: bounds the latency cost of an unfilled hold.
FLUSH_GAP = 200e-6

#: Hold window as a multiple of the RTT observed while (re)connecting
#: the lane: on a LAN a few RTTs is enough for a neighboring
#: activation's frames to arrive; on a slow link the clamp caps it.
FLUSH_RTT_FACTOR = 4.0

#: frames-per-flush bounds of the per-lane adaptive controller.  The
#: target starts (and idles) at 1 — no holding at all — and only grows
#: while holding demonstrably merges extra frames.
FLUSH_TARGET_HI = 64

#: With the hold target idled at 1, probe with a real hold every this
#: many eligible flushes: the only way to learn that traffic turned
#: merge-friendly again costs one gap-bounded wait per interval.
FLUSH_PROBE_INTERVAL = 32


def delay_enabled() -> bool:
    """Whether peer lanes may hold sub-threshold buffers (default: yes).

    ``REPRO_NO_DELAY=1`` (or ``true``/``yes``) forces every frame to
    flush on its own wakeup — the PR 6 transport behavior — for A/B
    runs and latency-sensitive deployments.
    """
    return not repro_config().no_delay


_DELAYABLE_TYPES: tuple[type, ...] | None = None
_SLOT_MESSAGE: type | None = None
_VOTE_BATCH: type | None = None


def _delayable_types() -> tuple[type, ...]:
    # Lazy: the transport must not import protocol modules at import
    # time (the codec defers its registry the same way).
    global _DELAYABLE_TYPES, _SLOT_MESSAGE, _VOTE_BATCH
    if _DELAYABLE_TYPES is None:
        from repro.baselines.base import BPhaseVote, BProposal
        from repro.baselines.chained import SlotMessage
        from repro.multishot.messages import MSProposal, MSVote, VoteBatch

        _SLOT_MESSAGE = SlotMessage
        _VOTE_BATCH = VoteBatch
        _DELAYABLE_TYPES = (MSVote, MSProposal, BProposal, BPhaseVote)
    return _DELAYABLE_TYPES


def flush_critical(message: object) -> bool:
    """Whether holding ``message`` in a delay window could stall anyone.

    Good-case traffic — votes, proposals, and envelopes containing
    only those — is delayable: it flows continuously, so a bounded
    hold only merges it.  Everything else (view changes, suggest/proof
    recovery traffic, catch-up transfers, control frames) is
    timer-driven or rare, and a peer may be blocked on it: those
    frames bypass the hold and force the buffer out immediately.
    """
    delayable = _delayable_types()
    kind = type(message)
    if kind in delayable:
        return False
    if kind is _VOTE_BATCH:
        return any(flush_critical(inner) for inner in message.messages)
    if kind is _SLOT_MESSAGE:
        return flush_critical(message.inner)
    return True


class LinkLatency:
    """Static one-way link delays: a scalar, or per-(src, dst) overrides.

    ``overrides`` maps ``(src, dst)`` pairs to seconds; missing pairs
    fall back to ``default``.  Symmetric maps list both directions.
    """

    def __init__(
        self,
        default: float = 0.0,
        overrides: dict[tuple[int, int], float] | None = None,
    ) -> None:
        if default < 0:
            raise ConfigurationError(f"link latency must be >= 0, got {default}")
        self.default = default
        self.overrides = dict(overrides or {})
        for pair, value in self.overrides.items():
            if value < 0:
                raise ConfigurationError(f"link latency for {pair} is negative")

    def of(self, src: int, dst: int) -> float:
        return self.overrides.get((src, dst), self.default)

    def as_pairs(self) -> tuple[tuple[int, int, float], ...]:
        """Picklable form for crossing the process boundary."""
        return tuple((s, d, v) for (s, d), v in sorted(self.overrides.items()))

    @classmethod
    def from_pairs(cls, default: float, pairs: tuple[tuple[int, int, float], ...]) -> "LinkLatency":
        return cls(default, {(s, d): v for s, d, v in pairs})


class _PeerLane:
    """Outbound state for one peer: queue + reconnecting writer task.

    Queue entries are ``(enqueue time, frame bytes, flush critical)``.
    The lane carries the delayed-flush state: a deterministic
    frames-per-flush target, the RTT observed on the last (re)connect,
    and the counters the bench layer reports per peer.

    The controller observes the **marginal gain of each hold** — how
    many frames arrived *during* the wait, on top of what the wakeup
    drain had already merged for free — so a lane whose holds buy
    nothing (frames arrive in quorum waves the drain already
    coalesces, or not at all) decays its target to 1 and stops paying
    the wait.  The bands are tighter than the message plane's
    (``lo_band`` above 0.5) so a zero-gain hold can decay every target
    level down to 1, not just the large ones.
    """

    __slots__ = (
        "queue",
        "task",
        "dropped",
        "policy",
        "probe",
        "rtt",
        "flushes",
        "frames_flushed",
        "bytes_flushed",
        "held_us",
        "connects",
    )

    def __init__(self) -> None:
        self.queue: asyncio.Queue[tuple[float, bytes, bool]] = asyncio.Queue()
        self.task: asyncio.Task | None = None
        self.dropped = 0
        self.policy = AdaptiveBatchPolicy(
            lo=1, hi=FLUSH_TARGET_HI, start=1, lo_band=0.6, hi_band=0.9
        )
        self.probe = 0
        self.rtt = 0.0
        self.flushes = 0
        self.frames_flushed = 0
        self.bytes_flushed = 0
        self.held_us = 0
        self.connects = 0

    @property
    def hold_window(self) -> float:
        """RTT-scaled hold deadline, clamped to the liveness bounds."""
        return min(max(self.rtt * FLUSH_RTT_FACTOR, FLUSH_WINDOW_MIN), FLUSH_WINDOW_MAX)


class NetTransport:
    """Frame mover for one replica: server + per-peer outbound lanes."""

    def __init__(
        self,
        node_id: int,
        listen_host: str,
        listen_port: int,
        peers: dict[int, tuple[str, int]],
        on_message: Callable[[int, object], None],
        codec: WireCodec = WIRE_CODEC,
        latency: LinkLatency | None = None,
        flush_window: float | None = None,
    ) -> None:
        self.node_id = node_id
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.peers = dict(peers)
        self.on_message = on_message
        self.codec = codec
        self.latency = latency if latency is not None else LinkLatency()
        #: None → RTT-scaled per lane; a float pins every lane's hold
        #: window (tests); REPRO_NO_DELAY=1 or 0.0 disables holding.
        self.flush_window = flush_window
        self._delay = delay_enabled() and flush_window != 0.0
        self._lanes: dict[int, _PeerLane] = {}
        self._server: asyncio.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._on_peer_connection, self.listen_host, self.listen_port
        )
        for peer_id in self.peers:
            lane = _PeerLane()
            lane.task = asyncio.ensure_future(self._writer(peer_id, lane))
            self._lanes[peer_id] = lane

    async def stop(self) -> None:
        self._closed = True
        for lane in self._lanes.values():
            if lane.task is not None:
                lane.task.cancel()
        for task in list(self._reader_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- sending --------------------------------------------------------------

    def send(self, dst: int, message: object) -> None:
        """Queue one message for ``dst`` (or loop it back to ourselves)."""
        if dst == self.node_id:
            self._loopback(message)
            return
        lane = self._lanes.get(dst)
        if lane is None:
            return  # unknown peer: mirrors the simulator's closed world
        if lane.queue.qsize() >= MAX_OUTBOUND_QUEUE:
            lane.queue.get_nowait()
            lane.dropped += 1
        loop = asyncio.get_event_loop()
        lane.queue.put_nowait(
            (loop.time(), self.codec.encode_frame(message), flush_critical(message))
        )

    def broadcast(self, message: object) -> None:
        """Send to every peer and to ourselves (loopback semantics)."""
        frame: bytes | None = None
        critical = False
        loop = asyncio.get_event_loop()
        for dst in sorted(self.peers):
            lane = self._lanes.get(dst)
            if lane is None:
                continue
            if frame is None:
                frame = self.codec.encode_frame(message)
                critical = flush_critical(message)
            if lane.queue.qsize() >= MAX_OUTBOUND_QUEUE:
                lane.queue.get_nowait()
                lane.dropped += 1
            lane.queue.put_nowait((loop.time(), frame, critical))
        self._loopback(message)

    def flush_stats(self) -> tuple[tuple[int, int, int, int, int], ...]:
        """Per-peer ``(peer_id, flushes, frames, bytes, held_us)`` counters.

        Sorted by peer id; the shape ``CollectReply.flush_stats`` carries
        back to the bench driver.
        """
        return tuple(
            (peer_id, lane.flushes, lane.frames_flushed, lane.bytes_flushed, lane.held_us)
            for peer_id, lane in sorted(self._lanes.items())
        )

    def publish_metrics(self, registry) -> None:
        """Write the transport's counters into an obs registry.

        This is the delayed-flush counters' migration off the
        hand-rolled ``flush_stats`` tuples: per-peer counters land
        under ``transport.p<peer>.*``, process totals under
        ``transport.*``, and the per-peer outbound queue depth — the
        live "queue lag" signal, frames enqueued but not yet on the
        wire — as gauges.  Called at scrape/collect time, so the lane
        hot path still bumps plain ints.
        """
        total_flushes = total_frames = total_bytes = total_held = 0
        total_dropped = total_reconnects = 0
        max_queue = 0
        for peer_id, lane in sorted(self._lanes.items()):
            prefix = f"transport.p{peer_id}"
            registry.counter(f"{prefix}.flushes").set(lane.flushes)
            registry.counter(f"{prefix}.frames").set(lane.frames_flushed)
            registry.counter(f"{prefix}.bytes").set(lane.bytes_flushed)
            registry.counter(f"{prefix}.held_us").set(lane.held_us)
            registry.counter(f"{prefix}.dropped").set(lane.dropped)
            reconnects = max(0, lane.connects - 1)
            registry.counter(f"{prefix}.reconnects").set(reconnects)
            registry.gauge(f"{prefix}.queue_lag").set(lane.queue.qsize())
            total_flushes += lane.flushes
            total_frames += lane.frames_flushed
            total_bytes += lane.bytes_flushed
            total_held += lane.held_us
            total_dropped += lane.dropped
            total_reconnects += reconnects
            max_queue = max(max_queue, lane.queue.qsize())
        registry.counter("transport.flushes").set(total_flushes)
        registry.counter("transport.frames_flushed").set(total_frames)
        registry.counter("transport.bytes_flushed").set(total_bytes)
        registry.counter("transport.held_us").set(total_held)
        registry.counter("transport.dropped").set(total_dropped)
        registry.counter("transport.reconnects").set(total_reconnects)
        registry.gauge("transport.queue_lag").set(max_queue)

    def _loopback(self, message: object) -> None:
        delay = self.latency.of(self.node_id, self.node_id)
        loop = asyncio.get_event_loop()
        if delay > 0:
            loop.call_later(delay, self.on_message, self.node_id, message)
        else:
            loop.call_soon(self.on_message, self.node_id, message)

    # -- outbound lanes -------------------------------------------------------

    async def _writer(self, peer_id: int, lane: _PeerLane) -> None:
        """Drain one peer's queue over a connection that self-heals."""
        host, port = self.peers[peer_id]
        latency = self.latency.of(self.node_id, peer_id)
        hello = self.codec.encode_frame(Hello(self.node_id))
        backoff = BACKOFF_INITIAL
        reconnect_delay = 0.0
        pending: tuple[float, bytes, bool] | None = None
        while not self._closed:
            if reconnect_delay > 0:
                await asyncio.sleep(reconnect_delay)
                reconnect_delay = 0.0
            try:
                dial_start = asyncio.get_event_loop().time()
                reader, writer = await asyncio.open_connection(host, port)
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, BACKOFF_CAP)
                continue
            try:
                writer.write(hello)
                await writer.drain()
                # Only a landed handshake proves the link is real: a
                # listener that accepts and immediately resets must
                # keep escalating the backoff, not spin at full speed.
                backoff = BACKOFF_INITIAL
                lane.connects += 1
                loop = asyncio.get_event_loop()
                # The dial round-trip (SYN handshake + flushed Hello)
                # is the reconnect path's RTT observation — the only
                # latency signal the transport gets for free — and it
                # scales this lane's hold window.
                lane.rtt = loop.time() - dial_start
                queue = lane.queue
                while True:
                    if pending is None:
                        pending = await lane.queue.get()
                    enqueued, frame, critical = pending
                    if latency > 0:
                        wait = enqueued + latency - loop.time()
                        if wait > 0:
                            await asyncio.sleep(wait)
                    if writer.is_closing():
                        break  # peer went away: keep the frame, reconnect
                    # Coalesce every other already-due frame into the
                    # same write: one writev-style buffer per wakeup
                    # instead of one write per frame.  The first
                    # not-yet-due frame stays pending for the next
                    # wakeup, so injected latency is still a FIFO pipe.
                    pending = None
                    held_start = loop.time()
                    batch = bytearray(frame)
                    frames = 1
                    due_before = held_start - latency
                    while not queue.empty():
                        nxt = queue.get_nowait()
                        if latency > 0 and nxt[0] > due_before:
                            pending = nxt
                            break
                        batch.extend(nxt[1])
                        frames += 1
                        critical = critical or nxt[2]
                    # Delayed flush: hold a small non-critical buffer
                    # up to the RTT-scaled deadline so frames of the
                    # next activation share this syscall.  The hold
                    # runs only when the free wakeup-drain coalescing
                    # came up short of the lane's target (holding past
                    # an already-met target buys nothing), and the
                    # controller observes the frames gained *during*
                    # the wait — so a lane whose holds never merge
                    # decays to target 1 and stops holding, with a
                    # periodic probe hold to notice when traffic turns
                    # merge-friendly again.  A critical arrival
                    # flushes immediately; a not-yet-due arrival ends
                    # the hold (the latency pipe stays FIFO).
                    target = lane.policy.limit
                    eligible = (
                        self._delay
                        and not critical
                        and pending is None
                        and len(batch) < FLUSH_THRESHOLD
                    )
                    if eligible and target <= 1:
                        lane.probe += 1
                        if lane.probe >= FLUSH_PROBE_INTERVAL:
                            lane.probe = 0
                            target = 2  # probe hold
                    if eligible and frames < target:
                        drained = frames
                        window = self.flush_window
                        deadline = held_start + (
                            lane.hold_window if window is None else window
                        )
                        while frames < target and len(batch) < FLUSH_THRESHOLD:
                            remaining = deadline - loop.time()
                            if remaining <= 0:
                                break
                            try:
                                # Gap-bounded: a frame not here within
                                # FLUSH_GAP is not part of this burst —
                                # flush rather than stall its quorum.
                                nxt = await asyncio.wait_for(
                                    queue.get(), timeout=min(remaining, FLUSH_GAP)
                                )
                            except asyncio.TimeoutError:
                                break
                            if latency > 0 and nxt[0] + latency > loop.time():
                                pending = nxt
                                break
                            batch.extend(nxt[1])
                            frames += 1
                            if nxt[2]:
                                break  # flush-critical bypass
                        lane.policy.observe(1 + frames - drained)
                        lane.held_us += int((loop.time() - held_start) * 1e6)
                    lane.flushes += 1
                    lane.frames_flushed += frames
                    lane.bytes_flushed += len(batch)
                    writer.write(batch)
                    if writer.transport.get_write_buffer_size() > 1 << 20:
                        await writer.drain()
            except (OSError, ConnectionError):
                # Connection lost mid-write: the frame in flight is
                # dropped (consensus tolerates loss); pause one backoff
                # step, then reconnect and carry on with the queue.
                pending = None
                reconnect_delay = backoff
                backoff = min(backoff * 2, BACKOFF_CAP)
            finally:
                writer.close()

    # -- inbound --------------------------------------------------------------

    async def _on_peer_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        buffer = FrameBuffer(self.codec)
        sender: int | None = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    return
                for message in buffer.feed(data):
                    if sender is None:
                        if not isinstance(message, Hello):
                            return  # not a peer speaking our protocol
                        sender = message.node_id
                        continue
                    try:
                        self.on_message(sender, message)
                    except Exception:
                        # A dispatch bug must be loud (the simulator
                        # fails the whole run here) but one poisoned
                        # message must not silently drop the rest of
                        # the decoded batch.
                        _LOG.exception(
                            "node %s: dispatch of %s from peer %s failed",
                            self.node_id,
                            type(message).__name__,
                            sender,
                        )
        except (OSError, ConnectionError, CodecError):
            return
        except asyncio.CancelledError:
            return  # transport shutdown: a cancelled reader is clean
        finally:
            writer.close()


class _NetTimerHandle:
    """Duck-typed EventHandle over an asyncio task."""

    __slots__ = ("_task",)

    def __init__(self, task: asyncio.Task) -> None:
        self._task = task

    def cancel(self) -> None:
        self._task.cancel()

    @property
    def cancelled(self) -> bool:
        return self._task.cancelled()


class NetContext:
    """Duck-typed :class:`~repro.sim.runner.NodeContext` over a transport.

    ``time_scale`` is seconds of wall clock per protocol Δ: timers a
    node arms in Δ units sleep ``delay * time_scale`` seconds, and
    ``now`` reports wall time elapsed since :meth:`start_clock` in Δ
    units, matching the simulated geometry.
    """

    def __init__(
        self,
        node_id: int,
        transport: NetTransport,
        time_scale: float,
        metrics: RunMetrics | None = None,
        trace: Trace | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale must be positive, got {time_scale}")
        self.node_id = node_id
        self.transport = transport
        self.time_scale = time_scale
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.trace_sink = trace if trace is not None else Trace(enabled=False)
        self._t0: float | None = None
        self._timer_tasks: set[asyncio.Task] = set()

    def start_clock(self) -> None:
        self._t0 = asyncio.get_event_loop().time()

    @property
    def now(self) -> float:
        if self._t0 is None:
            return 0.0
        return (asyncio.get_event_loop().time() - self._t0) / self.time_scale

    # -- node-facing surface --------------------------------------------------

    def send(self, dst: int, message: object) -> None:
        self.transport.send(dst, message)

    def broadcast(self, message: object) -> None:
        self.transport.broadcast(message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> _NetTimerHandle:
        async def fire() -> None:
            await asyncio.sleep(delay * self.time_scale)
            try:
                callback()
            except Exception:
                # The simulator propagates a timer-callback exception
                # and fails the run with a traceback; over sockets the
                # least we owe the operator is the same traceback
                # instead of a silent dead timer.
                _LOG.exception("node %s: timer callback failed", self.node_id)
                raise

        task = asyncio.ensure_future(fire())
        self._timer_tasks.add(task)
        task.add_done_callback(self._timer_tasks.discard)
        return _NetTimerHandle(task)

    def cancel_timers(self) -> None:
        for task in list(self._timer_tasks):
            task.cancel()

    # -- milestone reporting --------------------------------------------------

    def report_decision(self, value: object) -> None:
        self.metrics.latency.record_decision(self.node_id, value, self.now)
        self.trace(TraceKind.DECIDE, value=value)

    def report_view_entry(self, view: int) -> None:
        self.metrics.latency.record_view_entry(self.node_id, view, self.now)
        self.trace(TraceKind.VIEW_ENTER, view=view)

    def report_storage(self, size_bytes: int) -> None:
        self.metrics.storage.record(self.node_id, size_bytes)

    def trace(self, kind: TraceKind, **detail: object) -> None:
        if self.trace_sink.enabled:
            self.trace_sink.record(self.now, self.node_id, kind, **detail)
