"""Multiprocess cluster launcher and workload driver.

:func:`run_cluster_workload` is the one-call deployment run the A7
experiment and the tests use: it spawns one OS process per replica
(:mod:`repro.net.replica_main`), connects to every replica's client
port, drives a timestamped transaction schedule over TCP, measures
wall-clock submit→execute latency from commit acknowledgements, and
finally collects every surviving replica's finalized chain, state
digest and applied-transaction log — the evidence the
:class:`~repro.verification.audit.SafetyAuditor` replays.

All client-side frame handling (connections, ack correlation, collect)
lives in :mod:`repro.net.client` — the same repository layer the
gateway service consumes — so this module is pure orchestration:
process lifecycle, schedule pacing, fault injection, measurement
windows.

Fault injection is first-class: ``kill_after`` terminates one replica
(SIGTERM, no goodbye) once a fraction of the workload has been
submitted, which is how the bench demonstrates that an n=4 deployment
finalizes through the loss of f=1 replica over real sockets.

The chain budget note: over sockets the pipeline advances one slot per
*actual* link delay, not per Δ, so leaders burn empty slots whenever
the mempool idles.  The launcher therefore gives TetraBFT a chain
budget sized to the whole run (slots are cheap — per-slot state is
pruned behind the finalized tip) instead of the simulator's tight
``slots_needed + slack`` sizing.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import os
import socket
import time
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError, SimulationError
from repro.net.client import AckCorrelator, ReplicaPool
from repro.net.codec import WIRE_CODEC, ClientSubmit, CollectReply, MetricsReply, StartRun
from repro.net.replica_main import ReplicaSpec, run_replica
from repro.smr.engine import ENGINE_NAMES
from repro.smr.mempool import Transaction
from repro.verification.audit import ReplicaEvidence


def reply_metric(reply, name: str, default: float = 0.0) -> float:
    """One named value out of a reply's obs-metrics payload.

    Works over both :class:`CollectReply` (``.metrics``) and
    :class:`MetricsReply` (``.items``); absent names — an older
    replica, a metric the cell never exercised — read as ``default``.
    """
    items = getattr(reply, "metrics", None)
    if items is None:
        items = getattr(reply, "items", ())
    for key, value in items:
        if key == name:
            return float(value)
    return default


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one deployed cluster run."""

    n: int
    engine: str = "tetrabft"
    host: str = "127.0.0.1"
    #: Seconds of wall clock per protocol Δ (timers scale by this).
    time_scale: float = 0.05
    #: Injected one-way link latency in seconds (scalar default).
    link_latency: float = 0.002
    #: Per-(src, dst) latency overrides in seconds.
    latency_overrides: tuple[tuple[int, int, float], ...] = ()
    batch: int = 10
    #: Chain budget for engines that need one (None = engine default /
    #: unbounded for the chained baselines); sized by the launcher when
    #: left at 0.
    max_slots: int | None = 0
    #: Hard wall-clock deadline for the whole run, seconds.
    deadline: float = 30.0
    #: Durability root: each replica persists under
    #: ``<data_dir>/replica-<id>``.  ``None`` (default) runs every
    #: replica on MemoryStorage — no persistence, no restart support.
    data_dir: str | None = None
    #: WAL group-commit window, seconds (durable clusters only).
    wal_fsync_window: float = 0.005
    #: Finalized blocks between snapshots (durable clusters only).
    snapshot_interval: int = 32

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"cluster needs n >= 1, got {self.n}")
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINE_NAMES)}"
            )
        if self.time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")


@dataclass
class NetRunResult:
    """Everything one deployed run produced."""

    injected: int
    #: Wall-clock submit→execute latency samples, one per
    #: (replica, transaction) observation — the simulator's metric.
    latency_samples: list[float]
    #: txids acked per replica id.
    acked: dict[int, set[str]]
    evidence: list[ReplicaEvidence]
    replies: dict[int, CollectReply]
    killed: tuple[int, ...]
    #: Replicas that died without being killed on purpose.
    unexpected_deaths: tuple[int, ...]
    #: First submit → last required ack, seconds (the measurement
    #: window txns/sec is computed over).
    measure_seconds: float
    #: Whether every live replica acked the full workload in time.
    completed: bool
    #: Driver-process CPU seconds over the drive (submit + ack + collect).
    driver_cpu_seconds: float = 0.0
    #: Wall-clock seconds from first submit to collect completion.
    elapsed_seconds: float = 0.0
    #: Replicas killed and then restarted from their data dirs.
    restarted: tuple[int, ...] = ()
    #: Mid-run obs scrape: node id → :class:`MetricsReply`, taken while
    #: the cluster was still in consensus (just after the workload was
    #: fully acked, before any collect).
    scrapes: dict[int, MetricsReply] = field(default_factory=dict)

    @property
    def busy_duty(self) -> float:
        """Fraction of available CPU the run actually burned.

        ``(Σ replica cpu + driver cpu) / (elapsed × usable cores)``,
        where usable cores is ``min(processes, os.cpu_count())`` — on a
        saturated single-core host this reads ~1.0, and a Δ-paced cell
        (everyone sleeping on timers) reads near 0.  The capacity-bound
        bench cells assert this is high, i.e. the pipe, not the pacing
        clock, is the bottleneck.
        """
        if self.elapsed_seconds <= 0:
            return 0.0
        total_cpu = self.driver_cpu_seconds + sum(
            reply_metric(reply, "process.cpu_seconds") for reply in self.replies.values()
        )
        lanes = min(len(self.replies) + 1, os.cpu_count() or 1)
        return total_cpu / (self.elapsed_seconds * max(lanes, 1))

    @property
    def committed(self) -> int:
        """Transactions executed by *every* live replica."""
        live = [n for n in self.acked if n not in self.killed]
        if not live:
            return 0
        return min(len(self.acked[n]) for n in live)

    @property
    def txns_per_sec(self) -> float:
        if self.measure_seconds <= 0:
            return 0.0
        return self.committed / self.measure_seconds


def allocate_ports(count: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` distinct free TCP ports (bind-0, read, close)."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def build_specs(config: ClusterConfig) -> list[ReplicaSpec]:
    """Allocate ports and lay out one spec per replica process."""
    ports = allocate_ports(2 * config.n, config.host)
    peer_ports = ports[: config.n]
    client_ports = ports[config.n :]
    specs = []
    for node_id in range(config.n):
        peer_addrs = tuple(
            (other, config.host, peer_ports[other])
            for other in range(config.n)
            if other != node_id
        )
        client_addrs = tuple(
            (other, config.host, client_ports[other])
            for other in range(config.n)
            if other != node_id
        )
        data_dir = None
        if config.data_dir is not None:
            data_dir = os.path.join(config.data_dir, f"replica-{node_id}")
        specs.append(
            ReplicaSpec(
                node_id=node_id,
                n=config.n,
                engine=config.engine,
                host=config.host,
                peer_port=peer_ports[node_id],
                client_port=client_ports[node_id],
                peer_addrs=peer_addrs,
                time_scale=config.time_scale,
                latency_default=config.link_latency,
                latency_pairs=config.latency_overrides,
                max_slots=config.max_slots,
                batch=config.batch,
                client_addrs=client_addrs,
                data_dir=data_dir,
                wal_fsync_window=config.wal_fsync_window,
                snapshot_interval=config.snapshot_interval,
            )
        )
    return specs


def sized_max_slots(config: ClusterConfig, injected: int) -> int | None:
    """Chain budget covering the whole wall-clock run.

    Chained baselines run unbounded (slots finalize eagerly); TetraBFT
    needs a finite budget, sized so empty-slot burn during mempool idle
    can never exhaust it: one slot costs at least one link delay, so
    ``deadline / link_latency`` bounds the slots any run can reach.
    """
    if config.engine != "tetrabft":
        return None
    per_slot = max(config.link_latency, 1e-3)
    burn_budget = int(config.deadline / per_slot) + 1
    return max(injected, 1) + 64 + burn_budget


@contextlib.contextmanager
def cluster_processes(config: ClusterConfig):
    """Spawn one OS process per replica; reap them all on exit.

    Yields ``(specs, processes)``.  The gateway experiment uses this
    directly (its cluster outlives any single workload schedule); the
    bench driver wraps it in :func:`run_cluster_workload`.
    """
    ctx = multiprocessing.get_context("spawn")
    specs = build_specs(config)
    processes = [ctx.Process(target=run_replica, args=(spec,), daemon=True) for spec in specs]
    for process in processes:
        process.start()
    try:
        yield specs, processes
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)


async def _drive(
    config: ClusterConfig,
    specs: list[ReplicaSpec],
    schedule: list[tuple[float, Transaction]],
    processes: list,
    kill_after: tuple[int, float] | None,
    restart_after: float | None = None,
) -> NetRunResult:
    correlator = AckCorrelator()
    correlator.track_nodes(range(config.n))
    progress = asyncio.Event()

    def on_ack(node_id: int, ack) -> None:
        if correlator.record_ack(node_id, ack, time.monotonic()) is not None:
            progress.set()

    def on_death(node_id: int) -> None:
        progress.set()

    pool = ReplicaPool.from_specs(
        specs, time_scale=config.time_scale, on_ack=on_ack, on_death=on_death
    )
    await pool.connect()
    drive_cpu0 = time.process_time()
    pool.start_run()

    killed: list[int] = []
    restarted: list[int] = []
    kill_at_index = None
    restart_at_index = None
    if kill_after is not None:
        kill_at_index = max(1, int(len(schedule) * kill_after[1]))
        if restart_after is not None:
            restart_at_index = max(kill_at_index + 1, int(len(schedule) * restart_after))

    def kill_victim() -> None:
        victim = kill_after[0]
        processes[victim].terminate()
        killed.append(victim)
        pool.exclude(victim)

    async def restart_victim() -> None:
        """Respawn the killed replica over its data dir and readmit it.

        The new process recovers snapshot+WAL before opening any
        socket, rejoins the peer mesh (peer transports have been
        retrying its address since the kill), and needs its own
        StartRun — the original broadcast predates its birth.
        """
        victim = kill_after[0]
        await asyncio.to_thread(processes[victim].join, 5.0)
        ctx = multiprocessing.get_context("spawn")
        process = ctx.Process(target=run_replica, args=(specs[victim],), daemon=True)
        process.start()
        processes[victim] = process
        await pool.readmit(victim)
        pool.send_to(victim, StartRun())
        restarted.append(victim)

    t0 = time.monotonic()
    first_submit = None
    for index, (at, txn) in enumerate(schedule):
        if kill_at_index is not None and index == kill_at_index:
            kill_victim()
        if restart_at_index is not None and index == restart_at_index and killed:
            await restart_victim()
        wait = t0 + at * config.time_scale - time.monotonic()
        if wait > 0:
            await asyncio.sleep(wait)
        now = time.monotonic()
        if first_submit is None:
            first_submit = now
        correlator.record_submit(txn.txid, now)
        # One serialization per transaction, not per connection — the
        # encode sits inside the measured latency window.
        pool.broadcast_frame(WIRE_CODEC.encode_frame(ClientSubmit(txn)))
    # Kill scheduled past the end of the workload (fraction >= 1).
    if kill_at_index is not None and kill_at_index >= len(schedule) and not killed:
        kill_victim()
    if restart_at_index is not None and killed and not restarted:
        await restart_victim()

    deadline = t0 + config.deadline
    completed = False
    # A readmitted replica re-acks only what it executes from its
    # restart onward (its recovered prefix was tracker-suppressed), so
    # workload completion is judged on the never-killed replicas; the
    # rejoiner's convergence is checked separately below.
    required = pool.live - set(killed)
    while time.monotonic() < deadline:
        if correlator.all_acked(required):
            completed = True
            break
        progress.clear()
        remaining = deadline - time.monotonic()
        try:
            await asyncio.wait_for(progress.wait(), timeout=min(0.2, remaining))
        except asyncio.TimeoutError:
            pass

    # Mid-run metrics snapshot: the cluster is still in consensus (no
    # collect has been sent), so windowed instruments — commit rate,
    # queue lag, mempool depth — are read live, not post-mortem.  A
    # scrape failure must never fail a run that measured fine.
    scrapes: dict[int, MetricsReply] = {}
    try:
        scrapes = await pool.scrape(timeout=min(5.0, config.deadline / 4))
    except (OSError, ConnectionError, asyncio.TimeoutError):
        pass

    if restarted and completed:
        # Convergence wait: poll the rejoiner's snapshot until it has
        # applied the full workload (recovery replay + catch-up), or
        # the deadline calls it a failure to converge.
        while time.monotonic() < deadline:
            snaps = await pool.snapshot(timeout=min(2.0, config.deadline / 4))
            reply = snaps.get(restarted[0])
            if reply is not None and correlator.expected <= set(reply.applied_txids):
                break
            await asyncio.sleep(0.1)

    # Collect evidence from every replica still standing.
    replies = await pool.collect()
    evidence = [
        ReplicaEvidence(
            node_id=reply.node_id,
            chain=tuple(reply.chain),
            state_digest=reply.state_digest,
            applied_txids=tuple(reply.applied_txids),
        )
        for reply in replies.values()
    ]
    pool.close()
    unexpected = tuple(
        sorted(
            node_id
            for node_id in range(config.n)
            if node_id not in killed and node_id not in replies
        )
    )
    measure_end = correlator.last_ack_time or time.monotonic()
    measure_start = first_submit if first_submit is not None else t0
    driver_cpu = time.process_time() - drive_cpu0
    elapsed = time.monotonic() - t0
    return NetRunResult(
        injected=len(correlator.expected),
        latency_samples=correlator.latency_samples,
        acked=correlator.acked,
        evidence=sorted(evidence, key=lambda ev: ev.node_id),
        replies=replies,
        killed=tuple(killed),
        unexpected_deaths=unexpected,
        measure_seconds=max(measure_end - measure_start, 0.0),
        completed=completed,
        driver_cpu_seconds=driver_cpu,
        elapsed_seconds=elapsed,
        restarted=tuple(restarted),
        scrapes=scrapes,
    )


def run_cluster_workload(
    config: ClusterConfig,
    schedule: list[tuple[float, Transaction]],
    kill_after: tuple[int, float] | None = None,
    restart_after: float | None = None,
) -> NetRunResult:
    """One full deployment run: spawn, drive, measure, collect, reap.

    ``schedule`` is (submit time in Δ, transaction) pairs, the same
    shape the simulated workloads yield; submit times are scaled by
    ``config.time_scale`` into wall clock.  ``kill_after=(node, frac)``
    SIGTERMs ``node`` once ``frac`` of the schedule has been submitted.
    ``restart_after=frac`` respawns the killed replica over its data
    dir once ``frac`` of the schedule has been submitted — requires
    ``kill_after`` and a durable cluster (``config.data_dir``).
    """
    if kill_after is not None and not 0 <= kill_after[0] < config.n:
        raise ConfigurationError(f"kill victim {kill_after[0]} outside 0..{config.n - 1}")
    if restart_after is not None:
        if kill_after is None:
            raise ConfigurationError("restart_after requires kill_after")
        if config.data_dir is None:
            raise ConfigurationError("restart_after requires a durable cluster (data_dir)")
        if restart_after <= kill_after[1]:
            raise ConfigurationError(
                f"restart fraction {restart_after} must come after kill fraction {kill_after[1]}"
            )
    if config.max_slots == 0:
        config = replace(config, max_slots=sized_max_slots(config, len(schedule)))
    # Port reservation is bind-then-close, so another process can steal
    # a port between reservation and the replica's own bind.  A cluster
    # that never opens its client ports raises before anything was
    # measured; one relaunch with freshly reserved ports absorbs it.
    for attempt in (0, 1):
        with cluster_processes(config) as (specs, processes):
            try:
                return asyncio.run(
                    _drive(config, specs, schedule, processes, kill_after, restart_after)
                )
            except SimulationError:
                if attempt == 1:
                    raise
    raise AssertionError("unreachable")  # pragma: no cover


def schedule_from_workload(workload) -> list[tuple[float, Transaction]]:
    """Materialize a simulated workload's (time, txn) stream for the wire."""
    return list(workload.transactions())
