"""Multiprocess cluster launcher and workload driver.

:func:`run_cluster_workload` is the one-call deployment run the A7
experiment and the tests use: it spawns one OS process per replica
(:mod:`repro.net.replica_main`), connects to every replica's client
port, drives a timestamped transaction schedule over TCP, measures
wall-clock submit→execute latency from commit acknowledgements, and
finally collects every surviving replica's finalized chain, state
digest and applied-transaction log — the evidence the
:class:`~repro.verification.audit.SafetyAuditor` replays.

Fault injection is first-class: ``kill_after`` terminates one replica
(SIGTERM, no goodbye) once a fraction of the workload has been
submitted, which is how the bench demonstrates that an n=4 deployment
finalizes through the loss of f=1 replica over real sockets.

The chain budget note: over sockets the pipeline advances one slot per
*actual* link delay, not per Δ, so leaders burn empty slots whenever
the mempool idles.  The launcher therefore gives TetraBFT a chain
budget sized to the whole run (slots are cheap — per-slot state is
pruned behind the finalized tip) instead of the simulator's tight
``slots_needed + slack`` sizing.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
import time
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError, SimulationError
from repro.net.codec import (
    WIRE_CODEC,
    ClientSubmit,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    StartRun,
)
from repro.net.replica_main import ReplicaSpec, run_replica
from repro.smr.engine import ENGINE_NAMES
from repro.smr.mempool import Transaction
from repro.verification.audit import ReplicaEvidence

#: Wall-clock seconds the driver waits for client ports to accept.
CONNECT_TIMEOUT = 15.0

#: Wall-clock seconds the driver waits for a CollectReply.
COLLECT_TIMEOUT = 15.0


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of one deployed cluster run."""

    n: int
    engine: str = "tetrabft"
    host: str = "127.0.0.1"
    #: Seconds of wall clock per protocol Δ (timers scale by this).
    time_scale: float = 0.05
    #: Injected one-way link latency in seconds (scalar default).
    link_latency: float = 0.002
    #: Per-(src, dst) latency overrides in seconds.
    latency_overrides: tuple[tuple[int, int, float], ...] = ()
    batch: int = 10
    #: Chain budget for engines that need one (None = engine default /
    #: unbounded for the chained baselines); sized by the launcher when
    #: left at 0.
    max_slots: int | None = 0
    #: Hard wall-clock deadline for the whole run, seconds.
    deadline: float = 30.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"cluster needs n >= 1, got {self.n}")
        if self.engine not in ENGINE_NAMES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; known: {', '.join(ENGINE_NAMES)}"
            )
        if self.time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")


@dataclass
class NetRunResult:
    """Everything one deployed run produced."""

    injected: int
    #: Wall-clock submit→execute latency samples, one per
    #: (replica, transaction) observation — the simulator's metric.
    latency_samples: list[float]
    #: txids acked per replica id.
    acked: dict[int, set[str]]
    evidence: list[ReplicaEvidence]
    replies: dict[int, CollectReply]
    killed: tuple[int, ...]
    #: Replicas that died without being killed on purpose.
    unexpected_deaths: tuple[int, ...]
    #: First submit → last required ack, seconds (the measurement
    #: window txns/sec is computed over).
    measure_seconds: float
    #: Whether every live replica acked the full workload in time.
    completed: bool

    @property
    def committed(self) -> int:
        """Transactions executed by *every* live replica."""
        live = [n for n in self.acked if n not in self.killed]
        if not live:
            return 0
        return min(len(self.acked[n]) for n in live)

    @property
    def txns_per_sec(self) -> float:
        if self.measure_seconds <= 0:
            return 0.0
        return self.committed / self.measure_seconds


def allocate_ports(count: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` distinct free TCP ports (bind-0, read, close)."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def build_specs(config: ClusterConfig) -> list[ReplicaSpec]:
    """Allocate ports and lay out one spec per replica process."""
    ports = allocate_ports(2 * config.n, config.host)
    peer_ports = ports[: config.n]
    client_ports = ports[config.n :]
    specs = []
    for node_id in range(config.n):
        peer_addrs = tuple(
            (other, config.host, peer_ports[other])
            for other in range(config.n)
            if other != node_id
        )
        specs.append(
            ReplicaSpec(
                node_id=node_id,
                n=config.n,
                engine=config.engine,
                host=config.host,
                peer_port=peer_ports[node_id],
                client_port=client_ports[node_id],
                peer_addrs=peer_addrs,
                time_scale=config.time_scale,
                latency_default=config.link_latency,
                latency_pairs=config.latency_overrides,
                max_slots=config.max_slots,
                batch=config.batch,
            )
        )
    return specs


def sized_max_slots(config: ClusterConfig, injected: int) -> int | None:
    """Chain budget covering the whole wall-clock run.

    Chained baselines run unbounded (slots finalize eagerly); TetraBFT
    needs a finite budget, sized so empty-slot burn during mempool idle
    can never exhaust it: one slot costs at least one link delay, so
    ``deadline / link_latency`` bounds the slots any run can reach.
    """
    if config.engine != "tetrabft":
        return None
    per_slot = max(config.link_latency, 1e-3)
    burn_budget = int(config.deadline / per_slot) + 1
    return max(injected, 1) + 64 + burn_budget


class _ClientConnection:
    """Driver-side connection to one replica's client port."""

    def __init__(self, node_id: int, driver: "_Driver") -> None:
        self.node_id = node_id
        self.driver = driver
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reply: CollectReply | None = None
        self.dead = False
        self._task: asyncio.Task | None = None

    async def connect(self, host: str, port: int) -> None:
        deadline = time.monotonic() + CONNECT_TIMEOUT
        while True:
            try:
                self.reader, self.writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise SimulationError(
                        f"replica {self.node_id} never opened its client port "
                        f"{host}:{port} within {CONNECT_TIMEOUT}s"
                    ) from None
                await asyncio.sleep(0.05)
        self._task = asyncio.ensure_future(self._read_loop())

    def send(self, message: object) -> None:
        self.send_frame(WIRE_CODEC.encode_frame(message))

    def send_frame(self, frame: bytes) -> None:
        if self.writer is not None and not self.writer.is_closing():
            self.writer.write(frame)

    async def _read_loop(self) -> None:
        assert self.reader is not None
        buffer = FrameBuffer(WIRE_CODEC)
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for message in buffer.feed(data):
                    if isinstance(message, CommitAck):
                        self.driver.on_ack(self.node_id, message)
                    elif isinstance(message, CollectReply):
                        self.reply = message
                        self.driver.on_reply()
        except (OSError, ConnectionError):
            pass
        finally:
            self.dead = True
            self.driver.on_death(self.node_id)

    def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self.writer is not None:
            self.writer.close()


@dataclass
class _Driver:
    """Shared driver state the connections report into."""

    expected: set[str] = field(default_factory=set)
    acked: dict[int, set[str]] = field(default_factory=dict)
    submit_times: dict[str, float] = field(default_factory=dict)
    latency_samples: list[float] = field(default_factory=list)
    last_ack_time: float = 0.0
    live: set[int] = field(default_factory=set)
    progress: asyncio.Event = field(default_factory=asyncio.Event)

    def on_ack(self, node_id: int, ack: CommitAck) -> None:
        now = time.monotonic()
        submitted = self.submit_times.get(ack.txid)
        if submitted is None:
            return  # an ack for a transaction we never sent (impossible today)
        acked = self.acked.setdefault(node_id, set())
        if ack.txid in acked:
            return
        acked.add(ack.txid)
        self.latency_samples.append(now - submitted)
        self.last_ack_time = now
        self.progress.set()

    def on_reply(self) -> None:
        self.progress.set()

    def on_death(self, node_id: int) -> None:
        self.live.discard(node_id)
        self.progress.set()

    def all_acked(self) -> bool:
        if not self.live:
            return False
        return all(self.expected <= self.acked.get(node_id, set()) for node_id in self.live)


async def _drive(
    config: ClusterConfig,
    specs: list[ReplicaSpec],
    schedule: list[tuple[float, Transaction]],
    processes: list,
    kill_after: tuple[int, float] | None,
) -> NetRunResult:
    driver = _Driver()
    driver.live = set(range(config.n))
    # Every replica gets an (initially empty) ack set up front, so a
    # replica that never acks anything drags `committed` to zero
    # instead of silently dropping out of the minimum.
    driver.acked = {node_id: set() for node_id in range(config.n)}
    connections = [_ClientConnection(spec.node_id, driver) for spec in specs]
    await asyncio.gather(
        *(
            conn.connect(config.host, spec.client_port)
            for conn, spec in zip(connections, specs)
        )
    )
    for conn in connections:
        conn.send(StartRun())

    killed: list[int] = []
    kill_at_index = None
    if kill_after is not None:
        kill_at_index = max(1, int(len(schedule) * kill_after[1]))

    t0 = time.monotonic()
    first_submit = None
    for index, (at, txn) in enumerate(schedule):
        if kill_at_index is not None and index == kill_at_index:
            victim = kill_after[0]
            processes[victim].terminate()
            killed.append(victim)
            driver.live.discard(victim)
        wait = t0 + at * config.time_scale - time.monotonic()
        if wait > 0:
            await asyncio.sleep(wait)
        now = time.monotonic()
        if first_submit is None:
            first_submit = now
        driver.expected.add(txn.txid)
        driver.submit_times.setdefault(txn.txid, now)
        # One serialization per transaction, not per connection — the
        # encode sits inside the measured latency window.
        frame = WIRE_CODEC.encode_frame(ClientSubmit(txn))
        for conn in connections:
            if not conn.dead and conn.node_id not in killed:
                conn.send_frame(frame)
    # Kill scheduled past the end of the workload (fraction >= 1).
    if kill_at_index is not None and kill_at_index >= len(schedule) and not killed:
        victim = kill_after[0]
        processes[victim].terminate()
        killed.append(victim)
        driver.live.discard(victim)

    deadline = t0 + config.deadline
    completed = False
    while time.monotonic() < deadline:
        if driver.all_acked():
            completed = True
            break
        driver.progress.clear()
        remaining = deadline - time.monotonic()
        try:
            await asyncio.wait_for(driver.progress.wait(), timeout=min(0.2, remaining))
        except asyncio.TimeoutError:
            pass

    # Collect evidence from every replica still standing.
    for conn in connections:
        if not conn.dead and conn.node_id in driver.live:
            conn.send(CollectRequest())
    collect_deadline = time.monotonic() + COLLECT_TIMEOUT
    while time.monotonic() < collect_deadline:
        waiting = [
            conn
            for conn in connections
            if conn.node_id in driver.live and conn.reply is None and not conn.dead
        ]
        if not waiting:
            break
        driver.progress.clear()
        try:
            await asyncio.wait_for(driver.progress.wait(), timeout=0.2)
        except asyncio.TimeoutError:
            pass

    replies = {conn.node_id: conn.reply for conn in connections if conn.reply is not None}
    evidence = [
        ReplicaEvidence(
            node_id=reply.node_id,
            chain=tuple(reply.chain),
            state_digest=reply.state_digest,
            applied_txids=tuple(reply.applied_txids),
        )
        for reply in replies.values()
    ]
    for conn in connections:
        conn.close()
    unexpected = tuple(
        sorted(
            node_id
            for node_id in range(config.n)
            if node_id not in killed and node_id not in replies
        )
    )
    measure_end = driver.last_ack_time or time.monotonic()
    measure_start = first_submit if first_submit is not None else t0
    return NetRunResult(
        injected=len(driver.expected),
        latency_samples=driver.latency_samples,
        acked=driver.acked,
        evidence=sorted(evidence, key=lambda ev: ev.node_id),
        replies=replies,
        killed=tuple(killed),
        unexpected_deaths=unexpected,
        measure_seconds=max(measure_end - measure_start, 0.0),
        completed=completed,
    )


def run_cluster_workload(
    config: ClusterConfig,
    schedule: list[tuple[float, Transaction]],
    kill_after: tuple[int, float] | None = None,
) -> NetRunResult:
    """One full deployment run: spawn, drive, measure, collect, reap.

    ``schedule`` is (submit time in Δ, transaction) pairs, the same
    shape the simulated workloads yield; submit times are scaled by
    ``config.time_scale`` into wall clock.  ``kill_after=(node, frac)``
    SIGTERMs ``node`` once ``frac`` of the schedule has been submitted.
    """
    if kill_after is not None and not 0 <= kill_after[0] < config.n:
        raise ConfigurationError(f"kill victim {kill_after[0]} outside 0..{config.n - 1}")
    if config.max_slots == 0:
        config = replace(config, max_slots=sized_max_slots(config, len(schedule)))
    ctx = multiprocessing.get_context("spawn")
    # Port reservation is bind-then-close, so another process can steal
    # a port between reservation and the replica's own bind.  A cluster
    # that never opens its client ports raises before anything was
    # measured; one relaunch with freshly reserved ports absorbs it.
    for attempt in (0, 1):
        specs = build_specs(config)
        processes = [
            ctx.Process(target=run_replica, args=(spec,), daemon=True)
            for spec in specs
        ]
        for process in processes:
            process.start()
        try:
            return asyncio.run(_drive(config, specs, schedule, processes, kill_after))
        except SimulationError:
            if attempt == 1:
                raise
        finally:
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=5.0)
    raise AssertionError("unreachable")  # pragma: no cover


def schedule_from_workload(workload) -> list[tuple[float, Transaction]]:
    """Materialize a simulated workload's (time, txn) stream for the wire."""
    return list(workload.transactions())
