"""Client-side replica connection pool — the repository layer.

Everything that talks to a replica's *client* TCP port lives here:
connect-with-retry, frame encode/decode, commit-ack correlation, and
the CollectReply request/response dance.  Two very different consumers
share it —

* the A7 bench driver (:mod:`repro.net.cluster`), which submits a
  pre-timestamped schedule and collects end-of-run evidence; and
* the client gateway (:mod:`repro.gateway`), which serves live HTTP/
  WebSocket traffic and additionally uses the non-terminating
  :class:`~repro.net.codec.SnapshotRequest` read path.

Keeping one implementation is the point: the frame handling used to be
inlined in ``net/cluster.py``, so a gateway would have re-grown its own
subtly different copy.  Now ``net/cluster.py`` is orchestration only.

Timeouts derive from the cluster's ``time_scale`` (seconds of wall
clock per protocol Δ) via :func:`scaled_timeout`: the historical
15-second constants are exactly reproduced at the reference smoke
``time_scale`` of 0.05 s/Δ and grow linearly above it, so a slow cell
(big ``time_scale``) can no longer outlive a hard-coded wall-clock
wait and flake.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.net.codec import (
    WIRE_CODEC,
    ClientSubmit,
    ClientSubmitBatch,
    CollectReply,
    CollectRequest,
    CommitAck,
    FrameBuffer,
    MetricsReply,
    MetricsRequest,
    SnapshotRequest,
    StartRun,
    WireCodec,
)
from repro.smr.mempool import Transaction

#: The seconds-per-Δ the A7 smoke cells run at; the base timeouts below
#: are calibrated for it and scale linearly above it.
REFERENCE_TIME_SCALE = 0.05

#: Wall-clock seconds to wait for a replica's client port to accept, at
#: (or below) the reference time scale.
CONNECT_TIMEOUT_BASE = 15.0

#: Wall-clock seconds to wait for a CollectReply, at (or below) the
#: reference time scale.
COLLECT_TIMEOUT_BASE = 15.0


def scaled_timeout(base: float, time_scale: float) -> float:
    """``base`` seconds at the reference ``time_scale``, linear above.

    A cluster running at 4x the reference seconds-per-Δ needs 4x the
    wall-clock patience for the same protocol progress; a faster-than-
    reference cluster keeps the full base as a floor (process spawn and
    socket accept do not speed up with the protocol clock).
    """
    return base * max(1.0, time_scale / REFERENCE_TIME_SCALE)


@dataclass
class AckCorrelator:
    """Correlates CommitAcks from many replicas back to submissions.

    The single source of truth for ack bookkeeping: which txids were
    submitted (and when), which replica acked which txid, the submit →
    ack wall-clock latency samples, and the slot each transaction
    finalized in.  Duplicate acks and acks for transactions never
    submitted are ignored.
    """

    expected: set[str] = field(default_factory=set)
    submit_times: dict[str, float] = field(default_factory=dict)
    #: txids acked, per replica id.
    acked: dict[int, set[str]] = field(default_factory=dict)
    #: Finalization slot per txid (first ack wins).
    slots: dict[str, int] = field(default_factory=dict)
    latency_samples: list[float] = field(default_factory=list)
    last_ack_time: float = 0.0

    def track_nodes(self, node_ids: Iterable[int]) -> None:
        """Pre-register replicas so one that never acks anything drags
        quorum/minimum computations to zero instead of dropping out."""
        for node_id in node_ids:
            self.acked.setdefault(node_id, set())

    def record_submit(self, txid: str, now: float) -> None:
        self.expected.add(txid)
        self.submit_times.setdefault(txid, now)

    def record_ack(self, node_id: int, ack: CommitAck, now: float) -> float | None:
        """Correlate one ack; returns the latency sample if it was new."""
        submitted = self.submit_times.get(ack.txid)
        if submitted is None:
            return None  # an ack for a transaction we never sent
        acked = self.acked.setdefault(node_id, set())
        if ack.txid in acked:
            return None
        acked.add(ack.txid)
        self.slots.setdefault(ack.txid, ack.slot)
        latency = now - submitted
        self.latency_samples.append(latency)
        self.last_ack_time = now
        return latency

    def ack_count(self, txid: str) -> int:
        """How many distinct replicas acked ``txid``."""
        return sum(1 for acked in self.acked.values() if txid in acked)

    def all_acked(self, live: set[int]) -> bool:
        """Every live replica acked every expected transaction."""
        if not live:
            return False
        return all(self.expected <= self.acked.get(node_id, set()) for node_id in live)


class ReplicaConnection:
    """One connection to one replica's client port."""

    def __init__(self, node_id: int, host: str, port: int, pool: "ReplicaPool") -> None:
        self.node_id = node_id
        self.host = host
        self.port = port
        self._pool = pool
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.dead = False
        self._task: asyncio.Task | None = None

    async def connect(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.reader, self.writer = await asyncio.open_connection(self.host, self.port)
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise SimulationError(
                        f"replica {self.node_id} never opened its client port "
                        f"{self.host}:{self.port} within {timeout}s"
                    ) from None
                await asyncio.sleep(0.05)
        self._task = asyncio.ensure_future(self._read_loop())

    def send_frame(self, frame: bytes) -> None:
        if self.writer is not None and not self.writer.is_closing():
            self.writer.write(frame)

    async def _read_loop(self) -> None:
        assert self.reader is not None
        buffer = FrameBuffer(self._pool.codec)
        try:
            while True:
                data = await self.reader.read(65536)
                if not data:
                    break
                for message in buffer.feed(data):
                    self._pool._on_message(self.node_id, message)
        except (OSError, ConnectionError):
            pass
        finally:
            self.dead = True
            self._pool._on_conn_death(self)

    def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self.writer is not None:
            self.writer.close()


class ReplicaPool:
    """A pool of client connections, one per replica.

    ``addrs`` maps replica id → (host, client port).  Commit acks are
    dispatched to the ``on_ack(node_id, CommitAck)`` callback; replica
    deaths to ``on_death(node_id)``.  CollectReplies are correlated to
    the :meth:`collect` / :meth:`snapshot` call that requested them.
    """

    def __init__(
        self,
        addrs: Mapping[int, tuple[str, int]],
        *,
        time_scale: float = REFERENCE_TIME_SCALE,
        codec: WireCodec = WIRE_CODEC,
        on_ack=None,
        on_death=None,
    ) -> None:
        self.codec = codec
        self.connect_timeout = scaled_timeout(CONNECT_TIMEOUT_BASE, time_scale)
        self.collect_timeout = scaled_timeout(COLLECT_TIMEOUT_BASE, time_scale)
        self.on_ack = on_ack
        self.on_death = on_death
        self._conns = {
            node_id: ReplicaConnection(node_id, host, port, self)
            for node_id, (host, port) in sorted(addrs.items())
        }
        self.live: set[int] = set(self._conns)
        self._reply_waiters: dict[int, asyncio.Future] = {}
        self._reply_lock = asyncio.Lock()

    @classmethod
    def from_specs(cls, specs, **kwargs) -> "ReplicaPool":
        """Build from the launcher's ReplicaSpec list (client ports)."""
        return cls({spec.node_id: (spec.host, spec.client_port) for spec in specs}, **kwargs)

    # -- lifecycle ------------------------------------------------------------

    async def connect(self) -> None:
        """Connect to every replica (waits out process start-up)."""
        await asyncio.gather(
            *(conn.connect(self.connect_timeout) for conn in self._conns.values())
        )

    def start_run(self) -> None:
        """Tell every replica the cluster is assembled: begin consensus."""
        self.broadcast(StartRun())

    def exclude(self, node_id: int) -> None:
        """Stop sending to (and expecting acks from) ``node_id`` — used
        when the orchestrator kills a replica on purpose."""
        self.live.discard(node_id)

    async def readmit(self, node_id: int) -> None:
        """Reconnect to a restarted replica and mark it live again.

        The old connection (dead since the kill) is replaced by a fresh
        one to the same address; the connect retries until the
        restarted process opens its client port.  The stale read-loop's
        death notification is ignored (it no longer owns the slot).
        """
        old = self._conns.get(node_id)
        if old is None:
            raise SimulationError(f"no replica {node_id} in this pool")
        old.close()
        conn = ReplicaConnection(node_id, old.host, old.port, self)
        self._conns[node_id] = conn
        await conn.connect(self.connect_timeout)
        self.live.add(node_id)

    def send_to(self, node_id: int, message: object) -> None:
        """Send one frame to one specific replica (e.g. a targeted
        StartRun at a readmitted process)."""
        conn = self._conns.get(node_id)
        if conn is not None and not conn.dead:
            conn.send_frame(self.codec.encode_frame(message))

    def close(self) -> None:
        for conn in self._conns.values():
            conn.close()

    # -- submission -----------------------------------------------------------

    def broadcast(self, message: object) -> None:
        """Encode once, send to every live replica."""
        self.broadcast_frame(self.codec.encode_frame(message))

    def broadcast_frame(self, frame: bytes) -> None:
        for conn in self._conns.values():
            if not conn.dead and conn.node_id in self.live:
                conn.send_frame(frame)

    def submit(self, txn: Transaction) -> None:
        """Submit one transaction to every live replica (one encode)."""
        self.broadcast(ClientSubmit(txn))

    def submit_many(self, txns: list[Transaction]) -> None:
        """Submit a server-side batch as one frame per replica.

        A singleton batch degenerates to the bare ``ClientSubmit`` —
        the same discipline the message plane's VoteBatch envelope
        follows (no envelope overhead for unbatchable traffic).
        """
        if not txns:
            return
        if len(txns) == 1:
            self.submit(txns[0])
        else:
            self.broadcast(ClientSubmitBatch(tuple(txns)))

    # -- reply correlation ----------------------------------------------------

    def _on_message(self, node_id: int, message: object) -> None:
        if isinstance(message, CommitAck):
            if self.on_ack is not None:
                self.on_ack(node_id, message)
        elif isinstance(message, (CollectReply, MetricsReply)):
            waiter = self._reply_waiters.get(node_id)
            if waiter is not None and not waiter.done():
                waiter.set_result(message)

    def _on_conn_death(self, conn: "ReplicaConnection") -> None:
        if self._conns.get(conn.node_id) is not conn:
            return  # a replaced (readmitted-over) connection dying late
        node_id = conn.node_id
        self.live.discard(node_id)
        waiter = self._reply_waiters.get(node_id)
        if waiter is not None and not waiter.done():
            waiter.cancel()
        if self.on_death is not None:
            self.on_death(node_id)

    async def _request_replies(
        self, request: object, timeout: float | None
    ) -> dict[int, CollectReply]:
        """Send ``request`` to every live replica; gather their replies.

        Replicas that die or stay silent are simply absent from the
        result — the caller decides whether that is fatal.
        """
        if timeout is None:
            timeout = self.collect_timeout
        async with self._reply_lock:
            targets = [
                conn
                for conn in self._conns.values()
                if not conn.dead and conn.node_id in self.live
            ]
            loop = asyncio.get_running_loop()
            self._reply_waiters = {conn.node_id: loop.create_future() for conn in targets}
            frame = self.codec.encode_frame(request)
            for conn in targets:
                conn.send_frame(frame)
            replies: dict[int, CollectReply] = {}
            deadline = time.monotonic() + timeout
            try:
                for node_id, waiter in self._reply_waiters.items():
                    remaining = deadline - time.monotonic()
                    try:
                        replies[node_id] = await asyncio.wait_for(waiter, max(remaining, 0.001))
                    except asyncio.TimeoutError:
                        pass
                    except asyncio.CancelledError:
                        # The waiter (not this task) was cancelled: the
                        # connection died mid-request.  Skip the node.
                        if not waiter.cancelled():
                            raise
            finally:
                self._reply_waiters = {}
            return replies

    async def snapshot(self, timeout: float | None = None) -> dict[int, CollectReply]:
        """Read-path snapshot: current chain/state from every live
        replica, *without* shutting anything down."""
        return await self._request_replies(SnapshotRequest(), timeout)

    async def scrape(self, timeout: float | None = None) -> dict[int, MetricsReply]:
        """In-band metrics scrape: every live replica's obs-registry
        snapshot, without perturbing consensus.  Cheap enough to poll
        mid-run (no chain copy travels)."""
        return await self._request_replies(MetricsRequest(), timeout)

    async def collect(self, timeout: float | None = None) -> dict[int, CollectReply]:
        """End-of-run evidence collection; replicas shut down after
        replying (the A7 teardown contract)."""
        return await self._request_replies(CollectRequest(), timeout)
