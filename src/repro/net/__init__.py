"""Deployment subsystem: wire protocol, TCP transport, process clusters.

Everything below :mod:`repro.sim` runs the protocol nodes inside one
Python interpreter; this package takes the *identical* transport-
agnostic state machines to real networked processes — the "implement
Multi-shot TetraBFT and evaluate it" direction the paper's conclusion
points at:

* :mod:`repro.net.codec` — a deterministic, versioned, length-prefixed
  binary codec with an explicit message-type registry covering every
  wire-crossing dataclass (core single-shot, multi-shot, the chained
  baselines, and the net layer's own control frames);
* :mod:`repro.net.transport` — an asyncio TCP transport speaking that
  framing, with per-peer outbound queues, reconnect-with-backoff and
  optional injected link latency so the geo scenarios carry over;
* :mod:`repro.net.client` — the client-side repository layer: a
  replica-connection pool with commit-ack correlation, the snapshot
  read path, and ``time_scale``-derived timeouts, shared by the A7
  bench driver and the gateway service;
* :mod:`repro.net.cluster` — a multiprocess cluster launcher/driver:
  one OS process per replica (any registered engine), a TCP client
  port per replica for transaction submission, commit acknowledgements
  for wall-clock latency measurement, and graceful shutdown that
  collects each replica's finalized chain, state digest and metrics
  for the :class:`~repro.verification.audit.SafetyAuditor`;
* :mod:`repro.net.replica_main` — the replica process entry point.

``python -m repro net`` (:mod:`repro.eval.net_bench`) is the A7
experiment over this stack.
"""

from repro.net.codec import (
    WIRE_VERSION,
    CodecError,
    FrameBuffer,
    MetricsReply,
    MetricsRequest,
    WireCodec,
    wire_codec,
)
from repro.net.client import AckCorrelator, ReplicaPool, scaled_timeout
from repro.net.cluster import ClusterConfig, NetRunResult, run_cluster_workload
from repro.net.transport import NetContext, NetTransport

__all__ = [
    "WIRE_VERSION",
    "CodecError",
    "FrameBuffer",
    "WireCodec",
    "wire_codec",
    "MetricsReply",
    "MetricsRequest",
    "AckCorrelator",
    "ReplicaPool",
    "scaled_timeout",
    "ClusterConfig",
    "NetRunResult",
    "run_cluster_workload",
    "NetContext",
    "NetTransport",
]
