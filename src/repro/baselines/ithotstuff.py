"""Information-Theoretic HotStuff (Abraham & Stern 2020) — Table 1 baseline.

The responsive, constant-storage, quadratic-communication protocol
TetraBFT improves on.  Good case (6 message delays): propose, echo,
key-1, key-2, key-3, lock, deciding on a quorum of lock messages.  A
view change adds suggest and request rounds before the new proposal
(proof/abort traffic folded into those rounds' payloads), giving the
paper's 9-delay view-change latency.
"""

from __future__ import annotations

from repro.baselines.base import (
    BaselineSpec,
    ChainVotingNode,
    PreRound,
    RoundKind,
)
from repro.core.config import ProtocolConfig
from repro.quorums.system import NodeId

IT_HS_SPEC = BaselineSpec(
    name="it-hs",
    phases=("echo", "key1", "key2", "key3", "lock"),
    pre_rounds=(
        PreRound("suggest", RoundKind.TO_LEADER),
        PreRound("request", RoundKind.FROM_LEADER),
    ),
    responsive=True,
)


class ITHotStuffNode(ChainVotingNode):
    """A well-behaved IT-HS participant."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, initial_value: object) -> None:
        super().__init__(node_id, config, IT_HS_SPEC, initial_value)
