"""Unauthenticated PBFT (Castro 2001) — Table 1 baselines.

Two rows of the table:

* **PBFT (bounded)** — constant persistent storage, but the
  view-change protocol makes each node send O(n)-sized messages to
  everyone (prepared certificates for the in-flight window), for a
  worst-case cubic total bit complexity.  Good case is the classic 3
  delays (pre-prepare, prepare, commit); a view change prepends
  request, view-change, view-change-ack and new-view rounds for the
  table's 7.
* **PBFT (unbounded)** — the simpler variant that keeps its whole
  message log; modeled by the ``unbounded_log`` flag, whose storage
  metric grows without bound over a run.

The O(n) payload factors live in the round specs (``payload_entries_per_n``)
so the scaling experiment (A1) measures the cubic growth directly.
"""

from __future__ import annotations

from repro.baselines.base import (
    BaselineSpec,
    ChainVotingNode,
    PreRound,
    RoundKind,
)
from repro.core.config import ProtocolConfig
from repro.quorums.system import NodeId

PBFT_BOUNDED_SPEC = BaselineSpec(
    name="pbft",
    phases=("prepare", "commit"),
    pre_rounds=(
        # view-change: broadcast, O(n) prepared certificates each.
        PreRound("view-change", RoundKind.BROADCAST, payload_entries_per_n=4),
        # view-change-ack: to the new leader.
        PreRound("view-change-ack", RoundKind.TO_LEADER),
        # new-view: from the leader, O(n) proof-of-view-change payload.
        PreRound("new-view", RoundKind.FROM_LEADER, payload_entries_per_n=4),
    ),
    responsive=True,
    # The timeout "request" message that starts a PBFT view change also
    # carries certificate state in the unauthenticated variant.
    vc_payload_entries_per_n=1,
)

PBFT_UNBOUNDED_SPEC = BaselineSpec(
    name="pbft-unbounded",
    phases=PBFT_BOUNDED_SPEC.phases,
    pre_rounds=PBFT_BOUNDED_SPEC.pre_rounds,
    responsive=True,
    unbounded_log=True,
    vc_payload_entries_per_n=1,
)


class PBFTNode(ChainVotingNode):
    """A well-behaved bounded-storage unauthenticated PBFT participant."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, initial_value: object) -> None:
        super().__init__(node_id, config, PBFT_BOUNDED_SPEC, initial_value)


class PBFTUnboundedNode(ChainVotingNode):
    """The unbounded-log PBFT variant (Table 1's unbounded/unbounded row)."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, initial_value: object) -> None:
        super().__init__(node_id, config, PBFT_UNBOUNDED_SPEC, initial_value)
