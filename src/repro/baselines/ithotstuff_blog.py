"""IT-HS "blog version" (Abraham & Stern 2021) — Table 1 baseline.

The non-responsive 4-phase variant: propose, echo, accept, lock.  Its
shorter pipeline is bought with non-responsiveness — after a view
change the new leader waits out a full Δ-bound timer to collect
suggest information (piggybacked here on the view-change messages)
instead of proceeding on quorum receipt.  When the actual network
delay δ equals Δ that wait is invisible and the view-change latency is
the table's 5 delays; when δ ≪ Δ the wait dominates, which is exactly
what the responsiveness ablation (experiment A2) demonstrates.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSpec, ChainVotingNode
from repro.core.config import ProtocolConfig
from repro.quorums.system import NodeId

IT_HS_BLOG_SPEC = BaselineSpec(
    name="it-hs-blog",
    phases=("echo", "accept", "lock"),
    pre_rounds=(),
    responsive=False,
)


class ITHotStuffBlogNode(ChainVotingNode):
    """A well-behaved participant of the non-responsive IT-HS variant."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, initial_value: object) -> None:
        super().__init__(node_id, config, IT_HS_BLOG_SPEC, initial_value)
