"""Li, Chan & Lesani (DISC 2023) — Table 1 comparison row.

A non-responsive protocol built from two chained instances of
three-phase Byzantine reliable broadcast: 6 message delays in both the
good case and after a timeout, with unbounded storage.  We model it in
the generic chain machine as one proposal plus five phases, a
non-responsive leader, and an unbounded message log.

Approximation note: the original has no leader-centric view-change
rounds (recovery is a timer-driven restart), so its restart latency is
the same 6 delays.  Our harness necessarily spends one extra delay on
the explicit view-change signal, so the measured restart latency is 7;
EXPERIMENTS.md records this expected one-delay accounting difference.
"""

from __future__ import annotations

from repro.baselines.base import BaselineSpec, ChainVotingNode
from repro.core.config import ProtocolConfig
from repro.quorums.system import NodeId

LI_SPEC = BaselineSpec(
    name="li-et-al",
    phases=("rbc1-echo", "rbc1-ready", "rbc2-send", "rbc2-echo", "rbc2-ready"),
    pre_rounds=(),
    responsive=False,
    unbounded_log=True,
)


class LiNode(ChainVotingNode):
    """A well-behaved participant of the Li et al. protocol model."""

    def __init__(self, node_id: NodeId, config: ProtocolConfig, initial_value: object) -> None:
        super().__init__(node_id, config, LI_SPEC, initial_value)
