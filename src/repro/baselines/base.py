"""Generic chained-voting machine underlying the Table 1 baselines.

Every protocol in the paper's Table 1 follows the same skeleton:

    [view entry] → (pre-proposal rounds) → propose → phase₁ → … → phaseₖ
    → decide on a quorum of phaseₖ; timeout → view-change.

What distinguishes them is the number of phases, the number and shape
of the view-change rounds, whether the leader is optimistically
responsive or waits out a Δ-sized timer, and the size of the
view-change payloads.  :class:`ChainVotingNode` implements the skeleton
once, parameterized by a :class:`BaselineSpec`; the concrete modules
(:mod:`repro.baselines.ithotstuff`, :mod:`repro.baselines.pbft`, …)
are thin spec factories.

These are **honest reconstructions at Table 1 granularity** (phase
structure, responsiveness, message sizes, storage growth), not full
reproductions of the cited systems: safe-value selection after a view
change uses a simple highest-lock rule, adequate under the crash
faults the comparison benches inject, rather than each paper's
complete Byzantine view-change logic.  TetraBFT itself — the system
under study — has its full rules implemented in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.core.config import ProtocolConfig
from repro.errors import ConfigurationError
from repro.quorums.system import NodeId
from repro.sim.events import EventHandle
from repro.sim.runner import NodeContext, SimNode
from repro.sim.trace import TraceKind


class RoundKind(Enum):
    """How a pre-proposal (view-change) round flows."""

    TO_LEADER = "to_leader"
    BROADCAST = "broadcast"
    FROM_LEADER = "from_leader"


@dataclass(frozen=True)
class PreRound:
    """One view-change round: name, direction, and payload size.

    ``payload_entries(n)`` models the round's message size in "entries"
    (8 bytes each): PBFT's view-change carries O(n) prepared
    certificates, TetraBFT's and IT-HS's carry O(1) vote records.
    """

    name: str
    kind: RoundKind
    payload_entries_per_n: int = 0
    payload_entries_const: int = 2

    def payload_entries(self, n: int) -> int:
        return self.payload_entries_const + self.payload_entries_per_n * n


@dataclass(frozen=True)
class BaselineSpec:
    """Static description of one Table 1 protocol."""

    name: str
    #: names of the voting phases after the proposal (k phases ⇒
    #: good-case latency 1 + k message delays).
    phases: tuple[str, ...]
    #: view-change rounds between view entry and the new proposal.
    pre_rounds: tuple[PreRound, ...] = ()
    #: non-responsive protocols make the new leader wait a full Δ-bound
    #: timer before proposing instead of proposing on quorum receipt.
    responsive: bool = True
    #: keep a full message log (the PBFT-unbounded / Li et al. rows).
    unbounded_log: bool = False
    #: entries in the timeout-triggered view-change message itself.
    vc_payload_entries_per_n: int = 0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError("a protocol needs at least one voting phase")

    @property
    def good_case_latency(self) -> int:
        """Analytic good-case latency in message delays (proposal + phases)."""
        return 1 + len(self.phases)

    @property
    def view_change_latency(self) -> int:
        """Analytic latency of a view beginning with a view-change."""
        return 1 + len(self.pre_rounds) + self.good_case_latency


# -- messages -------------------------------------------------------------------------


@dataclass(frozen=True)
class BProposal:
    protocol: str
    view: int
    value: object


@dataclass(frozen=True)
class BPhaseVote:
    protocol: str
    view: int
    phase: int
    value: object


@dataclass(frozen=True)
class BViewChange:
    protocol: str
    view: int
    lock_view: int
    lock_value: object
    entries: int = 2

    def wire_size(self) -> int:
        return 16 + 8 * self.entries


@dataclass(frozen=True)
class BRound:
    """A pre-proposal round message (suggest / request / ack / new-view…)."""

    protocol: str
    view: int
    round_index: int
    lock_view: int
    lock_value: object
    entries: int = 2

    def wire_size(self) -> int:
        return 24 + 8 * self.entries


@dataclass
class _BViewState:
    proposal: BProposal | None = None
    phase_votes: dict[tuple[int, object], set[NodeId]] = field(default_factory=dict)
    sent_phase: set[int] = field(default_factory=set)
    round_msgs: dict[int, dict[NodeId, BRound]] = field(default_factory=dict)
    rounds_done: int = 0
    rounds_emitted: set[int] = field(default_factory=set)
    proposed: bool = False
    wait_elapsed: bool = False


class ChainVotingNode(SimNode):
    """A well-behaved node of a :class:`BaselineSpec` protocol."""

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        spec: BaselineSpec,
        initial_value: object,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.spec = spec
        self.initial_value = initial_value
        self.view = 0
        self.decided = False
        self.decided_value: object | None = None
        # The O(1) persistent state: the highest "locked" value, i.e.
        # the newest value seen at the penultimate phase.
        self.lock_view = -1
        self.lock_value: object | None = None
        self._state = _BViewState()
        self._vc_senders: dict[int, set[NodeId]] = {}
        self._highest_vc_sent = 0
        self._ctx: NodeContext | None = None
        self._timer: EventHandle | None = None
        self._log_entries = 0  # grows forever when spec.unbounded_log
        self._wait_ready: set[int] = set()  # views whose Δ wait elapsed

    # -- plumbing ------------------------------------------------------------------

    @property
    def ctx(self) -> NodeContext:
        assert self._ctx is not None
        return self._ctx

    def _is_leader(self, view: int) -> bool:
        return self.config.leader_of(view) == self.node_id

    def _report_storage(self) -> None:
        base = 4 * 16  # lock + view + decision bookkeeping
        if self.spec.unbounded_log:
            base += 16 * self._log_entries
        self.ctx.report_storage(base)

    def _log(self, entries: int = 1) -> None:
        if self.spec.unbounded_log:
            self._log_entries += entries
            self._report_storage()

    # -- lifecycle --------------------------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._enter_view(0, initial=True)

    def _enter_view(self, view: int, initial: bool = False) -> None:
        if not initial and view <= self.view:
            return
        self.view = view
        self._state = _BViewState()
        self._vc_senders = {v: s for v, s in self._vc_senders.items() if v > view}
        self._arm_timer()
        self.ctx.report_view_entry(view)
        if view > 0:
            self._advance_rounds()
            if view in self._wait_ready:
                self._state.wait_elapsed = True
        self._maybe_propose()

    def _wait_done(self, view: int) -> None:
        """The non-responsive Δ wait elapsed for ``view``."""
        self._wait_ready.add(view)
        if view == self.view:
            self._state.wait_elapsed = True
            self._maybe_propose()

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        view_at_arm = self.view
        self._timer = self.ctx.set_timer(
            self.config.view_timeout, lambda: self._on_timeout(view_at_arm)
        )

    def _on_timeout(self, view: int) -> None:
        if view != self.view:
            return
        self.ctx.trace(TraceKind.TIMER, view=view)
        if not self.decided:
            self._send_view_change(self.view + 1, force=True)
        self._arm_timer()

    def _send_view_change(self, view: int, force: bool = False) -> None:
        if view < self._highest_vc_sent or (view == self._highest_vc_sent and not force):
            return
        self._highest_vc_sent = view
        entries = 2 + self.spec.vc_payload_entries_per_n * self.config.n
        self.ctx.trace(TraceKind.VIEW_CHANGE_SENT, view=view)
        self.ctx.broadcast(
            BViewChange(
                self.spec.name, view, self.lock_view, self.lock_value, entries=entries
            )
        )
        if not self.spec.responsive and self._is_leader(view):
            # Non-responsive protocols: the incoming leader starts its
            # Δ-bound collection wait the moment it learns a view
            # change is underway (its own timer / the f+1 echo), which
            # is why the wait overlaps the view-change delay when
            # δ = Δ and dominates when δ ≪ Δ.
            self.ctx.set_timer(self.config.delta, lambda: self._wait_done(view))

    # -- receive ------------------------------------------------------------------------

    def receive(self, sender: NodeId, message: object) -> None:
        protocol = getattr(message, "protocol", None)
        if protocol != self.spec.name:
            return
        self._log()
        if isinstance(message, BViewChange):
            self._on_view_change(sender, message)
        elif isinstance(message, BRound):
            self._on_round(sender, message)
        elif isinstance(message, BProposal):
            self._on_proposal(sender, message)
        elif isinstance(message, BPhaseVote):
            self._on_phase_vote(sender, message)

    # -- view change & pre-proposal rounds ----------------------------------------------------

    def _on_view_change(self, sender: NodeId, message: BViewChange) -> None:
        view = message.view
        if view <= self.view:
            return
        senders = self._vc_senders.setdefault(view, set())
        senders.add(sender)
        if self.config.quorum_system.is_blocking(senders) and view > self._highest_vc_sent:
            self._send_view_change(view)
        if self.config.quorum_system.is_quorum(senders) and view > self.view:
            self._enter_view(view)

    def _emit_round(self, round_spec: PreRound, index: int) -> None:
        """Send this round's message if our role makes us a sender."""
        message = BRound(
            protocol=self.spec.name,
            view=self.view,
            round_index=index,
            lock_view=self.lock_view,
            lock_value=self.lock_value,
            entries=round_spec.payload_entries(self.config.n),
        )
        if round_spec.kind is RoundKind.TO_LEADER:
            self.ctx.send(self.config.leader_of(self.view), message)
        elif round_spec.kind is RoundKind.BROADCAST:
            self.ctx.broadcast(message)
        elif self._is_leader(self.view):  # FROM_LEADER
            self.ctx.broadcast(message)

    def _round_complete(self, index: int) -> bool:
        """Whether this node can consider round ``index`` finished.

        TO_LEADER rounds are only observable at the leader; everyone
        else just sends and moves on.  FROM_LEADER rounds complete on
        the leader's (single) message; BROADCAST rounds on a quorum.
        """
        spec = self.spec.pre_rounds[index]
        received = self._state.round_msgs.get(index, {})
        if spec.kind is RoundKind.TO_LEADER:
            if not self._is_leader(self.view):
                return True
            return self.config.quorum_system.is_quorum(received.keys())
        if spec.kind is RoundKind.FROM_LEADER:
            return self.config.leader_of(self.view) in received
        return self.config.quorum_system.is_quorum(received.keys())

    def _on_round(self, sender: NodeId, message: BRound) -> None:
        if message.view != self.view:
            return
        index = message.round_index
        if index >= len(self.spec.pre_rounds):
            return
        store = self._state.round_msgs.setdefault(index, {})
        store[sender] = message
        self._advance_rounds()

    def _advance_rounds(self) -> None:
        """Emit and complete pre-proposal rounds in order."""
        state = self._state
        rounds = self.spec.pre_rounds
        while state.rounds_done < len(rounds):
            index = state.rounds_done
            if index not in state.rounds_emitted:
                state.rounds_emitted.add(index)
                self._emit_round(rounds[index], index)
            if not self._round_complete(index):
                return
            state.rounds_done = index + 1
        self._maybe_propose()

    # -- proposal ---------------------------------------------------------------------------------

    def _maybe_propose(self) -> None:
        state = self._state
        if state.proposed or not self._is_leader(self.view):
            return
        if self.view > 0:
            if state.rounds_done < len(self.spec.pre_rounds):
                return
            if not self.spec.responsive and not state.wait_elapsed:
                return
        state.proposed = True
        value = self._choose_value()
        self.ctx.trace(TraceKind.PROPOSE, view=self.view, value=value)
        self.ctx.broadcast(BProposal(self.spec.name, self.view, value))

    def _choose_value(self) -> object:
        """Highest-lock selection from the last to-leader round (plus our own)."""
        best_view, best_value = self.lock_view, self.lock_value
        for store in self._state.round_msgs.values():
            for message in store.values():
                if message.lock_view > best_view and message.lock_value is not None:
                    best_view, best_value = message.lock_view, message.lock_value
        if best_value is None:
            return self.initial_value
        return best_value

    def _on_proposal(self, sender: NodeId, message: BProposal) -> None:
        if message.view != self.view or sender != self.config.leader_of(self.view):
            return
        if self._state.proposal is not None:
            return
        self._state.proposal = message
        self._cast_phase(0, message.value)

    # -- voting phases ---------------------------------------------------------

    def _on_phase_vote(self, sender: NodeId, message: BPhaseVote) -> None:
        if message.view != self.view:
            return
        key = (message.phase, message.value)
        supporters = self._state.phase_votes.setdefault(key, set())
        supporters.add(sender)
        if not self.config.quorum_system.is_quorum(supporters):
            return
        next_phase = message.phase + 1
        if next_phase >= len(self.spec.phases):
            self._decide(message.value)
            return
        self._cast_phase(next_phase, message.value)

    def _cast_phase(self, phase: int, value: object) -> None:
        state = self._state
        if phase in state.sent_phase:
            return
        state.sent_phase.add(phase)
        # The penultimate phase is the "lock" acquisition in all three
        # baseline protocols (prepare-certificate in PBFT, key phases
        # in IT-HS): record it as the persistent lock.
        if phase == len(self.spec.phases) - 1 and self.view > self.lock_view:
            self.lock_view = self.view
            self.lock_value = value
        self._report_storage()
        self.ctx.trace(TraceKind.VOTE, phase=phase, view=self.view, value=value)
        self.ctx.broadcast(BPhaseVote(self.spec.name, self.view, phase, value))

    def _decide(self, value: object) -> None:
        if self.decided:
            return
        self.decided = True
        self.decided_value = value
        self.ctx.report_decision(value)
