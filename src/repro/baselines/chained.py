"""Table 1 baselines promoted to multi-slot chained SMR engines.

:class:`~repro.baselines.base.ChainVotingNode` implements each
comparison protocol as a *single-shot* machine: one value, one
decision.  The SMR experiments need the same protocols as ordering
cores behind the :class:`~repro.smr.engine.ConsensusEngine` boundary —
deciding a *chain* of blocks whose payloads come from a live mempool —
so the paper's comparative claims can be measured end to end (client
submit → finalized execution) rather than only at Table 1 granularity.

:class:`ChainedEngine` does that by running one single-shot instance
per slot, sequentially:

* the instance for slot ``s`` is the unmodified chain-voting skeleton
  (phases, locks, view changes, Δ-waits for non-responsive protocols)
  over a per-slot leader rotation (``leader_of(slot + view)``, so a
  view change rotates away from a faulty slot leader);
* the slot's leader mints its proposal **at proposal time** from the
  engine's propose-payload hook — a block extending the engine's
  finalized tip with a fresh mempool batch — so aborted proposals are
  re-batched by the next leader exactly as in the multi-shot path;
* deciding slot ``s`` finalizes its block (there is no finality lag:
  unlike the pipelined protocol, a decision *is* finality), fires the
  finalization callback, cancels the slot's timers, and starts slot
  ``s + 1``.

Sequential slots mean nodes can skew: messages for future slots are
buffered (within a bounded window) until the local chain reaches them,
and a node left behind — e.g. the crash-recovery scenario's rebooted
replica, whose peers have long stopped re-sending old-slot votes —
recovers through a **catch-up channel**: its timeout-driven view-change
broadcast for a slot its peers already decided is answered with a
batch of decided blocks (:data:`CATCHUP_BATCH` per probe, far more
than peers can decide per timeout period, so the deficit shrinks every
round trip), which the laggard adopts and applies in chain order.
This is the minimal state-transfer path every deployed SMR system
pairs with its ordering core.

Wire messages are the skeleton's own, wrapped in a slot envelope
(:class:`SlotMessage`); honest-node message complexity per slot is the
single-shot protocol's.  Storage: the engine keeps the finalized chain
(the ledger) plus a bounded window of undecided-slot state, and prunes
non-finalized block bodies behind :data:`RETENTION_SLOTS`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.baselines.base import BaselineSpec, BViewChange, ChainVotingNode
from repro.core.config import ProtocolConfig
from repro.multishot.batching import BatchingContext, batching_enabled
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore
from repro.multishot.messages import VoteBatch
from repro.multishot.node import (
    FinalizeCallback,
    PayloadFn,
    default_payload,
)
from repro.quorums.system import NodeId
from repro.sim.runner import NodeContext
from repro.sim.trace import TraceKind

#: Non-finalized block bodies (aborted proposals) older than this many
#: slots behind the tip are pruned; finalized bodies are the ledger and
#: are kept (they also serve catch-up replies).
RETENTION_SLOTS = 16

#: How far ahead of the local chain a message may be and still be
#: buffered.  Anything further is dropped — the catch-up channel, not
#: the buffer, is what brings a badly lagging node back.
BUFFER_WINDOW = 32

#: Decided blocks served per catch-up reply.  Must comfortably exceed
#: the slots a peer can decide per view timeout (one per good-case
#: round trip, ≈ 9Δ/3Δ = 3 for the shortest ladder), so a laggard
#: probing once per timeout gains ground much faster than it loses it
#: and converges even under sustained load with repeated outages.
CATCHUP_BATCH = 64


@dataclass(frozen=True)
class SlotMessage:
    """A single-shot protocol message travelling on behalf of one slot."""

    slot: int
    inner: object

    def wire_size(self) -> int:
        from repro.metrics.collectors import estimate_wire_size

        return 8 + estimate_wire_size(self.inner)


@dataclass(frozen=True)
class CatchUp:
    """State transfer: decided blocks from ``slot`` on, chain order."""

    slot: int
    blocks: tuple[Block, ...]

    def wire_size(self) -> int:
        return 8 + sum(block.wire_size() for block in self.blocks)


class _DeadHandle:
    """Timer handle for an already-decided slot: never scheduled."""

    __slots__ = ()

    def cancel(self) -> None:
        pass


_DEAD_HANDLE = _DeadHandle()


class _SlotContext:
    """The context one slot instance sees: slot-tags outgoing traffic,
    tracks timers for cancellation at decision, and turns the
    skeleton's single-shot decision report into the engine's
    finalization step."""

    __slots__ = ("_engine", "_slot")

    def __init__(self, engine: "ChainedEngine", slot: int) -> None:
        self._engine = engine
        self._slot = slot

    @property
    def now(self) -> float:
        return self._engine.ctx.now

    def send(self, dst: NodeId, message: object) -> None:
        self._engine.ctx.send(dst, SlotMessage(self._slot, message))

    def broadcast(self, message: object) -> None:
        self._engine.ctx.broadcast(SlotMessage(self._slot, message))

    def set_timer(self, delay: float, callback):
        engine = self._engine
        if self._slot < engine.active_slot:
            # The slot decided while a timer callback was in flight; its
            # re-arm must not keep a dead instance ticking forever.
            return _DEAD_HANDLE
        handle = engine.ctx.set_timer(delay, callback)
        engine._slot_timers.append(handle)
        return handle

    def report_decision(self, value: object) -> None:
        self._engine._on_slot_decided(self._slot, value)

    def report_view_entry(self, view: int) -> None:
        # Per-slot view entries are protocol detail, not a run-level
        # latency milestone: trace them, keyed by slot.
        self._engine.ctx.trace(TraceKind.VIEW_ENTER, slot=self._slot, view=view)

    def report_storage(self, size_bytes: int) -> None:
        # The instance reports its O(1)-or-log state; the chain itself
        # grows like any ledger (one entry per finalized block).
        engine = self._engine
        engine.ctx.report_storage(size_bytes + 16 * len(engine.finalized))

    def trace(self, kind: TraceKind, **detail: object) -> None:
        self._engine.ctx.trace(kind, slot=self._slot, **detail)


class _SlotShot(ChainVotingNode):
    """One slot's single-shot instance: the unmodified skeleton, except
    that a leader with nothing forced mints a fresh block from the
    engine's payload hook instead of carrying a preset initial value."""

    def __init__(self, engine: "ChainedEngine", slot: int) -> None:
        super().__init__(
            engine.node_id,
            engine.slot_config(slot),
            engine.spec,
            initial_value=None,
        )
        self._engine = engine
        self._slot = slot

    def _choose_value(self) -> object:
        value = super()._choose_value()
        if value is None:
            value = self._engine._mint_block(self._slot)
        return value


class ChainedEngine:
    """A Table 1 baseline protocol as a multi-slot consensus engine.

    Satisfies :class:`~repro.smr.engine.ConsensusEngine` structurally;
    see the module docstring for the slot/catch-up design.
    """

    def __init__(
        self,
        node_id: NodeId,
        base: ProtocolConfig,
        spec: BaselineSpec,
        payload_fn: PayloadFn | None = None,
        on_finalize: FinalizeCallback | None = None,
        max_slots: int | None = None,
        batching: bool | None = None,
    ) -> None:
        self.node_id = node_id
        self.base = base
        self.spec = spec
        self.payload_fn = payload_fn if payload_fn is not None else default_payload
        self.on_finalize = on_finalize
        self.max_slots = max_slots
        # None → consult the REPRO_NO_BATCH escape hatch at start().
        self._batching = batching
        self._batch_ctx: BatchingContext | None = None
        self.store = BlockStore()
        self.finalized: list[Block] = []
        self._finalized_digests: set[str] = set()
        self.active_slot = 1
        self._shot: _SlotShot | None = None
        self._slot_timers: list = []
        self._buffer: dict[int, list[tuple[NodeId, object]]] = {}
        self._ctx: NodeContext | None = None

    # -- plumbing -------------------------------------------------------------

    @property
    def ctx(self) -> NodeContext:
        assert self._ctx is not None, "engine used before start()"
        return self._ctx

    @property
    def finalized_chain(self) -> list[Block]:
        return list(self.finalized)

    def slot_config(self, slot: int) -> ProtocolConfig:
        """Per-slot leader rotation: slot ``s`` at view ``v`` is led by
        node ``(s + v) mod n``, mirroring the multi-shot scheme."""
        ids = self.base.node_ids
        return replace(self.base, leader_fn=lambda view: ids[(slot + view) % len(ids)])

    def _tip_digest(self) -> str:
        return self.finalized[-1].digest if self.finalized else GENESIS_DIGEST

    # -- lifecycle ----------------------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        if self._batching is None:
            self._batching = batching_enabled()
        if self._batching:
            self._batch_ctx = BatchingContext(ctx)
            ctx = self._batch_ctx
        self._ctx = ctx
        self._start_slot(1)
        if self._batch_ctx is not None:
            self._batch_ctx.flush()

    def _start_slot(self, slot: int) -> None:
        if self.max_slots is not None and slot > self.max_slots:
            self._shot = None
            return
        self._shot = _SlotShot(self, slot)
        self._shot.start(_SlotContext(self, slot))
        # Replay messages that arrived while our chain was still behind.
        for sender, message in self._buffer.pop(slot, []):
            if self.active_slot != slot:
                break  # decided mid-replay; the rest are stale
            self._dispatch(sender, message)

    def _mint_block(self, slot: int) -> Block:
        parent = self._tip_digest()
        block = Block.create(slot, parent, self.payload_fn(slot, parent))
        self.store.add(block)
        return block

    # -- receive -------------------------------------------------------------------

    def receive(self, sender: NodeId, message: object) -> None:
        if type(message) is VoteBatch:
            for item in message.messages:
                self._receive_one(sender, item)
        else:
            self._receive_one(sender, message)
        if self._batch_ctx is not None:
            self._batch_ctx.flush()

    def _receive_one(self, sender: NodeId, message: object) -> None:
        if isinstance(message, CatchUp):
            if message.slot > self.active_slot:
                if message.slot <= self.active_slot + BUFFER_WINDOW:
                    self._buffer.setdefault(message.slot, []).append((sender, message))
            else:
                # Even a partially stale batch may reach our active
                # slot in its tail; _adopt skips what we already have.
                self._adopt(message.blocks)
            return
        if not isinstance(message, SlotMessage):
            return  # not ours (e.g. cross-protocol traffic in a shared sim)
        slot = message.slot
        if slot < self.active_slot:
            self._maybe_serve_catchup(sender, message)
            return
        if slot > self.active_slot or self._shot is None:
            if slot <= self.active_slot + BUFFER_WINDOW and (
                self.max_slots is None or slot <= self.max_slots
            ):
                self._buffer.setdefault(slot, []).append((sender, message))
            return
        self._dispatch(sender, message)

    def _dispatch(self, sender: NodeId, message: object) -> None:
        if isinstance(message, CatchUp):
            self._adopt(message.blocks)
        else:
            assert self._shot is not None
            self._shot.receive(sender, message.inner)

    def _maybe_serve_catchup(self, sender: NodeId, message: SlotMessage) -> None:
        """Answer a laggard's view-change probe with decided blocks.

        Only timeout-driven view changes trigger a reply — they recur
        every timeout period while the sender stays stuck, which makes
        them the natural, already-rate-limited "I am behind" signal.
        Each reply carries up to :data:`CATCHUP_BATCH` consecutive
        blocks from the probed slot on, so one probe recovers far more
        chain than peers can decide per timeout period: a laggard's
        deficit shrinks every round trip and convergence is guaranteed
        even while the cluster keeps committing.

        The probe is a broadcast, so exactly one peer — picked by the
        same deterministic rotation every receiver computes, skipping
        the prober itself — replies; n-1 identical multi-block replies
        would all but the first be discarded as stale.
        """
        if not isinstance(message.inner, BViewChange):
            return
        slot = message.slot
        if slot < 1 or slot > len(self.finalized):
            return
        ids = self.base.node_ids
        responder = ids[(slot + message.inner.view) % len(ids)]
        if responder == sender:
            responder = ids[(slot + message.inner.view + 1) % len(ids)]
        if responder != self.node_id:
            return
        blocks = tuple(self.finalized[slot - 1 : slot - 1 + CATCHUP_BATCH])
        self.ctx.send(sender, CatchUp(slot, blocks))

    def _adopt(self, blocks: tuple[Block, ...]) -> None:
        """Adopt a peer's decided blocks, in order, from our active slot.

        The batch is finalized in one sweep and the protocol resumes
        with a single slot instance at the end: spinning up (and
        instantly retiring) an instance per intermediate slot would arm
        dead timers and, wherever this node leads, mint and broadcast
        proposals for slots the cluster already decided.
        """
        adopted = False
        for block in blocks:
            if block.slot != self.active_slot or block.parent != self._tip_digest():
                continue  # stale or inconsistent transfer: skip
            self._finalize_block(block)
            adopted = True
        if adopted:
            self._start_slot(self.active_slot)

    # -- finalization --------------------------------------------------------------

    def _on_slot_decided(self, slot: int, value: object) -> None:
        if slot != self.active_slot:
            return  # duplicate decision report from a dead instance
        if not isinstance(value, Block):
            raise TypeError(
                f"chained engine decided a non-block value {value!r}; "
                "payload hooks must mint Block proposals"
            )
        self._finalize_block(value)
        self._start_slot(self.active_slot)

    def _finalize_block(self, block: Block) -> None:
        """Commit the active slot's block and advance (no new instance)."""
        self.store.add(block)
        self.finalized.append(block)
        self._finalized_digests.add(block.digest)
        for handle in self._slot_timers:
            handle.cancel()
        self._slot_timers.clear()
        self._buffer.pop(block.slot, None)
        self.ctx.trace(TraceKind.FINALIZE, slot=block.slot, value=block.digest)
        if self.on_finalize is not None:
            self.on_finalize(block)
        self.active_slot = block.slot + 1
        self._prune()

    def _prune(self) -> None:
        """Drop aborted-proposal bodies far behind the finalized tip."""
        horizon = self.active_slot - RETENTION_SLOTS
        if horizon > 0:
            self.store.prune_below(horizon, keep=self._finalized_digests)
