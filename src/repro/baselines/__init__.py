"""Table 1 baseline protocols behind one generic chained-voting machine."""

from repro.baselines.base import (
    BaselineSpec,
    BPhaseVote,
    BProposal,
    BRound,
    BViewChange,
    ChainVotingNode,
    PreRound,
    RoundKind,
)
from repro.baselines.chained import CatchUp, ChainedEngine, SlotMessage
from repro.baselines.ithotstuff import IT_HS_SPEC, ITHotStuffNode
from repro.baselines.ithotstuff_blog import IT_HS_BLOG_SPEC, ITHotStuffBlogNode
from repro.baselines.li import LI_SPEC, LiNode
from repro.baselines.pbft import (
    PBFT_BOUNDED_SPEC,
    PBFT_UNBOUNDED_SPEC,
    PBFTNode,
    PBFTUnboundedNode,
)

__all__ = [
    "BPhaseVote",
    "BProposal",
    "BRound",
    "BViewChange",
    "BaselineSpec",
    "CatchUp",
    "ChainVotingNode",
    "ChainedEngine",
    "IT_HS_BLOG_SPEC",
    "IT_HS_SPEC",
    "ITHotStuffBlogNode",
    "ITHotStuffNode",
    "LI_SPEC",
    "LiNode",
    "PBFTNode",
    "PBFTUnboundedNode",
    "PBFT_BOUNDED_SPEC",
    "PBFT_UNBOUNDED_SPEC",
    "PreRound",
    "RoundKind",
    "SlotMessage",
]
