"""Basic (single-shot) TetraBFT: messages, rules, storage, node."""

from repro.core.config import TIMEOUT_DELAYS, ProtocolConfig
from repro.core.messages import (
    EMPTY_VOTE,
    Proof,
    Proposal,
    Suggest,
    TetraMessage,
    ViewChange,
    Vote,
    VoteRecord,
)
from repro.core.node import TetraBFTNode
from repro.core.rules import (
    claims_safe,
    find_safe_value,
    proof_claims_safe,
    proposal_is_safe,
    suggest_claims_safe,
)
from repro.core.storage import VoteStorage
from repro.core.values import ALL_PHASES, GENESIS_VIEW, NO_VIEW, Phase, Value, View

__all__ = [
    "ALL_PHASES",
    "EMPTY_VOTE",
    "GENESIS_VIEW",
    "NO_VIEW",
    "Phase",
    "Proof",
    "Proposal",
    "ProtocolConfig",
    "Suggest",
    "TIMEOUT_DELAYS",
    "TetraBFTNode",
    "TetraMessage",
    "Value",
    "View",
    "ViewChange",
    "Vote",
    "VoteRecord",
    "VoteStorage",
    "claims_safe",
    "find_safe_value",
    "proof_claims_safe",
    "proposal_is_safe",
    "suggest_claims_safe",
]
