"""Message types of Basic TetraBFT (paper Section 3.1).

Six message kinds flow over authenticated channels:

* ``⟨proposal, v, val⟩`` — sent only by the leader of view ``v``;
* ``⟨vote-i, v, val⟩`` for i ∈ {1,2,3,4} — the four voting phases;
* ``suggest`` — carries the sender's highest vote-2, its second-highest
  vote-2 *for a different value*, and its highest vote-3; sent to the
  new leader at view entry so it can find a safe value (Rule 1);
* ``proof`` — same structure with vote-1 / vote-4; broadcast at view
  entry so followers can validate the proposal (Rule 3);
* ``⟨view-change, v⟩`` — the view-synchronization signal.

Everything is a frozen dataclass: messages are immutable facts about
what some node sent, and hashability lets receivers deduplicate.
Because the model is *unauthenticated*, nothing in a message proves
anything about third parties — suggest/proof contents are claims that
the rules treat with the scepticism the paper's proofs require.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.values import NO_VIEW, Phase, Value, View


@dataclass(frozen=True)
class VoteRecord:
    """A ``(view, value)`` pair describing one historical vote.

    Used inside suggest/proof messages.  ``EMPTY_VOTE`` (``view = -1``)
    means "never cast" and compares lower than every real vote.
    """

    view: View
    value: Value

    @property
    def is_empty(self) -> bool:
        return self.view == NO_VIEW


#: The "never voted" record (TLA+ ``NotAVote``).
EMPTY_VOTE = VoteRecord(view=NO_VIEW, value=None)


@dataclass(frozen=True)
class Proposal:
    """``⟨proposal, v, val⟩`` — the leader's value for view ``v``."""

    view: View
    value: Value


@dataclass(frozen=True)
class Vote:
    """``⟨vote-i, v, val⟩`` — a phase-``i`` vote in view ``v``."""

    phase: Phase
    view: View
    value: Value


@dataclass(frozen=True)
class Suggest:
    """Vote-2/vote-3 history, sent to the leader at view entry.

    ``vote2`` — highest vote-2 the sender ever cast;
    ``prev_vote2`` — highest vote-2 cast for a *different value* than
    ``vote2``'s;
    ``vote3`` — highest vote-3 ever cast.
    """

    view: View
    vote2: VoteRecord = EMPTY_VOTE
    prev_vote2: VoteRecord = EMPTY_VOTE
    vote3: VoteRecord = EMPTY_VOTE


@dataclass(frozen=True)
class Proof:
    """Vote-1/vote-4 history, broadcast at view entry (mirror of Suggest)."""

    view: View
    vote1: VoteRecord = EMPTY_VOTE
    prev_vote1: VoteRecord = EMPTY_VOTE
    vote4: VoteRecord = EMPTY_VOTE


@dataclass(frozen=True)
class ViewChange:
    """``⟨view-change, v⟩`` — a wish to move to view ``v``."""

    view: View


TetraMessage = Proposal | Vote | Suggest | Proof | ViewChange
