"""The Basic TetraBFT node state machine (paper Section 3.2).

One :class:`TetraBFTNode` is one well-behaved participant in a single
consensus instance.  It is a pure event machine: the simulation (or any
other transport) calls :meth:`start` and :meth:`receive`, the node
talks back through its :class:`~repro.sim.runner.NodeContext`.

The evolution of a view, exactly as in the paper:

1. on entering view ``v`` a node arms a 9Δ timer; if ``v > 0`` it
   broadcasts a ``proof`` message and sends a ``suggest`` message to
   the leader of ``v``;
2. the leader proposes the first value it can determine safe (Rule 1 /
   Algorithm 4) — at view 0 everything is safe and it proposes its
   initial value immediately;
3. a node casts vote-1 for the proposal once Rule 3 / Algorithm 5
   determines it safe;
4.–6. a quorum of vote-k licenses vote-(k+1);
7. a quorum of vote-4 for one value is a decision;
timeout → broadcast ``⟨view-change, v+1⟩``; f+1 view-change messages
for a view are echoed; n−f of them enter the view.

Engineering notes (all documented deviations are liveness-neutral or
liveness-fixing; safety rests solely on Rules 1–4 and vote counting):

* **Bounded buffering.**  Messages for future views are buffered at
  most one per (sender, kind): protocol messages carry monotonically
  increasing views between well-behaved peers, so the newest is the
  only one that can still matter.  This keeps working memory O(n) on
  top of the O(1) persistent :class:`VoteStorage`.
* **Cross-view vote-4 counting.**  The decision rule counts vote-4
  messages per (view, value) across *all* views, keeping only each
  sender's newest vote-4.  A quorum of vote-4 for the same (view,
  value) is a decision no matter which view the receiver currently
  occupies; this closes the classic decision-dissemination gap where a
  laggard re-joins after others decided and the deciding view's
  traffic is long gone.
* **Retransmission.**  Pre-GST messages may be lost forever (Section
  2), so a node whose timer fires re-broadcasts its current-view
  material (view-change, and its vote-4 once decided) rather than
  sending it only once.  Retransmission after GST is what turns
  "sent once before GST and lost" into eventual delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import ProtocolConfig
from repro.core.messages import (
    Proof,
    Proposal,
    Suggest,
    TetraMessage,
    ViewChange,
    Vote,
    VoteRecord,
)
from repro.core.rules import find_safe_value, proposal_is_safe
from repro.core.storage import VoteStorage
from repro.core.values import GENESIS_VIEW, Phase, Value, View
from repro.errors import ProtocolViolation
from repro.quorums.system import NodeId
from repro.sim.events import EventHandle
from repro.sim.runner import NodeContext, SimNode
from repro.sim.trace import TraceKind


@dataclass
class _ViewState:
    """Working memory for the node's *current* view (reset on entry)."""

    proposal: Proposal | None = None
    proofs: dict[NodeId, Proof] = field(default_factory=dict)
    suggests: dict[NodeId, Suggest] = field(default_factory=dict)
    vote_senders: dict[Phase, dict[Value, set[NodeId]]] = field(
        default_factory=lambda: {phase: {} for phase in Phase}
    )
    sent_phase: dict[Phase, bool] = field(default_factory=lambda: {phase: False for phase in Phase})
    proposed: bool = False


@dataclass
class _FutureBuffer:
    """At most one buffered message per (sender, kind) for future views."""

    proposals: dict[NodeId, Proposal] = field(default_factory=dict)
    proofs: dict[NodeId, Proof] = field(default_factory=dict)
    suggests: dict[NodeId, Suggest] = field(default_factory=dict)
    votes: dict[tuple[NodeId, Phase], Vote] = field(default_factory=dict)

    def stash(self, sender: NodeId, message: TetraMessage) -> None:
        if isinstance(message, Proposal):
            current = self.proposals.get(sender)
            if current is None or message.view > current.view:
                self.proposals[sender] = message
        elif isinstance(message, Proof):
            current = self.proofs.get(sender)
            if current is None or message.view > current.view:
                self.proofs[sender] = message
        elif isinstance(message, Suggest):
            current = self.suggests.get(sender)
            if current is None or message.view > current.view:
                self.suggests[sender] = message
        elif isinstance(message, Vote):
            key = (sender, message.phase)
            current = self.votes.get(key)
            if current is None or message.view > current.view:
                self.votes[key] = message

    def drain_for_view(self, view: View) -> list[tuple[NodeId, TetraMessage]]:
        """Pop every buffered message for exactly ``view`` (drop older)."""
        ready: list[tuple[NodeId, TetraMessage]] = []
        for store in (self.proposals, self.proofs, self.suggests):
            stale = [s for s, m in store.items() if m.view <= view]
            for sender in stale:
                message = store.pop(sender)
                if message.view == view:
                    ready.append((sender, message))
        stale_votes = [k for k, m in self.votes.items() if m.view <= view]
        for key in stale_votes:
            message = self.votes.pop(key)
            if message.view == view:
                ready.append((key[0], message))
        return ready


class TetraBFTNode(SimNode):
    """A well-behaved Basic TetraBFT participant."""

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        initial_value: Value,
        vote4_ledger: bool = True,
        retransmission: bool = True,
    ) -> None:
        """``vote4_ledger`` and ``retransmission`` toggle the two
        liveness-hardening mechanisms documented above (cross-view
        vote-4 counting and timer-driven re-broadcast).  They exist to
        be switched **off** only by the hardening ablation
        (:mod:`repro.eval.hardening_ablation`), which demonstrates the
        executions that stall without them."""
        self.node_id = node_id
        self.config = config
        self.initial_value = initial_value
        self.vote4_ledger = vote4_ledger
        self.retransmission = retransmission
        self.storage = VoteStorage()
        self.view: View = GENESIS_VIEW
        self.decided_value: Value | None = None
        self.decided = False
        self._state = _ViewState()
        self._buffer = _FutureBuffer()
        self._ctx: NodeContext | None = None
        self._timer: EventHandle | None = None
        # View-change bookkeeping: exact per-view sender sets (pruned on
        # view entry) plus the highest view-change view we broadcast.
        self._vc_senders: dict[View, set[NodeId]] = {}
        self._highest_vc_sent: View = GENESIS_VIEW  # we never send VC for view 0
        # Cross-view vote-4 ledger: newest vote-4 per sender.
        self._latest_vote4: dict[NodeId, VoteRecord] = {}

    # -- lifecycle ---------------------------------------------------------------

    @property
    def ctx(self) -> NodeContext:
        if self._ctx is None:
            raise ProtocolViolation("node used before start()")
        return self._ctx

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._enter_view(GENESIS_VIEW, initial=True)

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of(self.view) == self.node_id

    # -- view transitions ----------------------------------------------------------

    def _enter_view(self, view: View, initial: bool = False) -> None:
        if not initial and view <= self.view:
            raise ProtocolViolation(f"cannot re-enter view {view} from {self.view}")
        self.view = view
        self._state = _ViewState()
        self._vc_senders = {v: s for v, s in self._vc_senders.items() if v > view}
        self._arm_timer()
        self.ctx.report_view_entry(view)
        if view > GENESIS_VIEW:
            proof = self.storage.make_proof(view)
            self.ctx.broadcast(proof)
            suggest = self.storage.make_suggest(view)
            self.ctx.send(self.config.leader_of(view), suggest)
        if self.is_leader:
            self._maybe_propose()
        for sender, message in self._buffer.drain_for_view(view):
            self._dispatch_current(sender, message)

    def _arm_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
        view_at_arm = self.view
        self._timer = self.ctx.set_timer(
            self.config.view_timeout, lambda: self._on_timeout(view_at_arm)
        )

    def _on_timeout(self, view: View) -> None:
        if view != self.view:
            return  # stale timer that lost a cancellation race
        self.ctx.trace(TraceKind.TIMER, view=view)
        if self.decided and self.retransmission:
            # Help laggards catch up directly (decision dissemination —
            # see module docstring on retransmission).
            record = self.storage.highest_vote(Phase.VOTE4)
            if not record.is_empty:
                self.ctx.broadcast(Vote(Phase.VOTE4, record.view, record.value))
        # Deciding does not halt the node (the TLA+ spec has no halted
        # state): an equivocating leader can leave a minority of honest
        # nodes starved in the deciding view, and only a view change —
        # which needs n-f participants — can rescue them.  Lemma 8
        # guarantees any later view re-decides the same value.
        self._send_view_change(self.view + 1, force_resend=self.retransmission)
        self._arm_timer()

    def _send_view_change(self, view: View, force_resend: bool = False) -> None:
        if view < self._highest_vc_sent:
            return
        if view == self._highest_vc_sent and not force_resend:
            return
        self._highest_vc_sent = view
        self.ctx.trace(TraceKind.VIEW_CHANGE_SENT, view=view)
        self.ctx.broadcast(ViewChange(view))

    # -- receive dispatch -----------------------------------------------------------

    def receive(self, sender: NodeId, message: object) -> None:
        if not isinstance(message, (Proposal, Vote, Suggest, Proof, ViewChange)):
            return  # unknown junk from a Byzantine peer: ignore
        if isinstance(message, ViewChange):
            self._on_view_change(sender, message)
            return
        if isinstance(message, Vote) and message.phase is Phase.VOTE4 and self.vote4_ledger:
            self._record_vote4(sender, message)
        if message.view < self.view:
            return  # stale: the view moved on
        if message.view > self.view:
            self._buffer.stash(sender, message)
            return
        self._dispatch_current(sender, message)

    def _dispatch_current(self, sender: NodeId, message: TetraMessage) -> None:
        if isinstance(message, Proposal):
            self._on_proposal(sender, message)
        elif isinstance(message, Vote):
            self._on_vote(sender, message)
        elif isinstance(message, Suggest):
            self._on_suggest(sender, message)
        elif isinstance(message, Proof):
            self._on_proof(sender, message)

    # -- proposal path -----------------------------------------------------------------

    def _on_suggest(self, sender: NodeId, message: Suggest) -> None:
        if not self.is_leader:
            return  # suggests are addressed to leaders; ignore misroutes
        self._state.suggests[sender] = message
        self._maybe_propose()

    def _maybe_propose(self) -> None:
        if self._state.proposed or not self.is_leader:
            return
        value = find_safe_value(
            self._state.suggests,
            self.view,
            self.config.quorum_system,
            default_value=self.initial_value,
        )
        if value is None:
            return
        self._state.proposed = True
        self.ctx.trace(TraceKind.PROPOSE, view=self.view, value=value)
        self.ctx.broadcast(Proposal(self.view, value))

    def _on_proposal(self, sender: NodeId, message: Proposal) -> None:
        if sender != self.config.leader_of(message.view):
            return  # only the view's leader may propose
        if self._state.proposal is None:
            # First proposal wins; an equivocating leader cannot make a
            # well-behaved node consider two (within-view safety then
            # rests on vote-quorum intersection).
            self._state.proposal = message
        self._maybe_vote1()

    def _on_proof(self, sender: NodeId, message: Proof) -> None:
        self._state.proofs[sender] = message
        self._maybe_vote1()

    def _maybe_vote1(self) -> None:
        state = self._state
        if state.sent_phase[Phase.VOTE1] or state.proposal is None:
            return
        value = state.proposal.value
        if self.view > GENESIS_VIEW and not proposal_is_safe(
            state.proofs, self.view, value, self.config.quorum_system
        ):
            return
        self._cast_vote(Phase.VOTE1, value)

    # -- voting pipeline ------------------------------------------------------------------

    def _on_vote(self, sender: NodeId, message: Vote) -> None:
        by_value = self._state.vote_senders[message.phase]
        by_value.setdefault(message.value, set()).add(sender)
        self._advance_pipeline(message.phase, message.value)

    def _advance_pipeline(self, phase: Phase, value: Value) -> None:
        senders = self._state.vote_senders[phase].get(value, set())
        if not self.config.quorum_system.is_quorum(senders):
            return
        next_phase = phase.next_phase
        if next_phase is None:
            self._decide(value)
            return
        if not self._state.sent_phase[next_phase]:
            self._cast_vote(next_phase, value)

    def _cast_vote(self, phase: Phase, value: Value) -> None:
        state = self._state
        if state.sent_phase[phase]:
            raise ProtocolViolation(
                f"node {self.node_id} double-voting phase {phase} in view {self.view}"
            )
        state.sent_phase[phase] = True
        self.storage.record_vote(phase, self.view, value)
        self.ctx.report_storage(self.storage.size_bytes())
        self.ctx.trace(TraceKind.VOTE, phase=int(phase), view=self.view, value=value)
        self.ctx.broadcast(Vote(phase, self.view, value))

    # -- decision ---------------------------------------------------------------------------

    def _record_vote4(self, sender: NodeId, message: Vote) -> None:
        """Cross-view vote-4 ledger + decision check (see module docstring)."""
        current = self._latest_vote4.get(sender)
        if current is not None and current.view >= message.view:
            return
        self._latest_vote4[sender] = VoteRecord(message.view, message.value)
        supporters = {
            node
            for node, record in self._latest_vote4.items()
            if record.view == message.view and record.value == message.value
        }
        if self.config.quorum_system.is_quorum(supporters):
            self._decide(message.value)

    def _decide(self, value: Value) -> None:
        if self.decided:
            if value != self.decided_value:
                raise ProtocolViolation(
                    f"node {self.node_id} saw conflicting decisions "
                    f"{self.decided_value!r} and {value!r}"
                )
            return
        self.decided = True
        self.decided_value = value
        self.ctx.report_decision(value)

    # -- view change ---------------------------------------------------------------------------

    def _on_view_change(self, sender: NodeId, message: ViewChange) -> None:
        view = message.view
        if view <= self.view:
            return
        senders = self._vc_senders.setdefault(view, set())
        senders.add(sender)
        if self.config.quorum_system.is_blocking(senders) and view > self._highest_vc_sent:
            # f+1 nodes want this view: at least one is well-behaved,
            # so the wish is genuine — amplify it.  NB: broadcasting
            # loops our own view-change back synchronously, which can
            # recurse into this handler and enter the view before we
            # return — hence the re-check against self.view below.
            self._send_view_change(view)
        if self.config.quorum_system.is_quorum(senders) and view > self.view:
            self._enter_view(view)
