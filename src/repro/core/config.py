"""Protocol configuration shared by all TetraBFT node state machines."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.quorums.system import NodeId, QuorumSystem, ThresholdQuorumSystem

LeaderFn = Callable[[int], NodeId]

#: The paper's timeout budget: 2Δ view-entry skew + 6Δ of protocol
#: phases, overshooting the cumulative 8Δ by one Δ of safety margin
#: (paper §3.2).
TIMEOUT_DELAYS = 9.0


@dataclass(frozen=True)
class ProtocolConfig:
    """Static parameters of one TetraBFT deployment.

    ``delta`` is the known post-GST delay bound Δ; the view timeout is
    ``timeout_delays * delta`` (the paper's 9Δ by default).  ``leader_of``
    maps a view number to its pre-assigned leader; the default is
    round-robin over node ids, the scheme the paper suggests.
    """

    quorum_system: QuorumSystem
    delta: float = 1.0
    timeout_delays: float = TIMEOUT_DELAYS
    leader_fn: LeaderFn | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive, got {self.delta}")
        if self.timeout_delays <= 0:
            raise ConfigurationError(f"timeout_delays must be positive, got {self.timeout_delays}")

    @classmethod
    def create(
        cls,
        n: int,
        f: int | None = None,
        delta: float = 1.0,
        timeout_delays: float = TIMEOUT_DELAYS,
        leader_fn: LeaderFn | None = None,
    ) -> "ProtocolConfig":
        """Build a classic ``n > 3f`` configuration over nodes ``0..n-1``."""
        return cls(
            quorum_system=ThresholdQuorumSystem.for_nodes(n, f),
            delta=delta,
            timeout_delays=timeout_delays,
            leader_fn=leader_fn,
        )

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self.quorum_system.nodes)

    @property
    def n(self) -> int:
        return len(self.quorum_system.nodes)

    @property
    def view_timeout(self) -> float:
        """The per-view timer duration (9Δ by default)."""
        return self.timeout_delays * self.delta

    def leader_of(self, view: int) -> NodeId:
        """The pre-assigned leader of ``view`` (round-robin by default)."""
        if self.leader_fn is not None:
            leader = self.leader_fn(view)
            if leader not in self.quorum_system.nodes:
                raise ConfigurationError(
                    f"leader_fn returned unknown node {leader} for view {view}"
                )
            return leader
        ids = self.node_ids
        return ids[view % len(ids)]
