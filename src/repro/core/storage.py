"""Constant-size persistent vote storage (paper Section 3.1, last ¶).

    "Throughout the views, a node needs only to store the highest
    vote-1, vote-2, vote-3 and vote-4 messages it sent, along with the
    second highest vote-1 and vote-2 messages that carry a different
    value from their respective highest messages."

That is exactly six :class:`VoteRecord` slots, independent of how many
views have passed — the constant-storage property of Table 1.  This
module maintains those slots and derives the suggest/proof messages
from them.

The update rule for the "second highest with a different value" slots
is subtle and worth spelling out.  When a node casts a new highest
vote ``(v, val)``:

* if the old highest carried a *different* value, the old highest
  becomes the new second-highest (it is, by view monotonicity, the
  highest vote for a value other than ``val``);
* if the old highest carried the *same* value, the second-highest is
  unchanged (it still differs from ``val``).

Well-behaved nodes vote with non-decreasing views within one consensus
instance, which the class asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import EMPTY_VOTE, Proof, Suggest, VoteRecord
from repro.core.values import Phase, Value, View
from repro.errors import ProtocolViolation


@dataclass
class VoteStorage:
    """The six persistent vote records of one TetraBFT node."""

    highest: dict[Phase, VoteRecord] = field(
        default_factory=lambda: {phase: EMPTY_VOTE for phase in Phase}
    )
    prev: dict[Phase, VoteRecord] = field(
        default_factory=lambda: {Phase.VOTE1: EMPTY_VOTE, Phase.VOTE2: EMPTY_VOTE}
    )

    def record_vote(self, phase: Phase, view: View, value: Value) -> None:
        """Persist the fact "I cast a phase-``phase`` vote for ``value`` in ``view``"."""
        current = self.highest[phase]
        if not current.is_empty and view < current.view:
            raise ProtocolViolation(
                f"vote views must be non-decreasing: phase {phase} "
                f"went from view {current.view} to {view}"
            )
        new_record = VoteRecord(view=view, value=value)
        if phase in self.prev:
            if not current.is_empty and current.value != value:
                self.prev[phase] = current
        self.highest[phase] = new_record

    def highest_vote(self, phase: Phase) -> VoteRecord:
        return self.highest[phase]

    def prev_vote(self, phase: Phase) -> VoteRecord:
        """Second-highest vote for a different value (phases 1 and 2 only)."""
        if phase not in self.prev:
            raise ProtocolViolation(f"no second-highest slot for phase {phase}")
        return self.prev[phase]

    # -- message derivation ----------------------------------------------------

    def make_suggest(self, view: View) -> Suggest:
        """The suggest message a node sends to the leader of ``view``."""
        return Suggest(
            view=view,
            vote2=self.highest[Phase.VOTE2],
            prev_vote2=self.prev[Phase.VOTE2],
            vote3=self.highest[Phase.VOTE3],
        )

    def make_proof(self, view: View) -> Proof:
        """The proof message a node broadcasts on entering ``view``."""
        return Proof(
            view=view,
            vote1=self.highest[Phase.VOTE1],
            prev_vote1=self.prev[Phase.VOTE1],
            vote4=self.highest[Phase.VOTE4],
        )

    # -- introspection ----------------------------------------------------------

    def size_bytes(self) -> int:
        """Serialized size of the persistent state (constant by design).

        Each record is a (view, value-digest) pair: 8 bytes of view plus
        8 bytes of value reference — the figure the storage metrics
        report.  The point is not the constant but that it does not
        grow with views, nodes, or decided values.
        """
        record_count = len(self.highest) + len(self.prev)
        return record_count * 16

    def snapshot(self) -> dict[str, VoteRecord]:
        """Readable copy of all six slots (used by tests and debugging)."""
        result = {f"highest_vote{phase.value}": rec for phase, rec in self.highest.items()}
        result.update({f"prev_vote{phase.value}": rec for phase, rec in self.prev.items()})
        return result
