"""Safe-value determination: Rules 1–4 and Algorithms 1, 4, 5.

This module is the intellectual core of TetraBFT.  A *safe* value in
view ``v`` is one that cannot contradict any decision made (or ever to
be made) in an earlier view.  Leaders determine safety from a quorum of
``suggest`` messages (Rule 1, judged per-sender by Rule 2); followers
validate the leader's proposal from a quorum of ``proof`` messages
(Rule 3, judged per-sender by Rule 4).  Because the model is
unauthenticated, each suggest/proof is just a claim — the rules are
engineered so that a *blocking set* (≥ f+1 nodes, hence at least one
well-behaved) of concurring claims is what establishes safety.

The functions here are pure: they take the received messages and the
quorum system, and return a verdict.  They are generalized from the
paper's ``n - f`` / ``f + 1`` counting to an abstract
:class:`~repro.quorums.system.QuorumSystem`, which is what lets the
same code run over FBA-style heterogeneous trust (paper §1.2).  With a
:class:`~repro.quorums.system.ThresholdQuorumSystem` the checks are
literally the paper's Algorithms 4 and 5.

One pseudocode ambiguity resolved here: Algorithm 5's Rule 3 Item 2(b)iiiB
branch (lines 31–35) writes ``proof.vote4.val = val`` with ``val``
shadowed by the candidate-loop variable.  Rule 3 Item 2(b)ii in the
prose unambiguously requires vote-4 messages at ``v'`` to carry *the
proposed value*; we implement the prose.  (Lemma 4's liveness argument
still goes through: when the iiiB branch is needed, no well-behaved
node has voted in phase 4 above the leader's ``v'`` at all, so the
quorum count is reachable from well-behaved proofs alone.)
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.messages import Proof, Suggest, VoteRecord
from repro.core.values import GENESIS_VIEW, Value, View
from repro.quorums.system import NodeId, QuorumSystem


def claims_safe(vote: VoteRecord, prev_vote: VoteRecord, v_prime: View, value: Value) -> bool:
    """Algorithm 1 / Rules 2 and 4: does one history claim ``value`` safe at ``v_prime``?

    ``vote``/``prev_vote`` are the highest and second-highest
    (different-value) records of the relevant phase: vote-2 records for
    a suggest (Rule 2), vote-1 records for a proof (Rule 4).  The three
    disjuncts mirror the paper:

    1. ``v_prime`` is 0 — all values are safe at view 0;
    2. the highest vote was cast at a view ≥ ``v_prime`` *for this
       value* — the claimer itself helped certify it;
    3. the second-highest (different-value) vote was cast at a view ≥
       ``v_prime`` — the claimer witnessed *two* certified values above
       ``v_prime``, which means nothing can have been decided below,
       so any value is safe ("any value" includes this one).
    """
    if v_prime == GENESIS_VIEW:
        return True
    if not vote.is_empty and vote.view >= v_prime and vote.value == value:
        return True
    if not prev_vote.is_empty and prev_vote.view >= v_prime:
        return True
    return False


def suggest_claims_safe(suggest: Suggest, v_prime: View, value: Value) -> bool:
    """Rule 2, applied to one suggest message."""
    return claims_safe(suggest.vote2, suggest.prev_vote2, v_prime, value)


def proof_claims_safe(proof: Proof, v_prime: View, value: Value) -> bool:
    """Rule 4, applied to one proof message."""
    return claims_safe(proof.vote1, proof.prev_vote1, v_prime, value)


def _vote_compatible_with(record: VoteRecord, v_prime: View, value: Value) -> bool:
    """Rule 1/3 Items 2(b)i+ii for one reported highest vote-3/vote-4.

    True when the report is consistent with "no phase-3/4 vote above
    ``v_prime``, and any such vote at ``v_prime`` was for ``value``".
    An empty record trivially qualifies.
    """
    if record.is_empty:
        return True
    if record.view < v_prime:
        return True
    return record.view == v_prime and record.value == value


def find_safe_value(
    suggests: Mapping[NodeId, Suggest],
    view: View,
    quorum_system: QuorumSystem,
    default_value: Value,
) -> Value | None:
    """Algorithm 4: the leader's search for a safe value to propose.

    Returns a value that Rule 1 certifies as safe given the
    ``suggests`` collected so far, or ``None`` when no verdict is
    possible yet (the leader then waits for more suggest messages).
    ``default_value`` is the leader's initial value, proposed whenever
    arbitrary values are safe (paper §3.2).

    Faithful to the paper with one generalization: candidate values are
    drawn from *all* reported vote-2/vote-3 records plus the default,
    a superset of the pseudocode's candidate set; the Rule 1 check
    itself — not the candidate enumeration — decides safety, so this
    cannot admit an unsafe value, and including the default implements
    "propose the initial value when anything is safe".
    """
    if view == GENESIS_VIEW:
        return default_value
    if not quorum_system.is_quorum(suggests.keys()):
        return None

    # Rule 1 Item 2a: a quorum reports never having voted in phase 3.
    no_vote3_senders = {
        sender for sender, s in suggests.items() if s.vote3.is_empty
    }
    if quorum_system.is_quorum(no_vote3_senders):
        return default_value

    candidates: list[Value] = [default_value]
    seen: set[Value] = {default_value}
    for s in suggests.values():
        for record in (s.vote3, s.vote2):
            if not record.is_empty and record.value not in seen:
                seen.add(record.value)
                candidates.append(record.value)

    # Rule 1 Item 2b: walk candidate anchor views from view-1 down.
    for v_prime in range(view - 1, GENESIS_VIEW - 1, -1):
        # Skip optimization (Algorithm 4 line 19): Item 2(b)iii needs a
        # blocking set whose vote-2 history reaches v_prime at all.
        # At v_prime == 0 every node claims every value safe (Rule 2
        # Item 1), so the skip must not apply there.
        if v_prime > GENESIS_VIEW:
            reachers = {
                sender
                for sender, s in suggests.items()
                if (not s.vote2.is_empty and s.vote2.view >= v_prime)
                or (not s.prev_vote2.is_empty and s.prev_vote2.view >= v_prime)
            }
            if not quorum_system.is_blocking(reachers):
                continue
        for value in candidates:
            quorum_ok = {
                sender
                for sender, s in suggests.items()
                if _vote_compatible_with(s.vote3, v_prime, value)
            }
            if not quorum_system.is_quorum(quorum_ok):
                continue
            claimers = {
                sender
                for sender, s in suggests.items()
                if suggest_claims_safe(s, v_prime, value)
            }
            if quorum_system.is_blocking(claimers):
                return value
    return None


def proposal_is_safe(
    proofs: Mapping[NodeId, Proof],
    view: View,
    value: Value,
    quorum_system: QuorumSystem,
) -> bool:
    """Algorithm 5: a follower's validation of the leader's proposal.

    Implements Rule 3.  Returns ``True`` when the collected ``proofs``
    establish that ``value`` is safe to vote for in ``view``; callers
    re-invoke as more proofs arrive.
    """
    if view == GENESIS_VIEW:
        return True
    if not quorum_system.is_quorum(proofs.keys()):
        return False

    # Rule 3 Item 2a: a quorum reports never having voted in phase 4.
    no_vote4_senders = {sender for sender, p in proofs.items() if p.vote4.is_empty}
    if quorum_system.is_quorum(no_vote4_senders):
        return True

    # Rule 3 Item 2(b)iiiA — mirror of the leader's rule.
    for v_prime in range(view - 1, GENESIS_VIEW - 1, -1):
        quorum_ok = {
            sender
            for sender, p in proofs.items()
            if _vote_compatible_with(p.vote4, v_prime, value)
        }
        if not quorum_system.is_quorum(quorum_ok):
            continue
        claimers = {sender for sender, p in proofs.items() if proof_claims_safe(p, v_prime, value)}
        if quorum_system.is_blocking(claimers):
            return True

    return _rule3_two_blocking_sets(proofs, view, value, quorum_system)


def _rule3_two_blocking_sets(
    proofs: Mapping[NodeId, Proof],
    view: View,
    value: Value,
    quorum_system: QuorumSystem,
) -> bool:
    """Rule 3 Item 2(b)iiiB: the two-blocking-sets escape hatch.

    Looks for two blocking sets claiming *different* values safe at
    views ``ṽ < ṽ' < view``.  Two certified values above ``ṽ`` prove no
    decision can have completed at or below it, so any proposal is safe
    with anchor ``v' = ṽ`` (the paper notes checking Items 2(b)i/ii at
    ``v' = ṽ`` suffices, since they are monotone in ``v'``).

    Candidate claimed values come from the reported vote-1 records —
    a blocking claim needs Rule 4 Item 2 or 3, and Item 3 claims are
    value-agnostic, so vote-1 values cover all maximal claim sets.
    """
    candidate_values: list[Value] = []
    seen: set[Value] = set()
    for p in proofs.values():
        for record in (p.vote1, p.prev_vote1):
            if not record.is_empty and record.value not in seen:
                seen.add(record.value)
                candidate_values.append(record.value)

    # claims[(v_tilde, claimed_value)] = set of senders claiming it safe.
    claims: dict[tuple[View, Value], set[NodeId]] = {}
    for v_tilde in range(view - 1, GENESIS_VIEW, -1):
        for claimed in candidate_values:
            claimers = {
                sender
                for sender, p in proofs.items()
                if proof_claims_safe(p, v_tilde, claimed)
            }
            if quorum_system.is_blocking(claimers):
                claims[(v_tilde, claimed)] = claimers

    if not claims:
        return False

    for (v_lo, val_lo), claimers_lo in claims.items():
        # Rule 3 Items 2(b)i/ii anchored at v' = v_lo, against the
        # *proposed* value (see module docstring).
        quorum_ok = {
            sender
            for sender, p in proofs.items()
            if _vote_compatible_with(p.vote4, v_lo, value)
        }
        if not quorum_system.is_quorum(quorum_ok):
            continue
        if not quorum_system.is_blocking(claimers_lo & quorum_ok):
            continue
        for (v_hi, val_hi), claimers_hi in claims.items():
            if v_hi <= v_lo or val_hi == val_lo:
                continue
            if quorum_system.is_blocking(claimers_hi & quorum_ok):
                return True
    return False
