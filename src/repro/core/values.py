"""Core value and view types for Basic TetraBFT.

Views are non-negative integers (the paper's ``v``); the sentinel
``NO_VIEW = -1`` marks "never voted", mirroring the TLA+ spec's
``NotAVote`` record with ``round = -1``.  Values are arbitrary hashable
Python objects — consensus is value-agnostic; the SMR layer instantiates
them with block digests.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Hashable

View = int
Value = Hashable

#: Sentinel view for "no such vote was ever cast".
NO_VIEW: View = -1

#: View in which every value is safe by definition (Rule 1 / Rule 3).
GENESIS_VIEW: View = 0


class Phase(IntEnum):
    """The four voting phases that give TetraBFT its name.

    The leader's proposal precedes phase 1; a quorum of phase-``k``
    votes licenses a phase-``k+1`` vote; a quorum of phase-4 votes is a
    decision.
    """

    VOTE1 = 1
    VOTE2 = 2
    VOTE3 = 3
    VOTE4 = 4

    @property
    def next_phase(self) -> "Phase | None":
        """The phase unlocked by a quorum of this phase (None after 4)."""
        if self is Phase.VOTE4:
            return None
        return Phase(self.value + 1)


ALL_PHASES: tuple[Phase, ...] = (Phase.VOTE1, Phase.VOTE2, Phase.VOTE3, Phase.VOTE4)
