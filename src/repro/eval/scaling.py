"""Experiment A1 — communication-complexity scaling.

The paper's Table 1 claims O(n²) communicated bits per view for
TetraBFT and IT-HS versus O(n³) worst-case for unauthenticated PBFT's
view change (each node sends O(n)-sized view-change messages to
everyone).  We sweep n, force one view change per run, and fit the
growth exponents of total bytes (expected: ≈2 for TetraBFT/IT-HS,
≈3 for PBFT) and per-node bytes (≈1 vs ≈2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ITHotStuffNode, PBFTNode
from repro.core import ProtocolConfig, TetraBFTNode
from repro.eval.table1 import fit_growth_exponent
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)


@dataclass
class ScalingRow:
    protocol: str
    ns: list[int]
    total_bytes: list[int]
    max_node_bytes: list[int]

    @property
    def total_exponent(self) -> float:
        return fit_growth_exponent(self.ns, [float(b) for b in self.total_bytes])

    @property
    def per_node_exponent(self) -> float:
        return fit_growth_exponent(self.ns, [float(b) for b in self.max_node_bytes])


_FACTORIES = {
    "tetrabft": lambda i, cfg: TetraBFTNode(i, cfg, f"val-{i}"),
    "it-hs": lambda i, cfg: ITHotStuffNode(i, cfg, f"val-{i}"),
    "pbft": lambda i, cfg: PBFTNode(i, cfg, f"val-{i}"),
}

#: Paper-claimed exponents for total communicated bits across a
#: view-changing view (and per-node = total − 1).
PAPER_TOTAL_EXPONENTS = {"tetrabft": 2.0, "it-hs": 2.0, "pbft": 3.0}


def measure_one(protocol: str, n: int) -> tuple[int, int]:
    """(total bytes, max per-node bytes) for one forced view change."""
    factory = _FACTORIES[protocol]
    config = ProtocolConfig.create(n)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(factory(i, config))
    sim.run_until_all_decided(node_ids=list(range(1, n)), until=400)
    messages = sim.metrics.messages
    return messages.total_bytes_sent, messages.max_bytes_per_node()


def run_scaling(ns: tuple[int, ...] = (4, 7, 10, 16, 22, 31)) -> list[ScalingRow]:
    rows = []
    for protocol in _FACTORIES:
        totals, per_node = [], []
        for n in ns:
            total, node_max = measure_one(protocol, n)
            totals.append(total)
            per_node.append(node_max)
        rows.append(
            ScalingRow(
                protocol=protocol,
                ns=list(ns),
                total_bytes=totals,
                max_node_bytes=per_node,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - CLI entry
    print("A1 — communication scaling (bytes across one view-changing run)")
    for row in run_scaling():
        expected = PAPER_TOTAL_EXPONENTS[row.protocol]
        print(
            f"  {row.protocol:10s} total-exponent={row.total_exponent:.2f} "
            f"(paper {expected:.0f})  per-node={row.per_node_exponent:.2f} "
            f"bytes@n={row.ns[-1]}: {row.total_bytes[-1]}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
