"""Experiment A1 — communication-complexity and simulator-throughput scaling.

Two sweeps share this module:

* **Communication scaling** (the paper's Table 1 claim): O(n²)
  communicated bits per view for TetraBFT and IT-HS versus O(n³)
  worst-case for unauthenticated PBFT's view change (each node sends
  O(n)-sized view-change messages to everyone).  We sweep n, force one
  view change per run, and fit the growth exponents of total bytes
  (expected: ≈2 for TetraBFT/IT-HS, ≈3 for PBFT) and per-node bytes
  (≈1 vs ≈2).

* **Simulator throughput** (the scaling direction related work such as
  *pod* measures at thousands of replicas): events per second of the
  discrete-event core on full TetraBFT runs at n ∈ {4, 16, 64, 128},
  across three network scenarios — ``sync`` (every link exactly Δ),
  ``geo`` (a :class:`~repro.sim.GeoLatencyPolicy` region matrix with
  seeded jitter, all links within Δ), and ``crash-recovery``
  (a :class:`~repro.sim.CrashRecoveryPolicy` rolling-outage schedule
  over a synchronous base).  Throughput runs poll the all-decided
  predicate every ``stop_check_interval`` events (the predicate is an
  O(n) scan, so per-event polling would dominate at n=128) and switch
  off message byte accounting, isolating the event core itself.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines import ITHotStuffNode, PBFTNode
from repro.core import ProtocolConfig, TetraBFTNode
from repro.eval.report import format_table
from repro.eval.table1 import fit_growth_exponent
from repro.sim import (
    CrashRecoveryPolicy,
    DelayPolicy,
    GeoLatencyPolicy,
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)


@dataclass
class ScalingRow:
    protocol: str
    ns: list[int]
    total_bytes: list[int]
    max_node_bytes: list[int]

    @property
    def total_exponent(self) -> float:
        return fit_growth_exponent(self.ns, [float(b) for b in self.total_bytes])

    @property
    def per_node_exponent(self) -> float:
        return fit_growth_exponent(self.ns, [float(b) for b in self.max_node_bytes])


_FACTORIES = {
    "tetrabft": lambda i, cfg: TetraBFTNode(i, cfg, f"val-{i}"),
    "it-hs": lambda i, cfg: ITHotStuffNode(i, cfg, f"val-{i}"),
    "pbft": lambda i, cfg: PBFTNode(i, cfg, f"val-{i}"),
}

#: Paper-claimed exponents for total communicated bits across a
#: view-changing view (and per-node = total − 1).
PAPER_TOTAL_EXPONENTS = {"tetrabft": 2.0, "it-hs": 2.0, "pbft": 3.0}

#: The throughput sweep's n values; 128 must finish inside the default
#: 2M-event budget (a full run there is on the order of 10⁵ events).
THROUGHPUT_NS = (4, 16, 64, 128)

THROUGHPUT_SCENARIOS = ("sync", "geo", "crash-recovery")

_GEO_REGIONS = ("us-east", "us-west", "eu", "asia")

#: One-way link latencies in Δ units, chosen so every link (plus
#: jitter) stays within the known bound Δ=1: the geo scenario stresses
#: heterogeneous quorum formation, not timeout behaviour.
_GEO_LATENCY = {
    ("us-east", "us-east"): 0.05,
    ("us-west", "us-west"): 0.05,
    ("eu", "eu"): 0.05,
    ("asia", "asia"): 0.05,
    ("us-east", "us-west"): 0.30,
    ("us-east", "eu"): 0.40,
    ("us-east", "asia"): 0.80,
    ("us-west", "eu"): 0.60,
    ("us-west", "asia"): 0.55,
    ("eu", "asia"): 0.75,
}


def geo_policy(n: int, seed: int = 0) -> GeoLatencyPolicy:
    """Round-robin the n nodes over four regions with realistic links."""
    return GeoLatencyPolicy(
        region_of={i: _GEO_REGIONS[i % len(_GEO_REGIONS)] for i in range(n)},
        latency=_GEO_LATENCY,
        default=0.8,
        jitter=0.1,
        delta_cap=1.0,
        seed=seed,
    )


def scenario_policy(scenario: str, n: int, seed: int = 0) -> tuple[DelayPolicy, list[int]]:
    """(policy, excluded node ids) for one throughput scenario."""
    if scenario == "sync":
        return SynchronousDelays(1.0), []
    if scenario == "geo":
        return geo_policy(n, seed=seed), []
    if scenario == "crash-recovery":
        # The highest-id node (never a low-view leader) suffers rolling
        # outages; the rest decide without it, so it is excluded from
        # the all-decided predicate.
        faulty = n - 1
        policy = CrashRecoveryPolicy.periodic(
            SynchronousDelays(1.0),
            node_ids=[faulty],
            period=30.0,
            outage=10.0,
            horizon=400.0,
        )
        return policy, [faulty]
    raise ValueError(f"unknown scenario {scenario!r}")


@dataclass
class ThroughputRow:
    scenario: str
    n: int
    events: int
    wall_seconds: float
    decided: bool
    #: Physical frames vs logical messages on the simulated network and
    #: the simulated duration they accrued over; single-shot nodes send
    #: one message per frame, so the per-Δ rates coincide here and
    #: diverge only for the batching engines (A4/A5 rows).
    frames: int = 0
    messages: int = 0
    duration: float = 0.0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.events / self.wall_seconds

    @property
    def messages_per_delay(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.messages / self.duration

    @property
    def frames_per_delay(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.frames / self.duration


def measure_throughput(scenario: str, n: int, stop_check_interval: int = 64) -> ThroughputRow:
    """One full TetraBFT run at size n; returns the event-core rate."""
    policy, excluded = scenario_policy(scenario, n)
    config = ProtocolConfig.create(n)
    sim = Simulation(policy)
    sim.metrics.messages.enabled = False
    for i in range(n):
        sim.add_node(TetraBFTNode(i, config, f"val-{i}"))
    targets = [i for i in range(n) if i not in excluded]
    start = time.perf_counter()
    end = sim.run_until_all_decided(
        exclude=excluded,
        until=400,
        stop_check_interval=stop_check_interval,
    )
    wall = time.perf_counter() - start
    return ThroughputRow(
        scenario=scenario,
        n=n,
        events=sim.scheduler.events_fired,
        wall_seconds=wall,
        decided=sim.metrics.latency.all_decided(targets),
        frames=sim.network.frames_sent,
        messages=sim.network.messages_sent,
        duration=end,
    )


def run_throughput(
    ns: tuple[int, ...] = THROUGHPUT_NS,
    scenarios: tuple[str, ...] = THROUGHPUT_SCENARIOS,
) -> list[ThroughputRow]:
    return [measure_throughput(scenario, n) for scenario in scenarios for n in ns]


def format_throughput_report(rows: list[ThroughputRow]) -> str:
    """The events-per-second figure the ROADMAP's perf trajectory tracks."""
    return format_table(
        [
            {
                "scenario": row.scenario,
                "n": row.n,
                "events": row.events,
                "wall_s": row.wall_seconds,
                "events/sec": row.events_per_sec,
                "msg/Δ": row.messages_per_delay,
                "frm/Δ": row.frames_per_delay,
                "decided": row.decided,
            }
            for row in rows
        ],
        columns=["scenario", "n", "events", "wall_s", "events/sec", "msg/Δ", "frm/Δ", "decided"],
        title="A1b — simulator throughput (TetraBFT, full runs)",
    )


def measure_one(protocol: str, n: int) -> tuple[int, int]:
    """(total bytes, max per-node bytes) for one forced view change."""
    factory = _FACTORIES[protocol]
    config = ProtocolConfig.create(n)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(factory(i, config))
    sim.run_until_all_decided(exclude=[0], until=400)
    messages = sim.metrics.messages
    return messages.total_bytes_sent, messages.max_bytes_per_node()


def run_scaling(ns: tuple[int, ...] = (4, 7, 10, 16, 22, 31)) -> list[ScalingRow]:
    rows = []
    for protocol in _FACTORIES:
        totals, per_node = [], []
        for n in ns:
            total, node_max = measure_one(protocol, n)
            totals.append(total)
            per_node.append(node_max)
        rows.append(
            ScalingRow(
                protocol=protocol,
                ns=list(ns),
                total_bytes=totals,
                max_node_bytes=per_node,
            )
        )
    return rows


def main() -> None:  # pragma: no cover - CLI entry
    print("A1 — communication scaling (bytes across one view-changing run)")
    for row in run_scaling():
        expected = PAPER_TOTAL_EXPONENTS[row.protocol]
        print(
            f"  {row.protocol:10s} total-exponent={row.total_exponent:.2f} "
            f"(paper {expected:.0f})  per-node={row.per_node_exponent:.2f} "
            f"bytes@n={row.ns[-1]}: {row.total_bytes[-1]}"
        )
    print()
    print(format_throughput_report(run_throughput()))


if __name__ == "__main__":  # pragma: no cover
    main()
