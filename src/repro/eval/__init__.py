"""Evaluation harness: one module per paper table/figure plus ablations.

Every module is runnable (``python -m repro.eval.table1`` etc.) and is
also wrapped by a pytest-benchmark bench under ``benchmarks/``.  The
experiment-id ↔ module mapping lives in DESIGN.md §3; measured-vs-paper
results are recorded in EXPERIMENTS.md.
"""

from repro.eval.attacks import (
    AttackRow,
    CampaignRunner,
    place_adversaries,
    run_attack_cell,
    run_attack_grid,
    run_attack_smoke,
)
from repro.eval.engine_matrix import (
    run_batching_ablation,
    run_engine_matrix,
    run_engine_smoke,
)
from repro.eval.fig1_lemmas import LemmaChainResult, run_lemma_chain
from repro.eval.gateway_bench import (
    GatewayCellResult,
    GatewayRow,
    run_gateway_cell,
)
from repro.eval.net_bench import (
    NetRow,
    run_net_batching_ablation,
    run_net_cell,
    run_net_grid,
    run_net_smoke,
)
from repro.eval.fig2_pipeline import PipelineResult, run_pipeline
from repro.eval.fig3_viewchange import ViewChangeResult, run_viewchange
from repro.eval.responsiveness import ResponsivenessPoint, run_responsiveness
from repro.eval.scaling import ScalingRow, run_scaling
from repro.eval.smr_bench import SMRRow, run_smr_bench, run_smr_sweep, run_smr_smoke
from repro.eval.table1 import PROTOCOLS, ProtocolEntry, run_table1
from repro.eval.timeout_ablation import TimeoutPoint, run_timeout_ablation
from repro.eval.verification_run import VerificationSummary, run_verification

__all__ = [
    "AttackRow",
    "CampaignRunner",
    "GatewayCellResult",
    "GatewayRow",
    "LemmaChainResult",
    "NetRow",
    "PROTOCOLS",
    "PipelineResult",
    "ProtocolEntry",
    "ResponsivenessPoint",
    "SMRRow",
    "ScalingRow",
    "TimeoutPoint",
    "VerificationSummary",
    "ViewChangeResult",
    "place_adversaries",
    "run_attack_cell",
    "run_attack_grid",
    "run_attack_smoke",
    "run_batching_ablation",
    "run_engine_matrix",
    "run_engine_smoke",
    "run_gateway_cell",
    "run_lemma_chain",
    "run_net_cell",
    "run_net_batching_ablation",
    "run_net_grid",
    "run_net_smoke",
    "run_pipeline",
    "run_responsiveness",
    "run_scaling",
    "run_smr_bench",
    "run_smr_smoke",
    "run_smr_sweep",
    "run_table1",
    "run_timeout_ablation",
    "run_verification",
    "run_viewchange",
]
