"""Experiment A2 — optimistic responsiveness.

The claim (§1, §1.2): once the network is synchronous with *actual*
delay δ, a responsive protocol decides in time proportional to δ (at
most 7δ for TetraBFT after a view change), while a non-responsive one
waits out timers calibrated to the worst-case bound Δ, so its decision
time is stuck near Δ no matter how fast the network really is.

We fix Δ (the known bound, which calibrates timeouts and the
non-responsive leader's wait) and sweep the actual network delay
δ ≤ Δ, measuring post-view-change decision latency for TetraBFT
(responsive) and the IT-HS blog version (non-responsive).  Expected
shape: TetraBFT's latency falls linearly with δ; the blog version's
flattens at Δ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import ITHotStuffBlogNode
from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    silence_nodes,
)


@dataclass
class ResponsivenessPoint:
    delta_actual: float
    tetrabft_latency: float
    blog_latency: float


def _decision_latency(factory, delta_actual: float, delta_bound: float) -> float:
    """Post-view-change decision time (from the timeout) with actual
    per-message delay ``delta_actual`` and configured bound Δ."""
    n = 4
    config = ProtocolConfig.create(n, delta=delta_bound)
    policy = TargetedDropPolicy(SynchronousDelays(delta_actual), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(factory(i, config))
    sim.run_until_all_decided(node_ids=list(range(1, n)), until=40 * delta_bound)
    decided_at = max(sim.metrics.latency.decision_times[i] for i in range(1, n))
    return decided_at - config.view_timeout


def run_responsiveness(
    delta_bound: float = 8.0,
    actual_deltas: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0),
) -> list[ResponsivenessPoint]:
    points = []
    for delta in actual_deltas:
        tetra = _decision_latency(
            lambda i, c=None: TetraBFTNode(
                i, ProtocolConfig.create(4, delta=delta_bound), f"val-{i}"
            ),
            delta,
            delta_bound,
        )
        blog = _decision_latency(
            lambda i, c=None: ITHotStuffBlogNode(
                i, ProtocolConfig.create(4, delta=delta_bound), f"val-{i}"
            ),
            delta,
            delta_bound,
        )
        points.append(
            ResponsivenessPoint(
                delta_actual=delta, tetrabft_latency=tetra, blog_latency=blog
            )
        )
    return points


def main() -> None:  # pragma: no cover - CLI entry
    delta_bound = 8.0
    print(f"A2 — responsiveness (Δ bound = {delta_bound}, sweeping actual δ)")
    print("  δ      TetraBFT (resp.)   IT-HS blog (non-resp.)")
    for p in run_responsiveness(delta_bound):
        print(f"  {p.delta_actual:<5} {p.tetrabft_latency:>10.1f}" f" {p.blog_latency:>18.1f}")
    print("  (responsive latency ∝ δ; non-responsive flattens near Δ)")


if __name__ == "__main__":  # pragma: no cover
    main()
