"""Experiment A3 — the 9Δ timeout justification (§3.2).

The paper budgets the view timer as 2Δ of worst-case view-entry skew
plus 6Δ of protocol phases (suggest/proof, proposal, four votes) and
rounds up to 9Δ for margin.  A timeout below the real budget makes
nodes abandon views that were about to decide — liveness suffers; a
timeout at or above it leaves liveness intact and only affects how
long a crashed leader stalls the system.

We sweep the timeout multiplier under the adversarial conditions the
budget is computed for: a crashed first leader *and* skewed
within-bound delays (some nodes see messages at Δ, others faster),
which maximizes view-entry skew.  For each multiplier we report
whether all correct nodes decide within a fixed horizon and how long
that took.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import (
    SkewedDelays,
    Simulation,
    TargetedDropPolicy,
    silence_nodes,
)


@dataclass
class TimeoutPoint:
    timeout_delays: float
    all_decided: bool
    decision_time: float | None
    views_entered: int


def run_timeout_point(timeout_delays: float, n: int = 4, horizon: float = 400.0) -> TimeoutPoint:
    config = ProtocolConfig.create(n, delta=1.0, timeout_delays=timeout_delays)
    # Crash the first leader; skew delivery so half the nodes always
    # see messages a full Δ late — the worst case the 9Δ budget covers.
    skew = SkewedDelays(
        delta=1.0, delta_for={i: 0.35 for i in range(n // 2)}
    )
    policy = TargetedDropPolicy(skew, silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    correct = list(range(1, n))
    sim.run_until_all_decided(node_ids=correct, until=horizon)
    latency = sim.metrics.latency
    decided = latency.all_decided(correct)
    views = max(
        (view for entries in latency.view_entry_times.values() for view, _ in entries),
        default=0,
    )
    return TimeoutPoint(
        timeout_delays=timeout_delays,
        all_decided=decided,
        decision_time=max(latency.decision_times.values()) if decided else None,
        views_entered=views,
    )


def run_timeout_ablation(
    multipliers: tuple[float, ...] = (2.0, 3.0, 5.0, 7.0, 9.0, 12.0)
) -> list[TimeoutPoint]:
    return [run_timeout_point(m) for m in multipliers]


def main() -> None:  # pragma: no cover - CLI entry
    print("A3 — view-timeout sweep (crashed leader + adversarial skew)")
    print("  timeout  decided  decision_t  max_view")
    for p in run_timeout_ablation():
        t = f"{p.decision_time:.1f}" if p.decision_time is not None else "-"
        print(
            f"  {p.timeout_delays:>6.1f}Δ  {str(p.all_decided):7s} {t:>9s}"
            f" {p.views_entered:>9d}"
        )
    print("  (9Δ decides in one view change; tighter timeouts burn views)")


if __name__ == "__main__":  # pragma: no cover
    main()
