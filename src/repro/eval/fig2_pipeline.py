"""Experiment F2 — reproduce Figure 2 (pipelined good case).

Figure 2 shows Multi-shot TetraBFT committing one block per message
delay in the good case, the source of the paper's "5× the throughput
of repeated single-shot TetraBFT" claim (§1, §6.1).  We measure:

* the finalization timeline of a synchronous fault-free multi-shot run
  (expected: first block at 5δ, one more every δ after);
* the throughput of repeating single-shot instances back to back
  (expected: one decision every 5δ, since each instance costs the
  good-case 5 delays);
* their ratio (expected ≈ 5, approached as the run length grows).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ProtocolConfig, TetraBFTNode
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.sim import Simulation, SynchronousDelays, TraceKind


@dataclass
class PipelineResult:
    finalize_times: list[tuple[float, int]]  # (time, slot) at node 0
    blocks_finalized: int
    pipeline_duration: float
    singleshot_decisions: int
    singleshot_duration: float

    @property
    def pipeline_throughput(self) -> float:
        if self.pipeline_duration <= 0:
            return 0.0
        return self.blocks_finalized / self.pipeline_duration

    @property
    def singleshot_throughput(self) -> float:
        if self.singleshot_duration <= 0:
            return 0.0
        return self.singleshot_decisions / self.singleshot_duration

    @property
    def speedup(self) -> float:
        if self.singleshot_throughput == 0:
            return 0.0
        return self.pipeline_throughput / self.singleshot_throughput

    @property
    def steady_state_cadence(self) -> float:
        """Mean gap between consecutive finalizations after the first."""
        times = [t for t, _ in self.finalize_times]
        if len(times) < 2:
            return float("inf")
        gaps = [b - a for a, b in zip(times, times[1:])]
        return sum(gaps) / len(gaps)


def run_pipeline(n: int = 4, blocks: int = 20) -> PipelineResult:
    """Run F2: pipelined multi-shot vs repeated single-shot."""
    base = ProtocolConfig.create(n)

    # Pipelined multi-shot: enough slots that the last `blocks` can finalize.
    ms_config = MultiShotConfig(base=base, max_slots=blocks + 3)
    sim = Simulation(SynchronousDelays(1.0), trace_enabled=True)
    for i in range(n):
        sim.add_node(MultiShotNode(i, ms_config))
    sim.run(until=5.0 + blocks + 10)
    finalize_events = sim.trace.events(TraceKind.FINALIZE, node=0)
    finalize_times = [(e.time, int(e.get("slot"))) for e in finalize_events]
    blocks_finalized = len(sim.nodes[0].finalized_chain)
    pipeline_duration = finalize_times[-1][0] if finalize_times else 0.0

    # Repeated single-shot: one instance after another, same value count.
    decisions = 0
    clock = 0.0
    for _ in range(blocks):
        single = Simulation(SynchronousDelays(1.0))
        for i in range(n):
            single.add_node(TetraBFTNode(i, base, initial_value=f"v{decisions}"))
        end = single.run_until_all_decided(until=100)
        decisions += 1
        clock += end
    return PipelineResult(
        finalize_times=finalize_times,
        blocks_finalized=blocks_finalized,
        pipeline_duration=pipeline_duration,
        singleshot_decisions=decisions,
        singleshot_duration=clock,
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_pipeline()
    print("Figure 2 — pipelined good case")
    print(f"  first finalization at t={result.finalize_times[0][0]} (paper: 5 delays)")
    print(f"  steady-state cadence: {result.steady_state_cadence:.2f} delays/block (paper: 1)")
    print(f"  pipeline throughput : {result.pipeline_throughput:.3f} blocks/delay")
    print(f"  single-shot repeat  : {result.singleshot_throughput:.3f} blocks/delay")
    print(f"  speedup             : {result.speedup:.2f}x (paper: 5x in the limit)")


if __name__ == "__main__":  # pragma: no cover
    main()
