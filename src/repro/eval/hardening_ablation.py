"""Ablation — the two liveness-hardening mechanisms in the node.

DESIGN.md and :mod:`repro.core.node` document two engineering choices
layered on the paper's §3.2 pseudocode:

* the **cross-view vote-4 ledger** (decision dissemination): count
  vote-4 messages per (view, value) across views, so a node that fell
  behind — e.g. starved by an equivocating leader while others decided
  — can still adopt the decision when retransmitted vote-4s reach it;
* **timer-driven retransmission**: re-broadcast the current
  view-change (and, once decided, the decisive vote-4) on every timer
  expiry, so material lost to pre-GST asynchrony is eventually
  delivered.

This ablation runs the adversarial scenarios those mechanisms exist
for, with each mechanism switched off, and reports which honest nodes
fail to decide within a generous horizon.

Measured finding (recorded in EXPERIMENTS.md): **retransmission is
load-bearing** — under heavy pre-GST loss, liveness fails without it —
while the **vote-4 ledger is redundant given full decided-node
participation**: a starved node is always rescued by the next view
change re-deciding the same value (Lemma 8), so the ledger only
shaves latency in narrow partition-heal windows.  An honest negative
result; the ledger stays on by default as a cheap fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary import EquivocatingLeader
from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import (
    PartialSynchronyPolicy,
    Simulation,
    UniformRandomDelays,
)


@dataclass
class AblationOutcome:
    mechanism: str
    scenario: str
    enabled_all_decide: bool
    disabled_all_decide: bool

    @property
    def mechanism_is_load_bearing(self) -> bool:
        return self.enabled_all_decide and not self.disabled_all_decide


def _run_equivocation(vote4_ledger: bool, seed: int = 0, horizon: float = 800.0) -> bool:
    """Equivocating leader scenario; True iff all honest nodes decide.

    With synchronous delivery and an equivocator who pushes one value
    to each half, part of the network can decide in view 0 while the
    rest starves; the starved nodes recover either via the vote-4
    ledger (adopting retransmitted decisions from an old view) or not
    at all if both hardenings are off — here retransmission stays ON
    so the ledger's contribution is isolated.
    """
    config = ProtocolConfig.create(4)
    sim = Simulation(UniformRandomDelays(0.2, 1.0, seed=seed))
    sim.add_node(EquivocatingLeader(0, config, "evil-A", "evil-B"))
    for i in range(1, 4):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}", vote4_ledger=vote4_ledger))
    sim.run_until_all_decided(node_ids=[1, 2, 3], until=horizon)
    return sim.metrics.latency.all_decided([1, 2, 3])


def _run_lossy_start(retransmission: bool, seed: int = 0, horizon: float = 1500.0) -> bool:
    """Heavy pre-GST loss; True iff all nodes decide after GST.

    Before GST most messages are dropped; without retransmission a
    node's only view-change for a view can be lost forever and view
    synchronization never completes for some schedules.
    """
    config = ProtocolConfig.create(4)
    policy = PartialSynchronyPolicy(gst=40.0, delta=1.0, loss_before_gst=0.9, seed=seed)
    sim = Simulation(policy)
    for i in range(4):
        sim.add_node(
            TetraBFTNode(
                i, config, initial_value=f"val-{i}", retransmission=retransmission
            )
        )
    sim.run_until_all_decided(until=horizon)
    return sim.metrics.latency.all_decided([0, 1, 2, 3])


def run_hardening_ablation(seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5)) -> list[AblationOutcome]:
    """Each mechanism, with/without, across seeds (any seed failing
    with the mechanism off counts as a stall)."""
    ledger_on = all(_run_equivocation(True, seed) for seed in seeds)
    ledger_off = all(_run_equivocation(False, seed) for seed in seeds)
    retrans_on = all(_run_lossy_start(True, seed) for seed in seeds)
    retrans_off = all(_run_lossy_start(False, seed) for seed in seeds)
    return [
        AblationOutcome(
            mechanism="vote4_ledger",
            scenario="equivocating leader starves a minority",
            enabled_all_decide=ledger_on,
            disabled_all_decide=ledger_off,
        ),
        AblationOutcome(
            mechanism="retransmission",
            scenario="90% message loss before GST",
            enabled_all_decide=retrans_on,
            disabled_all_decide=retrans_off,
        ),
    ]


def main() -> None:  # pragma: no cover - CLI entry
    print("Hardening ablation (liveness mechanisms from repro.core.node)")
    for outcome in run_hardening_ablation():
        print(
            f"  {outcome.mechanism:15s} [{outcome.scenario}]\n"
            f"      enabled → all decide: {outcome.enabled_all_decide}   "
            f"disabled → all decide: {outcome.disabled_all_decide}   "
            f"load-bearing: {outcome.mechanism_is_load_bearing}"
        )


if __name__ == "__main__":  # pragma: no cover
    main()
