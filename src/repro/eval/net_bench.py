"""Experiment A7 — deployed clusters: real processes, real sockets.

Every experiment so far measures the protocol inside one interpreter;
this one deploys it.  Each cell spawns one OS process per replica
(:mod:`repro.net.cluster`), serializes every protocol message through
the versioned wire codec, drives an A4 transaction workload over TCP
against the cluster's client ports, and reports what deployed systems
are judged on — **wall-clock** end-to-end commit latency (submit at
the client socket → CommitAck from each replica) and sustained
transactions per second.

Scenarios:

* ``lan`` — localhost links with a small uniform injected latency
  (real localhost RTTs are tens of microseconds — far below any
  interesting Δ geometry);
* ``geo`` — the A1b geo region matrix carried over as per-link
  injected latencies, scaled by the cluster's ``time_scale``;
* ``crash`` — ``lan`` plus one replica SIGTERMed halfway through the
  workload: n=4 tolerates f=1, so the survivors must still finalize
  everything;
* ``capacity`` — the capacity-bound cell: a Δ short enough (and links
  fast enough) that replicas are CPU-bound by construction instead of
  sleeping on the pacing clock.  The recorded ``busy_duty`` — summed
  replica+driver CPU seconds over elapsed wall time × usable cores —
  is the evidence: Δ-paced cells idle near 0, a capacity cell runs hot
  (the heavy grid asserts > 0.8).  This is the only cell where the
  batching/delayed-flush planes can show up as wall-clock txns/sec,
  which is exactly what the three-arm ablation measures.
* ``restart`` — the kill-and-restart cell: a durable (DiskStorage)
  cluster, one replica SIGTERMed halfway through the workload and
  respawned over its data dir at 75%.  The new process recovers its
  snapshot + WAL, rejoins, catches up on the missed suffix via peer
  state transfer, and must converge to the byte-identical state digest
  the survivors report — the restarted replica's evidence goes through
  the same SafetyAuditor as everyone else's, and the row additionally
  records how many blocks came back from disk (``recovered_blocks``)
  versus the network.

Cross-validation is not optional: every cell's collected finalized
chains, state digests and applied-transaction logs go through the same
:class:`~repro.verification.audit.SafetyAuditor` the simulated attack
campaign uses — agreement, no-fork, hash linkage, execute-once and
replay determinism must hold over real sockets exactly as in
simulation, and ``python -m repro net`` exits nonzero if any cell
fails its audit.

Results persist to ``BENCH_net.json`` (smoke key ``net_smoke``; the
``REPRO_HEAVY=1`` grid — n ∈ {4, 7}, every workload × scenario, plus a
cross-engine slice — under ``net_grid``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.config import repro_config
from repro.eval.report import format_table, merge_record
from repro.eval.scaling import _GEO_LATENCY, _GEO_REGIONS
from repro.eval.smr_bench import build_workload
from repro.metrics.smr_trackers import nearest_rank_percentiles
from repro.net.cluster import (
    ClusterConfig,
    NetRunResult,
    reply_metric,
    run_cluster_workload,
    schedule_from_workload,
)
from repro.verification.audit import SafetyAuditor

#: Cluster sizes of the heavy grid (each cell spawns n OS processes;
#: n=7 is the smallest size tolerating f=2).
NET_NS = (4, 7)

NET_SCENARIOS = ("lan", "geo", "crash", "capacity", "restart")

#: The link-geometry scenarios the heavy grid cross-products over
#: (``capacity`` is its own targeted slice, not a geometry).
NET_LINK_SCENARIOS = ("lan", "geo", "crash")

NET_WORKLOADS = ("uniform", "bursty", "hotkey")

#: Seconds of wall clock per protocol Δ.
TIME_SCALE = 0.05

#: Injected one-way link latency for the lan scenario, seconds.
LAN_LATENCY = 0.002

#: The capacity cell's pacing: Δ fifty times tighter than the lan
#: scenario and near-bare-metal links, so the bottleneck is codec +
#: dispatch + syscalls — the planes this bench ablates — not the Δ
#: clock.  At this Δ the measured busy duty cycle clears 0.8 on a
#: single-core host (leaders burn empty slots whenever the mempool
#: idles, so the cluster is CPU-bound by construction).
CAPACITY_TIME_SCALE = 0.001
CAPACITY_LATENCY = 0.0002

#: BENCH record, anchored at the repo root like the other BENCH files.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_net.json"


@dataclass
class NetRow:
    """One (engine, workload, scenario, n) cell of the deployment bench."""

    engine: str
    workload: str
    scenario: str
    n: int
    txns: int
    committed: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    wall_seconds: float
    blocks: int
    killed: tuple[int, ...]
    safe: bool
    live: bool
    checks: dict[str, bool]
    #: Summed over the cluster's metrics payloads: physical frames each
    #: replica read off its peer sockets vs the logical messages inside
    #: them (one VoteBatch frame carries many votes).
    frames_in: int = 0
    messages_in: int = 0
    #: Fraction of available CPU the run burned (replicas + driver over
    #: elapsed × usable cores) — near 0 for Δ-paced cells, high when
    #: the cell is capacity-bound.
    busy_duty: float = 0.0
    #: Summed transport delayed-flush counters across every replica's
    #: peer lanes: socket writes, frames and bytes they carried, and
    #: microseconds spent holding buffers for company.
    flushes: int = 0
    frames_flushed: int = 0
    bytes_flushed: int = 0
    held_us: int = 0
    #: Replicas killed and respawned over their data dirs (restart cell).
    restarted: tuple[int, ...] = ()
    #: Whether every restarted replica came back, caught up, and
    #: reported the same state digest as the survivors.  Trivially true
    #: for cells that restart nothing.
    converged: bool = True
    #: Blocks the restarted replicas recovered from snapshot + WAL
    #: (as opposed to re-fetched over the network).
    recovered_blocks: int = 0
    #: Live-scraped observability columns: a MetricsRequest snapshot
    #: taken *mid-run* (while the cluster is still in consensus), so
    #: windowed instruments — commit rate, queue lag, mempool depth —
    #: are read live rather than post-mortem.  Durability counters
    #: (fsyncs, WAL bytes, snapshots) come from the same scrape and are
    #: summed across replicas; rates/depths report the cluster max.
    commit_rate: float = 0.0
    view_changes: int = 0
    mempool_depth: int = 0
    queue_lag: int = 0
    fsyncs: int = 0
    wal_bytes: int = 0
    snapshots: int = 0

    @property
    def txns_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.committed / self.wall_seconds

    @property
    def msgs_per_frame(self) -> float:
        if self.frames_in <= 0:
            return 0.0
        return self.messages_in / self.frames_in

    @property
    def frames_per_flush(self) -> float:
        """Physical frames per socket write — the delayed-flush payoff."""
        if self.flushes <= 0:
            return 0.0
        return self.frames_flushed / self.flushes

    @property
    def bytes_per_flush(self) -> float:
        if self.flushes <= 0:
            return 0.0
        return self.bytes_flushed / self.flushes

    @property
    def verdict(self) -> str:
        if not self.safe:
            return "UNSAFE"
        if not self.converged:
            return "UNCONVERGED"
        if self.live:
            return "safe+live"
        return "safe"


def _wall_percentiles(samples: list[float]) -> dict[int, float]:
    """Nearest-rank percentiles of wall-clock samples, in milliseconds."""
    raw = nearest_rank_percentiles(samples)
    return {p: value * 1000.0 for p, value in raw.items()}


def geo_overrides(n: int, time_scale: float) -> tuple[tuple[int, int, float], ...]:
    """The A1b geo region matrix as per-link wall-clock latencies.

    Nodes round-robin over the four regions exactly as in the
    simulated geo scenario; Δ-denominated link latencies scale by
    ``time_scale`` into seconds (jitter is left to the real network).
    """
    region = {i: _GEO_REGIONS[i % len(_GEO_REGIONS)] for i in range(n)}
    pairs = []
    for src in range(n):
        for dst in range(n):
            key = (region[src], region[dst])
            delay = _GEO_LATENCY.get(key) or _GEO_LATENCY.get((key[1], key[0]), 0.8)
            pairs.append((src, dst, delay * time_scale))
    return tuple(pairs)


def run_net_cell(
    workload_name: str,
    scenario: str,
    n: int,
    engine: str = "tetrabft",
    txns: int = 40,
    batch: int = 10,
    seed: int = 0,
    time_scale: float = TIME_SCALE,
    deadline: float = 30.0,
) -> NetRow:
    """One deployed run: n processes, one workload, one link scenario."""
    if scenario not in NET_SCENARIOS:
        raise ValueError(f"unknown net scenario {scenario!r}")
    overrides: tuple[tuple[int, int, float], ...] = ()
    latency = LAN_LATENCY
    if scenario == "geo":
        overrides = geo_overrides(n, time_scale)
        latency = 0.8 * time_scale
    elif scenario == "capacity":
        # CPU-bound by construction: the Δ clock and the links are both
        # much faster than the per-message work, so wall-clock rate
        # measures the message path, not the pacing.
        time_scale = min(time_scale, CAPACITY_TIME_SCALE)
        latency = CAPACITY_LATENCY
    kill_after = None
    restart_after = None
    data_dir = None
    cleanup_dir = False
    if scenario == "crash":
        # The highest id is never a low-slot leader: killing it stalls
        # quorums, not every proposal, matching the simulated scenario.
        kill_after = (n - 1, 0.5)
    elif scenario == "restart":
        # Same victim and kill point as the crash cell, but the cluster
        # is durable and the victim is respawned over its data dir at
        # 75% of the workload: snapshot + WAL recovery, rejoin, peer
        # catch-up for the missed suffix, byte-identical convergence.
        kill_after = (n - 1, 0.5)
        restart_after = 0.75
        root = repro_config().data_dir
        if root:
            data_dir = os.path.join(root, f"net-{workload_name}-n{n}")
        else:
            data_dir = tempfile.mkdtemp(prefix="repro-net-restart-")
            cleanup_dir = True
        # A previous run's chain in the same dir would be a *different*
        # history — recovery must start from this run's bytes only.
        os.makedirs(data_dir, exist_ok=True)
        for entry in os.listdir(data_dir):
            shutil.rmtree(os.path.join(data_dir, entry), ignore_errors=True)
    config = ClusterConfig(
        n=n,
        engine=engine,
        time_scale=time_scale,
        link_latency=latency,
        latency_overrides=overrides,
        batch=batch,
        deadline=deadline,
        data_dir=data_dir,
    )
    schedule = schedule_from_workload(build_workload(workload_name, txns, batch, seed=seed))
    result = run_cluster_workload(
        config, schedule, kill_after=kill_after, restart_after=restart_after
    )
    row = _row_from_result(engine, workload_name, scenario, n, result)
    if cleanup_dir and row.safe and row.live and row.converged:
        shutil.rmtree(data_dir, ignore_errors=True)
    return row


def _metric_sum(replies, name: str) -> float:
    return sum(reply_metric(reply, name) for reply in replies.values())


def _metric_max(replies, name: str) -> float:
    return max((reply_metric(reply, name) for reply in replies.values()), default=0.0)


def _row_from_result(
    engine: str, workload: str, scenario: str, n: int, result: NetRunResult
) -> NetRow:
    report = SafetyAuditor(expected_txns=result.injected).audit_evidence(result.evidence)
    percentiles = _wall_percentiles(result.latency_samples)
    blocks = min((reply.blocks_applied for reply in result.replies.values()), default=0)
    live = bool(report.live) and not result.unexpected_deaths
    # Convergence evidence for the restart cell: every respawned
    # replica must be back in the collected replies AND the whole
    # cluster (rejoiner included) must agree on one state digest.
    converged = True
    recovered = 0
    if result.restarted:
        digests = {reply.state_digest for reply in result.replies.values()}
        converged = all(r in result.replies for r in result.restarted) and len(digests) == 1
        recovered = int(
            sum(
                reply_metric(result.replies[r], "storage.recovered_blocks")
                for r in result.restarted
                if r in result.replies
            )
        )
    # Live observability columns come from the mid-run scrape; if the
    # scrape failed (or a cell predates it), fall back to the collect
    # replies — counters survive the fallback, windowed rates read 0.
    scraped = result.scrapes or result.replies
    return NetRow(
        engine=engine,
        workload=workload,
        scenario=scenario,
        n=n,
        txns=result.injected,
        committed=result.committed,
        p50_ms=percentiles[50],
        p95_ms=percentiles[95],
        p99_ms=percentiles[99],
        wall_seconds=result.measure_seconds,
        blocks=blocks,
        killed=result.killed,
        safe=report.safe,
        live=live,
        checks=dict(report.checks),
        frames_in=int(_metric_sum(result.replies, "net.frames_in")),
        messages_in=int(_metric_sum(result.replies, "net.messages_in")),
        busy_duty=result.busy_duty,
        flushes=int(_metric_sum(result.replies, "transport.flushes")),
        frames_flushed=int(_metric_sum(result.replies, "transport.frames_flushed")),
        bytes_flushed=int(_metric_sum(result.replies, "transport.bytes_flushed")),
        held_us=int(_metric_sum(result.replies, "transport.held_us")),
        restarted=result.restarted,
        converged=converged,
        recovered_blocks=recovered,
        commit_rate=_metric_max(scraped, "consensus.commit.rate"),
        view_changes=int(_metric_max(scraped, "consensus.view_changes")),
        mempool_depth=int(_metric_max(scraped, "mempool.depth")),
        queue_lag=int(_metric_max(scraped, "transport.queue_lag")),
        fsyncs=int(_metric_sum(scraped, "storage.fsyncs")),
        wal_bytes=int(_metric_sum(scraped, "storage.wal_bytes")),
        snapshots=int(_metric_sum(scraped, "storage.snapshots")),
    )


def run_net_smoke(txns: int = 40, batch: int = 10) -> list[NetRow]:
    """The CI-sized slice: n=4 TetraBFT, every workload on lan, plus
    the crash cell that demonstrates f=1 fault tolerance end to end,
    the n=7 bursty cell, one cheap n=4 capacity cell so the adaptive
    batching + delayed-flush path is exercised on every PR, and the
    kill-and-restart cell proving snapshot+WAL recovery end to end."""
    rows = [run_net_cell(workload, "lan", 4, txns=txns, batch=batch) for workload in NET_WORKLOADS]
    rows.append(run_net_cell("uniform", "crash", 4, txns=txns, batch=batch))
    rows.append(run_net_cell("bursty", "lan", 7, txns=txns, batch=batch))
    rows.append(run_net_cell("bursty", "capacity", 4, txns=txns, batch=batch))
    rows.append(run_net_cell("uniform", "restart", 4, txns=txns, batch=batch))
    return rows


def _median_by_rate(rows: list[NetRow]) -> NetRow:
    """The row with the median wall-clock rate of its arm."""
    ordered = sorted(rows, key=lambda row: row.txns_per_sec)
    return ordered[len(ordered) // 2]


#: The three ablation arms, worst to best expected: (record engine
#: name, env knobs the replica processes inherit).  ``off`` strips
#: both planes (PR 5's transport), ``fixed`` is PR 6's constant-cap
#: batching with no transport hold, ``adaptive`` is this PR's default.
ABLATION_ARMS = (
    ("tetrabft-nobatch", {"REPRO_NO_BATCH": "1", "REPRO_NO_DELAY": "1"}),
    ("tetrabft-fixed", {"REPRO_BATCH_POLICY": "fixed", "REPRO_NO_DELAY": "1"}),
    ("tetrabft", {}),
)

#: Every env knob an ablation arm may set; scrubbed between arms.
_ABLATION_KNOBS = ("REPRO_NO_BATCH", "REPRO_BATCH_POLICY", "REPRO_NO_DELAY")


def run_net_batching_ablation(
    n: int = 7, txns: int = 50, batch: int = 10, repeats: int = 3
) -> list[NetRow]:
    """Message-plane A/B/C over real sockets: the capacity-bound n=7
    bursty cell with both planes off / fixed batching / adaptive
    batching + delayed flush, selected via the replica processes'
    inherited environment.

    The wall-clock txns/sec deltas are what each plane is worth end to
    end — fewer syscalls, fewer frames, one codec pass per batch.  A
    single cluster run's rate swings well past the effect size on a
    busy host, so arms are **interleaved** (one round runs all three,
    so host drift hits every arm equally) over ``repeats`` rounds and
    each arm reports its median-rate row.
    """
    samples: dict[str, list[NetRow]] = {engine: [] for engine, _ in ABLATION_ARMS}
    for _ in range(repeats):
        for engine, env in ABLATION_ARMS:
            saved = {knob: os.environ.pop(knob, None) for knob in _ABLATION_KNOBS}
            os.environ.update(env)
            try:
                samples[engine].append(
                    run_net_cell("bursty", "capacity", n, txns=txns, batch=batch)
                )
            finally:
                for knob in _ABLATION_KNOBS:
                    os.environ.pop(knob, None)
                for knob, value in saved.items():
                    if value is not None:
                        os.environ[knob] = value
    rows = []
    for engine, _ in ABLATION_ARMS:
        row = _median_by_rate(samples[engine])
        row.engine = engine
        rows.append(row)
    return rows


def run_net_grid(txns: int = 60, batch: int = 10) -> list[NetRow]:
    """The heavy grid: n ∈ {4, 7} × workload × link scenario for
    TetraBFT, every chained baseline on the uniform/lan slice, plus
    the capacity-bound cells at both cluster sizes."""
    rows = [
        run_net_cell(workload, scenario, n, txns=txns, batch=batch)
        for n in NET_NS
        for workload in NET_WORKLOADS
        for scenario in NET_LINK_SCENARIOS
    ]
    for engine in ("pbft", "ithotstuff", "li"):
        rows.append(run_net_cell("uniform", "lan", 4, engine=engine, txns=txns, batch=batch))
    for n in NET_NS:
        rows.append(run_net_cell("bursty", "capacity", n, txns=txns, batch=batch))
    for n in NET_NS:
        rows.append(run_net_cell("uniform", "restart", n, txns=txns, batch=batch))
    return rows


def net_record(row: NetRow) -> dict:
    """One NetRow as a BENCH_net.json cell."""
    return {
        "engine": row.engine,
        "workload": row.workload,
        "scenario": row.scenario,
        "n": row.n,
        "txns": row.txns,
        "committed": row.committed,
        "p50_ms": row.p50_ms,
        "p95_ms": row.p95_ms,
        "p99_ms": row.p99_ms,
        "txns_per_sec": row.txns_per_sec,
        "wall_seconds": row.wall_seconds,
        "blocks": row.blocks,
        "killed": list(row.killed),
        "safe": row.safe,
        "live": row.live,
        "checks": dict(row.checks),
        "frames_in": row.frames_in,
        "messages_in": row.messages_in,
        "msgs_per_frame": row.msgs_per_frame,
        "busy_duty": row.busy_duty,
        "flushes": row.flushes,
        "frames_flushed": row.frames_flushed,
        "bytes_flushed": row.bytes_flushed,
        "held_us": row.held_us,
        "frames_per_flush": row.frames_per_flush,
        "bytes_per_flush": row.bytes_per_flush,
        "restarted": list(row.restarted),
        "converged": row.converged,
        "recovered_blocks": row.recovered_blocks,
        "commit_rate": row.commit_rate,
        "view_changes": row.view_changes,
        "mempool_depth": row.mempool_depth,
        "queue_lag": row.queue_lag,
        "fsyncs": row.fsyncs,
        "wal_bytes": row.wal_bytes,
        "snapshots": row.snapshots,
    }


def write_net_records(rows: list[NetRow], key: str, path: Path = BENCH_PATH) -> None:
    merge_record(path, key, [net_record(row) for row in rows])


def format_net_report(rows: list[NetRow]) -> str:
    return format_table(
        [
            {
                "engine": row.engine,
                "workload": row.workload,
                "scenario": row.scenario,
                "n": row.n,
                "txns": row.txns,
                "committed": row.committed,
                "p50(ms)": row.p50_ms,
                "p95(ms)": row.p95_ms,
                "p99(ms)": row.p99_ms,
                "txn/s": row.txns_per_sec,
                "blk": row.blocks,
                "msg/frm": row.msgs_per_frame,
                "frm/wr": row.frames_per_flush,
                "duty": row.busy_duty,
                "commit/s": row.commit_rate,
                "fsync": row.fsyncs,
                "verdict": row.verdict,
            }
            for row in rows
        ],
        columns=[
            "engine",
            "workload",
            "scenario",
            "n",
            "txns",
            "committed",
            "p50(ms)",
            "p95(ms)",
            "p99(ms)",
            "txn/s",
            "blk",
            "msg/frm",
            "frm/wr",
            "duty",
            "commit/s",
            "fsync",
            "verdict",
        ],
        title="A7 — deployed clusters over TCP (wall clock, audited)",
    )


def main() -> None:  # pragma: no cover - CLI entry
    if repro_config().heavy:
        rows = run_net_grid()
        key = "net_grid"
    else:
        rows = run_net_smoke()
        key = "net_smoke"
        print(
            "(smoke slice: n=4 lan + crash + capacity + restart — "
            "REPRO_HEAVY=1 for the full grid)"
        )
    print(format_net_report(rows))
    write_net_records(rows, key)
    failed = [row for row in rows if not (row.safe and row.live and row.converged)]
    if failed:
        print(
            "FAILED cells: "
            f"{[(r.engine, r.workload, r.scenario, r.n, r.verdict) for r in failed]}"
        )
        raise SystemExit(1)
    print(f"all {len(rows)} deployed cells passed the safety audit")


if __name__ == "__main__":  # pragma: no cover
    main()
