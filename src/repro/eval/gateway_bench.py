"""Experiment A8 — the client gateway under open-loop load.

A7 proved the protocol over real sockets with a cooperative bench
driver; this experiment puts the *client plane* in front of it: a
deployed n-replica cluster, the layered gateway
(:mod:`repro.gateway`) terminating real HTTP traffic, and an
**open-loop** load generator — arrival times are drawn from a seeded
Poisson process at a fixed offered rate and never wait for responses,
so a gateway that falls behind accumulates queue, exactly like
production traffic.

Each cell runs a *ramp* of offered-rate levels against one cluster
(thousands of logical clients multiplexed over a bounded set of
keep-alive connections — fairness is keyed on ``x-client-id``, not the
socket).  Per level the bench reports accepted/committed counts,
achieved throughput over the commit window, and the gateway-observed
submit → f+1-quorum-commit latency percentiles.  A level *saturates*
when achieved throughput falls below 80% of offered; the first
saturating offered rate is the cell's **saturation point** — the
capacity number a gateway SLO would be written against.

Unsaturated levels additionally record ``paced_*`` metrics: there the
achieved rate is pinned to the offered rate by the arrival process
(machine-independent by construction), so CI gates them as regression
baselines, while the raw capacity numbers stay report-only.

Cross-validation is not optional here either: after the ramp the bench
collects every replica's finalized chain and state digest and replays
them through the same :class:`~repro.verification.audit.SafetyAuditor`
as A6/A7 (safety-only — liveness under deliberate overload is not a
protocol property).  The snapshot read path is exercised end to end:
the gateway pulls ``SnapshotRequest`` state from the live cluster and
the bench reads an incremented key back through ``GET /v1/state/…``.

Results persist to ``BENCH_gateway.json`` (smoke key
``gateway_smoke`` + aggregate ``gateway_saturation``; the
``REPRO_HEAVY=1`` grid — n ∈ {4, 7}, more clients — under
``gateway_grid``).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.config import repro_config
from repro.errors import SimulationError
from repro.eval.report import format_table, merge_record
from repro.gateway.app import GatewayServer
from repro.gateway.http import HTTPClient, WSClient
from repro.gateway.service import GatewayConfig, GatewayService
from repro.metrics.smr_trackers import nearest_rank_percentiles
from repro.net.client import ReplicaPool
from repro.net.cluster import ClusterConfig, cluster_processes, sized_max_slots
from repro.verification.audit import ReplicaEvidence, SafetyAuditor

#: Offered-rate ramp of the smoke cell, txns/sec.  The gateway's
#: submission batching lifts the deployed cluster to ~1,500 committed
#: txns/sec on this host, so the paced levels sit far below capacity
#: (stable, gated) and the probe level far above it (saturation is a
#: property of the ramp shape, not of host speed — the gate would flap
#: on any level near capacity).
SMOKE_LEVELS = (100.0, 400.0, 6400.0)

#: Seconds of arrivals per level.
LEVEL_SECONDS = 1.0

#: Logical clients (distinct x-client-id values / token buckets).
SMOKE_CLIENTS = 500
HEAVY_CLIENTS = 2000

#: Physical keep-alive connections the logical clients multiplex over.
PHYSICAL_CONNS = 16

#: Seconds to wait for accepted submissions to commit after a level.
DRAIN_SECONDS = 10.0

#: Seconds of wall clock per protocol Δ (matches the A7 smoke).
TIME_SCALE = 0.05

#: Per-client token bucket: generous against the mean per-client rate
#: (top smoke level / clients ≈ 3.2 txns/sec) so rate limiting shapes
#: abusive clients, not the measured capacity.
CLIENT_RATE = 20.0
CLIENT_BURST = 30.0

BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_gateway.json"


@dataclass
class GatewayRow:
    """One (engine, n, offered-rate) level of the gateway ramp."""

    engine: str
    n: int
    offered: float
    clients: int
    accepted: int
    committed: int
    rejected: int
    achieved_tps: float
    p50_ms: float
    p99_ms: float
    saturated: bool
    #: Submit-window wall clock (the regression gate's noise filter).
    wall_seconds: float
    safe: bool
    checks: dict[str, bool]

    @property
    def verdict(self) -> str:
        state = "SAT" if self.saturated else "paced"
        return f"{state}/{'safe' if self.safe else 'UNSAFE'}"


@dataclass
class GatewayCellResult:
    """One full ramp against one cluster."""

    rows: list[GatewayRow]
    #: First offered rate whose level saturated (2x the top level when
    #: the ramp never saturated — "capacity is beyond the probe").
    saturation_offered: float
    #: The snapshot read path returned the expected executed value.
    reads_ok: bool
    #: Commit events observed by the WebSocket subscriber.
    ws_events: int
    ws_evicted: bool
    safe: bool


@dataclass
class _LevelStats:
    accepted: int = 0
    rejected: int = 0
    errors: int = 0


def _percentiles_ms(samples: list[float]) -> dict[int, float]:
    return {p: v * 1000.0 for p, v in nearest_rank_percentiles(samples).items()}


async def _submit_worker(
    client: HTTPClient, queue: asyncio.Queue, stats: _LevelStats, accepted: list[str]
) -> None:
    """Drain (client_id, payload) submissions over one connection."""
    while True:
        item = await queue.get()
        if item is None:
            return
        client_id, payload = item
        try:
            response = await client.request(
                "POST",
                "/v1/transactions",
                payload=payload,
                headers={"x-client-id": client_id},
            )
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            stats.errors += 1
            client.close()
            continue
        if response.status == 202:
            stats.accepted += 1
            accepted.append(payload["txid"])
        else:
            stats.rejected += 1


async def _run_level(
    service: GatewayService,
    http_clients: list[HTTPClient],
    *,
    offered: float,
    duration: float,
    clients: int,
    seed: int,
    level_index: int,
    drain: float = DRAIN_SECONDS,
) -> GatewayRow:
    """One open-loop level: paced arrivals, then a commit drain."""
    rng = random.Random((seed + 1) * 7919 + level_index)
    queue: asyncio.Queue = asyncio.Queue()
    stats = _LevelStats()
    accepted: list[str] = []
    workers = [
        asyncio.ensure_future(_submit_worker(client, queue, stats, accepted))
        for client in http_clients
    ]
    total = int(offered * duration)
    t0 = time.monotonic()
    next_at = t0
    for i in range(total):
        next_at += rng.expovariate(offered)
        delay = next_at - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        client_id = f"c{rng.randrange(clients):04d}"
        queue.put_nowait(
            (
                client_id,
                {
                    "txid": f"g{level_index}-{i:06d}",
                    "op": ["incr", f"k{i % 128:03d}", 1],
                },
            )
        )
    while not queue.empty():
        await asyncio.sleep(0.01)
    for _ in workers:
        queue.put_nowait(None)
    await asyncio.gather(*workers)
    submit_wall = time.monotonic() - t0

    deadline = time.monotonic() + drain
    while time.monotonic() < deadline:
        statuses = [service.txns[txid] for txid in accepted if txid in service.txns]
        if statuses and all(status.committed for status in statuses):
            break
        await asyncio.sleep(0.05)

    commits = [
        service.txns[txid]
        for txid in accepted
        if txid in service.txns and service.txns[txid].committed
    ]
    latencies = [status.latency for status in commits if status.latency is not None]
    commit_times = sorted(status.committed_at for status in commits)
    span = commit_times[-1] - commit_times[0] if len(commit_times) > 1 else 0.0
    achieved = len(commits) / span if span > 0 else 0.0
    percentiles = _percentiles_ms(latencies)
    return GatewayRow(
        engine="",  # stamped by the cell runner
        n=0,
        offered=offered,
        clients=clients,
        accepted=stats.accepted,
        committed=len(commits),
        rejected=stats.rejected + stats.errors,
        achieved_tps=achieved,
        p50_ms=percentiles[50],
        p99_ms=percentiles[99],
        saturated=achieved < 0.8 * offered,
        wall_seconds=submit_wall,
        safe=True,  # stamped after the audit
        checks={},
    )


async def _drive_gateway(
    specs,
    *,
    engine: str,
    n: int,
    levels: tuple[float, ...],
    duration: float,
    clients: int,
    conns: int,
    seed: int,
    time_scale: float,
) -> GatewayCellResult:
    pool = ReplicaPool.from_specs(specs, time_scale=time_scale)
    await pool.connect()
    service = GatewayService(
        pool,
        GatewayConfig(
            n=n,
            rate=CLIENT_RATE,
            burst=CLIENT_BURST,
            snapshot_interval=0.0,  # refreshed explicitly after the ramp
        ),
    )
    await service.start()
    server = GatewayServer(service)
    await server.start()

    # One WebSocket subscriber rides the whole ramp: the fan-out path
    # runs under load, and its event count lands in the record.
    ws = WSClient(server.host, server.port)
    ws_events = 0

    async def ws_drain() -> int:
        count = 0
        while await ws.next_json() is not None:
            count += 1
        return count

    await ws.connect()
    ws_task = asyncio.ensure_future(ws_drain())

    http_clients = [HTTPClient(server.host, server.port) for _ in range(conns)]
    try:
        rows = []
        for index, offered in enumerate(levels):
            row = await _run_level(
                service,
                http_clients,
                offered=offered,
                duration=duration,
                clients=clients,
                seed=seed,
                level_index=index,
            )
            row.engine = engine
            row.n = n
            rows.append(row)

        # Read path: fresh snapshots from the *running* cluster, then a
        # state read through the HTTP API for a key every level hit.
        reads_ok = False
        try:
            await service.refresh_snapshots()
            response = await http_clients[0].request("GET", "/v1/state/k000")
            body = response.json()
            reads_ok = response.status == 200 and isinstance(body, dict) and body.get(
                "value", 0
            ) >= 1
        except (OSError, ConnectionError, asyncio.IncompleteReadError):
            reads_ok = False

        ws.close()
        try:
            ws_events = await asyncio.wait_for(ws_task, timeout=2.0)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            ws_task.cancel()
        ws_evicted = ws.close_code is not None and ws.close_code != 1000

        await service.stop()
        replies = await pool.collect()
    finally:
        for client in http_clients:
            client.close()
        ws.close()
        # Let the server's per-connection tasks observe the EOFs and
        # return before the loop closes — a handler cancelled inside a
        # read would log spurious CancelledError tracebacks.
        await asyncio.sleep(0.1)
        await server.stop()
        pool.close()

    evidence = [
        ReplicaEvidence(
            node_id=reply.node_id,
            chain=tuple(reply.chain),
            state_digest=reply.state_digest,
            applied_txids=tuple(reply.applied_txids),
        )
        for reply in sorted(replies.values(), key=lambda r: r.node_id)
    ]
    # Safety-only audit: agreement, no-fork, execute-once, replay.  A
    # deliberately overloaded level is *supposed* to leave a backlog,
    # so liveness (expected_txns) is not asserted here.
    report = SafetyAuditor().audit_evidence(evidence)
    for row in rows:
        row.safe = report.safe
        row.checks = dict(report.checks)

    saturated_levels = [row.offered for row in rows if row.saturated]
    saturation = min(saturated_levels) if saturated_levels else 2.0 * max(levels)
    return GatewayCellResult(
        rows=rows,
        saturation_offered=saturation,
        reads_ok=reads_ok,
        ws_events=ws_events,
        ws_evicted=ws_evicted,
        safe=report.safe,
    )


def run_gateway_cell(
    engine: str = "tetrabft",
    n: int = 4,
    levels: tuple[float, ...] = SMOKE_LEVELS,
    duration: float = LEVEL_SECONDS,
    clients: int = SMOKE_CLIENTS,
    conns: int = PHYSICAL_CONNS,
    seed: int = 0,
    time_scale: float = TIME_SCALE,
) -> GatewayCellResult:
    """One gateway ramp: spawn a cluster, serve it, load it, audit it."""
    total = sum(int(offered * duration) for offered in levels)
    # The ramp runs for len(levels) × (duration + drain) at worst; the
    # chain budget must cover empty-slot burn for all of it.
    budget_seconds = len(levels) * (duration + DRAIN_SECONDS) + 10.0
    config = ClusterConfig(
        n=n,
        engine=engine,
        time_scale=time_scale,
        deadline=budget_seconds,
    )
    config = replace(config, max_slots=sized_max_slots(config, total))
    # Same port-steal retry discipline as run_cluster_workload.
    for attempt in (0, 1):
        with cluster_processes(config) as (specs, _processes):
            try:
                return asyncio.run(
                    _drive_gateway(
                        specs,
                        engine=engine,
                        n=n,
                        levels=levels,
                        duration=duration,
                        clients=clients,
                        conns=conns,
                        seed=seed,
                        time_scale=time_scale,
                    )
                )
            except SimulationError:
                if attempt == 1:
                    raise
    raise AssertionError("unreachable")  # pragma: no cover


def gateway_record(row: GatewayRow) -> dict:
    """One GatewayRow as a BENCH_gateway.json cell.

    Unsaturated rows carry ``paced_*`` duplicates of their throughput
    and latency: there the arrival process pins the rate, so the values
    are stable enough for the CI regression gate to compare, while the
    saturated capacity probes stay report-only (``index_cells`` in the
    gate skips rows missing the gated metric).
    """
    record = {
        "engine": row.engine,
        "n": row.n,
        "offered": row.offered,
        "clients": row.clients,
        "accepted": row.accepted,
        "committed": row.committed,
        "rejected": row.rejected,
        "achieved_tps": row.achieved_tps,
        "p50_ms": row.p50_ms,
        "p99_ms": row.p99_ms,
        "saturated": row.saturated,
        "wall_seconds": row.wall_seconds,
        "safe": row.safe,
        "checks": dict(row.checks),
    }
    if not row.saturated:
        # Paced throughput over the *submit* window: the arrival
        # process fixes the window, and an unsaturated level commits
        # everything it accepted, so this tracks the offered rate far
        # more tightly than the commit-span capacity estimator.
        wall = row.wall_seconds if row.wall_seconds > 0 else 1.0
        record["paced_tps"] = row.committed / wall
        record["paced_p50_ms"] = row.p50_ms
        record["paced_p99_ms"] = row.p99_ms
    return record


def write_gateway_records(
    results: list[GatewayCellResult], key: str, path: Path = BENCH_PATH
) -> None:
    """Persist the ramp rows plus the gated saturation aggregate.

    The aggregate reports the n=4 cell (present in smoke and heavy
    alike, so the regression baseline stays comparable across modes).
    """
    merge_record(
        path, key, [gateway_record(row) for result in results for row in result.rows]
    )
    primary = min(results, key=lambda result: result.rows[0].n if result.rows else 999)
    merge_record(
        path,
        "gateway_saturation",
        {
            "saturation_offered": primary.saturation_offered,
            "reads_ok": primary.reads_ok,
            "ws_events": primary.ws_events,
            "ws_evicted": primary.ws_evicted,
            "safe": primary.safe,
        },
    )


def format_gateway_report(rows: list[GatewayRow]) -> str:
    return format_table(
        [
            {
                "engine": row.engine,
                "n": row.n,
                "offered": row.offered,
                "clients": row.clients,
                "accepted": row.accepted,
                "committed": row.committed,
                "rejected": row.rejected,
                "tps": row.achieved_tps,
                "p50(ms)": row.p50_ms,
                "p99(ms)": row.p99_ms,
                "verdict": row.verdict,
            }
            for row in rows
        ],
        columns=[
            "engine",
            "n",
            "offered",
            "clients",
            "accepted",
            "committed",
            "rejected",
            "tps",
            "p50(ms)",
            "p99(ms)",
            "verdict",
        ],
        title="A8 — client gateway under open-loop HTTP load (audited)",
    )


def main() -> None:  # pragma: no cover - CLI entry
    if repro_config().heavy:
        results = [
            run_gateway_cell(n=n, clients=HEAVY_CLIENTS) for n in (4, 7)
        ]
        key = "gateway_grid"
    else:
        results = [run_gateway_cell()]
        key = "gateway_smoke"
        print("(smoke ramp: n=4, 500 clients — REPRO_HEAVY=1 for the n∈{4,7} grid)")
    rows = [row for result in results for row in result.rows]
    print(format_gateway_report(rows))
    write_gateway_records(results, key)
    for result in results:
        n = result.rows[0].n if result.rows else "?"
        print(
            f"n={n}: saturation at {result.saturation_offered:,.0f} offered txns/sec, "
            f"read path {'ok' if result.reads_ok else 'FAILED'}, "
            f"{result.ws_events} ws commit events"
            f"{' (subscriber evicted)' if result.ws_evicted else ''}"
        )
    failed = [result for result in results if not result.safe or not result.reads_ok]
    if failed:
        print(f"FAILED: {len(failed)} gateway cell(s) failed audit or read path")
        raise SystemExit(1)
    print(f"all {len(results)} gateway cells passed the safety audit")


if __name__ == "__main__":  # pragma: no cover
    main()
