"""Experiment T1 — reproduce Table 1.

For every protocol row of the paper's Table 1 we measure, by
simulation on a unit-delay synchronous network:

* **good-case latency** — time (in message delays) for every node to
  decide when the network is synchronous from t=0 and the first leader
  is well-behaved;
* **latency with view-change** — time from the view-change broadcast
  (the 9Δ timeout of a crashed first leader) to the last decision;
* **storage** — the maximum persistent-state size any node reports,
  compared across a short run and a long (many-view-change) run to
  classify O(1) vs unbounded;
* **communicated bits** — total bytes sent in a worst-case
  (view-change-heavy) run, across an ``n`` sweep, so the per-view
  growth exponent can be classified as O(n²) vs O(n³).

Expected shape (the paper's analytic counts): TetraBFT 5 / 7, IT-HS
6 / 9, blog IT-HS 4 / 5, PBFT 3 / 7, Li et al. 6 / 7 (the paper says
6 — one delay is our harness's explicit view-change signal, see
:mod:`repro.baselines.li`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import math

from repro.baselines import (
    ITHotStuffBlogNode,
    ITHotStuffNode,
    LiNode,
    PBFTNode,
    PBFTUnboundedNode,
)
from repro.core import ProtocolConfig, TetraBFTNode
from repro.eval.report import format_table
from repro.sim import (
    Simulation,
    SimNode,
    SynchronousDelays,
    TargetedDropPolicy,
    censor_types,
    silence_nodes,
)

NodeFactory = Callable[[int, ProtocolConfig], SimNode]


@dataclass(frozen=True)
class ProtocolEntry:
    """One Table 1 row: how to build a node, and the paper's numbers."""

    name: str
    factory: NodeFactory
    paper_good_case: int
    paper_view_change: int
    paper_storage: str
    paper_bits: str


PROTOCOLS: tuple[ProtocolEntry, ...] = (
    ProtocolEntry(
        "it-hs-blog",
        lambda i, cfg: ITHotStuffBlogNode(i, cfg, f"val-{i}"),
        4, 5, "O(1)", "O(n^2)",
    ),
    ProtocolEntry(
        "it-hs",
        lambda i, cfg: ITHotStuffNode(i, cfg, f"val-{i}"),
        6, 9, "O(1)", "O(n^2)",
    ),
    ProtocolEntry(
        "pbft",
        lambda i, cfg: PBFTNode(i, cfg, f"val-{i}"),
        3, 7, "O(1)", "O(n^3)",
    ),
    ProtocolEntry(
        "pbft-unbounded",
        lambda i, cfg: PBFTUnboundedNode(i, cfg, f"val-{i}"),
        3, 7, "unbounded", "unbounded",
    ),
    ProtocolEntry(
        "li-et-al",
        lambda i, cfg: LiNode(i, cfg, f"val-{i}"),
        6, 7, "unbounded", "unbounded",
    ),
    ProtocolEntry(
        "tetrabft",
        lambda i, cfg: TetraBFTNode(i, cfg, f"val-{i}"),
        5, 7, "O(1)", "O(n^2)",
    ),
)


def measure_good_case(entry: ProtocolEntry, n: int = 4) -> float:
    """Latency, in message delays, of a synchronous fault-free run."""
    config = ProtocolConfig.create(n)
    sim = Simulation(SynchronousDelays(1.0))
    for i in range(n):
        sim.add_node(entry.factory(i, config))
    sim.run_until_all_decided(until=200)
    return sim.metrics.latency.max_decision_time()


def measure_view_change(entry: ProtocolEntry, n: int = 4) -> float:
    """Latency of a view beginning with a view-change.

    The first leader is crashed; every correct node times out at 9Δ and
    broadcasts a view-change.  We report last-decision time minus the
    timeout instant, which is the table's "latency with view-change".
    """
    config = ProtocolConfig.create(n)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(entry.factory(i, config))
    correct = list(range(1, n))
    sim.run_until_all_decided(node_ids=correct, until=400)
    decided_at = max(sim.metrics.latency.decision_times[i] for i in correct)
    return decided_at - config.view_timeout


def measure_storage_growth(
    entry: ProtocolEntry, n: int = 4, short: float = 60.0, long: float = 600.0
) -> tuple[int, int]:
    """Max storage after a short vs a long (view-change-churning) run.

    A constant-storage protocol reports (approximately) equal numbers;
    an unbounded one grows with the run length.
    """
    def run(duration: float) -> int:
        config = ProtocolConfig.create(n)
        # Censor every proposal so no view ever decides: the run churns
        # through view changes for its whole duration, which is what
        # separates constant-storage protocols from log-keeping ones.
        policy = TargetedDropPolicy(
            SynchronousDelays(1.0), censor_types("BProposal", "Proposal")
        )
        sim = Simulation(policy)
        for i in range(n):
            sim.add_node(entry.factory(i, config))
        sim.run(until=duration)
        return sim.metrics.storage.max_storage()

    return run(short), run(long)


def measure_bytes_for_n(entry: ProtocolEntry, n: int) -> int:
    """Max bytes any single node sends across one forced view change."""
    config = ProtocolConfig.create(n)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy)
    for i in range(n):
        sim.add_node(entry.factory(i, config))
    sim.run_until_all_decided(node_ids=list(range(1, n)), until=400)
    return sim.metrics.messages.max_bytes_per_node()


def fit_growth_exponent(ns: list[int], ys: list[float]) -> float:
    """Least-squares slope of log(y) against log(n)."""
    logs = [(math.log(n), math.log(max(y, 1e-9))) for n, y in zip(ns, ys)]
    mean_x = sum(x for x, _ in logs) / len(logs)
    mean_y = sum(y for _, y in logs) / len(logs)
    num = sum((x - mean_x) * (y - mean_y) for x, y in logs)
    den = sum((x - mean_x) ** 2 for x, _ in logs)
    return num / den


def run_table1(
    n: int = 4,
    sweep: tuple[int, ...] = (4, 7, 10, 13),
    storage_runs: tuple[float, float] = (60.0, 600.0),
) -> list[dict]:
    """Produce the full measured Table 1."""
    rows = []
    for entry in PROTOCOLS:
        good = measure_good_case(entry, n)
        with_vc = measure_view_change(entry, n)
        short_storage, long_storage = measure_storage_growth(
            entry, n, short=storage_runs[0], long=storage_runs[1]
        )
        storage_class = "O(1)" if long_storage <= short_storage * 1.5 else "unbounded"
        per_node_bytes = [measure_bytes_for_n(entry, m) for m in sweep]
        exponent = fit_growth_exponent(list(sweep), [float(b) for b in per_node_bytes])
        rows.append(
            {
                "protocol": entry.name,
                "good_case": good,
                "paper_good_case": entry.paper_good_case,
                "view_change": with_vc,
                "paper_view_change": entry.paper_view_change,
                "storage": storage_class,
                "paper_storage": entry.paper_storage,
                "bytes_exponent_per_node": round(exponent, 2),
                "paper_bits": entry.paper_bits,
            }
        )
    return rows


TABLE1_COLUMNS = [
    "protocol",
    "good_case",
    "paper_good_case",
    "view_change",
    "paper_view_change",
    "storage",
    "paper_storage",
    "bytes_exponent_per_node",
    "paper_bits",
]


def main() -> None:  # pragma: no cover - CLI entry
    rows = run_table1()
    print(format_table(rows, TABLE1_COLUMNS, title="Table 1 (measured vs paper)"))


if __name__ == "__main__":  # pragma: no cover
    main()
