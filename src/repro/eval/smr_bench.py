"""Experiment A4 — end-to-end SMR latency and throughput.

The paper's headline claim is pipelined multi-shot consensus committing
one block per message delay; the scaling sweep (A1b) only shows the
*simulator* keeps up.  This experiment reports what a **client** sees:
full :class:`~repro.smr.replica.Replica` clusters (consensus + mempool
+ deterministic execution) are driven by the seeded transaction
workloads — Uniform / Bursty / HotKey — at n ∈ {4, 16, 64} under the
sync / geo / crash-recovery scenario policies, and every row of the
report is a client-observed quantity:

* **p50/p95/p99 commit latency** in message delays: submit timestamp to
  the moment a replica applies the transaction, sampled per
  (replica, transaction) pair via
  :class:`~repro.metrics.smr_trackers.LatencyTracker`;
* **txns/sec** (wall clock) and **txns/Δ, blocks/Δ** (simulated time):
  sustained commit throughput via
  :class:`~repro.metrics.smr_trackers.ThroughputTracker`;
* **peak mempool occupancy**: the backlog high-water mark, the figure
  the bursty workload exists to stress.

In the good case latency should sit a small constant number of message
delays above submission (the pipeline commits one block per delay and
finalization lags the window), and bursty backlogs should drain at
≈ batch transactions per delay; the crash-recovery scenario shows the
price of rolling outages on the tail percentiles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core import ProtocolConfig
from repro.eval.report import format_table
from repro.eval.scaling import scenario_policy
from repro.metrics.smr_trackers import SMRTrackers
from repro.sim import Simulation
from repro.smr import Replica, engine_factory
from repro.workloads import (
    BurstyWorkload,
    HotKeyWorkload,
    UniformWorkload,
    Workload,
)

#: Cluster sizes of the full sweep (the smoke variant trims this).
SMR_NS = (4, 16, 64)

WORKLOAD_NAMES = ("uniform", "bursty", "hotkey")

SMR_SCENARIOS = ("sync", "geo", "crash-recovery")

#: One simulated message delay — every policy in the sweep bounds its
#: links by this Δ, and latency percentiles are reported in units of it.
DELTA = 1.0


def build_workload(name: str, txns: int, batch: int, seed: int = 0) -> Workload:
    """The named seeded workload, sized to ``txns`` transactions.

    Rates are set so the offered load roughly matches the pipeline's
    steady-state capacity (≈ batch transactions per delay): uniform and
    hotkey stream at ``batch`` txns/Δ, bursty lands 5-block bursts and
    leaves the pipeline to drain the backlog.
    """
    if name == "uniform":
        return UniformWorkload(count=txns, rate=float(batch), seed=seed)
    if name == "bursty":
        burst_size = 5 * batch
        return BurstyWorkload(
            bursts=max(1, txns // burst_size),
            burst_size=burst_size,
            period=10.0,
            seed=seed,
        )
    if name == "hotkey":
        return HotKeyWorkload(count=txns, rate=float(batch), seed=seed)
    raise ValueError(f"unknown workload {name!r}")


@dataclass
class SMRRow:
    """One (workload, scenario, n) cell of the latency/throughput table."""

    workload: str
    scenario: str
    n: int
    txns: int
    committed: int
    p50: float
    p95: float
    p99: float
    wall_seconds: float
    sim_duration: float
    blocks: int
    mempool_peak: int
    engine: str = "tetrabft"
    #: Physical frames vs logical messages put on the simulated network
    #: (a VoteBatch is one frame, many messages); their per-Δ rates are
    #: the message-plane batching figures the report carries.
    frames: int = 0
    messages: int = 0

    @property
    def txns_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.committed / self.wall_seconds

    @property
    def messages_per_delay(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.messages / (self.sim_duration / DELTA)

    @property
    def frames_per_delay(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.frames / (self.sim_duration / DELTA)

    @property
    def txns_per_delay(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.committed / (self.sim_duration / DELTA)

    @property
    def blocks_per_delay(self) -> float:
        if self.sim_duration <= 0:
            return 0.0
        return self.blocks / (self.sim_duration / DELTA)


def run_smr_bench(
    workload_name: str,
    scenario: str,
    n: int,
    txns: int = 400,
    batch: int = 25,
    seed: int = 0,
    horizon: float = 400.0,
    engine: str = "tetrabft",
    batching: bool | None = None,
) -> SMRRow:
    """One full SMR run: n replicas, one workload, one network scenario.

    ``engine`` selects the consensus engine behind the replicas (see
    :data:`repro.smr.ENGINE_NAMES`) — the default is the pipelined
    TetraBFT reference engine, wired through the
    :class:`~repro.smr.engine.ConsensusEngine` boundary.

    Message byte accounting is switched off (as in the throughput
    sweep): the measured object is the SMR pipeline, not the wire-size
    estimator.  Throughput counts a transaction as committed only once
    every live replica (the crash-recovery scenario's faulty node
    excluded) has executed it.
    """
    policy, excluded = scenario_policy(scenario, n, seed=seed)
    slots_needed = txns // batch
    # TetraBFT pipelines one slot per delay and needs slack for the
    # never-finalizing tail window; chained engines finalize each slot
    # on decision but may burn slots on empty blocks between bursts, so
    # they get an uncapped chain bounded by the horizon instead.
    max_slots = slots_needed + 40 if engine == "tetrabft" else None
    factory = engine_factory(
        engine, ProtocolConfig.create(n), max_slots=max_slots, batching=batching
    )
    sim = Simulation(policy)
    sim.metrics.messages.enabled = False
    trackers = SMRTrackers()
    replicas = [
        Replica(i, max_batch=batch, trackers=trackers, engine_factory=factory)
        for i in range(n)
    ]
    sim.add_nodes(list(replicas))
    workload = build_workload(workload_name, txns, batch, seed=seed)
    injected = workload.inject(sim, replicas)
    live = [i for i in range(n) if i not in excluded]
    throughput = trackers.throughput
    start = time.perf_counter()
    # Stop as soon as every live replica executed the whole workload —
    # the tail-window slots can never finalize, so their view-change
    # timers would otherwise idle the run out to the horizon.
    end = sim.run(
        until=horizon,
        stop_when=lambda: throughput.min_txns_applied(live) >= injected,
        stop_check_interval=64,
    )
    wall = time.perf_counter() - start
    percentiles = trackers.latency.percentiles(delta=DELTA)
    return SMRRow(
        engine=engine,
        workload=workload_name,
        scenario=scenario,
        n=n,
        txns=injected,
        committed=throughput.min_txns_applied(live),
        p50=percentiles[50],
        p95=percentiles[95],
        p99=percentiles[99],
        wall_seconds=wall,
        sim_duration=min(end, throughput.last_commit_time or end),
        blocks=throughput.min_blocks_applied(live),
        mempool_peak=throughput.peak_mempool(live),
        frames=sim.network.frames_sent,
        messages=sim.network.messages_sent,
    )


def run_smr_sweep(
    ns: tuple[int, ...] = SMR_NS,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    scenarios: tuple[str, ...] = SMR_SCENARIOS,
    txns: int = 400,
    batch: int = 25,
) -> list[SMRRow]:
    """The full 3 workloads × 3 scenarios × |ns| cluster-size sweep."""
    return [
        run_smr_bench(workload, scenario, n, txns=txns, batch=batch)
        for workload in workloads
        for scenario in scenarios
        for n in ns
    ]


def run_smr_smoke(txns: int = 80, batch: int = 10) -> list[SMRRow]:
    """The tier-1-sized variant: n=4, every workload, every scenario."""
    return run_smr_sweep(ns=(4,), txns=txns, batch=batch)


def format_smr_report(rows: list[SMRRow]) -> str:
    return format_table(
        [
            {
                "workload": row.workload,
                "scenario": row.scenario,
                "n": row.n,
                "txns": row.txns,
                "committed": row.committed,
                "p50(Δ)": row.p50,
                "p95(Δ)": row.p95,
                "p99(Δ)": row.p99,
                "txn/s": row.txns_per_sec,
                "txn/Δ": row.txns_per_delay,
                "blk/Δ": row.blocks_per_delay,
                "msg/Δ": row.messages_per_delay,
                "frm/Δ": row.frames_per_delay,
                "mp-peak": row.mempool_peak,
            }
            for row in rows
        ],
        columns=[
            "workload",
            "scenario",
            "n",
            "txns",
            "committed",
            "p50(Δ)",
            "p95(Δ)",
            "p99(Δ)",
            "txn/s",
            "txn/Δ",
            "blk/Δ",
            "msg/Δ",
            "frm/Δ",
            "mp-peak",
        ],
        title="A4 — SMR client latency / throughput (full replica clusters)",
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(format_smr_report(run_smr_sweep()))


if __name__ == "__main__":  # pragma: no cover
    main()
