"""Experiment A5 — cross-protocol SMR matrix over pluggable engines.

The paper's headline claims are comparative, but Table 1 compares the
protocols analytically (message delays, bits, storage) and the other
experiments run them as bare single-shot machines.  This experiment
runs the *same end-to-end client path* — mempool, in-flight dedup,
deterministic execution, state digests — over every consensus engine
behind the :class:`~repro.smr.engine.ConsensusEngine` boundary:

* ``tetrabft`` — the pipelined Multi-shot reference engine (one block
  per message delay in the good case);
* ``pbft`` / ``ithotstuff`` / ``li`` — the Table 1 baselines promoted
  to multi-slot :class:`~repro.baselines.chained.ChainedEngine`\\ s
  (one block per good-case round trip: 3Δ, 6Δ and 6Δ respectively).

Each cell of the matrix is one full cluster run under the seeded
Uniform / Bursty / HotKey workloads and the sync / geo / crash-recovery
scenario policies, reporting client-observed p50/p95/p99 commit latency
(in message delays) and commit throughput — the numbers that turn the
paper's "fewer message delays" column into end-to-end wins: TetraBFT's
pipelining should hold commit latency near the finality window and
throughput near one batch per delay, while the chained baselines pay
their full phase ladder per block and queue under the same offered
load.

``python -m repro engines`` prints the tier-1 smoke slice (every
engine × every workload, synchronous network, n=4); set
``REPRO_HEAVY=1`` for the full engine × workload × scenario × n grid.
"""

from __future__ import annotations


from repro.config import repro_config
from repro.eval.report import format_table
from repro.eval.smr_bench import SMR_SCENARIOS, SMRRow, WORKLOAD_NAMES, run_smr_bench
from repro.smr import ENGINE_NAMES

#: Cluster sizes of the full matrix (the chained baselines pay a full
#: phase ladder of n² messages per block, so the grid stays below the
#: A4 sweep's n=64 to keep the heavy run inside the event budget).
MATRIX_NS = (4, 16)


def run_engine_matrix(
    engines: tuple[str, ...] = ENGINE_NAMES,
    ns: tuple[int, ...] = MATRIX_NS,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    scenarios: tuple[str, ...] = SMR_SCENARIOS,
    txns: int = 200,
    batch: int = 20,
) -> list[SMRRow]:
    """The engine × workload × scenario × n grid, one full run per cell."""
    return [
        run_smr_bench(
            workload, scenario, n, txns=txns, batch=batch, engine=engine
        )
        for engine in engines
        for workload in workloads
        for scenario in scenarios
        for n in ns
    ]


def run_engine_smoke(txns: int = 60, batch: int = 10) -> list[SMRRow]:
    """The tier-1 slice: every engine × workload, sync network, n=4."""
    return run_engine_matrix(
        ns=(4,), scenarios=("sync",), txns=txns, batch=batch
    )


def run_batching_ablation(n: int = 16, txns: int = 200, batch: int = 20) -> list[SMRRow]:
    """Message-plane A/B: TetraBFT with and without vote-frame batching.

    The unbatched row is labelled ``tetrabft-nobatch`` so the two cells
    sit side by side in the report and the BENCH record.  Batching is
    semantics-free — the committed/latency columns must match; the
    frames/Δ column is where the two rows are allowed to differ.
    """
    batched = run_smr_bench("uniform", "sync", n, txns=txns, batch=batch, batching=True)
    unbatched = run_smr_bench("uniform", "sync", n, txns=txns, batch=batch, batching=False)
    unbatched.engine = "tetrabft-nobatch"
    return [batched, unbatched]


def format_engine_report(rows: list[SMRRow]) -> str:
    return format_table(
        [
            {
                "engine": row.engine,
                "workload": row.workload,
                "scenario": row.scenario,
                "n": row.n,
                "txns": row.txns,
                "committed": row.committed,
                "p50(Δ)": row.p50,
                "p95(Δ)": row.p95,
                "p99(Δ)": row.p99,
                "txn/s": row.txns_per_sec,
                "txn/Δ": row.txns_per_delay,
                "blk/Δ": row.blocks_per_delay,
                "msg/Δ": row.messages_per_delay,
                "frm/Δ": row.frames_per_delay,
                "mp-peak": row.mempool_peak,
            }
            for row in rows
        ],
        columns=[
            "engine",
            "workload",
            "scenario",
            "n",
            "txns",
            "committed",
            "p50(Δ)",
            "p95(Δ)",
            "p99(Δ)",
            "txn/s",
            "txn/Δ",
            "blk/Δ",
            "msg/Δ",
            "frm/Δ",
            "mp-peak",
        ],
        title="A5 — cross-engine SMR latency / throughput (shared client path)",
    )


def main() -> None:  # pragma: no cover - CLI entry
    if repro_config().heavy:
        rows = run_engine_matrix() + run_batching_ablation()
    else:
        rows = run_engine_smoke()
        print("(smoke slice: sync scenario, n=4 — REPRO_HEAVY=1 for the full grid)")
    print(format_engine_report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
