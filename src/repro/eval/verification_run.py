"""Experiment V5 — reproduce the Section 5 formal verification.

The paper verifies agreement with Apalache by checking an inductive
invariant over a 4-node / 1-Byzantine / 3-value / 5-view model (≈3h on
a desktop).  Our Python analogue has two parts:

1. **Exhaustive exploration** of the same transition system (with the
   wildcard-Byzantine reduction and symmetry reduction) at bounds
   explicit search can afford — every reachable state is checked for
   agreement and for every conjunct of the paper's inductive invariant;
2. **Inductive-step sampling** — generate invariant-satisfying states,
   take one arbitrary protocol step, and assert the invariant still
   holds (the hypothesis-driven version lives in the test suite; this
   module does a deterministic enumeration pass).

The bounded-liveness check (every deadlocked behaviour with a good
round has decided) reproduces the spec's ``Liveness`` theorem.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.verification import (
    ModelConfig,
    ModelState,
    check_agreement,
    check_invariants,
    check_liveness,
    consistency_invariant,
    successors,
)
from repro.verification.invariants import consistency


@dataclass
class VerificationSummary:
    agreement_states: int
    agreement_ok: bool
    invariant_states: int
    invariant_ok: bool
    liveness_states: int
    liveness_deadlocks: int
    liveness_ok: bool
    inductive_states_checked: int
    inductive_steps_checked: int
    inductive_ok: bool


def inductive_step_pass(
    config: ModelConfig, max_round_for_votes: int | None = None, limit: int = 20_000
) -> tuple[int, int, bool]:
    """Deterministic inductive-step check over enumerated states.

    Enumerates candidate states (not necessarily reachable!) from small
    vote-set combinations, keeps those satisfying the inductive
    invariant, applies every enabled action, and checks the invariant
    is preserved.  This is precisely the shape of the Apalache check:
    Inv ∧ Next ⇒ Inv′.
    """
    max_round = max_round_for_votes if max_round_for_votes is not None else config.max_round
    vote_pool = [
        (rnd, phase, value)
        for rnd in range(max_round + 1)
        for phase in (1, 2, 3, 4)
        for value in config.values
    ]
    states_checked = 0
    steps_checked = 0
    # Per-process vote sets of size ≤ 2 keep the enumeration tractable
    # while covering every phase/round/value interaction pairwise.
    small_sets = [frozenset()]
    small_sets += [frozenset([v]) for v in vote_pool]
    small_sets += [frozenset(pair) for pair in itertools.combinations(vote_pool, 2)]
    per_process = itertools.product(small_sets, repeat=config.honest)
    for votes in per_process:
        if states_checked >= limit:
            break
        max_vote_round = [max((vt[0] for vt in vs), default=-1) for vs in votes]
        state = ModelState(rounds=tuple(max_vote_round), votes=tuple(votes))
        if not consistency_invariant(state, config):
            continue
        if not consistency(state, config):
            return states_checked, steps_checked, False
        states_checked += 1
        for _action, nxt in successors(state, config):
            steps_checked += 1
            if not consistency_invariant(nxt, config):
                return states_checked, steps_checked, False
    return states_checked, steps_checked, True


def run_verification(
    explore_config: ModelConfig | None = None,
    liveness_config: ModelConfig | None = None,
    max_states: int = 400_000,
) -> VerificationSummary:
    explore_config = explore_config or ModelConfig(n=4, f=1, num_values=2, max_round=1)
    liveness_config = liveness_config or ModelConfig(
        n=4, f=1, num_values=2, max_round=1, byz_support=False, good_round=1
    )
    agreement = check_agreement(explore_config, max_states=max_states)
    invariants = check_invariants(
        ModelConfig(
            n=explore_config.n,
            f=explore_config.f,
            num_values=explore_config.num_values,
            max_round=explore_config.max_round,
        ),
        max_states=max_states // 4,
    )
    liveness = check_liveness(liveness_config, max_states=max_states)
    ind_states, ind_steps, ind_ok = inductive_step_pass(explore_config, limit=4000)
    return VerificationSummary(
        agreement_states=agreement.states_explored,
        agreement_ok=agreement.ok and not agreement.truncated,
        invariant_states=invariants.states_explored,
        invariant_ok=invariants.ok,
        liveness_states=liveness.states_explored,
        liveness_deadlocks=liveness.deadlocked_states,
        liveness_ok=liveness.ok,
        inductive_states_checked=ind_states,
        inductive_steps_checked=ind_steps,
        inductive_ok=ind_ok,
    )


def main() -> None:  # pragma: no cover - CLI entry
    summary = run_verification()
    print("Section 5 — formal verification reproduction")
    print(f"  agreement  : {summary.agreement_states} states, ok={summary.agreement_ok}")
    print(f"  invariants : {summary.invariant_states} states, ok={summary.invariant_ok}")
    print(f"  liveness   : {summary.liveness_states} states, "
          f"{summary.liveness_deadlocks} deadlocks, ok={summary.liveness_ok}")
    print(f"  inductive  : {summary.inductive_states_checked} states / "
          f"{summary.inductive_steps_checked} steps, ok={summary.inductive_ok}")


if __name__ == "__main__":  # pragma: no cover
    main()
