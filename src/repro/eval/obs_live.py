"""``python -m repro obs`` — live metrics table over a running cluster.

The operations-plane demo: deploy a small cluster (one OS process per
replica, the A7 shape), drive a background transaction workload at it,
and every ``interval`` seconds scrape every replica **in-band** — a
``MetricsRequest`` frame over the same client port and codec the
protocol runs on, answered without pausing consensus — rendering one
table row per replica:

* consensus: total commits, live windowed commit rate, current view,
  view changes, mempool depth, in-flight txns;
* transport: worst per-peer outbound queue lag;
* durability (durable clusters): fsyncs, WAL bytes, snapshots taken;
* the event-log ring depth (``ev``).

This is the same scrape path :meth:`GatewayService.cluster_metrics`
serves over ``/v1/cluster/metrics`` and the A7 bench persists into
``BENCH_net.json`` — here it just refreshes a terminal table until the
workload is fully acked (or ``--rounds`` snapshots have been taken).

``REPRO_NO_OBS=1`` demonstrates the kill switch: counters still flow
(collect/scrape payloads are built from them) but windowed sampling,
tracing and event logging are off.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace

from repro.config import repro_config
from repro.eval.report import format_table
from repro.eval.smr_bench import build_workload
from repro.net.client import AckCorrelator, ReplicaPool
from repro.net.cluster import (
    ClusterConfig,
    cluster_processes,
    reply_metric,
    schedule_from_workload,
    sized_max_slots,
)
from repro.net.codec import WIRE_CODEC, ClientSubmit

#: Default live-view shape: one n=4 lan cell's worth of workload.
OBS_N = 4
OBS_TXNS = 60
OBS_BATCH = 10
OBS_INTERVAL = 0.5
OBS_MAX_ROUNDS = 20


def _replica_row(node_id: int, reply) -> dict:
    """One scraped replica as a live-table row."""
    return {
        "node": node_id,
        "commits": int(reply_metric(reply, "consensus.commits")),
        "commit/s": reply_metric(reply, "consensus.commit.rate"),
        "view": int(reply_metric(reply, "consensus.view")),
        "vchg": int(reply_metric(reply, "consensus.view_changes")),
        "mempool": int(reply_metric(reply, "mempool.depth")),
        "inflight": int(reply_metric(reply, "mempool.in_flight")),
        "lag": int(reply_metric(reply, "transport.queue_lag")),
        "fsync": int(reply_metric(reply, "storage.fsyncs")),
        "walB": int(reply_metric(reply, "storage.wal_bytes")),
        "snap": int(reply_metric(reply, "storage.snapshots")),
        "ev": getattr(reply, "events", 0),
    }


def format_obs_table(replies: dict, title: str) -> str:
    rows = [_replica_row(node_id, reply) for node_id, reply in sorted(replies.items())]
    return format_table(
        rows,
        columns=[
            "node",
            "commits",
            "commit/s",
            "view",
            "vchg",
            "mempool",
            "inflight",
            "lag",
            "fsync",
            "walB",
            "snap",
            "ev",
        ],
        title=title,
    )


async def _observe(config: ClusterConfig, specs, schedule, interval, rounds) -> bool:
    """Drive the workload while scraping; True once fully acked."""
    correlator = AckCorrelator()
    correlator.track_nodes(range(config.n))

    def on_ack(node_id: int, ack) -> None:
        correlator.record_ack(node_id, ack, time.monotonic())

    pool = ReplicaPool.from_specs(specs, time_scale=config.time_scale, on_ack=on_ack)
    await pool.connect()
    pool.start_run()
    t0 = time.monotonic()

    async def drive() -> None:
        for at, txn in schedule:
            wait = t0 + at * config.time_scale - time.monotonic()
            if wait > 0:
                await asyncio.sleep(wait)
            correlator.record_submit(txn.txid, time.monotonic())
            pool.broadcast_frame(WIRE_CODEC.encode_frame(ClientSubmit(txn)))

    driver = asyncio.ensure_future(drive())
    done = False
    try:
        for snapshot in range(1, rounds + 1):
            await asyncio.sleep(interval)
            try:
                replies = await pool.scrape(timeout=2.0)
            except (OSError, ConnectionError, asyncio.TimeoutError):
                continue
            elapsed = time.monotonic() - t0
            acked = sum(len(txids) for txids in correlator.acked.values())
            print(
                format_obs_table(
                    replies,
                    title=(
                        f"obs scrape {snapshot} — t={elapsed:.1f}s, "
                        f"{acked} acks / {len(correlator.expected) * config.n} expected"
                    ),
                )
            )
            if driver.done() and correlator.all_acked(pool.live):
                done = True
                break
    finally:
        driver.cancel()
        pool.close()
    return done


def run_obs_live(
    n: int = OBS_N,
    txns: int = OBS_TXNS,
    batch: int = OBS_BATCH,
    interval: float = OBS_INTERVAL,
    rounds: int = OBS_MAX_ROUNDS,
    data_dir: str | None = None,
) -> bool:
    """Deploy, drive, and live-scrape one cluster; True if fully acked."""
    config = ClusterConfig(n=n, batch=batch, data_dir=data_dir)
    schedule = schedule_from_workload(build_workload("uniform", txns, batch, seed=0))
    config = replace(config, max_slots=sized_max_slots(config, len(schedule)))
    with cluster_processes(config) as (specs, processes):
        return asyncio.run(_observe(config, specs, schedule, interval, rounds))


def main() -> None:  # pragma: no cover - CLI entry
    import tempfile

    cfg = repro_config()
    if cfg.no_obs:
        print("(REPRO_NO_OBS=1: windowed sampling, tracing and event logs are off;")
        print(" counters still flow — the scrape payload is built from them)")
    # A durable cluster (throwaway data dir) so the storage columns —
    # fsyncs, WAL bytes, snapshot cadence — are live too.
    with tempfile.TemporaryDirectory(prefix="repro-obs-") as tmp:
        done = run_obs_live(data_dir=tmp)
    if not done:
        print("workload did not fully ack within the observation window")
        raise SystemExit(1)
    print("workload fully acked under live observation")


if __name__ == "__main__":  # pragma: no cover
    main()
