"""Experiment A6 — adversarial campaigns over the engine matrix.

A5 established that every pluggable consensus engine runs the same
end-to-end client path; this experiment establishes what each engine
guarantees *under attack*, which is the paper's actual headline: the
claims are about unauthenticated Byzantine faults, not good-case
latency.  Each cell of the campaign grid is one full SMR cluster run —
mempool, dedup, execution, digests — with an f-bounded set of replicas
wrapped in a :class:`~repro.adversary.faulty_engine.FaultyEngine`
driving one deviation family (silence, scheduled crash/recover, leader
equivocation, vote withholding, history fabrication, chaos), followed
by a post-hoc :class:`~repro.verification.audit.SafetyAuditor` pass
that replays the honest replicas' finalized chains and state digests
through the run-level invariants: agreement, no-fork, hash-linkage,
execute-once, replay determinism, and liveness at the horizon.

The verdicts are machine-readable (``BENCH_attacks.json``), which is
what lets CI gate on them: TetraBFT must stay **safe and live** with
``f`` Byzantine replicas on every attack family, and *no* engine may
ever fail a safety audit (the chained baselines are allowed to lose
liveness — their simplified recovery logic is crash-fault-grade — but
never to fork).

``python -m repro attacks`` runs the tier-1 smoke slice (every attack ×
every engine, synchronous network, n=4) and writes the verdicts next
to the other perf records; set ``REPRO_HEAVY=1`` for the full attack ×
engine × scenario × n grid.
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.config import repro_config
from repro.adversary.faulty_engine import ATTACK_NAMES, ATTACKS, faulty_factory
from repro.core import ProtocolConfig
from repro.eval.report import format_table, merge_record
from repro.eval.scaling import scenario_policy
from repro.eval.smr_bench import SMR_SCENARIOS, build_workload
from repro.metrics.smr_trackers import SMRTrackers
from repro.sim import Simulation
from repro.smr import Replica, engine_factory
from repro.smr.engine import ENGINE_NAMES
from repro.verification.audit import SafetyAuditor

#: Cluster sizes of the full campaign grid (same rationale as A5: the
#: chained baselines pay n² per phase, and every cell already pays view
#: changes, so the heavy grid stays at small n).
CAMPAIGN_NS = (4, 16)

#: Default BENCH record written by ``python -m repro attacks`` —
#: anchored at the repo root (next to the other BENCH_*.json records,
#: where the CI artifact/gate steps expect them) rather than the CWD.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_attacks.json"


@dataclass
class AttackRow:
    """One (attack, engine, scenario, n) cell: run stats + audit verdict.

    ``safe`` and ``live`` are the :class:`AuditReport`'s own verdicts,
    captured at audit time rather than re-derived, so the campaign can
    never disagree with the auditor about what "safe" means.
    """

    attack: str
    engine: str
    scenario: str
    n: int
    f: int
    faulty: tuple[int, ...]
    txns: int
    committed: int
    checks: dict[str, bool]
    safe: bool
    live: bool
    wall_seconds: float
    sim_duration: float

    @property
    def verdict(self) -> str:
        if self.safe and self.live:
            return "safe+live"
        if self.safe:
            return "safe"
        return "UNSAFE"


def place_adversaries(n: int, f: int, seed: int = 0, avoid: Iterable[int] = ()) -> tuple[int, ...]:
    """Deterministic f-bounded adversary placement.

    Samples ``f`` distinct ids from ``0..n-1`` minus ``avoid`` (the
    scenario's network-faulty nodes — stacking a Byzantine replica on a
    crash-scheduled one would waste the adversary budget) using a
    seeded RNG, so every cell of a campaign is reproducible yet the
    placement varies across seeds.
    """
    rng = random.Random(seed * 9_176_141 + n)
    candidates = [i for i in range(n) if i not in set(avoid)]
    if f > len(candidates):
        raise ValueError(f"cannot place {f} adversaries among {len(candidates)} candidates")
    return tuple(sorted(rng.sample(candidates, f)))


def run_attack_cell(
    attack: str,
    engine: str,
    scenario: str,
    n: int,
    txns: int = 30,
    batch: int = 10,
    seed: int = 0,
    horizon: float = 200.0,
) -> AttackRow:
    """One campaign cell: a full adversarial SMR run plus its audit.

    ``f = (n-1)//3`` replicas run the named attack through a
    :class:`FaultyEngine` wrapping the named engine; the rest are
    honest.  Liveness is judged on the honest replicas only (Byzantine
    nodes owe nobody an execution), and the audit replays only their
    chains — a Byzantine replica's local state is unconstrained by
    definition.
    """
    policy, excluded = scenario_policy(scenario, n, seed=seed)
    base = ProtocolConfig.create(n)
    f = base.quorum_system.f
    faulty = place_adversaries(n, f, seed=seed, avoid=excluded)
    slots_needed = txns // batch
    # Attacked runs burn slots on view changes and poison blocks, so
    # TetraBFT gets extra chain budget on top of the A4 sizing.
    max_slots = slots_needed + 60 if engine == "tetrabft" else None
    deviation = ATTACKS[attack]
    factory = faulty_factory(
        engine_factory(engine, base, max_slots=max_slots),
        lambda node_id: deviation(node_id, base, seed),
        faulty,
    )
    sim = Simulation(policy)
    sim.metrics.messages.enabled = False
    trackers = SMRTrackers()
    replicas = [
        Replica(i, max_batch=batch, trackers=trackers, engine_factory=factory)
        for i in range(n)
    ]
    sim.add_nodes(list(replicas))
    injected = build_workload("uniform", txns, batch, seed=seed).inject(sim, replicas)
    honest = [i for i in range(n) if i not in faulty and i not in excluded]
    throughput = trackers.throughput
    start = time.perf_counter()
    end = sim.run(
        until=horizon,
        stop_when=lambda: throughput.min_txns_applied(honest) >= injected,
        stop_check_interval=64,
    )
    wall = time.perf_counter() - start
    report = SafetyAuditor(expected_txns=injected).audit([replicas[i] for i in honest])
    return AttackRow(
        attack=attack,
        engine=engine,
        scenario=scenario,
        n=n,
        f=f,
        faulty=faulty,
        txns=injected,
        committed=throughput.min_txns_applied(honest),
        checks=dict(report.checks),
        safe=report.safe,
        live=bool(report.live),
        wall_seconds=wall,
        sim_duration=end,
    )


class CampaignRunner:
    """Sweeps the attack × engine × scenario × n grid, one audit per cell."""

    def __init__(
        self,
        attacks: tuple[str, ...] = ATTACK_NAMES,
        engines: tuple[str, ...] = ENGINE_NAMES,
        scenarios: tuple[str, ...] = ("sync",),
        ns: tuple[int, ...] = (4,),
        txns: int = 30,
        batch: int = 10,
        seed: int = 0,
    ) -> None:
        self.attacks = attacks
        self.engines = engines
        self.scenarios = scenarios
        self.ns = ns
        self.txns = txns
        self.batch = batch
        self.seed = seed

    def cells(self) -> list[tuple[str, str, str, int]]:
        return [
            (attack, engine, scenario, n)
            for attack in self.attacks
            for engine in self.engines
            for scenario in self.scenarios
            for n in self.ns
        ]

    def run(self) -> list[AttackRow]:
        return [
            run_attack_cell(
                attack,
                engine,
                scenario,
                n,
                txns=self.txns,
                batch=self.batch,
                seed=self.seed,
            )
            for attack, engine, scenario, n in self.cells()
        ]


def run_attack_smoke(txns: int = 30, batch: int = 10) -> list[AttackRow]:
    """The tier-1 slice: every attack × engine, sync network, n=4."""
    return CampaignRunner(txns=txns, batch=batch).run()


def run_attack_grid(txns: int = 30, batch: int = 10) -> list[AttackRow]:
    """The full campaign: attack × engine × scenario × n ∈ CAMPAIGN_NS."""
    return CampaignRunner(scenarios=SMR_SCENARIOS, ns=CAMPAIGN_NS, txns=txns, batch=batch).run()


def attack_record(row: AttackRow) -> dict:
    """One AttackRow as a BENCH_attacks.json cell."""
    return {
        "attack": row.attack,
        "engine": row.engine,
        "scenario": row.scenario,
        "n": row.n,
        "f": row.f,
        "faulty": list(row.faulty),
        "txns": row.txns,
        "committed": row.committed,
        "checks": dict(row.checks),
        "safe": row.safe,
        "live": row.live,
        "sim_duration": row.sim_duration,
        "wall_seconds": row.wall_seconds,
    }


def write_attack_records(rows: list[AttackRow], key: str, path: Path = BENCH_PATH) -> None:
    """Merge the campaign's verdicts under ``key`` into ``path``."""
    merge_record(path, key, [attack_record(row) for row in rows])


def format_attack_report(rows: list[AttackRow]) -> str:
    return format_table(
        [
            {
                "attack": row.attack,
                "engine": row.engine,
                "scenario": row.scenario,
                "n": row.n,
                "f": row.f,
                "faulty": ",".join(str(i) for i in row.faulty),
                "txns": row.txns,
                "committed": row.committed,
                "verdict": row.verdict,
            }
            for row in rows
        ],
        columns=[
            "attack",
            "engine",
            "scenario",
            "n",
            "f",
            "faulty",
            "txns",
            "committed",
            "verdict",
        ],
        title="A6 — Byzantine campaign over the engine matrix (audited)",
    )


def main() -> None:  # pragma: no cover - CLI entry
    if repro_config().heavy:
        rows = run_attack_grid()
        key = "attack_grid"
    else:
        rows = run_attack_smoke()
        key = "attack_smoke"
        print("(smoke slice: sync scenario, n=4 — REPRO_HEAVY=1 for the full grid)")
    print(format_attack_report(rows))
    write_attack_records(rows, key)
    unsafe = [row for row in rows if not row.safe]
    if unsafe:
        print(f"UNSAFE cells: {[(r.attack, r.engine, r.scenario, r.n) for r in unsafe]}")
    else:
        print(f"all {len(rows)} cells passed the safety audit")


if __name__ == "__main__":  # pragma: no cover
    main()
