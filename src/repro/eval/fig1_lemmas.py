"""Experiment F1 — Figure 1's liveness-lemma chain, checked on traces.

Figure 1 is the paper's proof roadmap: Lemma 2 (a well-behaved leader
determines a safe value) → Lemma 4 (every well-behaved node determines
the leader's value safe) → Lemma 5 (all well-behaved nodes decide).
It is a diagram, not a measurement, so we reproduce it by *checking the
chain empirically*: run a view with a well-behaved leader after GST and
assert each implication in sequence on the execution trace.

We force a view > 0 (the lemmas concern the post-view-change path where
suggest/proof machinery is live) by crashing the view-0 leader.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ProtocolConfig, TetraBFTNode
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    TraceKind,
    silence_nodes,
)


@dataclass
class LemmaChainResult:
    """Observed evidence for each lemma of the chain, in view ``view``."""

    view: int
    lemma2_leader_proposed: bool
    lemma4_all_determined_safe: bool
    lemma5_all_decided: bool
    agreed_value: object | None

    @property
    def chain_holds(self) -> bool:
        return (
            self.lemma2_leader_proposed
            and self.lemma4_all_determined_safe
            and self.lemma5_all_decided
        )


def run_lemma_chain(n: int = 4) -> LemmaChainResult:
    """One crashed view-0 leader; check Lemmas 2, 4, 5 in view 1."""
    config = ProtocolConfig.create(n)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([0]))
    sim = Simulation(policy, trace_enabled=True)
    for i in range(n):
        sim.add_node(TetraBFTNode(i, config, initial_value=f"val-{i}"))
    correct = list(range(1, n))
    sim.run_until_all_decided(node_ids=correct, until=400)

    view = 1
    # Lemma 2: the (well-behaved) leader of view 1 found a safe value
    # and proposed it once it had suggest messages from a quorum.
    proposals = sim.trace.events(
        TraceKind.PROPOSE, node=config.leader_of(view),
        where=lambda e: e.get("view") == view,
    )
    lemma2 = len(proposals) == 1
    proposed_value = proposals[0].get("value") if proposals else None

    # Lemma 4: every correct node determined the proposal safe — the
    # observable witness is a vote-1 for exactly the proposed value.
    vote1s = {
        i: sim.trace.events(
            TraceKind.VOTE, node=i,
            where=lambda e: e.get("view") == view and e.get("phase") == 1,
        )
        for i in correct
    }
    lemma4 = lemma2 and all(
        len(votes) == 1 and votes[0].get("value") == proposed_value
        for votes in vote1s.values()
    )

    # Lemma 5: all correct nodes then decided that value.
    decisions = sim.metrics.latency
    lemma5 = all(i in decisions.decision_times for i in correct) and (
        decisions.decided_values() == {proposed_value}
    )

    return LemmaChainResult(
        view=view,
        lemma2_leader_proposed=lemma2,
        lemma4_all_determined_safe=lemma4,
        lemma5_all_decided=lemma5,
        agreed_value=proposed_value,
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_lemma_chain()
    print("Figure 1 — liveness lemma chain (checked on a view-1 trace)")
    print(f"  Lemma 2 (leader finds & proposes a safe value): {result.lemma2_leader_proposed}")
    print(f"  Lemma 4 (every node determines it safe)       : {result.lemma4_all_determined_safe}")
    print(f"  Lemma 5 (every node decides it)               : {result.lemma5_all_decided}")
    print(f"  agreed value: {result.agreed_value!r}")


if __name__ == "__main__":  # pragma: no cover
    main()
