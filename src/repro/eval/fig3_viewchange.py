"""Experiment F3 — reproduce Figure 3 (multi-shot view change).

Figure 3 walks through a failed block: votes for slot 1's lineage stop
reaching quorums, timers expire, nodes view-change slots 1..3 into view
1, suggest/proof messages flow, new leaders re-propose, and the chain
resumes — with slot 4 (never started before the view change) beginning
at view 0 as usual.

We reproduce the scenario by crashing the view-0 leader of an early
slot, and measure:

* consistency — all correct finalized chains are prefix-compatible;
* the number of aborted slots (paper: bounded by the finality latency,
  at most 5);
* recovery — the chain reaches the target height after the view
  change, and slots beyond the aborted window run in view 0;
* the §6.3 recovery bound — a new block is notarized within 5Δ of the
  view change completing (2Δ view change + 3Δ suggest/proposal/vote).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import ProtocolConfig
from repro.multishot import MultiShotConfig, MultiShotNode
from repro.sim import (
    Simulation,
    SynchronousDelays,
    TargetedDropPolicy,
    TraceKind,
    silence_nodes,
)


@dataclass
class ViewChangeResult:
    final_heights: list[int]
    consistent: bool
    aborted_slots: list[int]
    first_vc_time: float
    recovery_notarize_time: float
    post_recovery_view0_slots: list[int]

    @property
    def max_aborted(self) -> int:
        return len(self.aborted_slots)

    @property
    def recovery_delays(self) -> float:
        return self.recovery_notarize_time - self.first_vc_time


def run_viewchange(
    n: int = 4,
    crashed: int = 3,
    crash_end: float = 25.0,
    max_slots: int = 12,
    horizon: float = 300.0,
) -> ViewChangeResult:
    """Crash node ``crashed`` (the view-0 leader of slot ``crashed``)
    during ``[0, crash_end)`` — long enough to force the Figure 3 view
    change, short enough that the chain resumes good-case operation
    afterwards (the node is mute while crashed, not deaf, so it
    rejoins in sync, like a recovering process whose inbound link
    stayed up)."""
    base = ProtocolConfig.create(n)
    config = MultiShotConfig(base=base, max_slots=max_slots)
    policy = TargetedDropPolicy(SynchronousDelays(1.0), silence_nodes([crashed]), end=crash_end)
    sim = Simulation(policy, trace_enabled=True)
    for i in range(n):
        sim.add_node(MultiShotNode(i, config))
    sim.run(until=horizon)

    correct = [i for i in range(n) if i != crashed]
    chains = {i: sim.nodes[i].finalized_chain for i in correct}
    digests = {i: [b.digest for b in c] for i, c in chains.items()}
    consistent = True
    reference = digests[correct[0]]
    for i in correct[1:]:
        other = digests[i]
        shorter = min(len(reference), len(other))
        if reference[:shorter] != other[:shorter]:
            consistent = False

    # Aborted slots, per view-change *event*: entries sharing one
    # timestamp at one node form a wave; the paper's "at most 5" bound
    # (finality latency) is about the largest single wave, not the sum
    # over every recovery a long adversarial run needs.
    vc_entries = [
        e
        for i in correct
        for e in sim.trace.events(TraceKind.VIEW_ENTER, node=i)
        if (e.get("view") or 0) > 0 and e.get("slot") is not None
    ]
    waves: dict[tuple[int, float], set[int]] = {}
    for e in vc_entries:
        waves.setdefault((e.node, e.time), set()).add(int(e.get("slot")))
    aborted = sorted(max(waves.values(), key=len)) if waves else []
    first_vc_time = min((e.time for e in vc_entries), default=0.0)

    # First notarization in a view > 0 at any correct node = recovery.
    recovery = [
        e
        for i in correct
        for e in sim.trace.events(TraceKind.NOTARIZE, node=i)
        if (e.get("view") or 0) > 0
    ]
    recovery_time = min((e.time for e in recovery), default=float("inf"))

    # Slots notarized at view 0 with start above the aborted window.
    view0_after = sorted(
        {
            int(e.get("slot"))
            for i in correct
            for e in sim.trace.events(TraceKind.NOTARIZE, node=i)
            if e.get("view") == 0
            and aborted
            and int(e.get("slot")) > max(aborted)
        }
    )

    return ViewChangeResult(
        final_heights=[len(chains[i]) for i in correct],
        consistent=consistent,
        aborted_slots=aborted,
        first_vc_time=first_vc_time,
        recovery_notarize_time=recovery_time,
        post_recovery_view0_slots=view0_after,
    )


def main() -> None:  # pragma: no cover - CLI entry
    result = run_viewchange()
    print("Figure 3 — multi-shot view change")
    print(f"  correct-node heights : {result.final_heights}")
    print(f"  chains consistent    : {result.consistent}")
    print(f"  aborted slots        : {result.aborted_slots} (paper: at most 5)")
    print(f"  view change at       : t={result.first_vc_time}")
    print(f"  recovery notarize at : t={result.recovery_notarize_time}"
          f" ({result.recovery_delays:.0f} delays after; paper bound: 5)")
    print(f"  later view-0 slots   : {result.post_recovery_view0_slots[:5]}")


if __name__ == "__main__":  # pragma: no cover
    main()
