"""Plain-text table / series formatting for experiment output.

Every experiment module produces rows (lists of dicts); this module
renders them the way the paper presents its tables so bench output can
be compared to the paper side by side.  It also owns the
machine-readable side: :func:`merge_record` is the one implementation
of the ``BENCH_*.json`` merge-under-key format used by the CLI
experiments and the benchmark harness alike.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Sequence
from pathlib import Path


def merge_record(path: Path, key: str, payload: object) -> None:
    """Merge ``payload`` under ``key`` into the JSON record at ``path``.

    Records written by other keys are left in place; a missing or
    malformed file is replaced wholesale.

    The write is atomic: the merged document goes to a temporary file
    in the same directory and is ``os.replace``d into place, so a run
    interrupted mid-write can never leave a truncated ``BENCH_*.json``
    behind to poison the CI regression gate — readers see either the
    old complete record or the new complete record.
    """
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    data[key] = payload
    rendered = json.dumps(data, indent=2, sort_keys=True) + "\n"
    fd, tmp_path = tempfile.mkstemp(dir=str(path.parent), prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(rendered)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def format_table(rows: Sequence[dict], columns: Sequence[str], title: str = "") -> str:
    """Monospace table with a header row, sized to the widest cell."""
    headers = list(columns)
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(points: Sequence[tuple[object, object]], title: str = "") -> str:
    """A two-column (x, y) series, for figure-shaped results."""
    lines = [title] if title else []
    for x, y in points:
        lines.append(f"  {_fmt(x):>12s}  {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.2f}"
    return str(value)
