"""Plain-text table / series formatting for experiment output.

Every experiment module produces rows (lists of dicts); this module
renders them the way the paper presents its tables so bench output can
be compared to the paper side by side.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    rows: Sequence[dict], columns: Sequence[str], title: str = ""
) -> str:
    """Monospace table with a header row, sized to the widest cell."""
    headers = list(columns)
    rendered = [
        [_fmt(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(points: Sequence[tuple[object, object]], title: str = "") -> str:
    """A two-column (x, y) series, for figure-shaped results."""
    lines = [title] if title else []
    for x, y in points:
        lines.append(f"  {_fmt(x):>12s}  {_fmt(y)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.2f}"
    return str(value)
