"""Structured event log: NDJSON records, ring-buffered, streamable.

Every record carries the same five leading fields plus a free-form
payload::

    {"ts": ..., "replica": ..., "view": ..., "slot": ..., "kind": ..., "payload": {...}}

Field order and JSON shape are a *pinned schema* (see
``tests/test_obs_events.py``): downstream forensics tooling greps
these lines out of CI artifacts, so the encoding is canonical —
fixed key order for the envelope, sorted keys inside the payload,
compact separators, one event per line.

The log keeps the last ``capacity`` events in a ring buffer; that
tail is what gets dumped next to the WAL when a run needs forensics
(:meth:`EventLog.dump`).  With ``stream_path`` set (the
``REPRO_EVENT_LOG=1`` path), every event is also appended to an
NDJSON file as it happens, so a replica that dies mid-run still
leaves evidence.  ``enabled=False`` (``REPRO_NO_OBS=1``) turns
:meth:`emit` into a no-op.
"""

from __future__ import annotations

import json
import time
from collections import deque

#: Pinned envelope field order of one NDJSON record.
EVENT_FIELDS = ("ts", "replica", "view", "slot", "kind", "payload")

#: Event kinds the deployed stack emits today.  Free-form by design —
#: this list documents the vocabulary, it is not an enum.
KNOWN_KINDS = (
    "recover",  # restart-from-disk replay finished
    "view_enter",  # replica entered a view
    "finalize",  # block finalized/executed
    "state_transfer",  # state-transfer served or applied
    "anomaly",  # protocol anomaly (unknown frame, decode error, ...)
)


def encode_event(event: dict) -> str:
    """Canonical NDJSON encoding of one event (no trailing newline)."""
    ordered = {name: event.get(name) for name in EVENT_FIELDS}
    payload = ordered["payload"] or {}
    ordered["payload"] = {k: payload[k] for k in sorted(payload)}
    return json.dumps(ordered, separators=(",", ":"))


class EventLog:
    """Ring-buffered structured event log for one replica/process."""

    def __init__(
        self,
        replica: int,
        capacity: int = 256,
        clock=time.time,
        stream_path=None,
        enabled: bool = True,
    ) -> None:
        self.replica = replica
        self.clock = clock
        self.enabled = enabled
        self._ring: deque = deque(maxlen=capacity)
        self._stream = None
        self._stream_path = stream_path
        if enabled and stream_path is not None:
            stream_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(stream_path, "a", encoding="utf-8")

    def emit(self, kind: str, view: int = -1, slot: int = -1, **payload) -> None:
        if not self.enabled:
            return
        event = {
            "ts": round(float(self.clock()), 6),
            "replica": self.replica,
            "view": view,
            "slot": slot,
            "kind": kind,
            "payload": payload,
        }
        self._ring.append(event)
        if self._stream is not None:
            self._stream.write(encode_event(event) + "\n")
            self._stream.flush()

    @property
    def streaming(self) -> bool:
        """Whether events are being appended to an NDJSON file live."""
        return self._stream is not None

    def tail(self, n: int | None = None) -> list[dict]:
        events = list(self._ring)
        return events if n is None else events[-n:]

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, path) -> int:
        """Write the ring tail as NDJSON to ``path``; returns the count.

        This is the forensics hook: when a run trips the SafetyAuditor
        (or simply shuts down with a data dir configured), the last N
        events per replica land next to the WAL so the CI artifact
        carries them.
        """
        events = self.tail()
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(encode_event(event) + "\n")
        return len(events)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
