"""Commit-path tracing: sampled per-txn spans, correlated by txid.

A transaction crosses five stages on its way through the deployed
stack::

    admit     gateway admission (HTTP accepted into a batch)
    submit    ClientSubmit hits the driver / replica client port
    propose   a leader packs the txn into a proposed block
    finalize  the block finalizes and the txn executes
    ack       the CommitAck reaches the submitting client

Tracing every txn would distort the capacity cells, so sampling is
*deterministic in the txid*: ``crc32(txid) % sample_every == 0``.
Every process that sees the txn — gateway, driver, each replica —
makes the same keep/drop decision without coordination, so the
per-stage timestamps recorded in different processes describe the
same txn population.

Each tracer is process-local and clock-injectable.  A span completes
when its terminal stage is recorded; :meth:`breakdown` reduces the
completed spans to per-stage-transition latency stats, and
:meth:`publish` exports those into a :class:`MetricsRegistry` under
``trace.<from>_to_<to>.*`` so scrape frames carry the breakdown.
"""

from __future__ import annotations

import time
import zlib

#: Canonical stage order of the commit path.
TRACE_STAGES = ("admit", "submit", "propose", "finalize", "ack")


class CommitPathTracer:
    """Sampled commit-path spans for one process.

    ``sample_every=0`` disables tracing entirely (the ``REPRO_NO_OBS``
    arm); ``sample_every=1`` traces every txn (tests).
    """

    def __init__(
        self,
        sample_every: int = 16,
        clock=time.monotonic,
        capacity: int = 1024,
        terminal: str = "ack",
    ) -> None:
        self.sample_every = sample_every
        self.clock = clock
        self.capacity = capacity
        self.terminal = terminal
        self._open: dict[str, dict[str, float]] = {}
        self._done: list[dict] = []

    def sampled(self, txid: str) -> bool:
        if self.sample_every <= 0:
            return False
        return zlib.crc32(txid.encode("utf-8")) % self.sample_every == 0

    def record(self, txid: str, stage: str, at: float | None = None) -> bool:
        """Record ``stage`` for ``txid`` if it is in the sample.

        Returns whether the event was kept.  Unknown stages are kept
        too (the vocabulary is open), but only :data:`TRACE_STAGES`
        transitions appear in :meth:`breakdown`.
        """
        if not self.sampled(txid):
            return False
        span = self._open.get(txid)
        if span is None:
            if len(self._open) >= self.capacity:
                return False  # bounded: drop new spans under overload
            span = self._open[txid] = {}
        span.setdefault(stage, self.clock() if at is None else at)
        if stage == self.terminal:
            self._done.append({"txid": txid, "stages": self._open.pop(txid)})
            if len(self._done) > self.capacity:
                del self._done[: len(self._done) - self.capacity]
        return True

    def spans(self) -> list[dict]:
        """Completed spans, oldest first."""
        return list(self._done)

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-stage-transition latency stats over completed spans.

        Keys are ``"<from>_to_<to>"`` for consecutive recorded stages
        (missing stages are skipped, so a driver-side tracer that only
        sees submit/ack reports ``submit_to_ack``).  Values carry
        ``count``, ``mean``, ``p50``, ``p95``, ``max`` in seconds.
        """
        deltas: dict[str, list[float]] = {}
        for span in self._done:
            stages = span["stages"]
            seen = [s for s in TRACE_STAGES if s in stages]
            for a, b in zip(seen, seen[1:]):
                dt = stages[b] - stages[a]
                if dt >= 0:
                    deltas.setdefault(f"{a}_to_{b}", []).append(dt)
        out: dict[str, dict[str, float]] = {}
        for key, values in sorted(deltas.items()):
            values.sort()
            n = len(values)
            out[key] = {
                "count": float(n),
                "mean": sum(values) / n,
                "p50": values[max(1, -(-n * 50 // 100)) - 1],
                "p95": values[max(1, -(-n * 95 // 100)) - 1],
                "max": values[-1],
            }
        return out

    def publish(self, registry, prefix: str = "trace.") -> None:
        """Export the breakdown into a registry as gauges."""
        for key, stats in self.breakdown().items():
            for suffix in ("count", "mean", "p95"):
                registry.gauge(f"{prefix}{key}.{suffix}").set(stats[suffix])
