"""Zero-dependency observability plane for the deployed stack.

Three pieces, all stdlib-only and deterministic under injectable
clocks:

* :mod:`repro.obs.metrics` — a per-process :class:`MetricsRegistry`
  of counters, gauges, and windowed histograms.  Every replica
  process and every gateway owns one; its :meth:`snapshot_items`
  is the exact tuple the ``MetricsReply`` wire frame carries.
* :mod:`repro.obs.events` — an NDJSON structured event log
  (``ts, replica, view, slot, kind, payload``), ring-buffered in
  memory and optionally streamed into the replica's data dir
  (``REPRO_EVENT_LOG=1``); the ring tail is the forensics record a
  SafetyAuditor violation ships.
* :mod:`repro.obs.trace` — sampled commit-path spans following a
  txn from gateway admission through finalization to the CommitAck,
  correlated by txid and summarised as per-stage latency breakdowns.

``REPRO_NO_OBS=1`` (see :class:`repro.config.ReproConfig`) disables
event recording and trace sampling; the registry's plain counters
stay on because the collect/scrape wire payloads are built from them.
"""

from repro.obs.events import EVENT_FIELDS, EventLog, encode_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    WindowedHistogram,
    items_to_dict,
)
from repro.obs.trace import TRACE_STAGES, CommitPathTracer

__all__ = [
    "EVENT_FIELDS",
    "EventLog",
    "encode_event",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "WindowedHistogram",
    "items_to_dict",
    "TRACE_STAGES",
    "CommitPathTracer",
]
