"""Metrics registry: counters, gauges, windowed histograms.

One :class:`MetricsRegistry` lives in every replica process and every
gateway.  It is deliberately boring: a flat, sorted namespace of
instruments, no labels, no background threads, no dependencies.  The
hot-path cost of an instrumented event is one attribute bump
(:meth:`Counter.inc`) or one deque append
(:meth:`WindowedHistogram.record`).

Determinism contract: every instrument takes an injectable ``clock``
(shared from the registry), and :meth:`MetricsRegistry.snapshot_items`
returns a *sorted* tuple of ``(name, float)`` pairs — the exact shape
``MetricsReply``/``CollectReply`` carry on the wire, so two registries
fed the same events under the same clock serialise identically.

Windowed histograms answer "what is happening *now*": samples older
than ``window`` seconds fall out, and the snapshot exports windowed
``count``, ``rate`` (events/sec over the window), ``mean``, ``p50``,
``p95`` and ``max``.  Recording the constant 1.0 per event turns a
histogram into a meter (the commit-rate instrument does exactly this).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field


@dataclass
class Counter:
    """Monotonic counter.  ``value`` is public and mutable so mapping
    facades (the gateway's counter view) can rebase ``+=`` onto it."""

    name: str
    value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Gauge:
    """Point-in-time value (mempool depth, queue lag, ...)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class WindowedHistogram:
    """Sliding-window sample set over an injectable clock.

    ``record(value)`` stamps the sample with ``clock()``; any read
    first evicts samples older than ``window`` seconds.  ``maxlen``
    bounds memory on hot instruments (eviction is oldest-first, which
    under overload degrades the window gracefully rather than OOMing).
    """

    name: str
    window: float = 10.0
    maxlen: int = 4096
    clock: object = time.monotonic
    _samples: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        self._samples = deque(maxlen=self.maxlen)

    def record(self, value: float, at: float | None = None) -> None:
        self._samples.append((self.clock() if at is None else at, float(value)))

    def _live(self) -> list[float]:
        horizon = self.clock() - self.window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()
        return [v for _, v in self._samples]

    @property
    def count(self) -> int:
        return len(self._live())

    @property
    def rate(self) -> float:
        """Events per second over the window."""
        return len(self._live()) / self.window if self.window > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the windowed samples (0 if empty)."""
        live = sorted(self._live())
        if not live:
            return 0.0
        rank = max(1, -(-len(live) * int(q) // 100))  # ceil(n*q/100)
        return live[min(rank, len(live)) - 1]

    def stats(self) -> dict[str, float]:
        live = sorted(self._live())
        if not live:
            return {"count": 0.0, "rate": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        n = len(live)
        return {
            "count": float(n),
            "rate": n / self.window if self.window > 0 else 0.0,
            "mean": sum(live) / n,
            "p50": live[max(1, -(-n * 50 // 100)) - 1],
            "p95": live[max(1, -(-n * 95 // 100)) - 1],
            "max": live[-1],
        }


class MetricsRegistry:
    """Flat, sorted namespace of instruments for one process."""

    def __init__(self, clock=time.monotonic) -> None:
        self.clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, WindowedHistogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str, window: float = 10.0, maxlen: int = 4096) -> WindowedHistogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = WindowedHistogram(
                name, window=window, maxlen=maxlen, clock=self.clock
            )
        return inst

    def snapshot(self) -> dict[str, float]:
        """All instruments flattened to ``name -> float``, sorted.

        Histograms expand to ``<name>.count/.rate/.mean/.p50/.p95/.max``.
        """
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = float(counter.value)
        for name, gauge in self._gauges.items():
            out[name] = float(gauge.value)
        for name, hist in self._histograms.items():
            for suffix, value in hist.stats().items():
                out[f"{name}.{suffix}"] = value
        return dict(sorted(out.items()))

    def snapshot_items(self) -> tuple[tuple[str, float], ...]:
        """The wire shape: sorted ``(name, value)`` pairs."""
        return tuple(self.snapshot().items())


def items_to_dict(items) -> dict[str, float]:
    """Decode a wire metrics payload back into a dict."""
    return {str(name): float(value) for name, value in items}
