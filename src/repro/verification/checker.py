"""Bounded explicit-state model checker.

The reproduction of the paper's Section 5: where the authors hand
Apalache an inductive invariant, we exhaustively enumerate every state
reachable within the configured bounds (rounds, values, n/f with the
wildcard-Byzantine reduction) and check the properties directly on each
one.  Smaller bounds than Apalache's, but the same kind of exhaustive
guarantee — and a counterexample, when one exists, comes back as an
action trace.

Also provides :func:`check_liveness`: explore the good-round transition
system with a withholding adversary and assert every deadlocked
(action-free) state has a decision — the bounded analogue of the TLA+
``Liveness`` theorem.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import VerificationError
from repro.verification.model import (
    Action,
    ModelConfig,
    ModelState,
    decided_values,
    successors,
)

Property = Callable[[ModelState, ModelConfig], bool]


@dataclass
class CheckResult:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    transitions: int
    max_depth: int
    truncated: bool = False
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _trace_to(
    key: tuple,
    parents: dict[tuple, tuple[tuple | None, Action | None]],
) -> list[Action]:
    trace: list[Action] = []
    current: tuple | None = key
    while current is not None:
        parent, action = parents[current]
        if action is not None:
            trace.append(action)
        current = parent
    trace.reverse()
    return trace


def explore(
    config: ModelConfig,
    properties: dict[str, Property],
    max_states: int = 2_000_000,
    fail_fast: bool = True,
) -> CheckResult:
    """BFS the reachable state space, checking ``properties`` everywhere.

    States are deduplicated modulo process/value symmetry
    (:meth:`ModelState.canonical_key`), which is sound because every
    checked property is itself symmetric.  Raises
    :class:`VerificationError` (with an offending action trace, modulo
    relabelling) on the first violation when ``fail_fast`` — the mode
    tests use — or collects violation descriptions otherwise.
    """
    initial = ModelState.initial(config)
    initial_key = initial.canonical_key(config)
    parents: dict[tuple, tuple[tuple | None, Action | None]] = {initial_key: (None, None)}
    queue: deque[tuple[ModelState, int]] = deque([(initial, 0)])
    result = CheckResult(states_explored=0, transitions=0, max_depth=0)

    while queue:
        state, depth = queue.popleft()
        result.states_explored += 1
        result.max_depth = max(result.max_depth, depth)
        for name, prop in properties.items():
            if not prop(state, config):
                message = f"property {name!r} violated at depth {depth}"
                if fail_fast:
                    raise VerificationError(
                        message,
                        trace=_trace_to(state.canonical_key(config), parents),
                    )
                result.violations.append(message)
        if result.states_explored >= max_states:
            result.truncated = True
            break
        for action, nxt in successors(state, config):
            result.transitions += 1
            key = nxt.canonical_key(config)
            if key not in parents:
                parents[key] = (state.canonical_key(config), action)
                queue.append((nxt, depth + 1))
    return result


def check_agreement(config: ModelConfig, max_states: int = 2_000_000) -> CheckResult:
    """Exhaustively verify the agreement property within the bounds."""
    from repro.verification.invariants import consistency

    return explore(config, {"consistency": consistency}, max_states=max_states)


def check_invariants(config: ModelConfig, max_states: int = 2_000_000) -> CheckResult:
    """Verify every conjunct of the paper's inductive invariant holds
    on all reachable states (a reachability-level validation of the
    TLA+ ``ConsistencyInvariant``)."""
    from repro.verification.invariants import ALL_INVARIANTS

    return explore(config, dict(ALL_INVARIANTS), max_states=max_states)


@dataclass
class LivenessResult:
    states_explored: int
    deadlocked_states: int
    undecided_deadlocks: int

    @property
    def ok(self) -> bool:
        return self.undecided_deadlocks == 0


def check_liveness(config: ModelConfig, max_states: int = 2_000_000) -> LivenessResult:
    """Bounded analogue of the TLA+ ``Liveness`` theorem.

    With a good round configured and a withholding adversary
    (``byz_support=False``), explore all behaviours; in every state
    where no action remains enabled, some value must be decided.
    """
    if config.good_round < 0:
        raise VerificationError("liveness checking needs config.good_round >= 0")
    if config.byz_support:
        raise VerificationError("liveness checking needs byz_support=False (withholding adversary)")
    initial = ModelState.initial(config)
    seen: set[tuple] = {initial.canonical_key(config)}
    queue: deque[ModelState] = deque([initial])
    explored = 0
    deadlocked = 0
    undecided = 0
    while queue:
        state = queue.popleft()
        explored += 1
        if explored > max_states:
            break
        moves = successors(state, config)
        if not moves:
            deadlocked += 1
            if not decided_values(state, config):
                undecided += 1
        for _, nxt in moves:
            key = nxt.canonical_key(config)
            if key not in seen:
                seen.add(key)
                queue.append(nxt)
    return LivenessResult(
        states_explored=explored,
        deadlocked_states=deadlocked,
        undecided_deadlocks=undecided,
    )
