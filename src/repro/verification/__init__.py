"""Formal-verification substrate: TLA+ spec port + explicit-state checker."""

from repro.verification.checker import (
    CheckResult,
    LivenessResult,
    check_agreement,
    check_invariants,
    check_liveness,
    explore,
)
from repro.verification.invariants import (
    ALL_INVARIANTS,
    consistency,
    consistency_invariant,
    no_future_vote,
    one_value_per_phase_per_round,
    safe_at,
    vote_has_quorum_in_previous_phase,
    votes_safe,
)
from repro.verification.model import (
    Action,
    ModelConfig,
    ModelState,
    accepted,
    claims_safe_at,
    decided_values,
    shows_safe_at,
    successors,
)

__all__ = [
    "ALL_INVARIANTS",
    "Action",
    "CheckResult",
    "LivenessResult",
    "ModelConfig",
    "ModelState",
    "accepted",
    "check_agreement",
    "check_invariants",
    "check_liveness",
    "claims_safe_at",
    "consistency",
    "consistency_invariant",
    "decided_values",
    "explore",
    "no_future_vote",
    "one_value_per_phase_per_round",
    "safe_at",
    "shows_safe_at",
    "successors",
    "vote_has_quorum_in_previous_phase",
    "votes_safe",
]
