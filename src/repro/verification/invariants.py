"""The paper's inductive invariants, ported from the TLA+ spec.

The Apalache verification (Section 5) does not unroll executions; it
checks that ``ConsistencyInvariant`` — a conjunction of structural
facts about votes — is *inductive* (holds initially and is preserved by
every step) and implies agreement.  We port each conjunct so that:

* the explicit-state checker asserts them on every reachable state
  (they must all be invariants if the port is faithful), and
* the property-based tests perform the inductive-step check itself on
  randomly generated invariant-satisfying states, which is the closest
  Python analogue of what Apalache does symbolically.
"""

from __future__ import annotations

from repro.verification.model import (
    ModelConfig,
    ModelState,
    decided_values,
)


def no_future_vote(state: ModelState, config: ModelConfig) -> bool:
    """No honest process has voted in a round above its current round."""
    del config
    return all(
        vt[0] <= state.rounds[p]
        for p, votes in enumerate(state.votes)
        for vt in votes
    )


def one_value_per_phase_per_round(state: ModelState, config: ModelConfig) -> bool:
    """An honest process votes at most one value per (round, phase)."""
    del config
    for votes in state.votes:
        seen: dict[tuple[int, int], int] = {}
        for rnd, phase, value in votes:
            key = (rnd, phase)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
    return True


def vote_has_quorum_in_previous_phase(state: ModelState, config: ModelConfig) -> bool:
    """Every phase>1 vote is backed by a quorum of the preceding phase.

    The quorum may include the adversary's ``f`` wildcards, exactly as
    the TLA+ version counts ``Q \\ Byz`` honest voters plus Byzantine
    members.
    """
    for votes in state.votes:
        for rnd, phase, value in votes:
            if phase == 1:
                continue
            honest_backers = sum(
                1
                for other in state.votes
                if (rnd, phase - 1, value) in other
            )
            if honest_backers + config.f < config.quorum_size:
                return False
    return True


def _none_other_choosable_at(
    state: ModelState, config: ModelConfig, rnd: int, value: int
) -> bool:
    """TLA+ ``NoneOtherChoosableAt``: some quorum's members either voted
    (phase 4) for ``value`` at ``rnd`` or can no longer vote there."""
    supporters = 0
    for p in range(config.honest):
        voted_for = (rnd, 4, value) in state.votes[p]
        cannot_vote = state.rounds[p] > rnd and not any(
            vt[0] == rnd and vt[1] == 4 for vt in state.votes[p]
        )
        if voted_for or cannot_vote:
            supporters += 1
    return supporters + config.f >= config.quorum_size


def safe_at(state: ModelState, config: ModelConfig, rnd: int, value: int) -> bool:
    """TLA+ ``SafeAt``: no other value can be chosen below ``rnd``."""
    return all(
        _none_other_choosable_at(state, config, c, value) for c in range(rnd)
    )


def votes_safe(state: ModelState, config: ModelConfig) -> bool:
    """Every honest vote is for a value safe at its round."""
    return all(
        safe_at(state, config, vt[0], vt[2])
        for votes in state.votes
        for vt in votes
    )


def consistency(state: ModelState, config: ModelConfig) -> bool:
    """The agreement property: at most one decided value."""
    return len(decided_values(state, config)) <= 1


def consistency_invariant(state: ModelState, config: ModelConfig) -> bool:
    """The full inductive invariant of the TLA+ spec."""
    return (
        no_future_vote(state, config)
        and one_value_per_phase_per_round(state, config)
        and vote_has_quorum_in_previous_phase(state, config)
        and votes_safe(state, config)
    )


ALL_INVARIANTS = {
    "no_future_vote": no_future_vote,
    "one_value_per_phase_per_round": one_value_per_phase_per_round,
    "vote_has_quorum_in_previous_phase": vote_has_quorum_in_previous_phase,
    "votes_safe": votes_safe,
    "consistency": consistency,
}
