"""The paper's inductive invariants, ported from the TLA+ spec.

The Apalache verification (Section 5) does not unroll executions; it
checks that ``ConsistencyInvariant`` — a conjunction of structural
facts about votes — is *inductive* (holds initially and is preserved by
every step) and implies agreement.  We port each conjunct so that:

* the explicit-state checker asserts them on every reachable state
  (they must all be invariants if the port is faithful), and
* the property-based tests perform the inductive-step check itself on
  randomly generated invariant-satisfying states, which is the closest
  Python analogue of what Apalache does symbolically.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set as AbstractSet

from repro.verification.model import (
    ModelConfig,
    ModelState,
    decided_values,
)


def no_future_vote(state: ModelState, config: ModelConfig) -> bool:
    """No honest process has voted in a round above its current round."""
    del config
    return all(vt[0] <= state.rounds[p] for p, votes in enumerate(state.votes) for vt in votes)


def one_value_per_phase_per_round(state: ModelState, config: ModelConfig) -> bool:
    """An honest process votes at most one value per (round, phase)."""
    del config
    for votes in state.votes:
        seen: dict[tuple[int, int], int] = {}
        for rnd, phase, value in votes:
            key = (rnd, phase)
            if key in seen and seen[key] != value:
                return False
            seen[key] = value
    return True


def vote_has_quorum_in_previous_phase(state: ModelState, config: ModelConfig) -> bool:
    """Every phase>1 vote is backed by a quorum of the preceding phase.

    The quorum may include the adversary's ``f`` wildcards, exactly as
    the TLA+ version counts ``Q \\ Byz`` honest voters plus Byzantine
    members.
    """
    for votes in state.votes:
        for rnd, phase, value in votes:
            if phase == 1:
                continue
            honest_backers = sum(1 for other in state.votes if (rnd, phase - 1, value) in other)
            if honest_backers + config.f < config.quorum_size:
                return False
    return True


def _none_other_choosable_at(state: ModelState, config: ModelConfig, rnd: int, value: int) -> bool:
    """TLA+ ``NoneOtherChoosableAt``: some quorum's members either voted
    (phase 4) for ``value`` at ``rnd`` or can no longer vote there."""
    supporters = 0
    for p in range(config.honest):
        voted_for = (rnd, 4, value) in state.votes[p]
        cannot_vote = state.rounds[p] > rnd and not any(
            vt[0] == rnd and vt[1] == 4 for vt in state.votes[p]
        )
        if voted_for or cannot_vote:
            supporters += 1
    return supporters + config.f >= config.quorum_size


def safe_at(state: ModelState, config: ModelConfig, rnd: int, value: int) -> bool:
    """TLA+ ``SafeAt``: no other value can be chosen below ``rnd``."""
    return all(_none_other_choosable_at(state, config, c, value) for c in range(rnd))


def votes_safe(state: ModelState, config: ModelConfig) -> bool:
    """Every honest vote is for a value safe at its round."""
    return all(safe_at(state, config, vt[0], vt[2]) for votes in state.votes for vt in votes)


def consistency(state: ModelState, config: ModelConfig) -> bool:
    """The agreement property: at most one decided value."""
    return len(decided_values(state, config)) <= 1


def consistency_invariant(state: ModelState, config: ModelConfig) -> bool:
    """The full inductive invariant of the TLA+ spec."""
    return (
        no_future_vote(state, config)
        and one_value_per_phase_per_round(state, config)
        and vote_has_quorum_in_previous_phase(state, config)
        and votes_safe(state, config)
    )


ALL_INVARIANTS = {
    "no_future_vote": no_future_vote,
    "one_value_per_phase_per_round": one_value_per_phase_per_round,
    "vote_has_quorum_in_previous_phase": vote_has_quorum_in_previous_phase,
    "votes_safe": votes_safe,
    "consistency": consistency,
}


# -- run-level (chain) invariants ----------------------------------------------
#
# The conjuncts above speak about abstract model states; end-to-end runs
# produce *chains*.  These predicates are the chain-shaped face of the
# same properties — what agreement, single-chain and execute-once mean
# for the finalized output of an SMR run — and are what the
# :class:`~repro.verification.audit.SafetyAuditor` replays every
# adversarial campaign cell through.  They take plain digest/txid
# structures so the auditor (and its negative-control tests) can feed
# them without building protocol objects.


def chain_links(entries: Sequence[tuple[int, str, str]]) -> bool:
    """Hash-pointer integrity of one finalized chain.

    ``entries`` is ``(slot, parent_digest, digest)`` per block, chain
    order.  Slots must be strictly increasing and every block's parent
    pointer must name its predecessor's digest (the first block may
    extend anything — genesis, or a pruned prefix).
    """
    for previous, current in zip(entries, entries[1:]):
        if current[0] <= previous[0]:
            return False
        if current[1] != previous[2]:
            return False
    return True


def chains_agree(chains: Sequence[Sequence[str]]) -> bool:
    """Pairwise prefix consistency of finalized digest sequences.

    The run-level agreement property: any two honest replicas' chains
    must be equal up to the shorter one's length (one replica may
    simply have finalized further).
    """
    for i, left in enumerate(chains):
        for right in chains[i + 1 :]:
            length = min(len(left), len(right))
            if list(left[:length]) != list(right[:length]):
                return False
    return True


def chains_no_fork(slot_digests: Mapping[int, AbstractSet[str]]) -> bool:
    """At most one finalized digest per slot across the whole cluster."""
    return all(len(digests) <= 1 for digests in slot_digests.values())


def executed_once(applied_txids: Sequence[str]) -> bool:
    """No transaction id appears twice in one replica's applied log."""
    return len(applied_txids) == len(set(applied_txids))


#: The run-level registry, mirroring :data:`ALL_INVARIANTS` in shape.
CHAIN_INVARIANTS = {
    "chain_links": chain_links,
    "chains_agree": chains_agree,
    "chains_no_fork": chains_no_fork,
    "executed_once": executed_once,
}
