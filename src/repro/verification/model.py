"""Python port of the paper's TLA+ specification (Appendix B).

The spec models single-shot TetraBFT at a high level: no network, just
per-process vote sets and round counters, with actions ``StartRound``,
``Propose``, ``Vote1``–``Vote4`` and Byzantine havoc.  This module
reproduces that transition system so the explicit-state checker in
:mod:`repro.verification.checker` can explore it exhaustively on small
bounds, the counterpart of the paper's Apalache verification.

**Wildcard-Byzantine reduction.**  The TLA+ spec gives Byzantine
processes concrete (havoc-updated) state.  For explicit-state search
that multiplies the state space by every possible Byzantine vote set,
so we use the standard sound reduction: Byzantine processes carry *no*
state, and wherever the spec counts votes or claims we optionally
credit the adversary with ``f`` wildcard endorsements (they could have
sent anything).  For safety checking (``byz_support=True``) this
over-approximates every concrete Byzantine behaviour, so any safety
property verified here holds in the TLA+ model too.  For liveness
checking (``byz_support=False``) the adversary instead withholds
everything, the worst case for progress.

State mirrors the TLA+ variables ``votes`` and ``round`` for honest
processes; ``proposed``/``proposal``/``goodRound`` appear only in
liveness mode (in safety mode ``goodRound = -1`` renders them inert,
exactly as the spec allows, and yields a superset of behaviours).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations

from repro.errors import ConfigurationError

#: A vote record: (round, phase, value index).  Phases 1..4.
ModelVote = tuple[int, int, int]


@dataclass(frozen=True)
class ModelConfig:
    """Bounds of one exploration: n/f, value count, round count."""

    n: int = 4
    f: int = 1
    num_values: int = 2
    max_round: int = 1
    #: credit the adversary with f wildcard votes (safety mode) or
    #: nothing (liveness mode).
    byz_support: bool = True
    #: liveness mode: a good round in which Propose/Vote1 are pinned.
    good_round: int = -1

    def __post_init__(self) -> None:
        if self.n <= 3 * self.f:
            raise ConfigurationError(f"need n > 3f, got n={self.n} f={self.f}")
        if self.num_values < 1 or self.max_round < 0:
            raise ConfigurationError("need at least one value and round")

    @property
    def honest(self) -> int:
        """Number of honest processes (the only stateful ones)."""
        return self.n - self.f

    @property
    def quorum_size(self) -> int:
        return self.n - self.f

    @property
    def blocking_size(self) -> int:
        return self.f + 1

    @property
    def rounds(self) -> range:
        return range(self.max_round + 1)

    @property
    def values(self) -> range:
        return range(self.num_values)

    def byz_credit(self) -> int:
        return self.f if self.byz_support else 0


@dataclass(frozen=True)
class ModelState:
    """One state: per-honest-process vote sets and round counters."""

    rounds: tuple[int, ...]
    votes: tuple[frozenset[ModelVote], ...]
    proposed: bool = False
    proposal: int = 0

    @classmethod
    def initial(cls, config: ModelConfig) -> "ModelState":
        return cls(
            rounds=tuple([-1] * config.honest),
            votes=tuple([frozenset()] * config.honest),
        )

    def canonical_key(self, config: ModelConfig) -> tuple:
        """Symmetry-reduced fingerprint of this state.

        The spec is symmetric under permutations of honest processes
        and of values (neither leaders nor initial values are modeled
        per-identity), so states differing only by relabelling are
        equivalent for every property we check.  We canonicalize by
        trying every value permutation, sorting processes, and taking
        the lexicographically least serialization — a 2-to-10×
        state-space reduction that makes explicit exploration feasible
        at the bounds the benches use.
        """
        from itertools import permutations

        best: tuple | None = None
        for perm in permutations(range(config.num_values)):
            mapped = [
                tuple(sorted((r, ph, perm[v]) for (r, ph, v) in votes))
                for votes in self.votes
            ]
            paired = tuple(sorted(zip(self.rounds, mapped)))
            proposal = perm[self.proposal] if self.proposed else -1
            key = (paired, self.proposed, proposal)
            if best is None or key < best:
                best = key
        assert best is not None
        return best


# -- spec predicates ---------------------------------------------------------------


def accepted(state: ModelState, config: ModelConfig, value: int, rnd: int, phase: int) -> bool:
    """TLA+ ``Accepted``: a quorum voted (rnd, phase, value)."""
    honest_votes = sum(1 for vs in state.votes if (rnd, phase, value) in vs)
    return honest_votes + config.byz_credit() >= config.quorum_size


def claims_safe_at(votes: frozenset[ModelVote], value: int, rnd: int, r2: int, phase: int) -> bool:
    """TLA+ ``ClaimsSafeAt`` for one honest process's vote set."""
    if r2 == 0:
        return True
    for vt1 in votes:
        if not (vt1[0] < rnd and r2 <= vt1[0] and vt1[1] == phase):
            continue
        if vt1[2] == value:
            return True
        for vt2 in votes:
            if r2 <= vt2[0] < vt1[0] and vt2[1] == phase and vt2[2] != vt1[2]:
                return True
    return False


def shows_safe_at(
    state: ModelState,
    config: ModelConfig,
    value: int,
    rnd: int,
    phase_a: int,
    phase_b: int,
) -> bool:
    """TLA+ ``ShowsSafeAt``: some quorum certifies ``value`` safe at ``rnd``.

    The quorum mixes honest members (whose reported votes are their
    real ones) with up to ``byz_credit`` wildcards (who satisfy any
    per-member condition).  We therefore quantify over honest subsets
    of size ≥ quorum_size − credit and check the spec's conditions on
    those members only.
    """
    if rnd == 0:
        return True
    credit = config.byz_credit()
    eligible = [p for p in range(config.honest) if state.rounds[p] >= rnd]
    need = config.quorum_size - credit
    if len(eligible) < need:
        return False
    for size in range(need, len(eligible) + 1):
        for subset in combinations(eligible, size):
            if _quorum_certifies(state, config, subset, value, rnd, phase_a, phase_b):
                return True
    return False


def _quorum_certifies(
    state: ModelState,
    config: ModelConfig,
    honest_members: tuple[int, ...],
    value: int,
    rnd: int,
    phase_a: int,
    phase_b: int,
) -> bool:
    votes_a = [
        (p, vt)
        for p in honest_members
        for vt in state.votes[p]
        if vt[1] == phase_a and vt[0] < rnd
    ]
    if not votes_a:
        return True  # no member voted in phase A before rnd
    for r2 in range(rnd):
        if any(vt[0] > r2 for _, vt in votes_a):
            continue
        if any(vt[0] == r2 and vt[2] != value for _, vt in votes_a):
            continue
        # Need a blocking set claiming value safe at r2; the adversary
        # covers `credit` members, the rest must be honest claimants.
        honest_needed = config.blocking_size - config.byz_credit()
        claimants = sum(
            1
            for p in range(config.honest)
            if claims_safe_at(state.votes[p], value, rnd, r2, phase_b)
        )
        if claimants >= honest_needed:
            return True
    return False


def decided_values(state: ModelState, config: ModelConfig) -> set[int]:
    """TLA+ ``decided``: values with a quorum of phase-4 votes in one round."""
    result = set()
    for rnd in config.rounds:
        for value in config.values:
            if accepted(state, config, value, rnd, 4):
                result.add(value)
    return result


# -- actions -------------------------------------------------------------------------


@dataclass(frozen=True)
class Action:
    """A labelled transition, for counterexample traces."""

    name: str
    process: int
    value: int
    round: int

    def __str__(self) -> str:
        return f"{self.name}(p={self.process}, v={self.value}, r={self.round})"


def _do_vote(state: ModelState, p: int, value: int, rnd: int, phase: int) -> ModelState | None:
    """TLA+ ``DoVote``: add the vote unless (rnd, phase) already voted."""
    if any(vt[0] == rnd and vt[1] == phase for vt in state.votes[p]):
        return None
    new_votes = list(state.votes)
    new_votes[p] = state.votes[p] | {(rnd, phase, value)}
    return replace(state, votes=tuple(new_votes))


def successors(state: ModelState, config: ModelConfig) -> list[tuple[Action, ModelState]]:
    """All enabled (action, next-state) pairs — the TLA+ ``Next`` relation."""
    result: list[tuple[Action, ModelState]] = []
    good = config.good_round
    for p in range(config.honest):
        # StartRound(p, r): good rounds last forever (r ≤ goodRound).
        for rnd in config.rounds:
            if state.rounds[p] < rnd and (good < 0 or rnd <= good):
                result.append(
                    (
                        Action("StartRound", p, -1, rnd),
                        replace(
                            state,
                            rounds=tuple(
                                rnd if q == p else r
                                for q, r in enumerate(state.rounds)
                            ),
                        ),
                    )
                )
        for value in config.values:
            rnd = state.rounds[p]
            # Vote1(p, v, r) at r == round[p].
            if rnd >= 0:
                pinned = good >= 0 and rnd == good
                proposal_ok = not pinned or (state.proposed and value == state.proposal)
                if proposal_ok and shows_safe_at(state, config, value, rnd, 4, 1):
                    voted = _do_vote(state, p, value, rnd, 1)
                    if voted is not None:
                        result.append((Action("Vote1", p, value, rnd), voted))
            # Vote2..4(p, v, r) at any r ≥ round[p].
            for rnd2 in config.rounds:
                if rnd2 < state.rounds[p]:
                    continue
                for phase in (2, 3, 4):
                    if not accepted(state, config, value, rnd2, phase - 1):
                        continue
                    voted = _do_vote(state, p, value, rnd2, phase)
                    if voted is None:
                        continue
                    moved = replace(
                        voted,
                        rounds=tuple(
                            rnd2 if q == p else r
                            for q, r in enumerate(voted.rounds)
                        ),
                    )
                    result.append((Action(f"Vote{phase}", p, value, rnd2), moved))
    # Propose(v) in the good round (liveness mode only).
    if good >= 0 and not state.proposed:
        for value in config.values:
            if shows_safe_at(state, config, value, good, 3, 2):
                result.append(
                    (
                        Action("Propose", -1, value, good),
                        replace(state, proposed=True, proposal=value),
                    )
                )
    return result
