"""Post-hoc safety auditing of end-to-end SMR runs.

The explicit-state checker verifies the protocol *model*; nothing so
far audited an actual end-to-end run.  Accountable consensus layers
(e.g. *pod* in PAPERS.md) treat post-hoc auditability as a first-class
output of the system: after a run — especially an adversarial one — an
auditor should be able to replay the finalized artifacts and certify
that the safety properties held.  :class:`SafetyAuditor` is that
auditor for this repo's SMR layer.

Given the honest replicas of one finished run (any engine behind the
:class:`~repro.smr.engine.ConsensusEngine` boundary, with or without
Byzantine peers), it extracts one :class:`ReplicaEvidence` per replica
— finalized chain, live state digest, applied-transaction log — and
checks, via the run-level registry in
:mod:`repro.verification.invariants`:

* **chain_links** — every finalized chain is hash-linked with strictly
  increasing slots;
* **chains_agree** — any two chains are prefix-consistent (agreement);
* **chains_no_fork** — no slot finalized two different blocks anywhere;
* **executed_once** — no replica applied a transaction twice;
* **replay_matches** — re-executing each chain on a fresh
  :class:`~repro.smr.kvstore.KVStore` (with the replica's own
  duplicate-skipping rule) reproduces the replica's live state digest
  byte for byte: the live execution path and the ledger agree;
* **state_agreement** — replicas whose chains end at the same tip hold
  identical state digests;
* **live** — when an expected transaction count is given, every honest
  replica executed all of it (Definition 2's liveness, at the horizon).

The report is machine-readable (``checks`` plus human ``violations``),
which is what lets the adversarial campaign emit one verdict per grid
cell and lets a *negative control* prove the auditor actually detects
a forked history rather than vacuously passing everything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.multishot.block import Block
from repro.smr.kvstore import KVStore
from repro.smr.mempool import Transaction
from repro.verification.invariants import (
    chain_links,
    chains_agree,
    chains_no_fork,
    executed_once,
)

#: The safety checks every audit performs, report order.
SAFETY_CHECKS = (
    "chain_links",
    "chains_agree",
    "chains_no_fork",
    "executed_once",
    "replay_matches",
    "state_agreement",
)


@dataclass(frozen=True)
class ReplicaEvidence:
    """What one honest replica contributes to the audit."""

    node_id: int
    chain: tuple[Block, ...]
    state_digest: str
    applied_txids: tuple[str, ...]

    @classmethod
    def from_replica(cls, replica) -> "ReplicaEvidence":
        """Extract evidence from a live :class:`~repro.smr.replica.Replica`."""
        return cls(
            node_id=replica.node_id,
            chain=tuple(replica.finalized_chain),
            state_digest=replica.state_digest(),
            applied_txids=tuple(replica.store.applied_txids),
        )


@dataclass
class AuditReport:
    """Machine-readable verdict of one run audit."""

    checks: dict[str, bool]
    live: bool | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        """Every safety invariant held (liveness judged separately)."""
        return all(self.checks.get(name, False) for name in SAFETY_CHECKS)

    @property
    def ok(self) -> bool:
        """Safe, and live whenever liveness was assessed."""
        return self.safe and self.live is not False


def replay_chain(chain: tuple[Block, ...]) -> KVStore:
    """Re-execute one finalized chain on a fresh state machine.

    Applies each block's transactions in chain order with the same
    first-execution-wins duplicate rule the live replica uses, so a
    divergence between the returned store's digest and the replica's
    live digest means the execution path and the ledger disagree.
    """
    store = KVStore()
    seen: set[str] = set()
    for block in chain:
        payload = block.payload
        if not isinstance(payload, tuple):
            continue
        for txn in payload:
            if not isinstance(txn, Transaction) or txn.txid in seen:
                continue
            seen.add(txn.txid)
            store.apply(txn.txid, txn.op)
    return store


class SafetyAuditor:
    """Replays finished runs through the run-level invariants.

    ``expected_txns`` enables the liveness verdict: every audited
    replica must have executed at least that many distinct workload
    transactions by the end of the run.
    """

    def __init__(self, expected_txns: int | None = None) -> None:
        self.expected_txns = expected_txns

    def audit(self, replicas) -> AuditReport:
        """Audit live replicas (honest ones only — the caller filters)."""
        return self.audit_evidence([ReplicaEvidence.from_replica(replica) for replica in replicas])

    def audit_evidence(self, evidence: list[ReplicaEvidence]) -> AuditReport:
        checks: dict[str, bool] = {}
        violations: list[str] = []

        def record(name: str, passed: bool, detail: str) -> None:
            checks[name] = passed
            if not passed:
                violations.append(f"{name}: {detail}")

        # Per-chain hash-pointer integrity.
        broken = [
            ev.node_id
            for ev in evidence
            if not chain_links([(b.slot, b.parent, b.digest) for b in ev.chain])
        ]
        record(
            "chain_links",
            not broken,
            f"mis-linked finalized chain on replicas {broken}",
        )

        # Cross-replica agreement (prefix consistency).
        digest_chains = [[b.digest for b in ev.chain] for ev in evidence]
        record(
            "chains_agree",
            chains_agree(digest_chains),
            "two honest replicas finalized conflicting prefixes",
        )

        # No slot finalized under two digests anywhere in the cluster.
        slot_digests: dict[int, set[str]] = {}
        for ev in evidence:
            for block in ev.chain:
                slot_digests.setdefault(block.slot, set()).add(block.digest)
        forked = sorted(s for s, d in slot_digests.items() if len(d) > 1)
        record(
            "chains_no_fork",
            chains_no_fork(slot_digests),
            f"slots finalized under multiple digests: {forked}",
        )

        # Execute-once, per replica.
        doubled = [
            ev.node_id for ev in evidence if not executed_once(ev.applied_txids)
        ]
        record(
            "executed_once",
            not doubled,
            f"replicas applied a transaction twice: {doubled}",
        )

        # Replay determinism: ledger ≡ live execution.
        mismatched = [
            ev.node_id
            for ev in evidence
            if replay_chain(ev.chain).state_digest() != ev.state_digest
        ]
        record(
            "replay_matches",
            not mismatched,
            f"chain replay diverges from live state on replicas {mismatched}",
        )

        # Same tip ⇒ same state.
        by_tip: dict[tuple[int, str], set[str]] = {}
        for ev in evidence:
            if ev.chain:
                tip = (ev.chain[-1].slot, ev.chain[-1].digest)
                by_tip.setdefault(tip, set()).add(ev.state_digest)
        split = sorted(tip for tip, digests in by_tip.items() if len(digests) > 1)
        record(
            "state_agreement",
            not split,
            f"replicas at the same tip hold different state digests: {split}",
        )

        live: bool | None = None
        if self.expected_txns is not None:
            lagging = [
                ev.node_id
                for ev in evidence
                if len(set(ev.applied_txids)) < self.expected_txns
            ]
            live = not lagging
            if lagging:
                violations.append(
                    f"live: replicas {lagging} executed fewer than "
                    f"{self.expected_txns} transactions"
                )
        return AuditReport(checks=checks, live=live, violations=violations)
