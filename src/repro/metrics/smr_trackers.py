"""Client-observed SMR measurement: commit latency and throughput.

The protocol-level collectors in :mod:`repro.metrics.collectors` answer
the paper's Table 1 questions (message delays to *decide*, bits,
storage).  The SMR experiment asks what a *client* sees instead: how
long after ``submit`` does a transaction execute on every replica, and
how many transactions per second does the cluster sustain.  These
trackers are the single place those quantities are accounted for:

* :class:`LatencyTracker` — submit and per-replica commit timestamps,
  aggregated into p50/p95/p99 commit latency in message delays;
* :class:`ThroughputTracker` — finalized blocks, applied transactions,
  and mempool occupancy per replica over simulated time;
* :class:`SMRTrackers` — the bundle a
  :class:`~repro.smr.replica.Replica` reports into.

Like the protocol collectors, they are deliberately dumb containers:
replicas push facts in, the evaluation layer pulls aggregates out.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

#: The percentile points the smr experiment reports.
PERCENTILES = (50, 95, 99)


def nearest_rank_percentiles(
    samples: list[float], points: tuple[int, ...] = PERCENTILES
) -> dict[int, float]:
    """Nearest-rank percentiles of raw samples (NaN when empty).

    The one implementation behind every latency table — the simulated
    SMR experiments (Δ-denominated) and the deployed net bench
    (wall-clock) must aggregate identically, differing only in the
    unit scaling their callers apply.
    """
    if not samples:
        return {p: math.nan for p in points}
    ordered = sorted(samples)
    out = {}
    for p in points:
        rank = max(0, math.ceil(p / 100 * len(ordered)) - 1)
        out[p] = ordered[rank]
    return out


class LatencyTracker:
    """Submit→finalize latency samples across a replica cluster.

    One submit timestamp per transaction (the earliest — clients
    broadcast to several replicas at the same instant) and one commit
    sample per (replica, transaction) pair: the experiment's latency
    distribution is over what every replica's client connection would
    observe, not just the luckiest replica's.
    """

    def __init__(self) -> None:
        self._submitted: dict[str, float] = {}
        self._samples: list[float] = []

    def record_submit(self, txid: str, time: float) -> None:
        self._submitted.setdefault(txid, time)

    def record_commit(self, node: int, txid: str, time: float) -> None:
        del node  # every replica's observation is one sample
        submit = self._submitted.get(txid)
        if submit is None:
            return  # executed but never submitted through a tracked replica
        self._samples.append(time - submit)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    @property
    def submitted_count(self) -> int:
        return len(self._submitted)

    def percentiles(
        self, delta: float = 1.0, points: tuple[int, ...] = PERCENTILES
    ) -> dict[int, float]:
        """Nearest-rank latency percentiles, in message-delay units."""
        raw = nearest_rank_percentiles(self._samples, points)
        return {p: value / delta for p, value in raw.items()}


class ThroughputTracker:
    """Commit-side throughput accounting for one SMR run."""

    def __init__(self) -> None:
        self._blocks: Counter = Counter()  # node → finalized blocks applied
        self._txns: Counter = Counter()  # node → transactions applied
        self._mempool_peak: dict[int, int] = {}
        self.last_commit_time = 0.0

    def record_block(self, node: int, slot: int, txns: int, mempool_size: int, time: float) -> None:
        del slot
        self._blocks[node] += 1
        self._txns[node] += txns
        self.record_mempool(node, mempool_size)
        # Only blocks that commit client work move the clock: trailing
        # empty blocks (finalized while the run coasts past the stop
        # predicate's polling window) would otherwise stretch the
        # measured duration by however far the overshoot ran.
        if txns > 0 and time > self.last_commit_time:
            self.last_commit_time = time

    def record_mempool(self, node: int, size: int) -> None:
        """Occupancy sample; replicas report on submit (where the true
        high-water mark sits — a burst lands before any drain) and
        after each block's drain."""
        if size > self._mempool_peak.get(node, 0):
            self._mempool_peak[node] = size

    def blocks_applied(self, node: int) -> int:
        return self._blocks[node]

    def txns_applied(self, node: int) -> int:
        return self._txns[node]

    def min_txns_applied(self, nodes: list[int]) -> int:
        """Transactions every listed replica has executed — the
        cluster-level committed count (a transaction only counts once
        the *whole* cluster, crashed nodes excluded, ran it)."""
        return min((self._txns[node] for node in nodes), default=0)

    def min_blocks_applied(self, nodes: list[int]) -> int:
        return min((self._blocks[node] for node in nodes), default=0)

    def peak_mempool(self, nodes: list[int] | None = None) -> int:
        peaks = (
            self._mempool_peak.values()
            if nodes is None
            else (self._mempool_peak.get(node, 0) for node in nodes)
        )
        return max(peaks, default=0)


@dataclass
class SMRTrackers:
    """The tracker bundle one SMR run shares across its replicas."""

    latency: LatencyTracker = field(default_factory=LatencyTracker)
    throughput: ThroughputTracker = field(default_factory=ThroughputTracker)

    def record_submit(self, txid: str, time: float) -> None:
        self.latency.record_submit(txid, time)

    def record_commit(self, node: int, txid: str, time: float) -> None:
        self.latency.record_commit(node, txid, time)

    def record_proposal(self, node: int, txids: tuple[str, ...], time: float) -> None:
        """A leader packed ``txids`` into a proposed block.

        No aggregate is kept here — proposals may be aborted and
        re-proposed, so only finalization counts toward throughput —
        but observability subclasses hook this for commit-path tracing
        (the ``propose`` span stage).
        """

    def record_block(self, node: int, slot: int, txns: int, mempool_size: int, time: float) -> None:
        self.throughput.record_block(node, slot, txns, mempool_size, time)

    def record_mempool(self, node: int, size: int) -> None:
        self.throughput.record_mempool(node, size)
