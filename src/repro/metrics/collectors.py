"""Measurement instrumentation.

The paper's Table 1 reports per-protocol *latency in message delays*,
*persistent storage*, and *communicated bits*.  This module is the
single place where those quantities are accounted for:

* :class:`MessageMetrics` — counts and byte totals of sent / delivered /
  dropped messages, per sender and per message type;
* :class:`LatencyMetrics` — per-node decision times and view-change
  timestamps, convertible to "message delays" by dividing by δ;
* :class:`StorageMetrics` — snapshots of persistent-state sizes, used
  to demonstrate the constant-storage claim.

The collectors are deliberately dumb containers: protocol code pushes
facts in, the evaluation layer pulls aggregates out.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


def estimate_wire_size(message: object) -> int:
    """Best-effort serialized size of a message, in bytes.

    Message classes may implement ``wire_size() -> int`` to report an
    exact figure (the PBFT view-change message does, since its O(n)
    payload is the point of the Table 1 comparison).  Otherwise we
    charge 8 bytes per scalar field and recurse into tuples — a crude
    but growth-accurate estimator: what the evaluation fits is the
    *exponent* of bytes-vs-n curves, not absolute constants.
    """
    size_fn = getattr(message, "wire_size", None)
    if callable(size_fn):
        return int(size_fn())
    return _generic_size(message)


def _generic_size(value: object) -> int:
    if value is None:
        return 1
    if isinstance(value, (bool, int, float)):
        return 8
    if isinstance(value, (str, bytes)):
        return max(1, len(value))
    if isinstance(value, (tuple, list, frozenset, set)):
        return sum(_generic_size(item) for item in value)
    if isinstance(value, dict):
        # Both sides of every entry travel on the wire; flat-charging a
        # scalar here would undercount dict-carrying messages.
        return sum(
            _generic_size(key) + _generic_size(item) for key, item in value.items()
        )
    if hasattr(value, "__dataclass_fields__"):
        fields = value.__dataclass_fields__  # type: ignore[attr-defined]
        return sum(_generic_size(getattr(value, name)) for name in fields)
    return 8


@dataclass
class MessageMetrics:
    """Message- and byte-count accounting for one simulation run.

    ``enabled`` is a cheap gate the network hot path consults before
    each record call; pure-throughput runs flip it off to skip the
    wire-size estimation entirely.  :meth:`record_broadcast` is the
    batched form of :meth:`record_send` for n identical copies of one
    message: the wire size is estimated once and multiplied, producing
    counter totals identical to n individual ``record_send`` calls.

    Aggregated envelopes (anything exposing ``logical_messages()``,
    e.g. :class:`~repro.multishot.messages.VoteBatch`) are expanded to
    their payloads before accounting, so the Table 1 per-type message
    and byte counts measure *logical* protocol traffic and stay
    comparable whether or not the message plane batches frames.  The
    frame-level view lives in the network's ``frames_sent`` /
    ``messages_sent`` counters instead.
    """

    sent_count: Counter = field(default_factory=Counter)
    delivered_count: Counter = field(default_factory=Counter)
    dropped_count: Counter = field(default_factory=Counter)
    bytes_sent_by_node: Counter = field(default_factory=Counter)
    bytes_by_type: Counter = field(default_factory=Counter)
    count_by_type: Counter = field(default_factory=Counter)
    enabled: bool = True

    def record_send(self, sender: int, message: object) -> None:
        self.record_broadcast(sender, message, 1)

    def record_broadcast(self, sender: int, message: object, copies: int) -> None:
        expand = getattr(message, "logical_messages", None)
        if expand is None:
            self._record(sender, message, copies)
        else:
            for item in expand():
                self._record(sender, item, copies)

    def _record(self, sender: int, message: object, copies: int) -> None:
        size = estimate_wire_size(message)
        type_name = type(message).__name__
        self.sent_count[sender] += copies
        self.bytes_sent_by_node[sender] += size * copies
        self.bytes_by_type[type_name] += size * copies
        self.count_by_type[type_name] += copies

    def record_delivery(self, sender: int) -> None:
        self.delivered_count[sender] += 1

    def record_drop(self, sender: int) -> None:
        self.dropped_count[sender] += 1

    @property
    def total_messages_sent(self) -> int:
        return sum(self.sent_count.values())

    @property
    def total_bytes_sent(self) -> int:
        return sum(self.bytes_sent_by_node.values())

    def max_bytes_per_node(self) -> int:
        return max(self.bytes_sent_by_node.values(), default=0)


@dataclass
class LatencyMetrics:
    """Decision / view-change timing for one simulation run."""

    decision_times: dict[int, float] = field(default_factory=dict)
    decision_values: dict[int, object] = field(default_factory=dict)
    view_entry_times: dict[int, list[tuple[int, float]]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record_decision(self, node: int, value: object, time: float) -> None:
        # Keep the *first* decision only; a correct protocol never
        # changes its mind, and tests assert exactly that elsewhere.
        self.decision_times.setdefault(node, time)
        self.decision_values.setdefault(node, value)

    def record_view_entry(self, node: int, view: int, time: float) -> None:
        self.view_entry_times[node].append((view, time))

    def all_decided(self, node_ids: list[int] | None = None) -> bool:
        if node_ids is None:
            return bool(self.decision_times)
        return all(node in self.decision_times for node in node_ids)

    def max_decision_time(self) -> float:
        if not self.decision_times:
            raise ValueError("no decisions recorded")
        return max(self.decision_times.values())

    def decided_values(self) -> set[object]:
        return set(self.decision_values.values())


@dataclass
class StorageMetrics:
    """Persistent-storage sizes sampled over a run (constant-storage claim)."""

    samples: dict[int, list[int]] = field(default_factory=lambda: defaultdict(list))

    def record(self, node: int, size_bytes: int) -> None:
        self.samples[node].append(size_bytes)

    def max_storage(self, node: int | None = None) -> int:
        if node is not None:
            return max(self.samples.get(node, [0]), default=0)
        return max((s for sizes in self.samples.values() for s in sizes), default=0)


@dataclass
class RunMetrics:
    """Bundle of all collectors for a single simulation run."""

    messages: MessageMetrics = field(default_factory=MessageMetrics)
    latency: LatencyMetrics = field(default_factory=LatencyMetrics)
    storage: StorageMetrics = field(default_factory=StorageMetrics)
