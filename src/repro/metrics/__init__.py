"""Instrumentation collectors for messages, latency, and storage,
plus client-observed SMR latency/throughput trackers."""

from repro.metrics.collectors import (
    LatencyMetrics,
    MessageMetrics,
    RunMetrics,
    StorageMetrics,
    estimate_wire_size,
)
from repro.metrics.smr_trackers import (
    LatencyTracker,
    SMRTrackers,
    ThroughputTracker,
)

__all__ = [
    "LatencyMetrics",
    "LatencyTracker",
    "MessageMetrics",
    "RunMetrics",
    "SMRTrackers",
    "StorageMetrics",
    "ThroughputTracker",
    "estimate_wire_size",
]
