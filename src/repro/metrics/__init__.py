"""Instrumentation collectors for messages, latency, and storage."""

from repro.metrics.collectors import (
    LatencyMetrics,
    MessageMetrics,
    RunMetrics,
    StorageMetrics,
    estimate_wire_size,
)

__all__ = [
    "LatencyMetrics",
    "MessageMetrics",
    "RunMetrics",
    "StorageMetrics",
    "estimate_wire_size",
]
