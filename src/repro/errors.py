"""Exception hierarchy for the TetraBFT reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class ConfigurationError(ReproError):
    """A protocol or simulation configuration is invalid.

    Examples: ``n <= 3 * f``, a non-positive ``delta``, an empty quorum
    system, or a leader-rotation function that returns an unknown node.
    """


class QuorumSystemError(ReproError):
    """A quorum system violates its structural requirements.

    For instance, a federated quorum system whose slices admit two
    disjoint quorums cannot guarantee safety and is rejected eagerly.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ProtocolViolation(ReproError):
    """A *well-behaved* node attempted something the protocol forbids.

    This is an internal assertion surface: it fires on bugs in our own
    state machines (double vote-1 in a view, proposing twice, voting
    for a value never determined safe), never on Byzantine input, which
    is simply ignored or handled per the protocol.
    """


class VerificationError(ReproError):
    """The model checker found a counterexample to a checked property."""

    def __init__(self, message: str, trace: list | None = None) -> None:
        super().__init__(message)
        #: Action trace leading to the violating state, when available.
        self.trace = trace or []
