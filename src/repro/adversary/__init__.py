"""Byzantine node behaviours for fault-injection tests and benches.

Two layers: :mod:`repro.adversary.byzantine` replaces single-shot
TetraBFT nodes wholesale; :mod:`repro.adversary.faulty_engine` wraps
any pluggable SMR consensus engine in the same deviation repertoire.
"""

from repro.adversary.byzantine import (
    ChaosMonkey,
    CrashNode,
    EquivocatingLeader,
    HistoryFabricator,
    SilentNode,
    VoteWithholder,
)
from repro.adversary.faulty_engine import (
    ATTACK_NAMES,
    ATTACKS,
    Chaos,
    Deviation,
    Equivocate,
    FabricateHistory,
    FaultyEngine,
    ScheduledCrash,
    Silence,
    Withhold,
    faulty_factory,
)

__all__ = [
    "ATTACKS",
    "ATTACK_NAMES",
    "Chaos",
    "ChaosMonkey",
    "CrashNode",
    "Deviation",
    "Equivocate",
    "EquivocatingLeader",
    "FabricateHistory",
    "FaultyEngine",
    "HistoryFabricator",
    "ScheduledCrash",
    "Silence",
    "SilentNode",
    "VoteWithholder",
    "Withhold",
    "faulty_factory",
]
