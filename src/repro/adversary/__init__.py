"""Byzantine node behaviours for fault-injection tests and benches."""

from repro.adversary.byzantine import (
    ChaosMonkey,
    CrashNode,
    EquivocatingLeader,
    HistoryFabricator,
    SilentNode,
    VoteWithholder,
)

__all__ = [
    "ChaosMonkey",
    "CrashNode",
    "EquivocatingLeader",
    "HistoryFabricator",
    "SilentNode",
    "VoteWithholder",
]
