"""Byzantine node behaviours.

The paper's model allows up to ``f`` nodes to deviate arbitrarily.
These classes implement the deviations the security analysis worries
about, each as a :class:`~repro.sim.runner.SimNode` that can be dropped
into a simulation in place of an honest :class:`TetraBFTNode`:

* :class:`SilentNode` — never sends anything (crash-from-start);
* :class:`CrashNode` — honest until a scheduled crash time, then silent;
* :class:`EquivocatingLeader` — proposes different values to different
  halves of the network when it leads, and votes both ways;
* :class:`VoteWithholder` — honest except it never sends chosen phases,
  starving the pipeline (a targeted liveness attack);
* :class:`HistoryFabricator` — replies to view changes with forged
  suggest/proof histories claiming arbitrary values were voted at
  arbitrary views, the attack Rules 1–4 are engineered to survive;
* :class:`ChaosMonkey` — the ``ByzantineHavoc`` of the TLA+ spec: a
  seeded stream of random, type-correct protocol messages sprayed at
  random subsets of nodes.

None of these can forge sender identity — channels are authenticated —
but all of them can lie about content, which is the entire difficulty
of the unauthenticated setting.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.config import ProtocolConfig
from repro.core.messages import Proof, Proposal, Suggest, ViewChange, Vote, VoteRecord
from repro.core.node import TetraBFTNode
from repro.core.values import Phase, Value
from repro.quorums.system import NodeId
from repro.sim.runner import NodeContext, SimNode


class SilentNode(SimNode):
    """A node that crashed before the protocol began."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id

    def start(self, ctx: NodeContext) -> None:
        del ctx

    def receive(self, sender: NodeId, message: object) -> None:
        del sender, message


class CrashNode(SimNode):
    """Honest behaviour until ``crash_time``, then nothing forever.

    Wraps a real :class:`TetraBFTNode`, so pre-crash behaviour is
    exactly the protocol's.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        initial_value: Value,
        crash_time: float,
    ) -> None:
        self.node_id = node_id
        self.crash_time = crash_time
        self._inner = TetraBFTNode(node_id, config, initial_value)
        self._ctx: NodeContext | None = None

    @property
    def crashed(self) -> bool:
        return self._ctx is not None and self._ctx.now >= self.crash_time

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._inner.start(ctx)

    def receive(self, sender: NodeId, message: object) -> None:
        if self.crashed:
            return
        self._inner.receive(sender, message)


class EquivocatingLeader(SimNode):
    """Sends value A to one half and value B to the other when leading.

    It also casts conflicting votes (phase by phase, one value per
    half) to push both candidate values as far through the pipeline as
    it can.  Within-view safety must hold regardless — that is Lemma 6,
    and the integration tests assert it against this node.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        value_a: Value,
        value_b: Value,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.value_a = value_a
        self.value_b = value_b
        self._ctx: NodeContext | None = None
        self._proposed_views: set[int] = set()
        self._voted: set[tuple[int, Phase]] = set()

    def _halves(self) -> tuple[list[NodeId], list[NodeId]]:
        ids = self.config.node_ids
        mid = len(ids) // 2
        return ids[:mid], ids[mid:]

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self._maybe_equivocate_proposal(view=0)

    def _maybe_equivocate_proposal(self, view: int) -> None:
        if self._ctx is None or view in self._proposed_views:
            return
        if self.config.leader_of(view) != self.node_id:
            return
        self._proposed_views.add(view)
        half_a, half_b = self._halves()
        for dst in half_a:
            self._ctx.send(dst, Proposal(view, self.value_a))
        for dst in half_b:
            self._ctx.send(dst, Proposal(view, self.value_b))

    def receive(self, sender: NodeId, message: object) -> None:
        if self._ctx is None:
            return
        if isinstance(message, ViewChange):
            self._maybe_equivocate_proposal(message.view)
            return
        if isinstance(message, (Suggest, Proof)):
            self._maybe_equivocate_proposal(message.view)
            return
        if isinstance(message, Vote):
            # Echo the vote one phase ahead, to each half with its value.
            key = (message.view, message.phase)
            if key in self._voted:
                return
            self._voted.add(key)
            half_a, half_b = self._halves()
            for dst in half_a:
                self._ctx.send(dst, Vote(message.phase, message.view, self.value_a))
            for dst in half_b:
                self._ctx.send(dst, Vote(message.phase, message.view, self.value_b))


class VoteWithholder(SimNode):
    """Honest, except chosen vote phases are silently dropped.

    With ``f`` withholders the remaining ``n - f`` honest nodes still
    form quorums, so the protocol must stay live; the tests check
    exactly that.  (A withholder still receives and counts messages —
    it is a participation attack, not a crash.)
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        initial_value: Value,
        withheld_phases: Sequence[Phase] = (Phase.VOTE3, Phase.VOTE4),
    ) -> None:
        self.node_id = node_id
        self.withheld = frozenset(withheld_phases)
        self._inner = TetraBFTNode(node_id, config, initial_value)

    def start(self, ctx: NodeContext) -> None:
        self._inner.start(_FilteredContext(ctx, self.withheld))

    def receive(self, sender: NodeId, message: object) -> None:
        self._inner.receive(sender, message)


class _FilteredContext(NodeContext):
    """Context proxy that swallows broadcasts of withheld vote phases."""

    def __init__(self, real: NodeContext, withheld: frozenset[Phase]) -> None:
        super().__init__(real.node_id, real._sim)
        self._withheld = withheld

    def broadcast(self, message: object) -> None:
        if isinstance(message, Vote) and message.phase in self._withheld:
            return
        super().broadcast(message)


class HistoryFabricator(SimNode):
    """Forges suggest/proof histories during view changes.

    On every view-change signal it sends, to the new leader and to all
    nodes, histories claiming it voted for ``poison_value`` at the
    highest views imaginable — trying to make Rule 1/Rule 3 admit an
    unsafe value.  Because it is a single node (less than a blocking
    set), its lies must never suffice on their own; the safety property
    tests run this node alongside honest majorities and assert
    agreement still holds.
    """

    def __init__(self, node_id: NodeId, config: ProtocolConfig, poison_value: Value) -> None:
        self.node_id = node_id
        self.config = config
        self.poison_value = poison_value
        self._ctx: NodeContext | None = None
        self._forged_views: set[int] = set()

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx

    def receive(self, sender: NodeId, message: object) -> None:
        if self._ctx is None or not isinstance(message, ViewChange):
            return
        if sender == self.node_id:
            return  # our own loop-back echo; reacting would recurse forever
        view = message.view
        if view in self._forged_views:
            return
        self._forged_views.add(view)
        forged_high = VoteRecord(view=max(view - 1, 0), value=self.poison_value)
        forged_prev = VoteRecord(view=max(view - 2, 0), value=("bogus", view))
        suggest = Suggest(view=view, vote2=forged_high, prev_vote2=forged_prev, vote3=forged_high)
        proof = Proof(view=view, vote1=forged_high, prev_vote1=forged_prev, vote4=forged_high)
        self._ctx.send(self.config.leader_of(view), suggest)
        self._ctx.broadcast(proof)
        # Also echo the view change so it does not slow the honest nodes.
        self._ctx.broadcast(ViewChange(view))


class ChaosMonkey(SimNode):
    """Seeded random Byzantine havoc (the TLA+ ``ByzantineHavoc`` action).

    Every ``period`` time units it sprays a burst of random,
    well-formed protocol messages — votes of any phase for any value at
    nearby views, proposals, forged suggests/proofs, and view-changes —
    each to an independently chosen random subset of nodes.  Used by
    the property-based safety tests: whatever the monkey does, honest
    nodes must never disagree.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        values: Sequence[Value],
        seed: int = 0,
        period: float = 1.0,
        burst: int = 6,
        horizon: float = 200.0,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.values = list(values)
        self.period = period
        self.burst = burst
        self.horizon = horizon
        self._rng = random.Random(seed)
        self._ctx: NodeContext | None = None
        self._view_hint = 0

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        ctx.set_timer(self.period, self._tick)

    def receive(self, sender: NodeId, message: object) -> None:
        view = getattr(message, "view", None)
        if isinstance(view, int):
            self._view_hint = max(self._view_hint, view)

    def _random_message(self) -> object:
        rng = self._rng
        view = max(0, self._view_hint + rng.randint(-1, 2))
        value = rng.choice(self.values)
        kind = rng.randrange(5)
        if kind == 0:
            return Proposal(view, value)
        if kind == 1:
            return Vote(Phase(rng.randint(1, 4)), view, value)
        if kind == 2:
            record = VoteRecord(max(0, view - rng.randint(0, 2)), value)
            other = VoteRecord(max(0, view - rng.randint(0, 3)), rng.choice(self.values))
            return Suggest(view, vote2=record, prev_vote2=other, vote3=record)
        if kind == 3:
            record = VoteRecord(max(0, view - rng.randint(0, 2)), value)
            other = VoteRecord(max(0, view - rng.randint(0, 3)), rng.choice(self.values))
            return Proof(view, vote1=record, prev_vote1=other, vote4=record)
        return ViewChange(view + 1)

    def _tick(self) -> None:
        if self._ctx is None or self._ctx.now > self.horizon:
            return
        targets = list(self.config.node_ids)
        for _ in range(self.burst):
            message = self._random_message()
            dst = self._rng.choice(targets)
            self._ctx.send(dst, message)
        self._ctx.set_timer(self.period, self._tick)
