"""Byzantine deviations at the SMR/engine layer.

The single-shot adversaries in :mod:`repro.adversary.byzantine` replace
a whole :class:`~repro.core.node.TetraBFTNode`; none of them can attack
the pluggable SMR engines behind the
:class:`~repro.smr.engine.ConsensusEngine` boundary.  This module lifts
the same deviation repertoire to that boundary: a :class:`FaultyEngine`
wraps *any* engine (pipelined TetraBFT, or the chained PBFT /
IT-HotStuff / Li baselines) and filters, forges, splits or sprays its
traffic according to a pluggable :class:`Deviation` strategy, while the
wrapped engine keeps running the honest state machine underneath — the
strongest unauthenticated adversary short of rewriting the protocol:
it can lie about content arbitrarily but cannot forge sender identity.

The repertoire (one :class:`Deviation` per family, mirroring the
single-shot classes):

* :class:`Silence` — drops every outbound message (crash-from-start);
* :class:`ScheduledCrash` — honest outside a ``[crash_at, recover_at)``
  window, dark inside it (rolling crash/recover when combined with the
  engines' catch-up paths);
* :class:`Equivocate` — splits every proposal and vote broadcast: one
  half of the network sees the honest block, the other a forged twin
  minted for the same slot and parent, with votes kept consistent per
  half via a twin cache;
* :class:`Withhold` — suppresses outbound votes (a participation
  attack: the node still receives, counts and proposes);
* :class:`FabricateHistory` — refuses to propose when leading (forcing
  view changes on its slots) and answers the resulting view changes
  with forged vote histories / lock claims pushing a poison block, the
  attack Rules 1–4 (and any lock-based recovery) must survive;
* :class:`Chaos` — a seeded stream of dropped, duplicated and
  mutated-replayed protocol messages (the engine-layer
  ``ByzantineHavoc``).

:func:`faulty_factory` is the :data:`~repro.smr.engine.EngineFactory`
combinator the campaign runner (:mod:`repro.eval.attacks`) builds
clusters from: replicas whose ids land in the f-bounded faulty set get
their engine wrapped, everyone else runs the unmodified engine.  All
randomness is seeded — the same (attack, seed) pair yields
byte-identical traces, which the unit tests pin.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from dataclasses import replace

from repro.baselines.base import BPhaseVote, BProposal, BRound, BViewChange
from repro.baselines.chained import SlotMessage
from repro.core.config import ProtocolConfig
from repro.core.messages import VoteRecord
from repro.multishot.batching import iter_logical
from repro.multishot.block import GENESIS_DIGEST, Block, BlockStore, Digest
from repro.multishot.messages import (
    MSProof,
    MSProposal,
    MSSuggest,
    MSViewChange,
    MSVote,
)
from repro.quorums.system import NodeId
from repro.sim.runner import NodeContext
from repro.smr.engine import ConsensusEngine, EngineFactory

#: A delivery the deviation wants made: ``(destination, message)``
#: where a ``None`` destination means broadcast.
Delivery = tuple[NodeId | None, object]

#: Builds the per-node deviation for one faulty replica.
DeviationFactory = Callable[[NodeId], "Deviation"]


def _unwrap(message: object) -> tuple[int | None, object]:
    """``(slot, inner)`` for chained slot envelopes, ``(None, msg)`` else."""
    if isinstance(message, SlotMessage):
        return message.slot, message.inner
    return None, message


def _rewrap(message: object, inner: object) -> object:
    """Put a mutated inner message back into its original envelope."""
    if isinstance(message, SlotMessage):
        return SlotMessage(message.slot, inner)
    return inner


def is_proposal(message: object) -> bool:
    """Engine-generic: does ``message`` carry a leader proposal?"""
    return isinstance(_unwrap(message)[1], (MSProposal, BProposal))


def is_vote(message: object) -> bool:
    """Engine-generic: does ``message`` carry a vote?"""
    return isinstance(_unwrap(message)[1], (MSVote, BPhaseVote))


def is_view_change(message: object) -> bool:
    """Engine-generic: does ``message`` signal a view change?"""
    return isinstance(_unwrap(message)[1], (MSViewChange, BViewChange))


class Deviation:
    """Strategy hook deciding what a faulty replica does with traffic.

    The default implementation is perfectly honest; subclasses override
    :meth:`outbound` (filter/forge what the wrapped engine sends),
    :meth:`inbound` (filter what it hears) and :meth:`on_start`
    (schedule autonomous behaviour).  ``self.engine`` is bound before
    any hook runs.
    """

    engine: "FaultyEngine"

    def bind(self, engine: "FaultyEngine") -> None:
        self.engine = engine

    def on_start(self) -> None:
        """Called once, after the wrapped engine started."""

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        """Deliveries to make for one send (``dst``) or broadcast (None)."""
        return [(dst, message)]

    def inbound(self, sender: NodeId, message: object) -> bool:
        """Whether to deliver one received message to the wrapped engine."""
        del sender, message
        return True


class _DeviantContext(NodeContext):
    """Context proxy routing the wrapped engine's sends through the
    deviation.  Timers, traces and metric reports pass through — the
    adversary lies on the wire, not to the local bookkeeping."""

    def __init__(self, real: NodeContext, engine: "FaultyEngine") -> None:
        super().__init__(real.node_id, real._sim)
        self._engine = engine

    def send(self, dst: NodeId, message: object) -> None:
        self._engine._emit(self._engine.deviation.outbound(dst, message))

    def broadcast(self, message: object) -> None:
        # Unbatch aggregated frames so type-dispatching deviations see
        # every logical message; a faulty node's own traffic then goes
        # out unbatched, which only it can observe.
        engine = self._engine
        for item in iter_logical(message):
            engine._emit(engine.deviation.outbound(None, item))


class FaultyEngine:
    """A Byzantine wrapper around any consensus engine.

    Structurally a :class:`~repro.smr.engine.ConsensusEngine`: the SMR
    replica drives it exactly like an honest engine.  Every outbound
    message the wrapped engine produces is routed through the bound
    :class:`Deviation` (which may drop, rewrite, split or multiply it)
    and every inbound message may be suppressed; the wrapped engine
    itself stays the honest state machine, so pre-attack behaviour is
    exactly the protocol's.
    """

    def __init__(self, node_id: NodeId, inner: ConsensusEngine, deviation: Deviation) -> None:
        self.node_id = node_id
        self.inner = inner
        self.deviation = deviation
        self._ctx: NodeContext | None = None
        deviation.bind(self)

    # -- ConsensusEngine surface ------------------------------------------------

    def start(self, ctx: NodeContext) -> None:
        self._ctx = ctx
        self.inner.start(_DeviantContext(ctx, self))
        self.deviation.on_start()

    def receive(self, sender: NodeId, message: object) -> None:
        # Filter aggregated frames per logical message — otherwise an
        # envelope would smuggle whole vote batches past the deviation.
        for item in iter_logical(message):
            if self.deviation.inbound(sender, item):
                self.inner.receive(sender, item)

    @property
    def store(self) -> BlockStore:
        return self.inner.store

    @property
    def finalized_chain(self) -> list[Block]:
        return self.inner.finalized_chain

    # -- deviation services ----------------------------------------------------

    @property
    def ctx(self) -> NodeContext:
        assert self._ctx is not None, "faulty engine used before start()"
        return self._ctx

    @property
    def now(self) -> float:
        return self.ctx.now

    def tip_digest(self) -> Digest:
        chain = self.inner.finalized_chain
        return chain[-1].digest if chain else GENESIS_DIGEST

    def _emit(self, deliveries: list[Delivery]) -> None:
        ctx = self.ctx
        for dst, message in deliveries:
            if dst is None:
                ctx.broadcast(message)
            else:
                ctx.send(dst, message)


# -- the repertoire -----------------------------------------------------------


class Silence(Deviation):
    """Sends nothing, ever — the engine-layer crash-from-start."""

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        del dst, message
        return []


class ScheduledCrash(Deviation):
    """Honest until ``crash_at``; dark until ``recover_at`` (or forever).

    Inbound traffic is suppressed during the outage too, so on recovery
    the wrapped engine is genuinely behind and must rejoin through the
    protocol's own catch-up path (state transfer for the chained
    engines, notarization catch-up for the pipelined one).
    """

    def __init__(self, crash_at: float, recover_at: float | None = None) -> None:
        self.crash_at = crash_at
        self.recover_at = recover_at

    def _dark(self) -> bool:
        now = self.engine.now
        if now < self.crash_at:
            return False
        return self.recover_at is None or now < self.recover_at

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        if self._dark():
            return []
        return [(dst, message)]

    def inbound(self, sender: NodeId, message: object) -> bool:
        del sender, message
        return not self._dark()


class Withhold(Deviation):
    """Drops outbound votes; everything else flows honestly.

    With at most ``f`` withholders the remaining ``n - f`` honest nodes
    still form quorums, so every engine must stay live — the campaign
    asserts exactly that for TetraBFT.
    """

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        if is_vote(message):
            return []
        return [(dst, message)]


class Equivocate(Deviation):
    """Shows each half of the network a different lineage.

    Proposal broadcasts are split: the low-id half receives the honest
    block, the high-id half a forged twin for the same slot and parent
    (so both lineages are well-formed).  Votes follow the same split,
    translated through a twin cache so each half's votes consistently
    endorse the lineage it was shown.  Within-view safety (Lemma 6 for
    TetraBFT; the decide-quorum intersection argument for the chained
    baselines) must hold regardless.
    """

    def __init__(self, node_id: NodeId, config: ProtocolConfig) -> None:
        self.node_id = node_id
        self.ids = list(config.node_ids)
        # digest → twin digest, both directions, so a vote for either
        # lineage translates to its counterpart for the other half.
        self._twin_digest: dict[Digest, Digest] = {}

    def _halves(self) -> tuple[list[NodeId], list[NodeId]]:
        mid = len(self.ids) // 2
        return self.ids[:mid], self.ids[mid:]

    def _twin_block(self, block: Block) -> Block:
        twin = Block.create(block.slot, block.parent, ("equivocation", self.node_id, block.slot))
        self._twin_digest[block.digest] = twin.digest
        self._twin_digest[twin.digest] = block.digest
        return twin

    def _twin_message(self, message: object) -> object | None:
        """The conflicting counterpart of one outbound message."""
        envelope_slot, inner = _unwrap(message)
        del envelope_slot
        if isinstance(inner, MSProposal):
            return _rewrap(message, replace(inner, block=self._twin_block(inner.block)))
        if isinstance(inner, BProposal) and isinstance(inner.value, Block):
            return _rewrap(message, replace(inner, value=self._twin_block(inner.value)))
        if isinstance(inner, MSVote):
            twin = self._twin_digest.get(inner.digest)
            if twin is None:
                return None
            return _rewrap(message, replace(inner, digest=twin))
        if isinstance(inner, BPhaseVote) and isinstance(inner.value, Block):
            twin = self._twin_digest.get(inner.value.digest)
            if twin is None:
                return None
            twin_block = self.engine.store.get(twin)
            if twin_block is None:
                return None
            return _rewrap(message, replace(inner, value=twin_block))
        return None

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        if dst is not None or not (is_proposal(message) or is_vote(message)):
            return [(dst, message)]
        twin = self._twin_message(message)
        if twin is None:
            return [(dst, message)]
        if is_proposal(message):
            # Keep the twin body resolvable for later vote translation.
            _, inner = _unwrap(twin)
            body = inner.block if isinstance(inner, MSProposal) else inner.value
            if isinstance(body, Block):
                self.engine.store.add(body)
        low, high = self._halves()
        return [(node, message) for node in low] + [(node, twin) for node in high]


class FabricateHistory(Deviation):
    """Forges protocol history during view changes.

    Never proposes when leading (its slots must time out, creating the
    view changes the forgery needs), then:

    * **pipelined TetraBFT** — outbound suggest/proof messages are
      rewritten, and every observed view change answered, with
      :class:`~repro.core.messages.VoteRecord` claims that a poison
      digest was voted at the highest views imaginable — the lie
      Rules 1–4 must reject without a blocking set to vouch for it;
    * **chained baselines** — outbound view-change/round messages claim
      a maximal lock on a poison block extending the current tip, the
      lie the highest-lock recovery rule is most exposed to.

    Poison payloads are type-correct but carry no transactions, so an
    engine that *does* finalize one merely wastes the slot.
    """

    #: How far above the current view forged lock claims reach.
    LOCK_LEAD = 50

    def __init__(self, node_id: NodeId, config: ProtocolConfig) -> None:
        self.node_id = node_id
        self.ids = list(config.node_ids)
        self._answered: set[tuple[int | None, int]] = set()

    def _poison_digest(self, slot: int | None, view: int) -> Digest:
        return f"poison-{self.node_id}-{slot}-{view}"

    def _poison_block(self, slot: int) -> Block:
        block = Block.create(slot, self.engine.tip_digest(), ("poison", self.node_id))
        self.engine.store.add(block)
        return block

    def _forged_records(self, slot: int | None, view: int) -> dict[str, VoteRecord]:
        high = VoteRecord(view=max(view - 1, 0), value=self._poison_digest(slot, view))
        prev = VoteRecord(view=max(view - 2, 0), value=self._poison_digest(slot, 0))
        return {"high": high, "prev": prev}

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        slot, inner = _unwrap(message)
        if isinstance(inner, (MSProposal, BProposal)):
            return []  # leading ⇒ stall the slot into a view change
        if isinstance(inner, MSSuggest):
            forged = self._forged_records(inner.slot, inner.view)
            return [(dst, replace(
                inner,
                vote2=forged["high"],
                prev_vote2=forged["prev"],
                vote3=forged["high"],
            ))]
        if isinstance(inner, MSProof):
            forged = self._forged_records(inner.slot, inner.view)
            return [(dst, replace(
                inner,
                vote1=forged["high"],
                prev_vote1=forged["prev"],
                vote4=forged["high"],
            ))]
        if isinstance(inner, (BViewChange, BRound)) and slot is not None:
            poisoned = replace(
                inner,
                lock_view=inner.view + self.LOCK_LEAD,
                lock_value=self._poison_block(slot),
            )
            return [(dst, _rewrap(message, poisoned))]
        return [(dst, message)]

    def inbound(self, sender: NodeId, message: object) -> bool:
        _, inner = _unwrap(message)
        if isinstance(inner, MSViewChange) and sender != self.node_id:
            key = (inner.slot, inner.view)
            if key not in self._answered:
                self._answered.add(key)
                self._spray_forgeries(inner.slot, inner.view)
        return True

    def _spray_forgeries(self, slot: int, view: int) -> None:
        """Answer a view change with forged suggest/proof histories."""
        forged = self._forged_records(slot, view)
        leader = self.ids[(slot + view) % len(self.ids)]
        self.engine._emit([
            (None, MSProof(slot, view, forged["high"], forged["prev"], forged["high"])),
            (leader, MSSuggest(
                slot, view, forged["high"], forged["prev"], forged["high"]
            )),
        ])


class Chaos(Deviation):
    """Seeded engine-layer havoc: drop, duplicate, mutate, replay.

    Outbound messages are dropped or duplicated at random; inbound
    traffic feeds a bounded replay buffer that a periodic timer sprays
    back at random nodes with slot/view fields randomly bumped — a
    stream of stale, duplicated and subtly-wrong but type-correct
    protocol messages.  Fully deterministic for a fixed seed.
    """

    BUFFER = 32

    def __init__(
        self,
        node_id: NodeId,
        config: ProtocolConfig,
        seed: int = 0,
        period: float = 2.0,
        burst: int = 4,
        horizon: float = 120.0,
    ) -> None:
        self.node_id = node_id
        self.ids = list(config.node_ids)
        self.period = period
        self.burst = burst
        self.horizon = horizon
        # Mixed as plain ints: tuple seeds go through hash(), which is
        # process-salted and would break cross-run trace identity.
        self._rng = random.Random(seed * 1_000_003 + node_id)
        self._seen: list[object] = []

    def on_start(self) -> None:
        self.engine.ctx.set_timer(self.period, self._tick)

    def outbound(self, dst: NodeId | None, message: object) -> list[Delivery]:
        roll = self._rng.random()
        if roll < 0.25:
            return []  # drop
        if roll < 0.5:
            extra = self._rng.choice(self.ids)
            return [(dst, message), (extra, message)]  # duplicate
        return [(dst, message)]

    def inbound(self, sender: NodeId, message: object) -> bool:
        del sender
        self._seen.append(message)
        if len(self._seen) > self.BUFFER:
            self._seen.pop(0)
        return True

    def _mutate(self, message: object) -> object:
        """Randomly bump integer slot/view fields, keeping types legal."""
        slot, inner = _unwrap(message)
        del slot
        fields = {}
        for name in ("slot", "view"):
            value = getattr(inner, name, None)
            if isinstance(value, int) and self._rng.random() < 0.5:
                fields[name] = max(1, value + self._rng.randint(-1, 2))
        if not fields:
            return message
        try:
            return _rewrap(message, replace(inner, **fields))
        except (TypeError, ValueError):
            return message

    def _tick(self) -> None:
        if self.engine.now > self.horizon:
            return
        if self._seen:
            for _ in range(self.burst):
                victim = self._rng.choice(self._seen)
                target = self._rng.choice(self.ids)
                self.engine._emit([(target, self._mutate(victim))])
        self.engine.ctx.set_timer(self.period, self._tick)


# -- factory combinators -------------------------------------------------------


def faulty_factory(
    inner: EngineFactory,
    deviation: DeviationFactory,
    faulty: Iterable[NodeId],
) -> EngineFactory:
    """An :data:`EngineFactory` whose ``faulty`` replicas misbehave.

    Replicas with ids in ``faulty`` get their engine wrapped in a
    :class:`FaultyEngine` driving ``deviation(node_id)``; all others
    build the unmodified inner engine.  This is the combinator the
    campaign runner composes with any registered engine factory.
    """
    faulty_set = frozenset(faulty)

    def build(node_id: NodeId, payload_fn, on_finalize) -> ConsensusEngine:
        engine = inner(node_id, payload_fn, on_finalize)
        if node_id in faulty_set:
            return FaultyEngine(node_id, engine, deviation(node_id))
        return engine

    return build


#: The attack registry: name → (node_id, config, seed) → Deviation.
#: One entry per deviation family; the campaign grid iterates these.
ATTACKS: dict[str, Callable[[NodeId, ProtocolConfig, int], Deviation]] = {
    "silence": lambda node_id, config, seed: Silence(),
    "crash": lambda node_id, config, seed: ScheduledCrash(
        crash_at=15.0, recover_at=60.0
    ),
    "equivocate": lambda node_id, config, seed: Equivocate(node_id, config),
    "withhold": lambda node_id, config, seed: Withhold(),
    "fabricate": lambda node_id, config, seed: FabricateHistory(node_id, config),
    "chaos": lambda node_id, config, seed: Chaos(node_id, config, seed=seed),
}

#: Grid order of the attack families.
ATTACK_NAMES = tuple(ATTACKS)
